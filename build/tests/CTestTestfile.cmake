# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fgcs_tests[1]_include.cmake")
add_test(tool_gen_smoke "/root/repo/build/tools/fgcs_gen" "--out" "/root/repo/build/tool-smoke" "--machines" "1" "--days" "9" "--seed" "3" "--period" "60" "--prefix" "smoke")
set_tests_properties(tool_gen_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;56;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_inspect_smoke "/root/repo/build/tools/fgcs_inspect" "--trace" "/root/repo/build/tool-smoke/smoke00.fgcs")
set_tests_properties(tool_inspect_smoke PROPERTIES  DEPENDS "tool_gen_smoke" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;59;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_predict_smoke "/root/repo/build/tools/fgcs_predict" "--trace" "/root/repo/build/tool-smoke/smoke00.fgcs" "--start" "09:00" "--hours" "2" "--analysis")
set_tests_properties(tool_predict_smoke PROPERTIES  DEPENDS "tool_gen_smoke" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;61;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_eval_smoke "/root/repo/build/tools/fgcs_eval" "--trace" "/root/repo/build/tool-smoke/smoke00.fgcs" "--split" "0.6")
set_tests_properties(tool_eval_smoke PROPERTIES  DEPENDS "tool_gen_smoke" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;64;add_test;/root/repo/tests/CMakeLists.txt;0;")
