
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/analysis_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/core/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/core/analysis_test.cpp.o.d"
  "/root/repo/tests/core/classifier_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/core/classifier_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/core/classifier_test.cpp.o.d"
  "/root/repo/tests/core/empirical_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/core/empirical_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/core/empirical_test.cpp.o.d"
  "/root/repo/tests/core/estimator_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/core/estimator_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/core/estimator_test.cpp.o.d"
  "/root/repo/tests/core/fast_solver_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/core/fast_solver_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/core/fast_solver_test.cpp.o.d"
  "/root/repo/tests/core/predictor_property_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/core/predictor_property_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/core/predictor_property_test.cpp.o.d"
  "/root/repo/tests/core/predictor_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/core/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/core/predictor_test.cpp.o.d"
  "/root/repo/tests/core/semi_markov_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/core/semi_markov_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/core/semi_markov_test.cpp.o.d"
  "/root/repo/tests/core/sparse_solver_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/core/sparse_solver_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/core/sparse_solver_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/ishare/gateway_registry_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/ishare/gateway_registry_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/ishare/gateway_registry_test.cpp.o.d"
  "/root/repo/tests/ishare/replication_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/ishare/replication_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/ishare/replication_test.cpp.o.d"
  "/root/repo/tests/ishare/resource_monitor_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/ishare/resource_monitor_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/ishare/resource_monitor_test.cpp.o.d"
  "/root/repo/tests/ishare/scheduler_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/ishare/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/ishare/scheduler_test.cpp.o.d"
  "/root/repo/tests/ishare/state_manager_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/ishare/state_manager_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/ishare/state_manager_test.cpp.o.d"
  "/root/repo/tests/sim/contention_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/sim/contention_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/sim/contention_test.cpp.o.d"
  "/root/repo/tests/sim/cpu_scheduler_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/sim/cpu_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/sim/cpu_scheduler_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/machine_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/sim/machine_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/sim/machine_test.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/fgcs_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/timeseries/ar_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/timeseries/ar_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/timeseries/ar_test.cpp.o.d"
  "/root/repo/tests/timeseries/arma_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/timeseries/arma_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/timeseries/arma_test.cpp.o.d"
  "/root/repo/tests/timeseries/factory_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/timeseries/factory_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/timeseries/factory_test.cpp.o.d"
  "/root/repo/tests/timeseries/frequency_baseline_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/timeseries/frequency_baseline_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/timeseries/frequency_baseline_test.cpp.o.d"
  "/root/repo/tests/timeseries/ma_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/timeseries/ma_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/timeseries/ma_test.cpp.o.d"
  "/root/repo/tests/timeseries/simple_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/timeseries/simple_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/timeseries/simple_test.cpp.o.d"
  "/root/repo/tests/timeseries/tr_predictor_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/timeseries/tr_predictor_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/timeseries/tr_predictor_test.cpp.o.d"
  "/root/repo/tests/trace/machine_trace_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/trace/machine_trace_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/trace/machine_trace_test.cpp.o.d"
  "/root/repo/tests/trace/robustness_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/trace/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/trace/robustness_test.cpp.o.d"
  "/root/repo/tests/trace/sample_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/trace/sample_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/trace/sample_test.cpp.o.d"
  "/root/repo/tests/trace/window_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/trace/window_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/trace/window_test.cpp.o.d"
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/fft_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/util/fft_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/util/fft_test.cpp.o.d"
  "/root/repo/tests/util/matrix_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/util/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/util/matrix_test.cpp.o.d"
  "/root/repo/tests/util/parallel_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/util/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/util/parallel_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/time_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/util/time_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/util/time_test.cpp.o.d"
  "/root/repo/tests/workload/catalog_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/workload/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/workload/catalog_test.cpp.o.d"
  "/root/repo/tests/workload/characterize_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/workload/characterize_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/workload/characterize_test.cpp.o.d"
  "/root/repo/tests/workload/noise_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/workload/noise_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/workload/noise_test.cpp.o.d"
  "/root/repo/tests/workload/profile_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/workload/profile_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/workload/profile_test.cpp.o.d"
  "/root/repo/tests/workload/trace_generator_test.cpp" "tests/CMakeFiles/fgcs_tests.dir/workload/trace_generator_test.cpp.o" "gcc" "tests/CMakeFiles/fgcs_tests.dir/workload/trace_generator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/fgcs_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/CMakeFiles/fgcs_ishare.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fgcs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fgcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fgcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
