# Empty compiler generated dependencies file for fgcs_tests.
# This may be replaced when dependencies are built.
