# Empty dependencies file for fgcs_inspect.
# This may be replaced when dependencies are built.
