file(REMOVE_RECURSE
  "CMakeFiles/fgcs_inspect.dir/fgcs_inspect.cpp.o"
  "CMakeFiles/fgcs_inspect.dir/fgcs_inspect.cpp.o.d"
  "fgcs_inspect"
  "fgcs_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
