file(REMOVE_RECURSE
  "CMakeFiles/fgcs_gen.dir/fgcs_gen.cpp.o"
  "CMakeFiles/fgcs_gen.dir/fgcs_gen.cpp.o.d"
  "fgcs_gen"
  "fgcs_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
