# Empty dependencies file for fgcs_gen.
# This may be replaced when dependencies are built.
