file(REMOVE_RECURSE
  "CMakeFiles/fgcs_predict.dir/fgcs_predict.cpp.o"
  "CMakeFiles/fgcs_predict.dir/fgcs_predict.cpp.o.d"
  "fgcs_predict"
  "fgcs_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
