# Empty compiler generated dependencies file for fgcs_predict.
# This may be replaced when dependencies are built.
