# Empty compiler generated dependencies file for fgcs_eval.
# This may be replaced when dependencies are built.
