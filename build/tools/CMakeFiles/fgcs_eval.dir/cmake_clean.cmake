file(REMOVE_RECURSE
  "CMakeFiles/fgcs_eval.dir/fgcs_eval.cpp.o"
  "CMakeFiles/fgcs_eval.dir/fgcs_eval.cpp.o.d"
  "fgcs_eval"
  "fgcs_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
