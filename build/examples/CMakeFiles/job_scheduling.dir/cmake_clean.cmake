file(REMOVE_RECURSE
  "CMakeFiles/job_scheduling.dir/job_scheduling.cpp.o"
  "CMakeFiles/job_scheduling.dir/job_scheduling.cpp.o.d"
  "job_scheduling"
  "job_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
