# Empty compiler generated dependencies file for job_scheduling.
# This may be replaced when dependencies are built.
