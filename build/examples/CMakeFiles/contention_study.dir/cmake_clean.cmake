file(REMOVE_RECURSE
  "CMakeFiles/contention_study.dir/contention_study.cpp.o"
  "CMakeFiles/contention_study.dir/contention_study.cpp.o.d"
  "contention_study"
  "contention_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
