# Empty dependencies file for contention_study.
# This may be replaced when dependencies are built.
