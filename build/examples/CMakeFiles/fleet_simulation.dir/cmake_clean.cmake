file(REMOVE_RECURSE
  "CMakeFiles/fleet_simulation.dir/fleet_simulation.cpp.o"
  "CMakeFiles/fleet_simulation.dir/fleet_simulation.cpp.o.d"
  "fleet_simulation"
  "fleet_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
