# Empty dependencies file for fleet_simulation.
# This may be replaced when dependencies are built.
