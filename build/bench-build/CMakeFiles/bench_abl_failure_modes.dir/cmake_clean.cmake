file(REMOVE_RECURSE
  "../bench/bench_abl_failure_modes"
  "../bench/bench_abl_failure_modes.pdb"
  "CMakeFiles/bench_abl_failure_modes.dir/bench_abl_failure_modes.cpp.o"
  "CMakeFiles/bench_abl_failure_modes.dir/bench_abl_failure_modes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_failure_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
