# Empty dependencies file for bench_abl_failure_modes.
# This may be replaced when dependencies are built.
