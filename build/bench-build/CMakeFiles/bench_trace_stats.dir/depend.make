# Empty dependencies file for bench_trace_stats.
# This may be replaced when dependencies are built.
