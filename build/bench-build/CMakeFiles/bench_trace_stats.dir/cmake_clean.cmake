file(REMOVE_RECURSE
  "../bench/bench_trace_stats"
  "../bench/bench_trace_stats.pdb"
  "CMakeFiles/bench_trace_stats.dir/bench_trace_stats.cpp.o"
  "CMakeFiles/bench_trace_stats.dir/bench_trace_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
