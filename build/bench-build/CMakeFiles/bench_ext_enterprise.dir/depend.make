# Empty dependencies file for bench_ext_enterprise.
# This may be replaced when dependencies are built.
