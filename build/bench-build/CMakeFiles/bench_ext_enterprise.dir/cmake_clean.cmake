file(REMOVE_RECURSE
  "../bench/bench_ext_enterprise"
  "../bench/bench_ext_enterprise.pdb"
  "CMakeFiles/bench_ext_enterprise.dir/bench_ext_enterprise.cpp.o"
  "CMakeFiles/bench_ext_enterprise.dir/bench_ext_enterprise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_enterprise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
