# Empty compiler generated dependencies file for bench_fig8_noise.
# This may be replaced when dependencies are built.
