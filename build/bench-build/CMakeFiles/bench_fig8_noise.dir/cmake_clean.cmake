file(REMOVE_RECURSE
  "../bench/bench_fig8_noise"
  "../bench/bench_fig8_noise.pdb"
  "CMakeFiles/bench_fig8_noise.dir/bench_fig8_noise.cpp.o"
  "CMakeFiles/bench_fig8_noise.dir/bench_fig8_noise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
