file(REMOVE_RECURSE
  "CMakeFiles/fgcs_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/fgcs_bench_harness.dir/harness.cpp.o.d"
  "lib/libfgcs_bench_harness.a"
  "lib/libfgcs_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
