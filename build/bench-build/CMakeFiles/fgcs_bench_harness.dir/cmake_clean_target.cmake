file(REMOVE_RECURSE
  "lib/libfgcs_bench_harness.a"
)
