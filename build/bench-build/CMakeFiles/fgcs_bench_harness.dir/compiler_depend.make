# Empty compiler generated dependencies file for fgcs_bench_harness.
# This may be replaced when dependencies are built.
