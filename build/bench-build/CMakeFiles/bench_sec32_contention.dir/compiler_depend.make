# Empty compiler generated dependencies file for bench_sec32_contention.
# This may be replaced when dependencies are built.
