file(REMOVE_RECURSE
  "../bench/bench_sec32_contention"
  "../bench/bench_sec32_contention.pdb"
  "CMakeFiles/bench_sec32_contention.dir/bench_sec32_contention.cpp.o"
  "CMakeFiles/bench_sec32_contention.dir/bench_sec32_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
