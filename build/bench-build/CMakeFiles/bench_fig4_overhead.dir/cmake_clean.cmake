file(REMOVE_RECURSE
  "../bench/bench_fig4_overhead"
  "../bench/bench_fig4_overhead.pdb"
  "CMakeFiles/bench_fig4_overhead.dir/bench_fig4_overhead.cpp.o"
  "CMakeFiles/bench_fig4_overhead.dir/bench_fig4_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
