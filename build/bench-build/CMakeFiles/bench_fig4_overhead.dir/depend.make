# Empty dependencies file for bench_fig4_overhead.
# This may be replaced when dependencies are built.
