file(REMOVE_RECURSE
  "../bench/bench_fig6_training_ratio"
  "../bench/bench_fig6_training_ratio.pdb"
  "CMakeFiles/bench_fig6_training_ratio.dir/bench_fig6_training_ratio.cpp.o"
  "CMakeFiles/bench_fig6_training_ratio.dir/bench_fig6_training_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_training_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
