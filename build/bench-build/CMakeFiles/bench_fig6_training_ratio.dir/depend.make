# Empty dependencies file for bench_fig6_training_ratio.
# This may be replaced when dependencies are built.
