file(REMOVE_RECURSE
  "../bench/bench_abl_discretization"
  "../bench/bench_abl_discretization.pdb"
  "CMakeFiles/bench_abl_discretization.dir/bench_abl_discretization.cpp.o"
  "CMakeFiles/bench_abl_discretization.dir/bench_abl_discretization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_discretization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
