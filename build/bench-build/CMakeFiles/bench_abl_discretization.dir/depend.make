# Empty dependencies file for bench_abl_discretization.
# This may be replaced when dependencies are built.
