
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_abl_discretization.cpp" "bench-build/CMakeFiles/bench_abl_discretization.dir/bench_abl_discretization.cpp.o" "gcc" "bench-build/CMakeFiles/bench_abl_discretization.dir/bench_abl_discretization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/fgcs_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/fgcs_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/ishare/CMakeFiles/fgcs_ishare.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fgcs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fgcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fgcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
