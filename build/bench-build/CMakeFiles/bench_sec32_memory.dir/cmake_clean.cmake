file(REMOVE_RECURSE
  "../bench/bench_sec32_memory"
  "../bench/bench_sec32_memory.pdb"
  "CMakeFiles/bench_sec32_memory.dir/bench_sec32_memory.cpp.o"
  "CMakeFiles/bench_sec32_memory.dir/bench_sec32_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
