# Empty compiler generated dependencies file for bench_sec32_memory.
# This may be replaced when dependencies are built.
