# Empty dependencies file for bench_abl_daytype.
# This may be replaced when dependencies are built.
