file(REMOVE_RECURSE
  "../bench/bench_abl_daytype"
  "../bench/bench_abl_daytype.pdb"
  "CMakeFiles/bench_abl_daytype.dir/bench_abl_daytype.cpp.o"
  "CMakeFiles/bench_abl_daytype.dir/bench_abl_daytype.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_daytype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
