file(REMOVE_RECURSE
  "../bench/bench_abl_estimator"
  "../bench/bench_abl_estimator.pdb"
  "CMakeFiles/bench_abl_estimator.dir/bench_abl_estimator.cpp.o"
  "CMakeFiles/bench_abl_estimator.dir/bench_abl_estimator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
