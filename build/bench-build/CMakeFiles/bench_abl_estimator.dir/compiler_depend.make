# Empty compiler generated dependencies file for bench_abl_estimator.
# This may be replaced when dependencies are built.
