file(REMOVE_RECURSE
  "../bench/bench_ext_replication"
  "../bench/bench_ext_replication.pdb"
  "CMakeFiles/bench_ext_replication.dir/bench_ext_replication.cpp.o"
  "CMakeFiles/bench_ext_replication.dir/bench_ext_replication.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
