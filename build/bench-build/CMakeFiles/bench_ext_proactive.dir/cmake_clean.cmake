file(REMOVE_RECURSE
  "../bench/bench_ext_proactive"
  "../bench/bench_ext_proactive.pdb"
  "CMakeFiles/bench_ext_proactive.dir/bench_ext_proactive.cpp.o"
  "CMakeFiles/bench_ext_proactive.dir/bench_ext_proactive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
