# Empty compiler generated dependencies file for bench_ext_proactive.
# This may be replaced when dependencies are built.
