file(REMOVE_RECURSE
  "../bench/bench_abl_sparse_solver"
  "../bench/bench_abl_sparse_solver.pdb"
  "CMakeFiles/bench_abl_sparse_solver.dir/bench_abl_sparse_solver.cpp.o"
  "CMakeFiles/bench_abl_sparse_solver.dir/bench_abl_sparse_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_sparse_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
