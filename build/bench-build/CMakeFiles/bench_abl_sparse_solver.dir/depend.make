# Empty dependencies file for bench_abl_sparse_solver.
# This may be replaced when dependencies are built.
