file(REMOVE_RECURSE
  "../bench/bench_fig7_model_comparison"
  "../bench/bench_fig7_model_comparison.pdb"
  "CMakeFiles/bench_fig7_model_comparison.dir/bench_fig7_model_comparison.cpp.o"
  "CMakeFiles/bench_fig7_model_comparison.dir/bench_fig7_model_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
