file(REMOVE_RECURSE
  "CMakeFiles/fgcs_core.dir/analysis.cpp.o"
  "CMakeFiles/fgcs_core.dir/analysis.cpp.o.d"
  "CMakeFiles/fgcs_core.dir/classifier.cpp.o"
  "CMakeFiles/fgcs_core.dir/classifier.cpp.o.d"
  "CMakeFiles/fgcs_core.dir/empirical.cpp.o"
  "CMakeFiles/fgcs_core.dir/empirical.cpp.o.d"
  "CMakeFiles/fgcs_core.dir/estimator.cpp.o"
  "CMakeFiles/fgcs_core.dir/estimator.cpp.o.d"
  "CMakeFiles/fgcs_core.dir/fast_solver.cpp.o"
  "CMakeFiles/fgcs_core.dir/fast_solver.cpp.o.d"
  "CMakeFiles/fgcs_core.dir/predictor.cpp.o"
  "CMakeFiles/fgcs_core.dir/predictor.cpp.o.d"
  "CMakeFiles/fgcs_core.dir/semi_markov.cpp.o"
  "CMakeFiles/fgcs_core.dir/semi_markov.cpp.o.d"
  "CMakeFiles/fgcs_core.dir/sparse_solver.cpp.o"
  "CMakeFiles/fgcs_core.dir/sparse_solver.cpp.o.d"
  "libfgcs_core.a"
  "libfgcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
