# Empty dependencies file for fgcs_core.
# This may be replaced when dependencies are built.
