
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/fgcs_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/fgcs_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/fgcs_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/fgcs_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/empirical.cpp" "src/core/CMakeFiles/fgcs_core.dir/empirical.cpp.o" "gcc" "src/core/CMakeFiles/fgcs_core.dir/empirical.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/fgcs_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/fgcs_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/fast_solver.cpp" "src/core/CMakeFiles/fgcs_core.dir/fast_solver.cpp.o" "gcc" "src/core/CMakeFiles/fgcs_core.dir/fast_solver.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/fgcs_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/fgcs_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/semi_markov.cpp" "src/core/CMakeFiles/fgcs_core.dir/semi_markov.cpp.o" "gcc" "src/core/CMakeFiles/fgcs_core.dir/semi_markov.cpp.o.d"
  "/root/repo/src/core/sparse_solver.cpp" "src/core/CMakeFiles/fgcs_core.dir/sparse_solver.cpp.o" "gcc" "src/core/CMakeFiles/fgcs_core.dir/sparse_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fgcs_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
