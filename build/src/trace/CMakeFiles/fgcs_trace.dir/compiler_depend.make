# Empty compiler generated dependencies file for fgcs_trace.
# This may be replaced when dependencies are built.
