file(REMOVE_RECURSE
  "CMakeFiles/fgcs_trace.dir/machine_trace.cpp.o"
  "CMakeFiles/fgcs_trace.dir/machine_trace.cpp.o.d"
  "CMakeFiles/fgcs_trace.dir/sample.cpp.o"
  "CMakeFiles/fgcs_trace.dir/sample.cpp.o.d"
  "libfgcs_trace.a"
  "libfgcs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
