
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/machine_trace.cpp" "src/trace/CMakeFiles/fgcs_trace.dir/machine_trace.cpp.o" "gcc" "src/trace/CMakeFiles/fgcs_trace.dir/machine_trace.cpp.o.d"
  "/root/repo/src/trace/sample.cpp" "src/trace/CMakeFiles/fgcs_trace.dir/sample.cpp.o" "gcc" "src/trace/CMakeFiles/fgcs_trace.dir/sample.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
