file(REMOVE_RECURSE
  "libfgcs_trace.a"
)
