# Empty dependencies file for fgcs_timeseries.
# This may be replaced when dependencies are built.
