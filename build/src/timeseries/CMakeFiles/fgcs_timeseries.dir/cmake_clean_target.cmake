file(REMOVE_RECURSE
  "libfgcs_timeseries.a"
)
