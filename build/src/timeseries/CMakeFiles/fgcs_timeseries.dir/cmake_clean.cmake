file(REMOVE_RECURSE
  "CMakeFiles/fgcs_timeseries.dir/ar.cpp.o"
  "CMakeFiles/fgcs_timeseries.dir/ar.cpp.o.d"
  "CMakeFiles/fgcs_timeseries.dir/arma.cpp.o"
  "CMakeFiles/fgcs_timeseries.dir/arma.cpp.o.d"
  "CMakeFiles/fgcs_timeseries.dir/frequency_baseline.cpp.o"
  "CMakeFiles/fgcs_timeseries.dir/frequency_baseline.cpp.o.d"
  "CMakeFiles/fgcs_timeseries.dir/ma.cpp.o"
  "CMakeFiles/fgcs_timeseries.dir/ma.cpp.o.d"
  "CMakeFiles/fgcs_timeseries.dir/model.cpp.o"
  "CMakeFiles/fgcs_timeseries.dir/model.cpp.o.d"
  "CMakeFiles/fgcs_timeseries.dir/simple.cpp.o"
  "CMakeFiles/fgcs_timeseries.dir/simple.cpp.o.d"
  "CMakeFiles/fgcs_timeseries.dir/tr_predictor.cpp.o"
  "CMakeFiles/fgcs_timeseries.dir/tr_predictor.cpp.o.d"
  "libfgcs_timeseries.a"
  "libfgcs_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
