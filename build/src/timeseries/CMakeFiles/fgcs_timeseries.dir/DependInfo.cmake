
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/ar.cpp" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/ar.cpp.o" "gcc" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/ar.cpp.o.d"
  "/root/repo/src/timeseries/arma.cpp" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/arma.cpp.o" "gcc" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/arma.cpp.o.d"
  "/root/repo/src/timeseries/frequency_baseline.cpp" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/frequency_baseline.cpp.o" "gcc" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/frequency_baseline.cpp.o.d"
  "/root/repo/src/timeseries/ma.cpp" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/ma.cpp.o" "gcc" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/ma.cpp.o.d"
  "/root/repo/src/timeseries/model.cpp" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/model.cpp.o" "gcc" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/model.cpp.o.d"
  "/root/repo/src/timeseries/simple.cpp" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/simple.cpp.o" "gcc" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/simple.cpp.o.d"
  "/root/repo/src/timeseries/tr_predictor.cpp" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/tr_predictor.cpp.o" "gcc" "src/timeseries/CMakeFiles/fgcs_timeseries.dir/tr_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fgcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fgcs_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
