file(REMOVE_RECURSE
  "CMakeFiles/fgcs_sim.dir/contention.cpp.o"
  "CMakeFiles/fgcs_sim.dir/contention.cpp.o.d"
  "CMakeFiles/fgcs_sim.dir/cpu_scheduler.cpp.o"
  "CMakeFiles/fgcs_sim.dir/cpu_scheduler.cpp.o.d"
  "CMakeFiles/fgcs_sim.dir/event_queue.cpp.o"
  "CMakeFiles/fgcs_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/fgcs_sim.dir/machine.cpp.o"
  "CMakeFiles/fgcs_sim.dir/machine.cpp.o.d"
  "libfgcs_sim.a"
  "libfgcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
