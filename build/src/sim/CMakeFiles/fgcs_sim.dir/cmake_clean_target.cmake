file(REMOVE_RECURSE
  "libfgcs_sim.a"
)
