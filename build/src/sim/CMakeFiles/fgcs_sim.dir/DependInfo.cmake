
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/contention.cpp" "src/sim/CMakeFiles/fgcs_sim.dir/contention.cpp.o" "gcc" "src/sim/CMakeFiles/fgcs_sim.dir/contention.cpp.o.d"
  "/root/repo/src/sim/cpu_scheduler.cpp" "src/sim/CMakeFiles/fgcs_sim.dir/cpu_scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/fgcs_sim.dir/cpu_scheduler.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/fgcs_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/fgcs_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/fgcs_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/fgcs_sim.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fgcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fgcs_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
