# Empty compiler generated dependencies file for fgcs_sim.
# This may be replaced when dependencies are built.
