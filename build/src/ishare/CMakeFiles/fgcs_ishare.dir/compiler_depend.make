# Empty compiler generated dependencies file for fgcs_ishare.
# This may be replaced when dependencies are built.
