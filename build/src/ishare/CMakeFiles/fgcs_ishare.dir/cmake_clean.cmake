file(REMOVE_RECURSE
  "CMakeFiles/fgcs_ishare.dir/gateway.cpp.o"
  "CMakeFiles/fgcs_ishare.dir/gateway.cpp.o.d"
  "CMakeFiles/fgcs_ishare.dir/registry.cpp.o"
  "CMakeFiles/fgcs_ishare.dir/registry.cpp.o.d"
  "CMakeFiles/fgcs_ishare.dir/replication.cpp.o"
  "CMakeFiles/fgcs_ishare.dir/replication.cpp.o.d"
  "CMakeFiles/fgcs_ishare.dir/resource_monitor.cpp.o"
  "CMakeFiles/fgcs_ishare.dir/resource_monitor.cpp.o.d"
  "CMakeFiles/fgcs_ishare.dir/scheduler.cpp.o"
  "CMakeFiles/fgcs_ishare.dir/scheduler.cpp.o.d"
  "CMakeFiles/fgcs_ishare.dir/state_manager.cpp.o"
  "CMakeFiles/fgcs_ishare.dir/state_manager.cpp.o.d"
  "libfgcs_ishare.a"
  "libfgcs_ishare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_ishare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
