
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ishare/gateway.cpp" "src/ishare/CMakeFiles/fgcs_ishare.dir/gateway.cpp.o" "gcc" "src/ishare/CMakeFiles/fgcs_ishare.dir/gateway.cpp.o.d"
  "/root/repo/src/ishare/registry.cpp" "src/ishare/CMakeFiles/fgcs_ishare.dir/registry.cpp.o" "gcc" "src/ishare/CMakeFiles/fgcs_ishare.dir/registry.cpp.o.d"
  "/root/repo/src/ishare/replication.cpp" "src/ishare/CMakeFiles/fgcs_ishare.dir/replication.cpp.o" "gcc" "src/ishare/CMakeFiles/fgcs_ishare.dir/replication.cpp.o.d"
  "/root/repo/src/ishare/resource_monitor.cpp" "src/ishare/CMakeFiles/fgcs_ishare.dir/resource_monitor.cpp.o" "gcc" "src/ishare/CMakeFiles/fgcs_ishare.dir/resource_monitor.cpp.o.d"
  "/root/repo/src/ishare/scheduler.cpp" "src/ishare/CMakeFiles/fgcs_ishare.dir/scheduler.cpp.o" "gcc" "src/ishare/CMakeFiles/fgcs_ishare.dir/scheduler.cpp.o.d"
  "/root/repo/src/ishare/state_manager.cpp" "src/ishare/CMakeFiles/fgcs_ishare.dir/state_manager.cpp.o" "gcc" "src/ishare/CMakeFiles/fgcs_ishare.dir/state_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fgcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fgcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fgcs_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
