
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cli.cpp" "src/util/CMakeFiles/fgcs_util.dir/cli.cpp.o" "gcc" "src/util/CMakeFiles/fgcs_util.dir/cli.cpp.o.d"
  "/root/repo/src/util/fft.cpp" "src/util/CMakeFiles/fgcs_util.dir/fft.cpp.o" "gcc" "src/util/CMakeFiles/fgcs_util.dir/fft.cpp.o.d"
  "/root/repo/src/util/matrix.cpp" "src/util/CMakeFiles/fgcs_util.dir/matrix.cpp.o" "gcc" "src/util/CMakeFiles/fgcs_util.dir/matrix.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/fgcs_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/fgcs_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/fgcs_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/fgcs_util.dir/table.cpp.o.d"
  "/root/repo/src/util/time.cpp" "src/util/CMakeFiles/fgcs_util.dir/time.cpp.o" "gcc" "src/util/CMakeFiles/fgcs_util.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
