file(REMOVE_RECURSE
  "CMakeFiles/fgcs_util.dir/cli.cpp.o"
  "CMakeFiles/fgcs_util.dir/cli.cpp.o.d"
  "CMakeFiles/fgcs_util.dir/fft.cpp.o"
  "CMakeFiles/fgcs_util.dir/fft.cpp.o.d"
  "CMakeFiles/fgcs_util.dir/matrix.cpp.o"
  "CMakeFiles/fgcs_util.dir/matrix.cpp.o.d"
  "CMakeFiles/fgcs_util.dir/stats.cpp.o"
  "CMakeFiles/fgcs_util.dir/stats.cpp.o.d"
  "CMakeFiles/fgcs_util.dir/table.cpp.o"
  "CMakeFiles/fgcs_util.dir/table.cpp.o.d"
  "CMakeFiles/fgcs_util.dir/time.cpp.o"
  "CMakeFiles/fgcs_util.dir/time.cpp.o.d"
  "libfgcs_util.a"
  "libfgcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
