
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cpp" "src/workload/CMakeFiles/fgcs_workload.dir/catalog.cpp.o" "gcc" "src/workload/CMakeFiles/fgcs_workload.dir/catalog.cpp.o.d"
  "/root/repo/src/workload/characterize.cpp" "src/workload/CMakeFiles/fgcs_workload.dir/characterize.cpp.o" "gcc" "src/workload/CMakeFiles/fgcs_workload.dir/characterize.cpp.o.d"
  "/root/repo/src/workload/noise.cpp" "src/workload/CMakeFiles/fgcs_workload.dir/noise.cpp.o" "gcc" "src/workload/CMakeFiles/fgcs_workload.dir/noise.cpp.o.d"
  "/root/repo/src/workload/profile.cpp" "src/workload/CMakeFiles/fgcs_workload.dir/profile.cpp.o" "gcc" "src/workload/CMakeFiles/fgcs_workload.dir/profile.cpp.o.d"
  "/root/repo/src/workload/replay.cpp" "src/workload/CMakeFiles/fgcs_workload.dir/replay.cpp.o" "gcc" "src/workload/CMakeFiles/fgcs_workload.dir/replay.cpp.o.d"
  "/root/repo/src/workload/trace_generator.cpp" "src/workload/CMakeFiles/fgcs_workload.dir/trace_generator.cpp.o" "gcc" "src/workload/CMakeFiles/fgcs_workload.dir/trace_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fgcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fgcs_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
