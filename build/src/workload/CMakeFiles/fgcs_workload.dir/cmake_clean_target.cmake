file(REMOVE_RECURSE
  "libfgcs_workload.a"
)
