file(REMOVE_RECURSE
  "CMakeFiles/fgcs_workload.dir/catalog.cpp.o"
  "CMakeFiles/fgcs_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/fgcs_workload.dir/characterize.cpp.o"
  "CMakeFiles/fgcs_workload.dir/characterize.cpp.o.d"
  "CMakeFiles/fgcs_workload.dir/noise.cpp.o"
  "CMakeFiles/fgcs_workload.dir/noise.cpp.o.d"
  "CMakeFiles/fgcs_workload.dir/profile.cpp.o"
  "CMakeFiles/fgcs_workload.dir/profile.cpp.o.d"
  "CMakeFiles/fgcs_workload.dir/replay.cpp.o"
  "CMakeFiles/fgcs_workload.dir/replay.cpp.o.d"
  "CMakeFiles/fgcs_workload.dir/trace_generator.cpp.o"
  "CMakeFiles/fgcs_workload.dir/trace_generator.cpp.o.d"
  "libfgcs_workload.a"
  "libfgcs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
