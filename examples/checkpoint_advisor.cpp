// Proactive checkpointing driven by availability prediction.
//
// The paper motivates TR prediction with proactive job management (e.g.
// turning checkpointing on adaptively, refs [20][31]). This example runs the
// same long job under three policies on a flaky machine and prints the
// trade-off: restarts lose work, fixed checkpointing pays constant overhead,
// TR-adaptive checkpointing concentrates the overhead where the predictor
// sees risk.
//
// Build & run:  ./checkpoint_advisor
#include <cstdio>

#include "fgcs.hpp"

int main() {
  using namespace fgcs;

  WorkloadParams flaky;
  flaky.sampling_period = 60;
  flaky.spike_rate_per_hour = 1.2;
  flaky.spike_transient_frac = 0.3;
  flaky.reboot_rate_per_day = 1.0;
  const MachineTrace trace = TraceGenerator(flaky, 21).generate("flaky-0", 21);

  Thresholds thresholds;
  Gateway gateway(trace, thresholds);
  Registry registry;
  registry.publish(gateway);
  SchedulerConfig config;
  config.retry_delay = 300;
  const JobScheduler scheduler(registry, config);

  const GuestJobSpec job{.job_id = "monte-carlo-sim",
                         .cpu_seconds = 6.0 * 3600.0,
                         .mem_mb = 128};
  const SimTime submit = 15 * kSecondsPerDay + 8 * kSecondsPerHour;
  const SimTime give_up = submit + 5 * kSecondsPerDay;

  CheckpointConfig checkpoint;
  checkpoint.cost_seconds = 90;       // writing one checkpoint
  checkpoint.fixed_interval = 1800;   // fixed policy: every 30 min
  checkpoint.tr_low = 0.85;           // adaptive policy knobs
  checkpoint.short_interval = 300;
  checkpoint.long_interval = 5400;

  std::printf("job: %.1f CPU-hours on %s, submitted d15 08:00\n\n",
              job.cpu_seconds / 3600.0, trace.machine_id().c_str());

  struct Policy {
    const char* label;
    CheckpointMode mode;
  };
  for (const Policy policy : {Policy{"oblivious restart", CheckpointMode::kNone},
                              Policy{"fixed 30min", CheckpointMode::kFixed},
                              Policy{"TR-adaptive", CheckpointMode::kAdaptive}}) {
    const JobOutcome outcome =
        scheduler.run_job(job, submit, give_up, policy.mode, checkpoint);
    std::printf("%-18s completed=%s  response=%6.2f h  failures=%d  "
                "checkpoints=%d\n",
                policy.label, outcome.completed ? "yes" : "no ",
                static_cast<double>(outcome.response_time()) / kSecondsPerHour,
                outcome.failures, outcome.checkpoints_taken);
  }

  // Show the advisor's raw signal: predicted TR for the next hour, sampled
  // through the submission day.
  const StateManager manager(trace);
  std::printf("\npredicted TR for the next hour, through day 15:\n");
  for (SimTime hour = 6; hour <= 20; hour += 2) {
    const SimTime now = 15 * kSecondsPerDay + hour * kSecondsPerHour;
    const Prediction p = manager.predict_for_job(now, kSecondsPerHour);
    const char* advice = p.temporal_reliability < checkpoint.tr_low
                             ? "checkpoint every 5 min"
                             : "checkpoint every 90 min";
    std::printf("  %02lld:00  TR=%.4f  -> %s\n", static_cast<long long>(hour),
                p.temporal_reliability, advice);
  }
  return 0;
}
