// Interactive tour of the §3.2 contention study: where do Th1 and Th2 come
// from? Runs the scheduler simulation for a few host loads and priorities
// and prints the measured host slowdown, then the memory-thrash experiment.
//
// Build & run:  ./contention_study
#include <cstdio>

#include "fgcs.hpp"

int main() {
  using namespace fgcs;

  std::printf("host CPU usage reduction caused by a CPU-bound guest\n");
  std::printf("(single host process; 'noticeable' slowdown is >5%%)\n\n");
  std::printf("  %-8s %-14s %-14s\n", "L_H", "guest nice 0", "guest nice 19");

  for (const double load : {0.10, 0.20, 0.30, 0.50, 0.60, 0.70, 0.90}) {
    double reductions[2];
    int slot = 0;
    for (const int nice : {0, 19}) {
      ContentionStudy study({}, 2006);
      reductions[slot++] = study.run(load, 1, nice, 240.0).reduction_rate;
    }
    std::printf("  %5.0f%%   %6.1f%% %s     %6.1f%% %s\n", 100.0 * load,
                100.0 * reductions[0], reductions[0] > 0.05 ? "(!)" : "   ",
                100.0 * reductions[1], reductions[1] > 0.05 ? "(!)" : "   ");
  }
  std::printf("\n(!) marks noticeable slowdown. The lowest flagged L_H per\n"
              "column are the availability thresholds: Th1 (renice) and\n"
              "Th2 (terminate) — the paper's testbed measured 20%% and 60%%.\n");

  std::printf("\nmemory contention (384 MB Unix machine, paper Sec 3.2.2):\n");
  for (const auto& guest : spec_guest_catalog()) {
    MemoryContentionSetup setup;
    setup.host_cpu_duty = 0.3;
    setup.host_mem_mb = 213;  // the largest Musbus workload
    setup.guest_mem_mb = guest.working_set_mb;
    const MemoryContentionResult r = run_memory_contention(setup, {}, 2006);
    std::printf("  guest %-8s (%3d MB): %s\n", guest.name.c_str(),
                guest.working_set_mb,
                r.thrashing ? "THRASHES - kill guest (S4), renicing won't help"
                            : "fits - CPU thresholds apply");
  }
  return 0;
}
