// Quickstart: predict a machine's availability for tomorrow morning.
//
//   1. Obtain a monitored history (here: 30 synthetic days of a student-lab
//      machine — in a deployment this comes from the resource monitor).
//   2. Ask the predictor for the temporal reliability of a job window.
//   3. Read the result: TR plus the per-failure-mode absorption split.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "fgcs.hpp"

int main() {
  using namespace fgcs;

  // --- 1. a month of monitored history ------------------------------------
  WorkloadParams workload;
  workload.sampling_period = 60;  // one sample per minute
  TraceGenerator generator(workload, /*seed=*/7);
  const MachineTrace history = generator.generate("lab-42", /*days=*/30);

  std::printf("machine %s: %lld days of history, uptime %.2f%%, mean load %.1f%%\n",
              history.machine_id().c_str(),
              static_cast<long long>(history.day_count()),
              100.0 * history.uptime_fraction(), 100.0 * history.mean_load());

  // --- 2. predict tomorrow, 9:00-12:00 ------------------------------------
  AvailabilityPredictor predictor;  // paper defaults: Th1=20%, Th2=60%
  const PredictionRequest request{
      .target_day = history.day_count(),  // "tomorrow"
      .window = {.start_of_day = 9 * kSecondsPerHour,
                 .length = 3 * kSecondsPerHour}};
  const Prediction p = predictor.predict(history, request);

  // --- 3. inspect ----------------------------------------------------------
  std::printf("\nwindow 09:00 +3h (initial state %s, %zu training days):\n",
              to_string(p.initial_state), p.training_days_used);
  std::printf("  temporal reliability TR = %.4f\n", p.temporal_reliability);
  std::printf("  P(CPU contention kill, S3)   = %.4f\n", p.p_absorb[0]);
  std::printf("  P(memory thrash kill,  S4)   = %.4f\n", p.p_absorb[1]);
  std::printf("  P(machine revocation,  S5)   = %.4f\n", p.p_absorb[2]);
  std::printf("  prediction cost: %.2f ms estimate + %.2f ms solve\n",
              1e3 * p.estimate_seconds, 1e3 * p.solve_seconds);

  // Sweep a few window lengths to see reliability decay.
  std::printf("\nTR by window length (start 09:00):\n");
  for (SimTime hours = 1; hours <= 10; ++hours) {
    const Prediction sweep = predictor.predict(
        history, {.target_day = history.day_count(),
                  .window = {.start_of_day = 9 * kSecondsPerHour,
                             .length = hours * kSecondsPerHour}});
    std::printf("  %2lld h: TR = %.4f\n", static_cast<long long>(hours),
                sweep.temporal_reliability);
  }
  return 0;
}
