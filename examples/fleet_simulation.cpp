// Discrete-event simulation of a live ishare deployment (paper Fig. 2):
// per-machine resource monitors tick every minute, clients submit jobs at
// random times through the day, and the TR-driven scheduler places each one.
//
// This drives the same daemons the paper describes — gateway, resource
// monitor, state manager — on one EventQueue clock, and prints a day's
// activity log plus end-of-day statistics.
//
// All TR queries — the scheduler's batched fleet probes and the gateways'
// adaptive-checkpoint probes — go through one shared PredictionService, so
// the end-of-day report can show how much of the day's prediction traffic
// was served from the memoized (Q, H) cache.
//
// Build & run:  ./fleet_simulation
#include <cstdio>
#include <memory>
#include <vector>

#include "fgcs.hpp"

int main() {
  using namespace fgcs;

  constexpr SimTime kPeriod = 60;
  constexpr int kHistoryDays = 14;
  constexpr int kMachines = 3;

  // Fleet: two weeks of history per machine; today (day 14) is simulated.
  WorkloadParams params;
  params.sampling_period = kPeriod;
  const std::vector<MachineTrace> traces =
      generate_fleet(params, 2006, kMachines, kHistoryDays + 1, "node");

  Thresholds thresholds;
  const auto service = std::make_shared<PredictionService>();
  std::vector<std::unique_ptr<SimulatedMachine>> machines;
  std::vector<std::unique_ptr<ResourceMonitor>> monitors;
  std::vector<Gateway> gateways;
  Registry registry;
  for (const MachineTrace& trace : traces) {
    machines.push_back(make_replay_machine(trace, thresholds));
    monitors.push_back(std::make_unique<ResourceMonitor>(*machines.back()));
    gateways.emplace_back(trace, thresholds, EstimatorConfig{}, service);
  }
  for (Gateway& g : gateways) registry.publish(g);
  const JobScheduler scheduler(registry, SchedulerConfig{}, service);

  EventQueue clock;
  const SimTime day_start = kHistoryDays * kSecondsPerDay;
  const SimTime day_end = day_start + kSecondsPerDay;

  // Monitors tick once per sampling period, all day.
  std::function<void()> monitor_tick = [&] {
    for (auto& monitor : monitors) monitor->on_tick(clock.now());
    if (clock.now() + kPeriod <= day_end)
      clock.schedule_in(kPeriod, monitor_tick);
  };
  clock.schedule_at(day_start + kPeriod, monitor_tick);

  // Poisson-ish job arrivals, denser during working hours.
  struct JobRecord {
    SimTime submitted;
    JobOutcome outcome;
  };
  std::vector<JobRecord> records;
  Rng rng(7);
  SimTime next_arrival = day_start + 7 * kSecondsPerHour;
  while (next_arrival < day_start + 20 * kSecondsPerHour) {
    const SimTime at = next_arrival;
    clock.schedule_at(at, [&, at] {
      const GuestJobSpec job{
          .job_id = "job" + std::to_string(records.size()),
          .cpu_seconds = rng.uniform(0.5, 2.5) * 3600.0,
          .mem_mb = static_cast<int>(rng.uniform_int(64, 160))};
      Gateway* chosen = scheduler.select_machine(
          at, static_cast<SimTime>(job.cpu_seconds * 1.6));
      const JobOutcome outcome =
          scheduler.run_job(job, at, day_end + kSecondsPerDay);
      std::printf("[%s] %-6s %.1f CPU-h -> %-7s %s in %.2f h (%d attempt%s)\n",
                  format_sim_time(at).c_str(), job.job_id.c_str(),
                  job.cpu_seconds / 3600.0,
                  chosen ? chosen->machine_id().c_str() : "none",
                  outcome.completed ? "done" : "gave up",
                  static_cast<double>(outcome.response_time()) / kSecondsPerHour,
                  outcome.attempts, outcome.attempts == 1 ? "" : "s");
      records.push_back({at, outcome});
    });
    next_arrival += static_cast<SimTime>(rng.exponential(90.0 * 60.0));
  }

  clock.run_until(day_end);

  // End-of-day report.
  std::size_t completed = 0;
  double total_response_h = 0.0;
  int failures = 0;
  for (const JobRecord& record : records) {
    if (record.outcome.completed) {
      ++completed;
      total_response_h +=
          static_cast<double>(record.outcome.response_time()) / kSecondsPerHour;
    }
    failures += record.outcome.failures;
  }
  std::printf("\n=== day %d summary ===\n", kHistoryDays);
  std::printf("jobs submitted : %zu\n", records.size());
  std::printf("jobs completed : %zu\n", completed);
  std::printf("guest failures : %d (restarted transparently)\n", failures);
  if (completed > 0)
    std::printf("mean response  : %.2f h\n",
                total_response_h / static_cast<double>(completed));
  for (std::size_t m = 0; m < monitors.size(); ++m)
    std::printf("monitor %s: %zu samples, overhead %.2f%% CPU\n",
                traces[m].machine_id().c_str(), monitors[m]->samples_taken(),
                100.0 * monitors[m]->overhead_fraction());

  const ServiceStats stats = service->stats();
  const double hit_rate =
      stats.lookups == 0
          ? 0.0
          : 100.0 * static_cast<double>(stats.hits + stats.partial_hits) /
                static_cast<double>(stats.lookups);
  std::printf(
      "prediction svc : %llu queries (%llu batches, max %llu), "
      "%.1f%% cache hits, %.1f ms estimating + %.1f ms solving\n",
      static_cast<unsigned long long>(stats.lookups),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.max_batch), hit_rate,
      1e3 * stats.estimate_seconds, 1e3 * stats.solve_seconds);
  std::printf(
      "thread pool    : %u worker%s (%s), %llu tasks, %llu steals, "
      "queue high-water %llu, %.1f%% busy\n",
      stats.pool.workers, stats.pool.workers == 1 ? "" : "s",
      stats.pool.started ? "started" : "never started",
      static_cast<unsigned long long>(stats.pool.tasks_executed),
      static_cast<unsigned long long>(stats.pool.steals),
      static_cast<unsigned long long>(stats.pool.queue_depth_high_water),
      100.0 * stats.pool.utilization());

  // The same numbers (plus scheduler/gateway series) as a scrape-ready
  // Prometheus exposition — what tools/fgcs_metrics prints. Rendered while
  // the service is alive so its attached instruments fold into the totals.
  std::printf("\n=== metrics exposition (DESIGN.md §8) ===\n%s",
              MetricsRegistry::global().render_text().c_str());
  return 0;
}
