// Reliability-aware job scheduling across an ishare fleet (paper Fig. 2).
//
// A client submits compute jobs; the scheduler queries every published
// gateway for its temporal reliability over the job's expected window, runs
// the job on the best machine, and restarts it elsewhere after failures.
// The example contrasts the TR-driven choice with a naive fixed choice.
//
// Build & run:  ./job_scheduling
#include <cstdio>
#include <vector>

#include "fgcs.hpp"

int main() {
  using namespace fgcs;

  // A small fleet with very different temperaments.
  WorkloadParams quiet;
  quiet.sampling_period = 60;
  quiet.session_rate_per_hour = 2.0;
  quiet.spike_rate_per_hour = 0.1;
  quiet.reboot_rate_per_day = 0.1;

  WorkloadParams busy = quiet;
  busy.session_rate_per_hour = 12.0;
  busy.spike_rate_per_hour = 2.5;
  busy.reboot_rate_per_day = 1.2;

  std::vector<MachineTrace> traces;
  traces.push_back(TraceGenerator(quiet, 11).generate("calm-0", 14));
  traces.push_back(TraceGenerator(busy, 12).generate("busy-0", 14));
  traces.push_back(TraceGenerator(busy, 13).generate("busy-1", 14));

  Thresholds thresholds;  // paper defaults
  std::vector<Gateway> gateways;
  gateways.reserve(traces.size());
  for (const MachineTrace& trace : traces) gateways.emplace_back(trace, thresholds);

  Registry registry;
  for (Gateway& g : gateways) registry.publish(g);
  std::printf("published %zu machines\n", registry.size());

  const SimTime submit = 12 * kSecondsPerDay + 9 * kSecondsPerHour;
  const SimTime duration = 4 * kSecondsPerHour;

  std::printf("\nreliability quotes for a 4h window at d12 09:00:\n");
  for (Gateway* g : registry.gateways())
    std::printf("  %-8s TR = %.4f\n", g->machine_id().c_str(),
                g->query_reliability(submit, duration));

  const JobScheduler scheduler(registry);
  const GuestJobSpec job{.job_id = "render-frame-batch",
                         .cpu_seconds = 2.5 * 3600.0,
                         .mem_mb = 150};

  const JobOutcome outcome =
      scheduler.run_job(job, submit, submit + kSecondsPerDay);
  std::printf("\nTR-driven scheduling:\n");
  std::printf("  completed: %s after %d attempt(s), %d failure(s)\n",
              outcome.completed ? "yes" : "no", outcome.attempts,
              outcome.failures);
  std::printf("  response time: %.2f h\n",
              static_cast<double>(outcome.response_time()) / kSecondsPerHour);
  std::printf("  machines used:");
  for (const std::string& id : outcome.machines_used)
    std::printf(" %s", id.c_str());
  std::printf("\n");

  // Naive baseline: always run on the first published machine.
  Gateway* first = registry.gateways().front();
  const ExecutionResult naive =
      first->execute(job, submit, submit + kSecondsPerDay);
  std::printf("\nnaive choice (%s): %s\n", first->machine_id().c_str(),
              naive.completed ? "completed" : "failed/incomplete");
  if (naive.completed)
    std::printf("  response time: %.2f h\n",
                static_cast<double>(naive.end_time - submit) / kSecondsPerHour);
  else if (naive.failure)
    std::printf("  lost to %s after %.2f h\n", to_string(*naive.failure),
                static_cast<double>(naive.end_time - submit) / kSecondsPerHour);
  return 0;
}
