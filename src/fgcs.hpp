// Umbrella header for the fgcs library.
//
// Reproduction of "Resource Availability Prediction in Fine-Grained Cycle
// Sharing Systems" (HPDC 2006). See README.md for a tour and DESIGN.md for
// the architecture and experiment map.
#pragma once

// Core: the paper's contribution.
#include "core/analysis.hpp"      // MTTF, failure modes, confidence intervals
#include "core/classifier.hpp"      // samples → 5-state availability model
#include "core/empirical.hpp"       // empirical TR, evaluation metrics
#include "core/estimator.hpp"       // Q/H estimation from history logs
#include "core/fast_solver.hpp"     // O(n log^2 n) FFT renewal solver
#include "core/incremental_estimator.hpp"  // O(changed-day) sliding (Q,H)
#include "core/predictor.hpp"       // the public prediction API
#include "core/prediction_service.hpp"  // batched + memoized fleet serving
#include "core/semi_markov.hpp"     // discrete-time SMP + dense solver
#include "core/sparse_solver.hpp"   // Eq. 3 sparsity-optimized TR solver
#include "core/states.hpp"
#include "core/thresholds.hpp"

// Substrates.
#include "ishare/gateway.hpp"
#include "net/client.hpp"       // networked prediction serving (client)
#include "net/server.hpp"       // networked prediction serving (server)
#include "net/wire.hpp"         // framed binary wire protocol
#include "ishare/registry.hpp"
#include "ishare/replication.hpp"
#include "ishare/replication_planner.hpp"  // availability-target planning
#include "ishare/resource_monitor.hpp"
#include "ishare/scheduler.hpp"
#include "ishare/state_manager.hpp"
#include "sim/contention.hpp"
#include "sim/cpu_scheduler.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "timeseries/ar.hpp"
#include "timeseries/arma.hpp"
#include "timeseries/frequency_baseline.hpp"
#include "timeseries/ma.hpp"
#include "timeseries/model.hpp"
#include "timeseries/simple.hpp"
#include "timeseries/tr_predictor.hpp"
#include "trace/machine_trace.hpp"
#include "trace/sample.hpp"
#include "trace/trace_store.hpp"    // streaming ingest day-boundary rollup
#include "trace/window.hpp"
#include "workload/catalog.hpp"
#include "workload/characterize.hpp"
#include "workload/noise.hpp"
#include "workload/preemption.hpp"  // transient-VM preemption traces
#include "workload/profile.hpp"
#include "workload/replay.hpp"
#include "workload/trace_generator.hpp"

// Utilities.
#include "util/failpoint.hpp"
#include "util/fft.hpp"
#include "util/metrics.hpp"     // counters/gauges/histograms + render_text
#include "util/parallel.hpp"
#include "util/trace_span.hpp"  // FGCS_SPAN + the JSONL trace log
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"
