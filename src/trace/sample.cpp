#include "trace/sample.hpp"

#include <algorithm>
#include <cmath>

namespace fgcs {

std::uint8_t pack_load_pct(double load_fraction) {
  const double pct = std::round(load_fraction * 100.0);
  return static_cast<std::uint8_t>(std::clamp(pct, 0.0, 100.0));
}

std::uint16_t pack_mem_mb(double mem_mb) {
  const double mb = std::round(mem_mb);
  return static_cast<std::uint16_t>(std::clamp(mb, 0.0, 65535.0));
}

}  // namespace fgcs
