// The unit of observation: one resource-monitor sample.
//
// The paper's monitor records, every 6 seconds, the observable parameters a
// guest-side system can obtain without privileges (paper §3.1): total host
// CPU usage, free physical memory, and — implicitly, via the heartbeat
// timestamp — whether the machine is up at all. Samples are stored packed
// (4 bytes) because traces span months at 14 400 samples per day.
#pragma once

#include <cstdint>

namespace fgcs {

struct ResourceSample {
  /// Total CPU usage of all host processes, percent of one CPU, 0..100.
  std::uint8_t host_load_pct = 0;
  /// Bit 0: machine reachable (monitor heartbeat fresh). Other bits reserved.
  std::uint8_t flags = kUpFlag;
  /// Free physical memory in MiB (saturating at 65535).
  std::uint16_t free_mem_mb = 0;

  static constexpr std::uint8_t kUpFlag = 0x01;

  bool up() const { return (flags & kUpFlag) != 0; }
  void set_up(bool value) {
    flags = static_cast<std::uint8_t>(value ? (flags | kUpFlag)
                                            : (flags & ~kUpFlag));
  }

  /// Host load as a fraction in [0, 1].
  double load() const { return host_load_pct / 100.0; }

  friend bool operator==(const ResourceSample&, const ResourceSample&) = default;
};

static_assert(sizeof(ResourceSample) == 4, "samples must stay packed");

/// Clamps and rounds a fractional load into the packed percent field.
std::uint8_t pack_load_pct(double load_fraction);

/// Clamps a memory amount (MiB) into the packed field.
std::uint16_t pack_mem_mb(double mem_mb);

}  // namespace fgcs
