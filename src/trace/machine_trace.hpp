// A machine's monitored history: contiguous days of packed resource samples.
//
// This is the on-disk/in-memory form of the paper's "history logs collected
// by monitoring the host resource usages on a machine" (§4.2). The estimator
// reads clock-time window slices of it; the evaluation harness splits it into
// training and test day ranges.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/sample.hpp"
#include "trace/window.hpp"
#include "util/time.hpp"

namespace fgcs {

class MachineTrace {
 public:
  /// `sampling_period` is the monitor period in seconds (paper: 6 s) and must
  /// divide 86 400. `total_mem_mb` is the machine's physical memory.
  MachineTrace(std::string machine_id, Calendar calendar,
               SimTime sampling_period, int total_mem_mb);

  const std::string& machine_id() const { return machine_id_; }
  const Calendar& calendar() const { return calendar_; }
  SimTime sampling_period() const { return sampling_period_; }
  int total_mem_mb() const { return total_mem_mb_; }

  std::size_t samples_per_day() const {
    return static_cast<std::size_t>(kSecondsPerDay / sampling_period_);
  }
  std::int64_t day_count() const {
    return static_cast<std::int64_t>(days_.size());
  }

  /// Appends one day of samples; the vector must hold samples_per_day() items.
  void append_day(std::vector<ResourceSample> samples);

  DayType day_type(std::int64_t day) const { return calendar_.day_type(day); }

  const ResourceSample& at(std::int64_t day, std::size_t index) const;

  /// Sample covering the absolute instant `t`.
  const ResourceSample& at_time(SimTime t) const;

  /// True if the whole window anchored on `day` lies inside recorded data
  /// (a midnight-wrapping window needs day+1 recorded too).
  bool window_in_range(std::int64_t day, const TimeWindow& window) const;

  /// Copies the window's samples (w.steps(sampling_period()) of them),
  /// following the wrap into the next day when needed.
  std::vector<ResourceSample> window_samples(std::int64_t day,
                                             const TimeWindow& window) const;

  /// A new trace holding days [first_day, last_day) of this one. The slice
  /// keeps the original calendar alignment by shifting the epoch day of
  /// week, so day types are preserved (slice(5, …) of a Monday-epoch trace
  /// starts on a Saturday).
  MachineTrace slice(std::int64_t first_day, std::int64_t last_day) const;

  /// Day indices of the given type within [first_day, last_day), ascending.
  std::vector<std::int64_t> days_of_type(DayType type, std::int64_t first_day,
                                         std::int64_t last_day) const;

  /// The most recent (up to) `n` days of `type` strictly before `before_day`,
  /// ascending. This is the paper's "most recent N weekdays (weekends)".
  std::vector<std::int64_t> recent_days_of_type(DayType type,
                                                std::int64_t before_day,
                                                std::size_t n) const;

  /// Fraction of samples with the machine up, over all recorded days.
  double uptime_fraction() const;

  /// Mean host load (fraction) over up samples.
  double mean_load() const;

  // --- serialization -------------------------------------------------------
  void save(std::ostream& os) const;
  static MachineTrace load(std::istream& is);
  void save_file(const std::string& path) const;
  static MachineTrace load_file(const std::string& path);

  /// Day dump as CSV (second_of_day, load_pct, free_mem_mb, up).
  void write_day_csv(std::ostream& os, std::int64_t day) const;

 private:
  std::string machine_id_;
  Calendar calendar_;
  SimTime sampling_period_;
  int total_mem_mb_;
  std::vector<std::vector<ResourceSample>> days_;
};

}  // namespace fgcs
