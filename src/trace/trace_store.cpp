#include "trace/trace_store.hpp"

#include <utility>

#include "util/failpoint.hpp"

namespace fgcs {

namespace {

void validate(const MachineSpec& spec) {
  if (spec.machine_id.empty())
    throw DataError("ingest: machine id must be non-empty");
  if (spec.epoch_day_of_week < 0 || spec.epoch_day_of_week > 6)
    throw DataError("ingest: epoch day of week out of range");
  if (spec.sampling_period < 1 || kSecondsPerDay % spec.sampling_period != 0)
    throw DataError("ingest: sampling period must divide 86400");
  if (spec.total_mem_mb < 1)
    throw DataError("ingest: total memory must be positive");
}

void require_same_spec(const MachineSpec& have, const MachineSpec& got) {
  if (have.epoch_day_of_week != got.epoch_day_of_week ||
      have.sampling_period != got.sampling_period ||
      have.total_mem_mb != got.total_mem_mb)
    throw DataError("ingest: machine spec for '" + got.machine_id +
                    "' contradicts its registration");
}

}  // namespace

TraceStore::TraceStore(TraceStoreConfig config, DayClosedCallback on_day_closed)
    : config_(config), on_day_closed_(std::move(on_day_closed)) {
  FGCS_REQUIRE(config_.retention_days >= 0);
}

TraceStore::Machine& TraceStore::resolve(const MachineSpec& spec) {
  validate(spec);
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = machines_.find(spec.machine_id);
  if (it != machines_.end()) {
    require_same_spec(it->second->spec, spec);
    return *it->second;
  }
  auto machine = std::make_unique<Machine>();
  machine->spec = spec;
  machine->trace = std::make_shared<const MachineTrace>(
      spec.machine_id, Calendar(spec.epoch_day_of_week), spec.sampling_period,
      spec.total_mem_mb);
  machine->buffer.reserve(machine->trace->samples_per_day());
  return *machines_.emplace(spec.machine_id, std::move(machine)).first->second;
}

const TraceStore::Machine* TraceStore::find(
    const std::string& machine_id) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = machines_.find(machine_id);
  return it == machines_.end() ? nullptr : it->second.get();
}

void TraceStore::register_machine(const MachineSpec& spec) { resolve(spec); }

void TraceStore::adopt_trace(MachineTrace trace) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  if (machines_.find(trace.machine_id()) != machines_.end())
    throw DataError("ingest: machine '" + trace.machine_id() +
                    "' already exists");
  auto machine = std::make_unique<Machine>();
  machine->spec = MachineSpec{
      .machine_id = trace.machine_id(),
      .epoch_day_of_week = trace.calendar().epoch_day_of_week(),
      .sampling_period = trace.sampling_period(),
      .total_mem_mb = trace.total_mem_mb()};
  machine->closed_days = trace.day_count();
  machine->buffer.reserve(trace.samples_per_day());
  machine->trace = std::make_shared<const MachineTrace>(std::move(trace));
  const std::string id = machine->spec.machine_id;
  machines_.emplace(id, std::move(machine));
}

void TraceStore::close_day(Machine& machine, AppendResult& result) {
  if (FGCS_FAILPOINT("ingest.rollup.fail"))
    throw RollupError("injected rollup failure (ingest.rollup.fail)");
  const MachineTrace& current = *machine.trace;
  const bool retire = config_.retention_days > 0 &&
                      current.day_count() >= config_.retention_days;
  MachineTrace next =
      retire ? current.slice(1, current.day_count()) : current;
  next.append_day(std::move(machine.buffer));
  machine.buffer = {};
  machine.buffer.reserve(next.samples_per_day());
  machine.trace = std::make_shared<const MachineTrace>(std::move(next));
  const std::int64_t closed = machine.closed_days++;
  std::int64_t retired = -1;
  if (retire) retired = machine.first_day_id++;
  ++result.days_closed;
  if (retire) ++result.days_retired;
  if (on_day_closed_)
    on_day_closed_(DayClosedEvent{.machine_id = machine.spec.machine_id,
                                  .trace = machine.trace,
                                  .first_day_id = machine.first_day_id,
                                  .closed_day = closed,
                                  .retired_day = retired});
}

AppendResult TraceStore::append(const MachineSpec& spec,
                                std::uint64_t first_sample_index,
                                std::span<const ResourceSample> samples) {
  FGCS_REQUIRE(!samples.empty());
  Machine& machine = resolve(spec);
  const std::lock_guard<std::mutex> lock(machine.mutex);
  const std::size_t per_day = machine.trace->samples_per_day();
  AppendResult result;
  std::uint64_t next =
      static_cast<std::uint64_t>(machine.closed_days) * per_day +
      machine.buffer.size();
  if (first_sample_index > next)
    throw DataError("ingest: append starts at index " +
                    std::to_string(first_sample_index) + " but machine '" +
                    spec.machine_id + "' expects " + std::to_string(next) +
                    " — sample gaps cannot be represented");
  // A previous close may have thrown (e.g. an injected rollup failure)
  // after a full day was buffered; its samples dedup as duplicates on the
  // retry, so the `== per_day` trigger below can never fire for them again.
  // Retry the close up front — `next` is invariant under it.
  if (machine.buffer.size() == per_day) close_day(machine, result);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const std::uint64_t index = first_sample_index + i;
    if (index < next) {
      ++result.duplicates;
      continue;
    }
    machine.buffer.push_back(samples[i]);
    ++result.accepted;
    ++next;
    if (machine.buffer.size() == per_day) close_day(machine, result);
  }
  result.next_index = next;
  return result;
}

std::shared_ptr<const MachineTrace> TraceStore::snapshot(
    const std::string& machine_id) const {
  const Machine* machine = find(machine_id);
  if (machine == nullptr) return nullptr;
  const std::lock_guard<std::mutex> lock(machine->mutex);
  return machine->trace;
}

std::int64_t TraceStore::first_day_id(const std::string& machine_id) const {
  const Machine* machine = find(machine_id);
  if (machine == nullptr)
    throw DataError("ingest: unknown machine '" + machine_id + "'");
  const std::lock_guard<std::mutex> lock(machine->mutex);
  return machine->first_day_id;
}

std::uint64_t TraceStore::next_index(const std::string& machine_id) const {
  const Machine* machine = find(machine_id);
  if (machine == nullptr)
    throw DataError("ingest: unknown machine '" + machine_id + "'");
  const std::lock_guard<std::mutex> lock(machine->mutex);
  return static_cast<std::uint64_t>(machine->closed_days) *
             machine->trace->samples_per_day() +
         machine->buffer.size();
}

std::size_t TraceStore::buffered_samples(const std::string& machine_id) const {
  const Machine* machine = find(machine_id);
  if (machine == nullptr)
    throw DataError("ingest: unknown machine '" + machine_id + "'");
  const std::lock_guard<std::mutex> lock(machine->mutex);
  return machine->buffer.size();
}

std::size_t TraceStore::machine_count() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return machines_.size();
}

std::vector<std::string> TraceStore::machine_ids() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::string> ids;
  ids.reserve(machines_.size());
  for (const auto& [id, machine] : machines_) ids.push_back(id);
  return ids;
}

}  // namespace fgcs
