// Prediction time windows.
//
// A window is anchored at a second-of-day and has a length; the paper sweeps
// start times 0:00–23:00 and lengths 1–10 hours. Windows may cross midnight
// (start 23:00 + 10 h); the trace accessors handle the wrap by indexing into
// the following day.
#pragma once

#include <string>

#include "util/error.hpp"
#include "util/time.hpp"

namespace fgcs {

struct TimeWindow {
  /// Window start, seconds after midnight, in [0, 86400).
  SimTime start_of_day = 0;
  /// Window length in seconds; must be positive.
  SimTime length = kSecondsPerHour;

  SimTime end_of_day() const { return start_of_day + length; }

  /// True if the window extends past midnight into the next day.
  bool wraps_midnight() const { return end_of_day() > kSecondsPerDay; }

  /// Number of discretization steps for a sampling period `d` seconds.
  /// The length must be an exact multiple of `d`.
  std::size_t steps(SimTime d) const {
    FGCS_REQUIRE(d > 0);
    FGCS_REQUIRE_MSG(length % d == 0,
                     "window length must be a multiple of the sampling period");
    return static_cast<std::size_t>(length / d);
  }

  std::string describe() const {
    return format_time_of_day(start_of_day) + " +" +
           std::to_string(length / kSecondsPerHour) + "h" +
           (length % kSecondsPerHour != 0
                ? std::to_string((length % kSecondsPerHour) / 60) + "m"
                : "");
  }

  friend bool operator==(const TimeWindow&, const TimeWindow&) = default;
};

/// Validates the window invariants; call at API boundaries.
inline void validate(const TimeWindow& w) {
  FGCS_REQUIRE_MSG(w.start_of_day >= 0 && w.start_of_day < kSecondsPerDay,
                   "window start must lie within a day");
  FGCS_REQUIRE_MSG(w.length > 0, "window length must be positive");
  FGCS_REQUIRE_MSG(w.length <= kSecondsPerDay,
                   "windows longer than 24h are not supported");
}

}  // namespace fgcs
