#include "trace/machine_trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace fgcs {

namespace {
constexpr std::uint32_t kMagic = 0x46474353;  // "FGCS"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!is) throw DataError("trace stream truncated");
  return value;
}
}  // namespace

MachineTrace::MachineTrace(std::string machine_id, Calendar calendar,
                           SimTime sampling_period, int total_mem_mb)
    : machine_id_(std::move(machine_id)),
      calendar_(calendar),
      sampling_period_(sampling_period),
      total_mem_mb_(total_mem_mb) {
  FGCS_REQUIRE_MSG(sampling_period > 0 && kSecondsPerDay % sampling_period == 0,
                   "sampling period must divide 86400");
  FGCS_REQUIRE(total_mem_mb > 0);
}

void MachineTrace::append_day(std::vector<ResourceSample> samples) {
  FGCS_REQUIRE_MSG(samples.size() == samples_per_day(),
                   "day must contain exactly samples_per_day() samples");
  days_.push_back(std::move(samples));
}

const ResourceSample& MachineTrace::at(std::int64_t day, std::size_t index) const {
  FGCS_REQUIRE(day >= 0 && day < day_count());
  FGCS_REQUIRE(index < samples_per_day());
  return days_[static_cast<std::size_t>(day)][index];
}

const ResourceSample& MachineTrace::at_time(SimTime t) const {
  const std::int64_t day = Calendar::day_index(t);
  const std::size_t index =
      static_cast<std::size_t>(Calendar::second_of_day(t) / sampling_period_);
  return at(day, index);
}

bool MachineTrace::window_in_range(std::int64_t day, const TimeWindow& window) const {
  if (day < 0 || day >= day_count()) return false;
  return !window.wraps_midnight() || day + 1 < day_count();
}

std::vector<ResourceSample> MachineTrace::window_samples(
    std::int64_t day, const TimeWindow& window) const {
  validate(window);
  FGCS_REQUIRE_MSG(window_in_range(day, window),
                   "window extends past the recorded trace");
  const std::size_t n = window.steps(sampling_period_);
  const std::size_t per_day = samples_per_day();
  std::vector<ResourceSample> out;
  out.reserve(n);
  std::size_t index = static_cast<std::size_t>(window.start_of_day / sampling_period_);
  std::int64_t d = day;
  for (std::size_t i = 0; i < n; ++i) {
    if (index == per_day) {
      index = 0;
      ++d;
    }
    out.push_back(days_[static_cast<std::size_t>(d)][index]);
    ++index;
  }
  return out;
}

MachineTrace MachineTrace::slice(std::int64_t first_day,
                                 std::int64_t last_day) const {
  FGCS_REQUIRE(first_day >= 0 && first_day < last_day);
  FGCS_REQUIRE(last_day <= day_count());
  const int epoch = calendar_.day_of_week(first_day);
  MachineTrace out(machine_id_, Calendar(epoch), sampling_period_,
                   total_mem_mb_);
  for (std::int64_t d = first_day; d < last_day; ++d)
    out.append_day(days_[static_cast<std::size_t>(d)]);
  return out;
}

std::vector<std::int64_t> MachineTrace::days_of_type(DayType type,
                                                     std::int64_t first_day,
                                                     std::int64_t last_day) const {
  std::vector<std::int64_t> out;
  const std::int64_t lo = std::max<std::int64_t>(first_day, 0);
  const std::int64_t hi = std::min(last_day, day_count());
  for (std::int64_t d = lo; d < hi; ++d)
    if (day_type(d) == type) out.push_back(d);
  return out;
}

std::vector<std::int64_t> MachineTrace::recent_days_of_type(
    DayType type, std::int64_t before_day, std::size_t n) const {
  std::vector<std::int64_t> all = days_of_type(type, 0, before_day);
  if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
  return all;
}

double MachineTrace::uptime_fraction() const {
  std::size_t up = 0, total = 0;
  for (const auto& day : days_) {
    total += day.size();
    up += static_cast<std::size_t>(
        std::count_if(day.begin(), day.end(),
                      [](const ResourceSample& s) { return s.up(); }));
  }
  return total == 0 ? 0.0 : static_cast<double>(up) / static_cast<double>(total);
}

double MachineTrace::mean_load() const {
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& day : days_)
    for (const ResourceSample& s : day)
      if (s.up()) {
        acc += s.load();
        ++count;
      }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

void MachineTrace::save(std::ostream& os) const {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  const std::uint32_t id_len = static_cast<std::uint32_t>(machine_id_.size());
  write_pod(os, id_len);
  os.write(machine_id_.data(), id_len);
  write_pod(os, static_cast<std::int32_t>(calendar_.epoch_day_of_week()));
  write_pod(os, static_cast<std::int64_t>(sampling_period_));
  write_pod(os, static_cast<std::int32_t>(total_mem_mb_));
  write_pod(os, static_cast<std::int64_t>(day_count()));
  for (const auto& day : days_)
    os.write(reinterpret_cast<const char*>(day.data()),
             static_cast<std::streamsize>(day.size() * sizeof(ResourceSample)));
  if (!os) throw DataError("trace write failed");
}

MachineTrace MachineTrace::load(std::istream& is) {
  // Chaos hook: the stream is declared corrupt regardless of content —
  // loaders and their callers must see the typed error, never a crash.
  if (FGCS_FAILPOINT("trace.load.corrupt"))
    throw DataError("injected: corrupt trace stream");
  if (read_pod<std::uint32_t>(is) != kMagic)
    throw DataError("not a fgcs trace stream (bad magic)");
  if (read_pod<std::uint32_t>(is) != kVersion)
    throw DataError("unsupported trace version");
  const std::uint32_t id_len = read_pod<std::uint32_t>(is);
  if (id_len > 4096) throw DataError("implausible machine id length");
  std::string id(id_len, '\0');
  is.read(id.data(), id_len);
  const int dow = read_pod<std::int32_t>(is);
  const SimTime period = read_pod<std::int64_t>(is);
  const int mem = read_pod<std::int32_t>(is);
  const std::int64_t n_days = read_pod<std::int64_t>(is);
  if (!is) throw DataError("trace stream truncated");
  if (period <= 0 || kSecondsPerDay % period != 0)
    throw DataError("corrupt trace: bad sampling period");
  if (mem <= 0) throw DataError("corrupt trace: bad memory size");
  if (n_days < 0 || n_days > 100000) throw DataError("corrupt trace: bad day count");

  MachineTrace trace(std::move(id), Calendar(dow), period, mem);
  const std::size_t per_day = trace.samples_per_day();
  for (std::int64_t d = 0; d < n_days; ++d) {
    std::vector<ResourceSample> day(per_day);
    is.read(reinterpret_cast<char*>(day.data()),
            static_cast<std::streamsize>(per_day * sizeof(ResourceSample)));
    if (!is) throw DataError("trace stream truncated mid-day");
    trace.append_day(std::move(day));
  }
  return trace;
}

void MachineTrace::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw DataError("cannot open trace file for writing: " + path);
  save(out);
}

MachineTrace MachineTrace::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DataError("cannot open trace file: " + path);
  return load(in);
}

void MachineTrace::write_day_csv(std::ostream& os, std::int64_t day) const {
  FGCS_REQUIRE(day >= 0 && day < day_count());
  os << "second_of_day,host_load_pct,free_mem_mb,up\n";
  const auto& samples = days_[static_cast<std::size_t>(day)];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    os << i * static_cast<std::size_t>(sampling_period_) << ','
       << static_cast<int>(samples[i].host_load_pct) << ','
       << samples[i].free_mem_mb << ',' << (samples[i].up() ? 1 : 0) << '\n';
  }
}

}  // namespace fgcs
