// TraceStore — day-boundary rollup for streaming sample ingestion.
//
// Monitors stream contiguous batches of packed samples addressed by an
// *absolute sample index* (day · samples_per_day + offset since the
// machine's epoch). The store buffers the partial current day per machine;
// when the buffer fills it "closes" the day: a new MachineTrace is built
// with the day appended (and, when a retention budget is set, the oldest
// day retired — the paper's sliding N-day training history), then swapped
// in as an immutable snapshot. Readers pin snapshots with shared_ptr, so
// prediction batches never block behind ingestion and never observe a
// half-rolled day; a close costs one O(history) trace copy per
// machine-day, which at one close per day per machine is noise.
//
// Idempotence: appends whose indices the store already covers are counted
// as duplicates and skipped, so a client may blindly retry a whole batch
// after any transport failure. A batch *starting beyond* the next expected
// index is rejected (DataError): monitors backfill outages as down-time
// (resource_monitor's heartbeat trick), so a genuine gap means the sender
// and the store disagree about history, which no retry can fix.
//
// Failpoints (tests/chaos): `ingest.rollup.fail` is evaluated once per
// day-close, *before* the close mutates anything; it throws RollupError
// with the day's samples still buffered and the append's earlier samples
// retained, so a retried batch dedups the overlap and resumes the close.
//
// Thread-safety: all public methods are safe to call concurrently; each
// machine is guarded by its own mutex (appends for one machine serialize,
// different machines proceed in parallel). The day-closed callback runs
// under the appending machine's lock and must not call back into the
// store.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "trace/machine_trace.hpp"
#include "trace/sample.hpp"
#include "util/error.hpp"
#include "util/time.hpp"

namespace fgcs {

/// A day-close was injected to fail (ingest.rollup.fail). Transient by
/// construction — the store's state is untouched and a retry of the same
/// batch resumes the close — so the serving layer reports it retryable,
/// unlike the semantic DataErrors (gap, spec mismatch) that fail every
/// retry identically.
class RollupError : public DataError {
 public:
  using DataError::DataError;
};

struct TraceStoreConfig {
  /// Sliding-history budget in days per machine; once a machine's trace
  /// holds this many days, closing a new day retires the oldest one.
  /// 0 (default) keeps all history.
  std::int64_t retention_days = 0;
};

/// Self-describing machine registration, as carried by every append frame.
struct MachineSpec {
  std::string machine_id;
  int epoch_day_of_week = 0;  ///< 0 = Monday … 6 = Sunday
  SimTime sampling_period = 6;
  int total_mem_mb = 1024;
};

/// Exact bookkeeping for one append call (mirrors the wire ack).
struct AppendResult {
  std::uint64_t accepted = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t next_index = 0;
  std::uint64_t days_closed = 0;
  std::uint64_t days_retired = 0;
};

class TraceStore {
 public:
  /// Fired once per closed day, after the snapshot swap, under the
  /// machine's lock. `first_day_id` is the absolute id of `trace` day 0;
  /// `retired_day` is the absolute id just retired, or -1.
  struct DayClosedEvent {
    const std::string& machine_id;
    const std::shared_ptr<const MachineTrace>& trace;
    std::int64_t first_day_id = 0;
    std::int64_t closed_day = 0;
    std::int64_t retired_day = -1;
  };
  using DayClosedCallback = std::function<void(const DayClosedEvent&)>;

  explicit TraceStore(TraceStoreConfig config = {},
                      DayClosedCallback on_day_closed = {});

  const TraceStoreConfig& config() const { return config_; }

  /// Registers a machine with an empty history. Re-registering with an
  /// identical spec is a no-op; a differing spec throws DataError.
  void register_machine(const MachineSpec& spec);

  /// Seeds a machine from pre-existing history (day ids start at 0, next
  /// sample index at day_count · samples_per_day). Throws DataError if the
  /// machine already exists.
  void adopt_trace(MachineTrace trace);

  /// Appends a contiguous batch starting at `first_sample_index`,
  /// auto-registering the machine from `spec` on first contact. Skips
  /// already-covered indices (duplicates), buffers the rest, and closes
  /// day(s) when the buffer fills. Throws DataError on a spec mismatch or
  /// an index gap, RollupError when a day-close was injected to fail.
  AppendResult append(const MachineSpec& spec,
                      std::uint64_t first_sample_index,
                      std::span<const ResourceSample> samples);

  /// The machine's current immutable trace snapshot (closed days only), or
  /// nullptr for an unknown machine. Pin it for the duration of any read.
  std::shared_ptr<const MachineTrace> snapshot(
      const std::string& machine_id) const;

  /// Absolute day id of snapshot day 0 (days retired so far). Throws
  /// DataError for an unknown machine.
  std::int64_t first_day_id(const std::string& machine_id) const;

  /// First absolute sample index not yet covered (buffered or rolled up).
  std::uint64_t next_index(const std::string& machine_id) const;

  /// Samples currently buffered in the machine's partial day.
  std::size_t buffered_samples(const std::string& machine_id) const;

  std::size_t machine_count() const;
  std::vector<std::string> machine_ids() const;

 private:
  struct Machine {
    mutable std::mutex mutex;
    MachineSpec spec;
    std::shared_ptr<const MachineTrace> trace;
    std::vector<ResourceSample> buffer;  ///< partial current day
    std::int64_t first_day_id = 0;       ///< days retired so far
    std::int64_t closed_days = 0;        ///< absolute id of the day being buffered
  };

  Machine& resolve(const MachineSpec& spec);
  const Machine* find(const std::string& machine_id) const;
  /// Rolls the machine's full buffer into its trace; must hold its mutex.
  void close_day(Machine& machine, AppendResult& result);

  TraceStoreConfig config_;
  DayClosedCallback on_day_closed_;
  mutable std::mutex registry_mutex_;
  std::map<std::string, std::unique_ptr<Machine>> machines_;
};

}  // namespace fgcs
