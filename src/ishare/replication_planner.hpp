// Availability-target replica planning (Trua-style).
//
// Fixed-degree replication wastes replicas: k = 3 on a fleet of TR ≈ 0.99
// machines buys nothing the first replica didn't, while k = 3 on TR ≈ 0.5
// machines may still miss the user's availability needs. Trua (Zhang et
// al.) inverts the contract: the user states a target availability A, and
// the planner picks the CHEAPEST replica set whose joint availability
//
//     1 − Π_i (1 − TR_i)        (replica failures assumed independent)
//
// meets A. Per-machine TR comes from the paper's SMP predictor, batched
// through the shared PredictionService by ReplicatingScheduler.
//
// Optimality contract (pinned by a brute-force differential over all 2^n
// subsets in tests/ishare/replication_planner_test.cpp): among subsets of
// size 1..max_replicas drawn from the candidate pool, plan_replicas returns
// the best under the total order
//
//     total cost ASC  →  joint availability DESC  →  size ASC
//                     →  machine-id list (lexicographic) ASC
//
// restricted to feasible subsets (joint availability ≥ A). The search is a
// greedy-by-TR certificate (top-m prefixes, m = 1..max_replicas — the
// availability-maximal set of each size, so it decides feasibility exactly)
// plus bounded exhaustive refinement over the `exhaustive_pool` highest-TR
// candidates; when the fleet fits in the pool the refinement IS the full
// brute force, hence the differential. When no subset meets A the planner
// falls back to fixed-degree (the `fallback_replicas` highest-TR machines)
// and says so: `feasible = false, fallback = true`, with the achieved
// availability reported — degraded mode is visible, never silent.
//
// Float determinism: joint availability and total cost are always
// accumulated over the set sorted by machine id (the canonical order), so
// the planner, the brute force, and any replayed run agree bit-for-bit.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace fgcs {

/// One machine the planner may place a replica on. `cost` is in arbitrary
/// units (e.g. TransientVmClass::hourly_cost); the scheduler uses 1.0 per
/// machine, making cost == replica count.
struct ReplicaCandidate {
  std::string machine_id;
  double tr = 0.0;    ///< temporal reliability over the job window, in [0, 1]
  double cost = 1.0;  ///< price of placing a replica here, >= 0
};

struct PlannerConfig {
  /// Target joint availability A in [0, 1]. A = 0 degenerates to the
  /// cheapest single replica; A = 1 needs a TR = 1 machine.
  double target_availability = 0.95;
  /// Hard cap on replicas per job (>= 1).
  int max_replicas = 8;
  /// Fixed degree used when A is infeasible (>= 1, capped at fleet size).
  int fallback_replicas = 3;
  /// Exhaustive refinement searches all subsets of the this-many highest-TR
  /// candidates (1..20; 2^pool subsets, so 20 caps the work at ~1M sets).
  int exhaustive_pool = 16;
};

struct ReplicationPlan {
  bool feasible = false;  ///< some subset met the target
  bool fallback = false;  ///< infeasible: replicas below are the fixed-degree fallback
  double target_availability = 0.0;
  /// Joint availability of `replicas` (canonical-order product) — for a
  /// fallback plan this is the best the fallback set achieves, < target.
  double achieved_availability = 0.0;
  double total_cost = 0.0;       ///< canonical-order sum over `replicas`
  std::size_t pool_size = 0;     ///< candidates the exhaustive stage searched
  /// The chosen set, sorted by machine id (the canonical order).
  std::vector<ReplicaCandidate> replicas;
};

/// Joint availability 1 − Π(1 − TR_i), accumulated in the given order.
/// Callers wanting the canonical value pass an id-sorted span.
double joint_availability(std::span<const ReplicaCandidate> replicas);

/// Plans the cheapest replica set meeting `config.target_availability`.
/// Throws PreconditionError on malformed input (TR outside [0, 1], negative
/// or non-finite cost, bad config bounds). Empty candidate list yields an
/// infeasible plan with no replicas.
ReplicationPlan plan_replicas(std::vector<ReplicaCandidate> candidates,
                              const PlannerConfig& config);

}  // namespace fgcs
