// Anti-entropy gossip membership for the decentralized registry
// (DESIGN.md §11).
//
// Every registry node runs a GossipAgent holding a full member table:
// (node_id, host, port, incarnation, heartbeat, health, generation). Each
// logical *round* the agent bumps its own heartbeat, re-evaluates liveness,
// and pushes its whole table to `fanout` seeded-randomly chosen peers
// (kGossipSync over the wire, docs/WIRE.md §7); the peer merges and
// answers its own table (kGossipAck), which the caller merges back.
//
// Merge rule — a join-semilattice, so any gossip order converges to the
// same table: per member, the record with the higher (incarnation,
// heartbeat) wins outright; at an exact tie the worse health wins
// (left > dead > suspect > alive — accusations and tombstones stick until
// the accused proves life by advancing its heartbeat or bumping its
// incarnation). `generation` — the node's history generation, announced so
// routers know when a shard's predictions moved — merges by max,
// independently of the liveness fields.
//
// Liveness is *phi-style accrual on the round clock*, not a fixed timeout:
// for each peer the agent tracks the mean number of rounds between observed
// heartbeat advances and computes phi = rounds_since_advance / mean. phi ≥
// suspect_phi marks the peer suspect (still routed to); phi ≥ dead_phi
// declares it dead (dropped from the ring, record kept as a tombstone). A
// node seeing itself accused at its own (incarnation, heartbeat) refutes by
// bumping its incarnation. leave() plants a kLeft tombstone that wins over
// every same-incarnation record — the graceful exit; rejoin() returns with
// a fresh incarnation.
//
// Determinism contract (the chaos battery's foundation): the agent never
// reads wall-clock time or thread identity. Rounds are the only clock, peer
// selection draws from an Rng seeded by (config.seed, node_id), and the
// digest excludes heartbeats (they keep advancing while tables sync), so a
// seed-pinned storm replays byte-identically and converged nodes compare
// digest-equal. GossipMesh wires N agents through an in-process transport
// with `gossip.drop` / `gossip.delay` failpoints and explicit partitions —
// the storm driver used by tests/chaos/gossip_chaos_test.cpp and
// `fgcs_chaos --scenario gossip`.
//
// Thread-safety: an agent is not thread-safe. The networked server guards
// its agent with a mutex (reactors handle kGossipSync concurrently with the
// tick thread); the in-process mesh is single-threaded by construction.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ishare/hash_ring.hpp"
#include "util/rng.hpp"

namespace fgcs {

enum class MemberHealth : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,  ///< phi crossed suspect_phi; still owns its shard
  kDead = 2,     ///< phi crossed dead_phi; evicted from the ring, tombstoned
  kLeft = 3,     ///< announced a graceful leave; wins over same-incarnation
};

const char* to_string(MemberHealth health);

/// One row of the gossiped member table.
struct MemberState {
  std::string node_id;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t incarnation = 0;
  std::uint64_t heartbeat = 0;
  MemberHealth health = MemberHealth::kAlive;
  /// History generation this node last announced (max-merged).
  std::uint64_t generation = 0;

  friend bool operator==(const MemberState&, const MemberState&) = default;
};

/// A full-state sync (or ack): the sender's whole member table, id-sorted.
struct GossipMessage {
  std::string sender;
  std::vector<MemberState> members;
};

struct GossipConfig {
  /// Peers pushed to per round.
  std::uint32_t fanout = 1;
  /// phi thresholds, in units of mean heartbeat-advance intervals (rounds).
  double suspect_phi = 4.0;
  double dead_phi = 10.0;
  /// Vnodes per member in ring() (HashRing contract).
  std::uint32_t vnodes = 128;
  /// Peer-selection seed; each agent forks its own stream from
  /// (seed, node_id), so mesh composition does not shift any agent's draws.
  std::uint64_t seed = 0x6055195eedull;
};

/// Monotonic per-agent counters (single-threaded, like the agent).
struct GossipAgentStats {
  std::uint64_t rounds = 0;
  std::uint64_t syncs_sent = 0;
  std::uint64_t syncs_received = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t records_updated = 0;  ///< merge rows where remote won
  std::uint64_t refutations = 0;      ///< own incarnation bumps
  std::uint64_t suspicions = 0;       ///< alive→suspect transitions observed
  std::uint64_t deaths = 0;           ///< →dead transitions declared locally
};

class GossipAgent {
 public:
  explicit GossipAgent(MemberState self, GossipConfig config = {});

  const std::string& id() const { return self_id_; }
  std::uint64_t round() const { return round_; }
  const GossipConfig& config() const { return config_; }
  const GossipAgentStats& stats() const { return stats_; }

  /// Adds a bootstrap contact (ignored if already known or self).
  void seed_peer(const MemberState& peer);

  /// One gossip round: advance the round clock, bump own heartbeat,
  /// re-evaluate phi for every peer, and return the ids of the peers to
  /// push a sync to this round (seeded selection, ≤ fanout, no repeats).
  std::vector<std::string> tick();

  /// The full-state sync frame this agent would send now.
  GossipMessage make_sync() const;

  /// Merges a received sync and returns the ack (this agent's table).
  GossipMessage handle_sync(const GossipMessage& message);

  /// Merges a received ack.
  void handle_ack(const GossipMessage& message);

  /// Graceful exit: tombstones self as kLeft (propagated by later syncs —
  /// callers typically tick once more to announce it).
  void leave();

  /// Returns after a leave() (or a dead accusation) with a fresh
  /// incarnation; the new record beats every tombstone.
  void rejoin();

  /// Publishes this node's history generation into the member table.
  void announce_generation(std::uint64_t generation);

  /// Membership digest: id, host, port, incarnation, health, generation of
  /// every known record (tombstones included), heartbeats excluded.
  /// Converged nodes — and only converged nodes — compare equal.
  std::uint64_t digest() const;

  /// Routing view: a HashRing over the alive + suspect members, versioned
  /// by a digest of their (id, incarnation) pairs so every converged node
  /// derives the identical ring.
  HashRing ring() const;

  /// The full table, id-sorted (self included).
  std::vector<MemberState> members() const;

  const MemberState& self() const;

 private:
  /// True when the remote record should replace `local`.
  static bool remote_wins(const MemberState& local, const MemberState& remote);
  void merge(const std::vector<MemberState>& remote);
  void evaluate_liveness();

  /// Rounds-between-heartbeat-advances tracker behind the phi estimate.
  struct Liveness {
    std::uint64_t last_heartbeat = 0;
    std::uint64_t last_advance_round = 0;
    double mean_interval = 1.0;
    std::uint64_t observed = 0;
  };

  std::string self_id_;
  GossipConfig config_;
  Rng peer_rng_;
  std::uint64_t round_ = 0;
  std::map<std::string, MemberState> members_;  // self included
  std::map<std::string, Liveness> liveness_;
  GossipAgentStats stats_;
};

/// In-process transport for seed-pinned gossip storms: owns N agents, runs
/// lockstep rounds in id order, applies explicit partitions and the
/// `gossip.drop` (message lost) / `gossip.delay` (delivered next round)
/// failpoints to every sync and ack, and reports convergence. Single-
/// threaded; every run with the same seeds and failpoint spec replays
/// byte-identically.
class GossipMesh {
 public:
  explicit GossipMesh(GossipConfig config = {});

  /// Creates a node; id must be unique. Returns the agent (stable address).
  GossipAgent& add_node(const std::string& node_id,
                        const std::string& host = "127.0.0.1",
                        std::uint16_t port = 0);

  /// Seeds every agent with every other as a contact (full bootstrap).
  void connect_all();

  GossipAgent& agent(const std::string& node_id);
  const GossipAgent& agent(const std::string& node_id) const;
  std::vector<std::string> node_ids() const;

  /// Splits the mesh into groups; messages cross group boundaries only
  /// after heal(). Ids not named fall into an implicit last group.
  void partition(const std::vector<std::vector<std::string>>& groups);
  void heal();

  /// Simulates a crash: the node stops ticking, sending, and receiving
  /// (peers will accrue phi against it). restart() resumes it with a fresh
  /// incarnation.
  void stop(const std::string& node_id);
  void restart(const std::string& node_id);
  bool stopped(const std::string& node_id) const;

  /// One lockstep round: deliver last round's delayed messages, then tick
  /// every running agent in id order and route its syncs/acks through the
  /// partition map and the gossip.* failpoints.
  void run_round();

  /// Rounds run so far.
  std::uint64_t rounds() const { return rounds_; }

  /// All running, non-left agents share one membership digest *and* one
  /// ring digest.
  bool converged() const;

  /// Runs rounds until converged() or the bound; returns the total rounds
  /// run when converged, -1 when the bound was hit first.
  int run_until_converged(int max_rounds);

  /// The converged digest (requires converged()).
  std::uint64_t digest() const;

 private:
  struct Node {
    std::unique_ptr<GossipAgent> agent;
    bool running = true;
  };
  struct Delayed {
    std::string from;
    std::string to;
    GossipMessage message;
  };

  bool blocked(const std::string& a, const std::string& b) const;
  /// Routes one sync to `to` and its ack back to `from`, applying
  /// partition / drop / delay; delayed messages land next round.
  void route_sync(const std::string& from, const std::string& to,
                  GossipMessage message);
  void deliver_sync(const std::string& from, const std::string& to,
                    const GossipMessage& message);

  GossipConfig config_;
  std::map<std::string, Node> nodes_;  // id order == round order
  std::map<std::string, int> group_of_;  // empty: fully connected
  std::vector<Delayed> delayed_;
  std::uint64_t rounds_ = 0;
};

}  // namespace fgcs
