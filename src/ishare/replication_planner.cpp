#include "ishare/replication_planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace fgcs {

double joint_availability(std::span<const ReplicaCandidate> replicas) {
  double miss = 1.0;
  for (const ReplicaCandidate& replica : replicas) miss *= 1.0 - replica.tr;
  return 1.0 - miss;
}

namespace {

/// Candidates ranked for selection: TR descending, machine id ascending on
/// ties — never the unspecified order std::sort would leave tied TRs in.
bool ranks_before(const ReplicaCandidate& a, const ReplicaCandidate& b) {
  if (a.tr != b.tr) return a.tr > b.tr;
  return a.machine_id < b.machine_id;
}

bool id_before(const ReplicaCandidate& a, const ReplicaCandidate& b) {
  return a.machine_id < b.machine_id;
}

/// Canonical-order (id-sorted input) metrics of one candidate set.
struct SetMetrics {
  double cost = 0.0;
  double availability = 0.0;
  std::size_t size = 0;
};

SetMetrics metrics_of(std::span<const ReplicaCandidate> id_sorted) {
  SetMetrics m;
  m.size = id_sorted.size();
  m.availability = joint_availability(id_sorted);
  for (const ReplicaCandidate& replica : id_sorted) m.cost += replica.cost;
  return m;
}

/// The planner's total order: cost ASC, availability DESC, size ASC, id
/// list lexicographic ASC. `a`/`b` must be id-sorted.
bool plan_better(const SetMetrics& am, const std::vector<ReplicaCandidate>& a,
                 const SetMetrics& bm, const std::vector<ReplicaCandidate>& b) {
  if (am.cost != bm.cost) return am.cost < bm.cost;
  if (am.availability != bm.availability)
    return am.availability > bm.availability;
  if (am.size != bm.size) return am.size < bm.size;
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const ReplicaCandidate& x, const ReplicaCandidate& y) {
        return x.machine_id < y.machine_id;
      });
}

}  // namespace

ReplicationPlan plan_replicas(std::vector<ReplicaCandidate> candidates,
                              const PlannerConfig& config) {
  FGCS_REQUIRE(config.target_availability >= 0.0 &&
               config.target_availability <= 1.0);
  FGCS_REQUIRE(config.max_replicas >= 1);
  FGCS_REQUIRE(config.fallback_replicas >= 1);
  FGCS_REQUIRE(config.exhaustive_pool >= 1 && config.exhaustive_pool <= 20);
  for (const ReplicaCandidate& candidate : candidates) {
    FGCS_REQUIRE(std::isfinite(candidate.tr) && candidate.tr >= 0.0 &&
                 candidate.tr <= 1.0);
    FGCS_REQUIRE(std::isfinite(candidate.cost) && candidate.cost >= 0.0);
  }

  ReplicationPlan plan;
  plan.target_availability = config.target_availability;
  if (candidates.empty()) {
    plan.fallback = true;
    return plan;
  }

  std::vector<ReplicaCandidate> ranked = std::move(candidates);
  std::sort(ranked.begin(), ranked.end(), ranks_before);
  const std::size_t n = ranked.size();
  const std::size_t max_take =
      std::min<std::size_t>(static_cast<std::size_t>(config.max_replicas), n);

  bool found = false;
  SetMetrics best_metrics;
  std::vector<ReplicaCandidate> best_set;
  auto consider = [&](std::vector<ReplicaCandidate> id_sorted) {
    const SetMetrics m = metrics_of(id_sorted);
    if (m.availability < config.target_availability) return;
    if (!found || plan_better(m, id_sorted, best_metrics, best_set)) {
      found = true;
      best_metrics = m;
      best_set = std::move(id_sorted);
    }
  };

  // Greedy-by-TR certificate: the size-m prefix of the ranking maximizes
  // joint availability among all size-m subsets, so scanning every prefix
  // decides feasibility exactly — including sets that reach outside the
  // exhaustive pool when max_replicas > exhaustive_pool.
  for (std::size_t m = 1; m <= max_take; ++m) {
    std::vector<ReplicaCandidate> prefix(ranked.begin(),
                                         ranked.begin() + static_cast<std::ptrdiff_t>(m));
    std::sort(prefix.begin(), prefix.end(), id_before);
    consider(std::move(prefix));
  }

  // Bounded exhaustive refinement over the highest-TR pool. When the whole
  // fleet fits (n <= exhaustive_pool) this is the full subset search, so
  // the result is provably optimal under the plan order.
  const std::size_t pool_size =
      std::min<std::size_t>(static_cast<std::size_t>(config.exhaustive_pool), n);
  plan.pool_size = pool_size;
  std::vector<ReplicaCandidate> pool(ranked.begin(),
                                     ranked.begin() + static_cast<std::ptrdiff_t>(pool_size));
  std::sort(pool.begin(), pool.end(), id_before);
  const std::uint32_t mask_end = static_cast<std::uint32_t>(1u << pool_size);
  for (std::uint32_t mask = 1; mask < mask_end; ++mask) {
    const auto bits =
        static_cast<std::size_t>(__builtin_popcount(mask));
    if (bits > max_take) continue;
    // Cheap scalar screen in canonical (ascending-bit == ascending-id)
    // order; materialize the set only if it can beat the incumbent.
    double cost = 0.0;
    double miss = 1.0;
    for (std::size_t i = 0; i < pool_size; ++i) {
      if (!(mask & (1u << i))) continue;
      cost += pool[i].cost;
      miss *= 1.0 - pool[i].tr;
    }
    const double availability = 1.0 - miss;
    if (availability < config.target_availability) continue;
    if (found) {
      if (cost > best_metrics.cost) continue;
      if (cost == best_metrics.cost &&
          availability < best_metrics.availability)
        continue;
    }
    std::vector<ReplicaCandidate> set;
    set.reserve(bits);
    for (std::size_t i = 0; i < pool_size; ++i)
      if (mask & (1u << i)) set.push_back(pool[i]);
    consider(std::move(set));
  }

  if (found) {
    plan.feasible = true;
    plan.replicas = std::move(best_set);
    plan.achieved_availability = best_metrics.availability;
    plan.total_cost = best_metrics.cost;
    return plan;
  }

  // Infeasible: fall back to fixed degree on the highest-TR machines, and
  // report the shortfall instead of hiding it.
  plan.fallback = true;
  const std::size_t take = std::min<std::size_t>(
      static_cast<std::size_t>(config.fallback_replicas), n);
  plan.replicas.assign(ranked.begin(),
                       ranked.begin() + static_cast<std::ptrdiff_t>(take));
  std::sort(plan.replicas.begin(), plan.replicas.end(), id_before);
  const SetMetrics m = metrics_of(plan.replicas);
  plan.achieved_availability = m.availability;
  plan.total_cost = m.cost;
  return plan;
}

}  // namespace fgcs
