#include "ishare/replication.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace fgcs {

ReplicatingScheduler::ReplicatingScheduler(const Registry& registry,
                                           int replicas,
                                           SchedulerConfig config)
    : registry_(registry), replicas_(replicas), config_(config) {
  FGCS_REQUIRE(replicas >= 1);
}

ReplicatedOutcome ReplicatingScheduler::run_job(const GuestJobSpec& job,
                                                SimTime submit_time,
                                                SimTime give_up_at) const {
  FGCS_REQUIRE(job.cpu_seconds > 0);
  FGCS_REQUIRE(give_up_at > submit_time);

  ReplicatedOutcome outcome;
  outcome.submit_time = submit_time;
  outcome.finish_time = give_up_at;

  // Rank machines by TR over the expected execution window.
  const SimTime expected_wall = std::max<SimTime>(
      static_cast<SimTime>(job.cpu_seconds * config_.wall_time_factor),
      kSecondsPerMinute);
  std::vector<std::pair<double, Gateway*>> ranked;
  for (Gateway* gateway : registry_.gateways()) {
    try {
      ranked.emplace_back(
          gateway->query_reliability(submit_time, expected_wall), gateway);
    } catch (const DataError&) {
      // Degraded mode: a machine whose prediction fails is skipped for this
      // placement instead of aborting the whole submission.
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });

  const int replica_count =
      std::min<int>(replicas_, static_cast<int>(ranked.size()));
  for (int r = 0; r < replica_count; ++r) {
    Gateway* gateway = ranked[static_cast<std::size_t>(r)].second;
    // Chaos hook: the replica is lost before doing any work (host vanished
    // between placement and launch) — the no-progress worst case of churn.
    if (FGCS_FAILPOINT("replication.replica.lost")) {
      ++outcome.replicas_started;
      ++outcome.replicas_failed;
      continue;
    }
    const ExecutionResult result =
        gateway->execute(job, submit_time, give_up_at);
    ++outcome.replicas_started;
    if (result.failure) ++outcome.replicas_failed;
    // A replica that would finish after an earlier winner is cancelled then;
    // it only burns CPU until the winner's completion time.
    if (result.completed && result.end_time < outcome.finish_time) {
      outcome.completed = true;
      outcome.finish_time = result.end_time;
      outcome.winning_machine = gateway->machine_id();
    }
    outcome.total_cpu_spent += result.progress_seconds;
  }

  if (!outcome.completed) outcome.finish_time = give_up_at;
  return outcome;
}

}  // namespace fgcs
