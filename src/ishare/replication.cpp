#include "ishare/replication.hpp"

#include <algorithm>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "ishare/state_manager.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace fgcs {

namespace {

/// Registry-owned counters for the planning layer (DESIGN.md §8 idiom).
struct ReplicationMetrics {
  Counter& plans_total;
  Counter& plans_infeasible;

  static ReplicationMetrics& get() {
    static ReplicationMetrics metrics{
        MetricsRegistry::global().counter("replication.plans.total"),
        MetricsRegistry::global().counter(
            "replication.plans.infeasible.total")};
    return metrics;
  }
};

}  // namespace

ReplicatingScheduler::ReplicatingScheduler(
    const RegistryView& registry, int replicas, SchedulerConfig config,
    std::shared_ptr<PredictionService> service)
    : registry_(registry),
      replicas_(replicas),
      config_(config),
      service_(std::move(service)) {
  FGCS_REQUIRE(replicas >= 1);
}

ReplicatingScheduler::ReplicatingScheduler(
    const RegistryView& registry, PlannerConfig planner,
    SchedulerConfig config,
    std::shared_ptr<PredictionService> service)
    : registry_(registry),
      replicas_(planner.fallback_replicas),
      planner_(planner),
      config_(config),
      service_(std::move(service)) {
  // Surface malformed planner bounds at construction, not first submission.
  FGCS_REQUIRE(planner.target_availability >= 0.0 &&
               planner.target_availability <= 1.0);
  FGCS_REQUIRE(planner.max_replicas >= 1);
  FGCS_REQUIRE(planner.fallback_replicas >= 1);
  FGCS_REQUIRE(planner.exhaustive_pool >= 1 && planner.exhaustive_pool <= 20);
}

std::vector<std::pair<double, Gateway*>> ReplicatingScheduler::rank_fleet(
    SimTime submit_time, SimTime expected_wall) const {
  std::vector<Gateway*> gateways = registry_.gateways();
  // A sharded registry mid-rebalance (or an enumeration-drop storm racing a
  // shard move) can yield the same machine twice; keep the first occurrence
  // so the planner never places two "replicas" on one host.
  {
    std::unordered_set<std::string_view> seen;
    seen.reserve(gateways.size());
    std::erase_if(gateways, [&seen](const Gateway* gateway) {
      return !seen.insert(gateway->machine_id()).second;
    });
  }
  std::vector<std::pair<double, Gateway*>> ranked;
  ranked.reserve(gateways.size());
  if (service_ && !gateways.empty()) {
    // One batched probe over the whole fleet through the shared cache; a
    // machine whose estimation fails comes back nullopt and is skipped for
    // this placement — same degraded mode as the serial path below.
    std::vector<BatchRequest> batch;
    batch.reserve(gateways.size());
    for (const Gateway* gateway : gateways) {
      const MachineTrace& history = gateway->state_manager().history();
      batch.push_back(BatchRequest{
          .trace = &history,
          .request =
              StateManager::job_request(history, submit_time, expected_wall)});
    }
    const std::vector<std::optional<Prediction>> predictions =
        service_->try_predict_batch(batch);
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      if (!predictions[i].has_value()) continue;
      ranked.emplace_back(predictions[i]->temporal_reliability, gateways[i]);
    }
  } else {
    for (Gateway* gateway : gateways) {
      try {
        ranked.emplace_back(
            gateway->query_reliability(submit_time, expected_wall), gateway);
      } catch (const DataError&) {
        // Degraded mode: a machine whose prediction fails is skipped for
        // this placement instead of aborting the whole submission.
      }
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second->machine_id() < b.second->machine_id();
  });
  return ranked;
}

ReplicatedOutcome ReplicatingScheduler::run_job(const GuestJobSpec& job,
                                                SimTime submit_time,
                                                SimTime give_up_at) const {
  FGCS_REQUIRE(job.cpu_seconds > 0);
  FGCS_REQUIRE(give_up_at > submit_time);

  ReplicatedOutcome outcome;
  outcome.submit_time = submit_time;
  outcome.finish_time = give_up_at;

  // Rank machines by TR over the expected execution window.
  const SimTime expected_wall = std::max<SimTime>(
      static_cast<SimTime>(job.cpu_seconds * config_.wall_time_factor),
      kSecondsPerMinute);
  const std::vector<std::pair<double, Gateway*>> ranked =
      rank_fleet(submit_time, expected_wall);

  // The replica set to launch, best TR first.
  std::vector<Gateway*> targets;
  if (planner_.has_value()) {
    std::vector<ReplicaCandidate> candidates;
    candidates.reserve(ranked.size());
    for (const auto& [tr, gateway] : ranked)
      candidates.push_back(ReplicaCandidate{gateway->machine_id(), tr, 1.0});
    ReplicationPlan plan = plan_replicas(std::move(candidates), *planner_);
    ReplicationMetrics::get().plans_total.add();
    if (!plan.feasible) ReplicationMetrics::get().plans_infeasible.add();
    // Launch in TR order: plan.replicas is id-sorted (canonical), ranked is
    // TR-sorted — walk ranked and keep the planned ones.
    std::unordered_map<std::string, bool> planned;
    planned.reserve(plan.replicas.size());
    for (const ReplicaCandidate& replica : plan.replicas)
      planned.emplace(replica.machine_id, true);
    for (const auto& [tr, gateway] : ranked)
      if (planned.count(gateway->machine_id())) targets.push_back(gateway);
    outcome.plan = std::move(plan);
  } else {
    const std::size_t replica_count =
        std::min<std::size_t>(static_cast<std::size_t>(replicas_), ranked.size());
    for (std::size_t r = 0; r < replica_count; ++r)
      targets.push_back(ranked[r].second);
  }

  for (Gateway* gateway : targets) {
    // Chaos hook: the replica is lost before doing any work (host vanished
    // between placement and launch) — the no-progress worst case of churn.
    if (FGCS_FAILPOINT("replication.replica.lost")) {
      ++outcome.replicas_started;
      ++outcome.replicas_failed;
      continue;
    }
    const ExecutionResult result =
        gateway->execute(job, submit_time, give_up_at);
    ++outcome.replicas_started;
    if (result.failure) ++outcome.replicas_failed;
    // A replica that would finish after an earlier winner is cancelled then;
    // it only burns CPU until the winner's completion time.
    if (result.completed && result.end_time < outcome.finish_time) {
      outcome.completed = true;
      outcome.finish_time = result.end_time;
      outcome.winning_machine = gateway->machine_id();
    }
    outcome.total_cpu_spent += result.progress_seconds;
  }

  if (!outcome.completed) outcome.finish_time = give_up_at;
  return outcome;
}

}  // namespace fgcs
