// Client-side job scheduler (paper Fig. 2 and §5.1).
//
// On submission the scheduler queries every published gateway for its
// temporal reliability over the job's expected execution window, runs the job
// on the most reliable machine, and — because FGCS failures are expected —
// restarts or resumes it (with whatever progress checkpointing preserved)
// after each failure, re-selecting the machine each time.
//
// The fleet probe is the hot path at scale: every placement queries every
// machine with the same window. Constructed with a PredictionService, the
// scheduler issues that probe as one predict_batch (fanned out over the
// thread pool) instead of N sequential per-gateway predictor runs; selection
// order and results are identical to the serial path. On a warm cache each
// per-machine probe is an O(1) read off the entry's precomputed absorption
// curves (curve_cache.hpp) — no estimator scan, no solver construction, no
// Eq. 3 recursion — so repeat placements cost table lookups, not solves.
//
// Degraded modes (exercised by tests/chaos): a machine whose prediction
// fails is skipped during selection — never fatal; a selection round that
// yields nothing (registry churn, estimator outage) is retried with backoff
// until the job's deadline; retries pause with capped exponential backoff
// plus seeded jitter when backoff_factor > 1 (fixed legacy delay otherwise).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/prediction_service.hpp"
#include "ishare/gateway.hpp"
#include "ishare/registry.hpp"
#include "util/rng.hpp"

namespace fgcs {

struct SchedulerConfig {
  int max_attempts = 50;
  /// Base pause between a failure and the resubmission (first retry).
  SimTime retry_delay = 60;
  /// Wall-time estimate per CPU-second of work, used for the TR query window
  /// (guests only get idle cycles, so wall time exceeds CPU time).
  double wall_time_factor = 1.6;
  /// Per-retry growth of the pause. 1 (the default) reproduces the legacy
  /// fixed-delay behaviour exactly — no growth, no jitter, no Rng draws;
  /// > 1 gives capped exponential backoff so repeated failures (revocation
  /// storms, registry churn) stop hammering the fleet with resubmissions.
  double backoff_factor = 1.0;
  /// Hard ceiling on the backed-off pause, jitter included (only consulted
  /// when backoff_factor > 1).
  SimTime max_retry_delay = 3600;
  /// Fraction of the pause randomized symmetrically around its nominal value
  /// (delay ∈ [d·(1−j), d·(1+j)]), drawn from a scheduler-seeded Rng so runs
  /// stay bit-reproducible. Ignored when backoff_factor == 1.
  double backoff_jitter = 0.1;
  /// Seed of the jitter stream (one independent stream per run_job call).
  std::uint64_t backoff_seed = 0x5c4ed01e;
};

/// The pause before the (retry + 1)-th resubmission of a job:
/// min(max_retry_delay, retry_delay · backoff_factor^retry), jittered by
/// ±backoff_jitter from `rng` and clamped to max_retry_delay again, so the
/// cap holds as a hard bound. With backoff_factor == 1 it returns
/// retry_delay exactly and never touches `rng` (legacy behaviour).
SimTime retry_backoff_delay(const SchedulerConfig& config, int retry,
                            Rng& rng);

struct JobOutcome {
  bool completed = false;
  SimTime submit_time = 0;
  SimTime finish_time = 0;
  int attempts = 0;
  int failures = 0;
  int checkpoints_taken = 0;
  std::vector<std::string> machines_used;

  SimTime response_time() const { return finish_time - submit_time; }
};

class JobScheduler {
 public:
  /// A non-null `service` turns the per-placement fleet probe into one
  /// batched predict_batch call against the shared cache.
  JobScheduler(const RegistryView& registry, SchedulerConfig config = {},
               std::shared_ptr<PredictionService> service = nullptr);

  /// The gateway with the highest TR for a job of `duration` wall seconds
  /// submitted at `now`; nullptr when nothing is published.
  Gateway* select_machine(SimTime now, SimTime duration) const;

  /// Runs `job` to completion (or until `give_up_at` / attempts exhausted),
  /// restarting after failures per the checkpoint mode.
  JobOutcome run_job(const GuestJobSpec& job, SimTime submit_time,
                     SimTime give_up_at,
                     CheckpointMode mode = CheckpointMode::kNone,
                     const CheckpointConfig& checkpoint = {}) const;

 private:
  const RegistryView& registry_;
  SchedulerConfig config_;
  std::shared_ptr<PredictionService> service_;
};

}  // namespace fgcs
