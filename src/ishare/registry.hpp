// Resource publication and discovery.
//
// ishare uses a P2P network for publication/discovery (paper §5.1, ref [24]);
// the framework contract is publish / unpublish / lookup / enumerate, which
// this in-process registry implements deterministically (DESIGN.md §2).
//
// Entries are non-owning: a published gateway must outlive its registry
// entry (unpublish before destroying it). Enumeration is ordered by machine
// id, which is what makes scheduler selection — serial scan or batched
// predict_batch — reproducible run-to-run. The registry itself is not
// thread-safe; publish/unpublish from one thread, or synchronize externally.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ishare/gateway.hpp"

namespace fgcs {

class Registry {
 public:
  /// Publishes a gateway (non-owning; the gateway must outlive the registry
  /// entry). Re-publishing the same machine id replaces the entry.
  void publish(Gateway& gateway);

  /// Removes the entry; returns false if the id was not published.
  bool unpublish(const std::string& machine_id);

  /// nullptr when not found.
  Gateway* lookup(const std::string& machine_id) const;

  /// All published gateways, ordered by machine id.
  std::vector<Gateway*> gateways() const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Gateway*> entries_;
};

}  // namespace fgcs
