// Resource publication and discovery.
//
// ishare uses a P2P network for publication/discovery (paper §5.1, ref [24]);
// the framework contract is publish / unpublish / lookup / enumerate.
// RegistryView is that contract as the schedulers consume it; two
// implementations provide it:
//
//   * Registry — the in-process single-node registry (DESIGN.md §2):
//     deterministic, ordered by machine id, one flat map.
//   * ShardedRegistry — the decentralized form (DESIGN.md §11): machine ids
//     partitioned across registry nodes by a consistent-hash ring
//     (hash_ring.hpp), one Registry shard per ring member. publish/lookup
//     route by ring ownership; enumeration concatenates the shards in
//     member order. During a ring change a machine may transiently be
//     published on both its old and new shard (move = publish-then-drop),
//     so enumeration can yield the same machine id twice — consumers that
//     aggregate over the fleet must dedup by id (ReplicatingScheduler's
//     fleet probe does; tests/ishare/sharded_registry_test.cpp pins it).
//
// Entries are non-owning: a published gateway must outlive its registry
// entry (unpublish before destroying it). Enumeration order is what makes
// scheduler selection — serial scan or batched predict_batch — reproducible
// run-to-run. Neither implementation is thread-safe; publish/unpublish from
// one thread, or synchronize externally.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ishare/gateway.hpp"
#include "ishare/hash_ring.hpp"

namespace fgcs {

/// The discovery contract the schedulers consume: point lookup plus fleet
/// enumeration. Implementations may inject churn (failpoints), shard, or
/// forward — callers must treat a lookup miss and a partial enumeration as
/// normal degraded modes, never as fatal.
class RegistryView {
 public:
  virtual ~RegistryView() = default;

  /// nullptr when not found (or when churn made the entry look lost).
  virtual Gateway* lookup(const std::string& machine_id) const = 0;

  /// All published gateways this view can currently enumerate. May contain
  /// duplicates of a machine mid-move between shards; may omit entries
  /// under injected churn.
  virtual std::vector<Gateway*> gateways() const = 0;

  virtual std::size_t size() const = 0;
};

class Registry final : public RegistryView {
 public:
  /// Publishes a gateway (non-owning; the gateway must outlive the registry
  /// entry). Re-publishing the same machine id replaces the entry.
  void publish(Gateway& gateway);

  /// Removes the entry; returns false if the id was not published.
  bool unpublish(const std::string& machine_id);

  /// nullptr when not found.
  Gateway* lookup(const std::string& machine_id) const override;

  /// All published gateways, ordered by machine id.
  std::vector<Gateway*> gateways() const override;

  std::size_t size() const override { return entries_.size(); }

 private:
  std::map<std::string, Gateway*> entries_;
};

/// Consistent-hash-sharded registry: one Registry per ring member, machine
/// ids routed to their owning shard. rebalance() re-homes entries after a
/// ring change with publish-before-drop semantics, so enumeration stays
/// complete throughout a move at the cost of transient duplicates.
class ShardedRegistry final : public RegistryView {
 public:
  explicit ShardedRegistry(HashRing ring);

  /// Publishes to the key's owning shard. Throws PreconditionError on an
  /// empty ring.
  void publish(Gateway& gateway);

  /// Unpublishes from *every* shard holding the id (a mid-move machine has
  /// two entries). Returns false when no shard held it.
  bool unpublish(const std::string& machine_id);

  /// Installs a new ring and re-homes every entry: each machine is
  /// published on its new owner first, then dropped from the old shard.
  void rebalance(HashRing ring);

  const HashRing& ring() const { return ring_; }

  /// Direct shard access (tests stage mid-move states with it). Throws
  /// DataError for an id not on the ring.
  Registry& shard(const std::string& node_id);
  const Registry& shard(const std::string& node_id) const;

  /// Ring-routed lookup: asks the owning shard first, then falls back to a
  /// scan of the others (a mid-move or stale-ring entry is still served).
  Gateway* lookup(const std::string& machine_id) const override;

  /// Concatenates shard enumerations in ring-member order. A machine
  /// published on two shards mid-move appears twice — by design; fleet
  /// aggregators dedup by id.
  std::vector<Gateway*> gateways() const override;

  /// Total published entries across shards (duplicates counted).
  std::size_t size() const override;

 private:
  HashRing ring_;
  std::map<std::string, Registry> shards_;  // by node_id
};

}  // namespace fgcs
