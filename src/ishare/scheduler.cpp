#include "ishare/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ishare/state_manager.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace_span.hpp"

namespace fgcs {

namespace {

/// Scheduler instruments (DESIGN.md §8), resolved once from the global
/// registry. Scheduler events are per-placement, not per-sample, so the
/// registry-owned (shared across scheduler instances) form is the simple
/// right choice here.
struct SchedulerMetrics {
  Counter& selection_rounds;
  Counter& selection_empty;
  Counter& batch_fallbacks;
  Counter& retries;
  Histogram& backoff_seconds;

  static SchedulerMetrics& get() {
    static SchedulerMetrics metrics{
        MetricsRegistry::global().counter("scheduler.selection.rounds.total"),
        MetricsRegistry::global().counter("scheduler.selection.empty.total"),
        MetricsRegistry::global().counter("scheduler.batch_fallbacks.total"),
        MetricsRegistry::global().counter("scheduler.retries.total"),
        // Sim-time delays, not wall latencies: bucket by the plausible
        // retry-delay range (seconds to an hour) instead of µs decades.
        MetricsRegistry::global().histogram(
            "scheduler.backoff.seconds",
            {1.0, 10.0, 60.0, 300.0, 900.0, 3600.0})};
    return metrics;
  }
};

}  // namespace

JobScheduler::JobScheduler(const RegistryView& registry,
                           SchedulerConfig config,
                           std::shared_ptr<PredictionService> service)
    : registry_(registry), config_(config), service_(std::move(service)) {
  FGCS_REQUIRE(config.max_attempts >= 1);
  FGCS_REQUIRE(config.retry_delay >= 0);
  FGCS_REQUIRE(config.wall_time_factor >= 1.0);
  FGCS_REQUIRE(config.backoff_factor >= 1.0);
  FGCS_REQUIRE(config.max_retry_delay >= 0);
  FGCS_REQUIRE(config.backoff_jitter >= 0.0 && config.backoff_jitter < 1.0);
}

SimTime retry_backoff_delay(const SchedulerConfig& config, int retry,
                            Rng& rng) {
  FGCS_REQUIRE(retry >= 0);
  if (config.backoff_factor == 1.0) {
    SchedulerMetrics::get().backoff_seconds.observe(
        static_cast<double>(config.retry_delay));
    return config.retry_delay;
  }
  double delay = static_cast<double>(config.retry_delay) *
                 std::pow(config.backoff_factor, retry);
  delay = std::min(delay, static_cast<double>(config.max_retry_delay));
  if (config.backoff_jitter > 0.0) {
    delay *= 1.0 + config.backoff_jitter * rng.uniform(-1.0, 1.0);
    // Re-clamp: jitter is applied to the capped delay, so an upward draw
    // would otherwise exceed max_retry_delay — the cap is a hard bound.
    delay = std::min(delay, static_cast<double>(config.max_retry_delay));
  }
  const SimTime result = static_cast<SimTime>(std::llround(delay));
  SchedulerMetrics::get().backoff_seconds.observe(static_cast<double>(result));
  return result;
}

namespace {

/// Serial fleet scan; machines whose prediction fails are skipped, so one
/// broken estimation pipeline degrades placement instead of aborting it.
Gateway* serial_select(const std::vector<Gateway*>& gateways, SimTime now,
                       SimTime duration) {
  Gateway* best = nullptr;
  double best_tr = -1.0;
  for (Gateway* gateway : gateways) {
    double tr;
    try {
      tr = gateway->query_reliability(now, duration);
    } catch (const DataError&) {
      continue;
    }
    if (tr > best_tr) {
      best_tr = tr;
      best = gateway;
    }
  }
  return best;
}

}  // namespace

Gateway* JobScheduler::select_machine(SimTime now, SimTime duration) const {
  FGCS_SPAN("scheduler.select");
  SchedulerMetrics& metrics = SchedulerMetrics::get();
  metrics.selection_rounds.add();
  const std::vector<Gateway*> gateways = registry_.gateways();
  if (service_ && !gateways.empty()) {
    // One batched probe over the whole fleet; ties resolve to the first
    // (lowest machine id) exactly like the serial strict-greater scan.
    std::vector<BatchRequest> batch;
    batch.reserve(gateways.size());
    for (const Gateway* gateway : gateways) {
      const MachineTrace& history = gateway->state_manager().history();
      batch.push_back(BatchRequest{
          .trace = &history,
          .request = StateManager::job_request(history, now, duration)});
    }
    try {
      const std::vector<Prediction> predictions =
          service_->predict_batch(batch);
      std::size_t best = 0;
      for (std::size_t i = 1; i < predictions.size(); ++i) {
        if (predictions[i].temporal_reliability >
            predictions[best].temporal_reliability)
          best = i;
      }
      return gateways[best];
    } catch (const DataError&) {
      // The batch died on one machine's failure; fall through to the serial
      // scan, which skips exactly the machines that cannot be predicted.
      metrics.batch_fallbacks.add();
    }
  }
  Gateway* selected = serial_select(gateways, now, duration);
  if (selected == nullptr) metrics.selection_empty.add();
  return selected;
}

JobOutcome JobScheduler::run_job(const GuestJobSpec& job, SimTime submit_time,
                                 SimTime give_up_at, CheckpointMode mode,
                                 const CheckpointConfig& checkpoint) const {
  FGCS_REQUIRE(job.cpu_seconds > 0);
  FGCS_REQUIRE(give_up_at > submit_time);

  JobOutcome outcome;
  outcome.submit_time = submit_time;
  outcome.finish_time = give_up_at;

  double remaining = job.cpu_seconds;
  SimTime now = submit_time;
  Rng backoff_rng(config_.backoff_seed);
  int select_misses = 0;

  while (outcome.attempts < config_.max_attempts && now < give_up_at) {
    const SimTime expected_wall = std::max<SimTime>(
        static_cast<SimTime>(remaining * config_.wall_time_factor),
        kSecondsPerMinute);
    Gateway* gateway = select_machine(now, expected_wall);
    if (gateway == nullptr) {
      // Nothing selectable right now (empty fleet, churned registry, or every
      // prediction failing). Back off — harder for each consecutive miss —
      // and retry until the deadline rather than giving up on a transient
      // outage; a registry that was empty at submission stays a hard
      // no-placement, matching legacy behaviour.
      if (outcome.attempts == 0 && registry_.size() == 0) break;
      SchedulerMetrics::get().retries.add();
      now += std::max<SimTime>(
          1, retry_backoff_delay(config_, select_misses++, backoff_rng));
      continue;
    }
    select_misses = 0;

    ++outcome.attempts;
    outcome.machines_used.push_back(gateway->machine_id());

    GuestJobSpec attempt = job;
    attempt.cpu_seconds = remaining;
    const ExecutionResult result =
        gateway->execute(attempt, now, give_up_at, mode, checkpoint);
    outcome.checkpoints_taken += result.checkpoints_taken;

    if (result.completed) {
      outcome.completed = true;
      outcome.finish_time = result.end_time;
      return outcome;
    }
    if (result.failure) ++outcome.failures;
    // Resume from the last checkpoint (0 preserved without checkpointing);
    // the pause before resubmission backs off with the failure count.
    remaining = std::max(1.0, remaining - result.saved_progress_seconds);
    SchedulerMetrics::get().retries.add();
    now = result.end_time +
          retry_backoff_delay(config_, outcome.attempts - 1, backoff_rng);
  }

  outcome.finish_time = std::min(now, give_up_at);
  return outcome;
}

}  // namespace fgcs
