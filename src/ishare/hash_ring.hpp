// Consistent-hash ring: partitions machine ids across fgcs_serve instances
// (DESIGN.md §11).
//
// Each registry node contributes `vnodes` virtual points to a 64-bit hash
// circle; a machine key is owned by the member whose vnode is the key's
// clockwise successor. Virtual nodes smooth the partition (the load share of
// any member stays within a few percent of 1/N at 128 vnodes) and bound
// key movement: adding or removing one member remaps only the keys whose
// successor vnode changed — about 1/N of the key space, never a full
// reshuffle (tests/ishare/hash_ring_test.cpp pins both properties).
//
// Determinism contract: the ring is a pure function of (member set, vnodes,
// version). Hashing is FNV-1a 64 with a SplitMix64 finalizer — no
// std::hash, no pointer values, no iteration-order dependence — so every
// node that learns the same member set builds the *same* ring, which is
// what lets gossip converge nodes to one routing view without a
// coordinator. `version` is carried for staleness detection (kWrongShard
// answers quote it); it does not perturb vnode placement.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fgcs {

/// One registry node as routing sees it: a stable id plus the address its
/// prediction server answers on.
struct RingMember {
  std::string node_id;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  friend bool operator==(const RingMember&, const RingMember&) = default;
};

/// FNV-1a 64 over `bytes`, finalized with SplitMix64 for avalanche. The one
/// hash every ring in the fleet shares (routing correctness depends on every
/// node hashing identically).
std::uint64_t ring_hash(std::string_view bytes);

class HashRing {
 public:
  /// An empty ring owns nothing (owner() returns nullptr).
  HashRing() = default;

  /// Builds the ring from `members` (any order; sorted and checked for
  /// duplicate ids internally). Throws PreconditionError on a duplicate
  /// node id or vnodes == 0.
  HashRing(std::vector<RingMember> members, std::uint32_t vnodes = 128,
           std::uint64_t version = 0);

  /// The member owning `key` (clockwise-successor vnode), or nullptr when
  /// the ring is empty. Stable reference into members().
  const RingMember* owner(std::string_view key) const;

  /// Members sorted by node_id.
  const std::vector<RingMember>& members() const { return members_; }

  bool contains(std::string_view node_id) const;

  /// The member with this node_id, or nullptr. Stable reference into
  /// members().
  const RingMember* member(std::string_view node_id) const;

  std::uint32_t vnodes() const { return vnodes_; }
  std::uint64_t version() const { return version_; }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// Digest over (sorted members, vnodes, version): two nodes route
  /// identically iff their digests match. Convergence tests compare these.
  std::uint64_t digest() const;

 private:
  struct Vnode {
    std::uint64_t point = 0;
    std::uint32_t member = 0;  ///< index into members_
  };

  std::vector<RingMember> members_;  // id-sorted
  std::vector<Vnode> ring_;          // point-sorted
  std::uint32_t vnodes_ = 128;
  std::uint64_t version_ = 0;
};

}  // namespace fgcs
