#include "ishare/hash_ring.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fgcs {

namespace {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t hash) {
  for (const char byte : bytes) {
    hash ^= static_cast<std::uint8_t>(byte);
    hash *= 0x00000100000001b3ull;
  }
  return hash;
}

std::uint64_t fnv1a64_u64(std::uint64_t value, std::uint64_t hash) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xff;
    hash *= 0x00000100000001b3ull;
  }
  return hash;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

/// SplitMix64 finalizer: FNV alone clusters short ascii keys; the mix
/// spreads vnode points uniformly around the circle.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t ring_hash(std::string_view bytes) {
  return mix64(fnv1a64(bytes, kFnvOffset));
}

HashRing::HashRing(std::vector<RingMember> members, std::uint32_t vnodes,
                   std::uint64_t version)
    : members_(std::move(members)), vnodes_(vnodes), version_(version) {
  FGCS_REQUIRE_MSG(vnodes_ >= 1, "hash ring needs at least one vnode");
  std::sort(members_.begin(), members_.end(),
            [](const RingMember& a, const RingMember& b) {
              return a.node_id < b.node_id;
            });
  for (std::size_t i = 1; i < members_.size(); ++i)
    FGCS_REQUIRE_MSG(members_[i - 1].node_id != members_[i].node_id,
                     "hash ring member ids must be unique");

  ring_.reserve(members_.size() * vnodes_);
  for (std::uint32_t m = 0; m < members_.size(); ++m) {
    // Vnode point = hash(node_id ∥ vnode index): a pure function of the id,
    // so every node places every member's vnodes identically, and a member
    // keeps its points when others join or leave (the movement bound).
    const std::uint64_t base = fnv1a64(members_[m].node_id, kFnvOffset);
    for (std::uint32_t v = 0; v < vnodes_; ++v)
      ring_.push_back(Vnode{mix64(fnv1a64_u64(v, base)), m});
  }
  std::sort(ring_.begin(), ring_.end(), [](const Vnode& a, const Vnode& b) {
    if (a.point != b.point) return a.point < b.point;
    return a.member < b.member;  // full-circle tie break, id-order stable
  });
}

const RingMember* HashRing::owner(std::string_view key) const {
  if (ring_.empty()) return nullptr;
  const std::uint64_t point = ring_hash(key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const Vnode& vnode, std::uint64_t p) { return vnode.point < p; });
  const Vnode& hit = it == ring_.end() ? ring_.front() : *it;
  return &members_[hit.member];
}

bool HashRing::contains(std::string_view node_id) const {
  return member(node_id) != nullptr;
}

const RingMember* HashRing::member(std::string_view node_id) const {
  const auto it = std::lower_bound(
      members_.begin(), members_.end(), node_id,
      [](const RingMember& m, std::string_view id) { return m.node_id < id; });
  return it != members_.end() && it->node_id == node_id ? &*it : nullptr;
}

std::uint64_t HashRing::digest() const {
  std::uint64_t hash = kFnvOffset;
  for (const RingMember& member : members_) {
    hash = fnv1a64(member.node_id, hash);
    hash = fnv1a64(member.host, hash);
    hash = fnv1a64_u64(member.port, hash);
  }
  hash = fnv1a64_u64(vnodes_, hash);
  hash = fnv1a64_u64(version_, hash);
  return mix64(hash);
}

}  // namespace fgcs
