// ishare gateway (paper Fig. 2): the per-host daemon that answers
// reliability queries from clients and controls guest processes — launching
// them, and (through the machine model) renicing, suspending or killing them
// as the host load crosses the thresholds.
//
// Guest execution optionally checkpoints, either on a fixed interval or
// adaptively from predicted TR — the proactive job management the paper's
// introduction motivates (refs [20][31]) and §8 plans to integrate.
//
// The gateway holds only non-owning views: the trace must outlive it, and
// query_reliability/execute may be called concurrently only when the trace
// is not being appended to at the same time. Constructed with a shared
// PredictionService, all TR queries (including the adaptive-checkpoint
// probes inside execute) go through the fleet-wide memoizing cache instead
// of a per-gateway predictor.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/prediction_service.hpp"
#include "core/thresholds.hpp"
#include "ishare/state_manager.hpp"
#include "sim/machine.hpp"
#include "trace/machine_trace.hpp"

namespace fgcs {

enum class CheckpointMode : std::uint8_t { kNone, kFixed, kAdaptive };

const char* to_string(CheckpointMode mode);

struct CheckpointConfig {
  /// Guest CPU seconds consumed by writing one checkpoint.
  double cost_seconds = 60.0;
  /// Interval for kFixed mode (wall-clock seconds).
  SimTime fixed_interval = 1800;
  /// kAdaptive: look this far ahead when probing TR…
  SimTime probe_window = 3600;
  /// …and checkpoint frequently when predicted TR falls below this…
  double tr_low = 0.85;
  SimTime short_interval = 300;
  /// …or rarely when the machine looks reliable.
  SimTime long_interval = 5400;
};

struct ExecutionResult {
  bool completed = false;
  /// Set when the guest was lost to a failure state (S3/S4/S5).
  std::optional<State> failure;
  /// Simulation time when the guest completed, failed, or ran out of trace.
  SimTime end_time = 0;
  /// CPU work finished by the guest when execution stopped.
  double progress_seconds = 0.0;
  /// CPU work preserved by the most recent checkpoint (0 without one).
  double saved_progress_seconds = 0.0;
  int checkpoints_taken = 0;
};

class Gateway {
 public:
  /// `trace` is the machine's full monitored timeline; predictions at time t
  /// only consult days strictly before t's day, execution replays from t on.
  /// A non-null `service` routes all TR queries through the shared cache.
  Gateway(const MachineTrace& trace, Thresholds thresholds,
          EstimatorConfig config = {},
          std::shared_ptr<PredictionService> service = nullptr);

  const std::string& machine_id() const { return trace_.machine_id(); }
  const StateManager& state_manager() const { return state_manager_; }

  /// Temporal reliability for a job of `duration` seconds submitted at `now`.
  double query_reliability(SimTime now, SimTime duration) const;

  /// Runs `job` on this host from `start` until completion, failure, or
  /// `deadline` (also bounded by the recorded trace).
  ExecutionResult execute(const GuestJobSpec& job, SimTime start,
                          SimTime deadline,
                          CheckpointMode mode = CheckpointMode::kNone,
                          const CheckpointConfig& checkpoint = {}) const;

 private:
  const MachineTrace& trace_;
  Thresholds thresholds_;
  StateManager state_manager_;
};

}  // namespace fgcs
