#include "ishare/gossip.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace fgcs {

namespace {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t hash) {
  for (const char byte : bytes) {
    hash ^= static_cast<std::uint8_t>(byte);
    hash *= 0x00000100000001b3ull;
  }
  return hash;
}

std::uint64_t fnv1a64_u64(std::uint64_t value, std::uint64_t hash) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xff;
    hash *= 0x00000100000001b3ull;
  }
  return hash;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Registry-owned fleet-wide gossip counters (DESIGN.md §8 idiom).
struct GossipMetrics {
  Counter& rounds;
  Counter& syncs;
  Counter& drops;
  Counter& delays;
  Counter& unreachable;
  Counter& refutations;

  static GossipMetrics& get() {
    MetricsRegistry& registry = MetricsRegistry::global();
    static GossipMetrics metrics{
        registry.counter("registry.gossip.rounds.total"),
        registry.counter("registry.gossip.syncs.total"),
        registry.counter("registry.gossip.drops.total"),
        registry.counter("registry.gossip.delays.total"),
        registry.counter("registry.gossip.unreachable.total"),
        registry.counter("registry.gossip.refutations.total")};
    return metrics;
  }
};

}  // namespace

const char* to_string(MemberHealth health) {
  switch (health) {
    case MemberHealth::kAlive: return "alive";
    case MemberHealth::kSuspect: return "suspect";
    case MemberHealth::kDead: return "dead";
    case MemberHealth::kLeft: return "left";
  }
  return "?";
}

GossipAgent::GossipAgent(MemberState self, GossipConfig config)
    : self_id_(self.node_id),
      config_(config),
      // Fork the peer-selection stream from (seed, node_id): every agent's
      // draws are fixed by its own identity, independent of mesh size or
      // join order.
      peer_rng_(config.seed ^ ring_hash(self.node_id)) {
  FGCS_REQUIRE_MSG(!self_id_.empty(), "gossip agent needs a node id");
  FGCS_REQUIRE(config_.fanout >= 1);
  FGCS_REQUIRE(config_.suspect_phi > 0.0 &&
               config_.dead_phi >= config_.suspect_phi);
  self.health = MemberHealth::kAlive;
  members_.emplace(self_id_, std::move(self));
}

void GossipAgent::seed_peer(const MemberState& peer) {
  if (peer.node_id == self_id_ || members_.count(peer.node_id)) return;
  members_.emplace(peer.node_id, peer);
  Liveness& liveness = liveness_[peer.node_id];
  liveness.last_heartbeat = peer.heartbeat;
  liveness.last_advance_round = round_;
}

bool GossipAgent::remote_wins(const MemberState& local,
                              const MemberState& remote) {
  if (remote.incarnation != local.incarnation)
    return remote.incarnation > local.incarnation;
  if (remote.heartbeat != local.heartbeat)
    return remote.heartbeat > local.heartbeat;
  // Exact tie: the worse health wins, so accusations and tombstones stick
  // until the accused advances its heartbeat or refutes with a new
  // incarnation. This is what makes the merge a semilattice join.
  return static_cast<std::uint8_t>(remote.health) >
         static_cast<std::uint8_t>(local.health);
}

void GossipAgent::merge(const std::vector<MemberState>& remote_members) {
  for (const MemberState& remote : remote_members) {
    const auto it = members_.find(remote.node_id);
    if (it == members_.end()) {
      members_.emplace(remote.node_id, remote);
      Liveness& liveness = liveness_[remote.node_id];
      liveness.last_heartbeat = remote.heartbeat;
      liveness.last_advance_round = round_;
      ++stats_.records_updated;
      continue;
    }
    MemberState& local = it->second;
    const std::uint64_t generation =
        std::max(local.generation, remote.generation);
    if (remote.node_id == self_id_) {
      // Someone is spreading a worse story about us than our own record. If
      // we are alive, refute it: a fresh incarnation beats every record
      // derived from the old one. A node that really left lets its
      // tombstone stand.
      if (remote_wins(local, remote) && local.health != MemberHealth::kLeft) {
        local.incarnation =
            std::max(local.incarnation, remote.incarnation) + 1;
        local.health = MemberHealth::kAlive;
        ++stats_.refutations;
        GossipMetrics::get().refutations.add();
      }
      local.generation = generation;
      continue;
    }
    if (remote_wins(local, remote)) {
      local = remote;
      ++stats_.records_updated;
    }
    local.generation = generation;
  }
}

void GossipAgent::evaluate_liveness() {
  for (auto& [id, member] : members_) {
    if (id == self_id_) continue;
    if (member.health == MemberHealth::kLeft ||
        member.health == MemberHealth::kDead)
      continue;
    Liveness& liveness = liveness_[id];
    if (member.heartbeat > liveness.last_heartbeat) {
      const double interval = static_cast<double>(
          round_ - liveness.last_advance_round);
      liveness.mean_interval =
          (liveness.mean_interval * static_cast<double>(liveness.observed) +
           interval) /
          static_cast<double>(liveness.observed + 1);
      ++liveness.observed;
      liveness.last_heartbeat = member.heartbeat;
      liveness.last_advance_round = round_;
    }
    // phi-style accrual on the round clock: how many expected heartbeat
    // intervals have elapsed with no advance observed.
    const double mean = std::max(liveness.mean_interval, 1.0);
    const double phi =
        static_cast<double>(round_ - liveness.last_advance_round) / mean;
    if (phi >= config_.dead_phi) {
      if (member.health != MemberHealth::kDead) ++stats_.deaths;
      member.health = MemberHealth::kDead;
    } else if (phi >= config_.suspect_phi) {
      if (member.health == MemberHealth::kAlive) ++stats_.suspicions;
      member.health = MemberHealth::kSuspect;
    }
  }
}

std::vector<std::string> GossipAgent::tick() {
  ++round_;
  ++stats_.rounds;
  GossipMetrics::get().rounds.add();
  MemberState& self = members_.at(self_id_);
  // A left node keeps gossiping its tombstone but freezes its heartbeat —
  // advancing it would read as proof of life.
  if (self.health != MemberHealth::kLeft) ++self.heartbeat;
  evaluate_liveness();

  std::vector<std::string> candidates;
  candidates.reserve(members_.size());
  for (const auto& [id, member] : members_) {
    if (id == self_id_) continue;
    // Dead members stay in the push set as resurrection probes: after a
    // symmetric partition both sides hold dead records for each other, and
    // if neither initiated contact again the accusations could never be
    // overturned — the mesh would stay split forever. Pushing at a dead
    // record costs one wasted sync when the node really is gone, and heals
    // the split when it is not. Only kLeft is final.
    if (member.health != MemberHealth::kLeft) candidates.push_back(id);
  }
  std::vector<std::string> targets;
  const std::size_t count =
      std::min<std::size_t>(config_.fanout, candidates.size());
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t index = static_cast<std::size_t>(peer_rng_.uniform_int(
        0, static_cast<std::int64_t>(candidates.size() - 1 - k)));
    targets.push_back(candidates[index]);
    std::swap(candidates[index], candidates[candidates.size() - 1 - k]);
  }
  stats_.syncs_sent += targets.size();
  return targets;
}

GossipMessage GossipAgent::make_sync() const {
  GossipMessage message;
  message.sender = self_id_;
  message.members.reserve(members_.size());
  for (const auto& [id, member] : members_) message.members.push_back(member);
  return message;
}

GossipMessage GossipAgent::handle_sync(const GossipMessage& message) {
  ++stats_.syncs_received;
  merge(message.members);
  return make_sync();
}

void GossipAgent::handle_ack(const GossipMessage& message) {
  ++stats_.acks_received;
  merge(message.members);
}

void GossipAgent::leave() {
  MemberState& self = members_.at(self_id_);
  if (self.health == MemberHealth::kLeft) return;
  self.health = MemberHealth::kLeft;
  // One final advance so the tombstone beats the last alive record.
  ++self.heartbeat;
}

void GossipAgent::rejoin() {
  MemberState& self = members_.at(self_id_);
  ++self.incarnation;
  self.health = MemberHealth::kAlive;
  ++self.heartbeat;
}

void GossipAgent::announce_generation(std::uint64_t generation) {
  MemberState& self = members_.at(self_id_);
  self.generation = std::max(self.generation, generation);
}

std::uint64_t GossipAgent::digest() const {
  std::uint64_t hash = kFnvOffset;
  for (const auto& [id, member] : members_) {
    hash = fnv1a64(member.node_id, hash);
    hash = fnv1a64(member.host, hash);
    hash = fnv1a64_u64(member.port, hash);
    hash = fnv1a64_u64(member.incarnation, hash);
    hash = fnv1a64_u64(static_cast<std::uint64_t>(member.health), hash);
    hash = fnv1a64_u64(member.generation, hash);
  }
  hash = fnv1a64_u64(members_.size(), hash);
  return mix64(hash);
}

HashRing GossipAgent::ring() const {
  std::vector<RingMember> members;
  std::uint64_t version = kFnvOffset;
  for (const auto& [id, member] : members_) {
    if (member.health != MemberHealth::kAlive &&
        member.health != MemberHealth::kSuspect)
      continue;
    members.push_back(
        RingMember{member.node_id, member.host, member.port});
    version = fnv1a64(member.node_id, version);
    version = fnv1a64_u64(member.incarnation, version);
  }
  return HashRing(std::move(members), config_.vnodes, mix64(version));
}

std::vector<MemberState> GossipAgent::members() const {
  std::vector<MemberState> out;
  out.reserve(members_.size());
  for (const auto& [id, member] : members_) out.push_back(member);
  return out;
}

const MemberState& GossipAgent::self() const {
  return members_.at(self_id_);
}

// ---------------------------------------------------------------------------
// GossipMesh

GossipMesh::GossipMesh(GossipConfig config) : config_(config) {}

GossipAgent& GossipMesh::add_node(const std::string& node_id,
                                  const std::string& host,
                                  std::uint16_t port) {
  FGCS_REQUIRE_MSG(!nodes_.count(node_id), "duplicate gossip node id");
  Node node;
  node.agent = std::make_unique<GossipAgent>(
      MemberState{.node_id = node_id, .host = host, .port = port}, config_);
  return *nodes_.emplace(node_id, std::move(node)).first->second.agent;
}

void GossipMesh::connect_all() {
  for (auto& [id, node] : nodes_)
    for (const auto& [other_id, other] : nodes_)
      if (id != other_id) node.agent->seed_peer(other.agent->self());
}

GossipAgent& GossipMesh::agent(const std::string& node_id) {
  return *nodes_.at(node_id).agent;
}

const GossipAgent& GossipMesh::agent(const std::string& node_id) const {
  return *nodes_.at(node_id).agent;
}

std::vector<std::string> GossipMesh::node_ids() const {
  std::vector<std::string> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  return ids;
}

void GossipMesh::partition(
    const std::vector<std::vector<std::string>>& groups) {
  group_of_.clear();
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (const std::string& id : groups[g])
      group_of_[id] = static_cast<int>(g);
  // Unnamed ids share one implicit group past the named ones.
  for (const auto& [id, node] : nodes_)
    group_of_.emplace(id, static_cast<int>(groups.size()));
}

void GossipMesh::heal() { group_of_.clear(); }

void GossipMesh::stop(const std::string& node_id) {
  nodes_.at(node_id).running = false;
}

void GossipMesh::restart(const std::string& node_id) {
  Node& node = nodes_.at(node_id);
  node.running = true;
  node.agent->rejoin();
}

bool GossipMesh::stopped(const std::string& node_id) const {
  return !nodes_.at(node_id).running;
}

bool GossipMesh::blocked(const std::string& a, const std::string& b) const {
  if (group_of_.empty()) return false;
  return group_of_.at(a) != group_of_.at(b);
}

void GossipMesh::route_sync(const std::string& from, const std::string& to,
                            GossipMessage message) {
  GossipMetrics::get().syncs.add();
  if (!nodes_.at(to).running || blocked(from, to)) {
    GossipMetrics::get().unreachable.add();
    return;
  }
  // Chaos hooks, evaluated once per routed message in a deterministic
  // (id-sorted, single-threaded) order: a fired drop loses the sync
  // entirely; a fired delay parks it until next round's delivery phase.
  if (FGCS_FAILPOINT("gossip.drop")) {
    GossipMetrics::get().drops.add();
    return;
  }
  if (FGCS_FAILPOINT("gossip.delay")) {
    GossipMetrics::get().delays.add();
    delayed_.push_back(Delayed{from, to, std::move(message)});
    return;
  }
  deliver_sync(from, to, message);
}

void GossipMesh::deliver_sync(const std::string& from, const std::string& to,
                              const GossipMessage& message) {
  GossipMessage ack = nodes_.at(to).agent->handle_sync(message);
  // The ack rides the same lossy network back.
  if (!nodes_.at(from).running || blocked(to, from)) {
    GossipMetrics::get().unreachable.add();
    return;
  }
  if (FGCS_FAILPOINT("gossip.drop")) {
    GossipMetrics::get().drops.add();
    return;
  }
  nodes_.at(from).agent->handle_ack(ack);
}

void GossipMesh::run_round() {
  ++rounds_;
  // Delayed messages from earlier rounds land first, re-checked against the
  // *current* partition map (a message delayed across a partition event is
  // lost like any in-flight traffic).
  std::vector<Delayed> due;
  due.swap(delayed_);
  for (Delayed& entry : due) {
    if (!nodes_.at(entry.to).running || blocked(entry.from, entry.to)) {
      GossipMetrics::get().unreachable.add();
      continue;
    }
    deliver_sync(entry.from, entry.to, entry.message);
  }
  for (auto& [id, node] : nodes_) {
    if (!node.running) continue;
    const std::vector<std::string> targets = node.agent->tick();
    for (const std::string& target : targets)
      route_sync(id, target, node.agent->make_sync());
  }
}

bool GossipMesh::converged() const {
  bool first = true;
  std::uint64_t member_digest = 0;
  std::uint64_t ring_digest = 0;
  for (const auto& [id, node] : nodes_) {
    if (!node.running || node.agent->self().health == MemberHealth::kLeft)
      continue;
    if (first) {
      member_digest = node.agent->digest();
      ring_digest = node.agent->ring().digest();
      first = false;
      continue;
    }
    if (node.agent->digest() != member_digest ||
        node.agent->ring().digest() != ring_digest)
      return false;
  }
  return true;
}

int GossipMesh::run_until_converged(int max_rounds) {
  for (int i = 0; i < max_rounds; ++i) {
    run_round();
    if (converged()) return static_cast<int>(rounds_);
  }
  return converged() ? static_cast<int>(rounds_) : -1;
}

std::uint64_t GossipMesh::digest() const {
  FGCS_REQUIRE_MSG(converged(), "mesh digest requires convergence");
  for (const auto& [id, node] : nodes_)
    if (node.running && node.agent->self().health != MemberHealth::kLeft)
      return node.agent->digest();
  return 0;
}

}  // namespace fgcs
