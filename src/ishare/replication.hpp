// Replicated execution: run the same guest job on several machines and take
// the first completion.
//
// The paper's scheduler "decides on which machine(s) the job would be
// executed" (§5.1) — replication is the natural multi-machine policy and the
// classic response-time/throughput trade in volunteer computing: extra
// resource cost buys a shorter, more predictable completion time on flaky
// fleets. bench_ext_proactive's sibling experiment quantifies it.
//
// Two placement policies share one execution path:
//
//   * Fixed degree (the legacy contract): replicas go on the k highest-TR
//     machines at submission time, k capped at the published fleet size.
//   * Availability target (replication_planner.hpp): the planner picks the
//     cheapest set whose joint availability meets the configured A, falling
//     back to fixed degree — reported via ReplicatedOutcome::plan — when A
//     is infeasible on the current fleet.
//
// Either way each replica runs once with no restarts, and the outcome
// reports the first completion plus the total CPU spent across replicas —
// the cost side of the trade. The fleet probe goes through the shared
// PredictionService as ONE batched call when a service is supplied (like
// JobScheduler::select_machine); machines whose prediction fails are
// skipped, never fatal. With k = 1 the fixed policy degenerates to a single
// no-retry placement.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ishare/registry.hpp"
#include "ishare/replication_planner.hpp"
#include "ishare/scheduler.hpp"

namespace fgcs {

struct ReplicatedOutcome {
  bool completed = false;
  SimTime submit_time = 0;
  SimTime finish_time = 0;       // first replica completion (or give-up)
  std::string winning_machine;   // empty if none completed
  int replicas_started = 0;
  int replicas_failed = 0;       // replicas lost to failure states
  /// CPU seconds consumed across all replicas until the first completion —
  /// the resource cost of the redundancy.
  double total_cpu_spent = 0.0;
  /// Present when the scheduler ran in availability-target mode: the plan
  /// the replicas were placed from, including the infeasible-A fallback
  /// verdict and the availability it actually bought.
  std::optional<ReplicationPlan> plan;

  SimTime response_time() const { return finish_time - submit_time; }
};

class ReplicatingScheduler {
 public:
  /// Fixed-degree policy: always the `replicas` highest-TR machines. A
  /// non-null `service` batches the per-job fleet probe through the shared
  /// prediction cache.
  ReplicatingScheduler(const RegistryView& registry, int replicas,
                       SchedulerConfig config = {},
                       std::shared_ptr<PredictionService> service = nullptr);

  /// Availability-target policy: plan_replicas() against `planner` on every
  /// submission, using per-machine TR over the job's expected window.
  ReplicatingScheduler(const RegistryView& registry, PlannerConfig planner,
                       SchedulerConfig config = {},
                       std::shared_ptr<PredictionService> service = nullptr);

  /// Starts the job on the chosen replica set at `submit_time` and reports
  /// the first completion. Each replica runs without restarts; redundancy
  /// replaces retry. Replicas launch in TR order (best first).
  ReplicatedOutcome run_job(const GuestJobSpec& job, SimTime submit_time,
                            SimTime give_up_at) const;

 private:
  /// Every predictable machine with its TR over the job window, sorted TR
  /// descending (machine id ascending on ties).
  std::vector<std::pair<double, Gateway*>> rank_fleet(SimTime submit_time,
                                                      SimTime expected_wall) const;

  const RegistryView& registry_;
  int replicas_;
  std::optional<PlannerConfig> planner_;
  SchedulerConfig config_;
  std::shared_ptr<PredictionService> service_;
};

}  // namespace fgcs
