// Replicated execution: run the same guest job on the k most reliable
// machines and take the first completion.
//
// The paper's scheduler "decides on which machine(s) the job would be
// executed" (§5.1) — replication is the natural multi-machine policy and the
// classic response-time/throughput trade in volunteer computing: extra
// resource cost buys a shorter, more predictable completion time on flaky
// fleets. bench_ext_proactive's sibling experiment quantifies it.
//
// Contract: replicas are placed on the k highest-TR machines at submission
// time (k capped at the published fleet size), each replica runs once with
// no restarts, and the outcome reports the first completion plus the total
// CPU spent across all replicas — the cost side of the trade. Requires at
// least one published gateway; with k = 1 it degenerates to a single
// no-retry placement.
#pragma once

#include <string>
#include <vector>

#include "ishare/registry.hpp"
#include "ishare/scheduler.hpp"

namespace fgcs {

struct ReplicatedOutcome {
  bool completed = false;
  SimTime submit_time = 0;
  SimTime finish_time = 0;       // first replica completion (or give-up)
  std::string winning_machine;   // empty if none completed
  int replicas_started = 0;
  int replicas_failed = 0;       // replicas lost to failure states
  /// CPU seconds consumed across all replicas until the first completion —
  /// the resource cost of the redundancy.
  double total_cpu_spent = 0.0;

  SimTime response_time() const { return finish_time - submit_time; }
};

class ReplicatingScheduler {
 public:
  ReplicatingScheduler(const Registry& registry, int replicas,
                       SchedulerConfig config = {});

  /// Starts the job on the `replicas` highest-TR machines at `submit_time`
  /// and reports the first completion. Each replica runs without restarts;
  /// redundancy replaces retry.
  ReplicatedOutcome run_job(const GuestJobSpec& job, SimTime submit_time,
                            SimTime give_up_at) const;

 private:
  const Registry& registry_;
  int replicas_;
  SchedulerConfig config_;
};

}  // namespace fgcs
