#include "ishare/state_manager.hpp"

#include "util/error.hpp"

namespace fgcs {

StateManager::StateManager(const MachineTrace& history, EstimatorConfig config)
    : history_(history), predictor_(config) {}

Prediction StateManager::predict(std::int64_t target_day,
                                 const TimeWindow& window) const {
  return predictor_.predict(history_,
                            PredictionRequest{.target_day = target_day,
                                              .window = window,
                                              .initial_state = std::nullopt});
}

Prediction StateManager::predict_for_job(SimTime now, SimTime duration) const {
  FGCS_REQUIRE(duration > 0);
  const SimTime period = history_.sampling_period();
  // Round the window out to whole sampling ticks.
  const SimTime start =
      (Calendar::second_of_day(now) / period) * period;
  SimTime length = ((duration + period - 1) / period) * period;
  length = std::min<SimTime>(length, kSecondsPerDay);
  return predict(Calendar::day_index(now),
                 TimeWindow{.start_of_day = start, .length = length});
}

}  // namespace fgcs
