#include "ishare/state_manager.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace fgcs {

namespace {

struct StateManagerMetrics {
  Counter& predictions;
  Counter& predict_failures;

  static StateManagerMetrics& get() {
    static StateManagerMetrics metrics{
        MetricsRegistry::global().counter("state_manager.predictions.total"),
        MetricsRegistry::global().counter(
            "state_manager.predict_failures.total")};
    return metrics;
  }
};

}  // namespace

StateManager::StateManager(const MachineTrace& history, EstimatorConfig config,
                           std::shared_ptr<PredictionService> service)
    : history_(history), predictor_(config), service_(std::move(service)) {}

Prediction StateManager::predict(std::int64_t target_day,
                                 const TimeWindow& window) const {
  // Chaos hook: the estimation pipeline fails (history log unreadable,
  // estimator daemon down). Consumers must degrade, not crash (DESIGN.md §7).
  StateManagerMetrics& metrics = StateManagerMetrics::get();
  if (FGCS_FAILPOINT("state_manager.predict.fail")) {
    metrics.predict_failures.add();
    throw DataError("injected: state manager prediction failure");
  }
  const PredictionRequest request{.target_day = target_day,
                                  .window = window,
                                  .initial_state = std::nullopt};
  metrics.predictions.add();
  if (service_) return service_->predict(history_, request);
  return predictor_.predict(history_, request);
}

PredictionRequest StateManager::job_request(const MachineTrace& history,
                                            SimTime now, SimTime duration) {
  FGCS_REQUIRE(duration > 0);
  const SimTime period = history.sampling_period();
  // Round the window out to whole sampling ticks.
  const SimTime start = (Calendar::second_of_day(now) / period) * period;
  SimTime length = ((duration + period - 1) / period) * period;
  length = std::min<SimTime>(length, kSecondsPerDay);
  return PredictionRequest{
      .target_day = Calendar::day_index(now),
      .window = TimeWindow{.start_of_day = start, .length = length},
      .initial_state = std::nullopt};
}

Prediction StateManager::predict_for_job(SimTime now, SimTime duration) const {
  const PredictionRequest request = job_request(history_, now, duration);
  return predict(request.target_day, request.window);
}

}  // namespace fgcs
