#include "ishare/resource_monitor.hpp"

#include "util/error.hpp"

namespace fgcs {

ResourceMonitor::ResourceMonitor(SimulatedMachine& machine,
                                 double cost_per_sample_seconds)
    : machine_(machine), cost_per_sample_seconds_(cost_per_sample_seconds) {
  FGCS_REQUIRE(cost_per_sample_seconds >= 0);
}

void ResourceMonitor::on_tick(SimTime now) {
  const SimTime period = machine_.sampling_period();
  FGCS_REQUIRE_MSG(now % period == 0 && now > 0,
                   "ticks must land on sampling-period boundaries");

  const ResourceSample sample = machine_.step(now);
  if (!sample.up()) return;  // machine (and monitor) down: nothing is logged

  // Heartbeat-gap detection: every missing beat between t_monitor and now was
  // an outage; backfill it as down samples. A fresh monitor treats time 0 as
  // its first heartbeat.
  const SimTime last_beat = t_monitor_ < 0 ? 0 : t_monitor_;
  for (SimTime missed = last_beat + period; missed < now; missed += period) {
    ResourceSample down;
    down.host_load_pct = 0;
    down.free_mem_mb = pack_mem_mb(static_cast<double>(machine_.total_mem_mb()));
    down.set_up(false);
    log_.push_back(down);
  }

  log_.push_back(sample);
  t_monitor_ = now;
  ++samples_taken_;
}

double ResourceMonitor::overhead_fraction() const {
  return cost_per_sample_seconds_ /
         static_cast<double>(machine_.sampling_period());
}

MachineTrace ResourceMonitor::to_trace() const {
  const SimTime period = machine_.sampling_period();
  MachineTrace trace(machine_.machine_id(), Calendar(0), period,
                     machine_.total_mem_mb());
  const std::size_t per_day = trace.samples_per_day();
  const std::size_t full_days = log_.size() / per_day;
  for (std::size_t d = 0; d < full_days; ++d)
    trace.append_day(std::vector<ResourceSample>(
        log_.begin() + static_cast<std::ptrdiff_t>(d * per_day),
        log_.begin() + static_cast<std::ptrdiff_t>((d + 1) * per_day)));
  return trace;
}

std::vector<ResourceSample> ResourceMonitor::unstreamed() const {
  return {log_.begin() + static_cast<std::ptrdiff_t>(streamed_), log_.end()};
}

void ResourceMonitor::mark_streamed(std::uint64_t next_index) {
  FGCS_REQUIRE_MSG(next_index <= log_.size(),
                   "ack advances past the monitor's log");
  if (next_index > streamed_) streamed_ = next_index;
}

}  // namespace fgcs
