// Non-intrusive resource monitor (paper §5.2).
//
// Samples a machine's host resource usage every period (6 s) and maintains
// the history log the predictor consumes. Revocation (URR) detection uses the
// paper's heartbeat trick: the monitor records the timestamp of its latest
// measurement (t_monitor); after the machine comes back, the gap between the
// current time and the saved t_monitor reveals the outage, and the missing
// interval is backfilled as down-time — no administrator access to system
// logs, no central prober.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"
#include "trace/machine_trace.hpp"
#include "util/time.hpp"

namespace fgcs {

class ResourceMonitor {
 public:
  /// `cost_per_sample_seconds` models the CPU cost of one measurement
  /// (top/vmstat); the paper reports < 1 % of one CPU at a 6 s period.
  ResourceMonitor(SimulatedMachine& machine,
                  double cost_per_sample_seconds = 0.01);

  /// Advances the machine by one sampling period ending at `now` and logs
  /// the observation. While the machine is down the monitor is dead too: it
  /// logs nothing and instead backfills the outage from the heartbeat gap
  /// once the machine is reachable again.
  void on_tick(SimTime now);

  /// Timestamp of the most recent successful measurement (the heartbeat).
  SimTime t_monitor() const { return t_monitor_; }

  /// The observed log so far (one sample per period, gap-free once the
  /// machine has recovered; a trailing outage stays unlogged until then).
  const std::vector<ResourceSample>& log() const { return log_; }

  /// Monitoring overhead as a fraction of one CPU (cost / period).
  double overhead_fraction() const;

  /// Packages the log's complete days into a MachineTrace (partial trailing
  /// days are dropped).
  MachineTrace to_trace() const;

  std::size_t samples_taken() const { return samples_taken_; }

  // --- streaming cursor ------------------------------------------------------
  // The ingest path (kAppendSamples) ships the log incrementally: the cursor
  // marks how much of it has been acked by a TraceStore, and doubles as the
  // absolute first_sample_index of the next append frame (the log is
  // gap-free by construction, so log index == sample index).

  /// Index of the first sample not yet acked by the ingest server.
  std::uint64_t streamed() const { return streamed_; }

  /// The suffix of the log still to be shipped (empty when caught up).
  std::vector<ResourceSample> unstreamed() const;

  /// Advances the cursor to the server's acked next_index. A stale ack
  /// (below the cursor — e.g. a duplicate-only retry) is a no-op; an ack
  /// beyond the log is a precondition violation.
  void mark_streamed(std::uint64_t next_index);

 private:
  SimulatedMachine& machine_;
  double cost_per_sample_seconds_;
  std::vector<ResourceSample> log_;
  SimTime t_monitor_ = -1;
  std::size_t samples_taken_ = 0;
  std::uint64_t streamed_ = 0;
};

}  // namespace fgcs
