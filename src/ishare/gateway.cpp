#include "ishare/gateway.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/trace_span.hpp"
#include "workload/replay.hpp"

namespace fgcs {

namespace {

/// Per-failure-state execution counters (DESIGN.md §8): which absorbing
/// state killed guests, fleet-wide. Registry-owned — gateways are one per
/// machine and their events are per-execution, far from any hot loop.
Counter& failure_counter(State state) {
  static Counter& s3 =
      MetricsRegistry::global().counter("gateway.failures.s3.total");
  static Counter& s4 =
      MetricsRegistry::global().counter("gateway.failures.s4.total");
  static Counter& s5 =
      MetricsRegistry::global().counter("gateway.failures.s5.total");
  switch (state) {
    case State::kS3: return s3;
    case State::kS4: return s4;
    default: return s5;
  }
}

}  // namespace

const char* to_string(CheckpointMode mode) {
  switch (mode) {
    case CheckpointMode::kNone: return "none";
    case CheckpointMode::kFixed: return "fixed";
    case CheckpointMode::kAdaptive: return "adaptive";
  }
  return "?";
}

Gateway::Gateway(const MachineTrace& trace, Thresholds thresholds,
                 EstimatorConfig config,
                 std::shared_ptr<PredictionService> service)
    : trace_(trace),
      thresholds_(thresholds),
      state_manager_(trace, config, std::move(service)) {
  validate(thresholds_);
}

double Gateway::query_reliability(SimTime now, SimTime duration) const {
  return state_manager_.predict_for_job(now, duration).temporal_reliability;
}

ExecutionResult Gateway::execute(const GuestJobSpec& job, SimTime start,
                                 SimTime deadline, CheckpointMode mode,
                                 const CheckpointConfig& checkpoint) const {
  FGCS_REQUIRE(job.cpu_seconds > 0);
  FGCS_REQUIRE(deadline > start);
  FGCS_SPAN("gateway.execute");
  static Counter& executions =
      MetricsRegistry::global().counter("gateway.executions.total");
  executions.add();
  const SimTime period = trace_.sampling_period();
  const SimTime trace_end = trace_.day_count() * kSecondsPerDay;
  const SimTime bound = std::min(deadline, trace_end);

  SimulatedMachine machine(trace_.machine_id(), trace_.total_mem_mb(),
                           thresholds_, period,
                           std::make_unique<TraceReplaySignal>(trace_));
  // The machine model tracks raw progress; completion and checkpoint-cost
  // accounting happen here, so submit with an unreachable work amount.
  GuestJobSpec raw = job;
  raw.cpu_seconds = 1e18;
  machine.submit_guest(raw);

  ExecutionResult result;
  int checkpoints = 0;
  double saved = 0.0;

  auto current_interval = [&](SimTime now) -> SimTime {
    if (mode == CheckpointMode::kFixed) return checkpoint.fixed_interval;
    double tr;
    try {
      tr = state_manager_.predict_for_job(now, checkpoint.probe_window)
               .temporal_reliability;
    } catch (const DataError&) {
      // Degraded mode: with the prediction path down, checkpoint as if the
      // machine looked unreliable rather than aborting the guest.
      return checkpoint.short_interval;
    }
    return tr < checkpoint.tr_low ? checkpoint.short_interval
                                  : checkpoint.long_interval;
  };

  SimTime first_tick = ((start / period) + 1) * period;
  SimTime next_checkpoint =
      mode == CheckpointMode::kNone
          ? std::numeric_limits<SimTime>::max()
          : first_tick + current_interval(start);

  for (SimTime now = first_tick; now <= bound; now += period) {
    machine.step(now);
    result.end_time = now;

    // Chaos hooks: a fired revocation loses the guest to S5 (owner reboot /
    // machine loss), a fired contention spike kills it as S3 — exactly the
    // paper's URR and UEC failure sources, but on demand.
    if (FGCS_FAILPOINT("gateway.execute.revoke")) {
      result.failure = State::kS5;
      break;
    }
    if (FGCS_FAILPOINT("gateway.execute.contention")) {
      result.failure = State::kS3;
      break;
    }
    if (machine.guest_status() == GuestStatus::kKilled) {
      result.failure = machine.guest_failure();
      break;
    }
    const double effective = machine.guest_progress_seconds() -
                             checkpoints * checkpoint.cost_seconds;
    result.progress_seconds = std::max(0.0, effective);
    if (effective >= job.cpu_seconds) {
      result.completed = true;
      result.progress_seconds = job.cpu_seconds;
      break;
    }
    if (now >= next_checkpoint && machine.guest_active()) {
      // Capture the state first, then pay the checkpoint's CPU cost.
      saved = std::max(saved, std::max(0.0, effective));
      ++checkpoints;
      next_checkpoint = now + current_interval(now);
    }
  }

  if (result.failure) failure_counter(*result.failure).add();
  result.saved_progress_seconds = result.completed ? job.cpu_seconds : saved;
  result.checkpoints_taken = checkpoints;
  if (result.end_time == 0) result.end_time = first_tick;
  return result;
}

}  // namespace fgcs
