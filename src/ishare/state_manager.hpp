// State manager daemon (paper Fig. 2): stores the history log and answers
// temporal-reliability queries on the job-submission critical path.
#pragma once

#include <cstdint>

#include "core/predictor.hpp"
#include "trace/machine_trace.hpp"
#include "trace/window.hpp"

namespace fgcs {

class StateManager {
 public:
  /// Non-owning view of the machine's history log; the log must outlive the
  /// manager and may grow (new days appended by the resource monitor).
  StateManager(const MachineTrace& history, EstimatorConfig config = {});

  const MachineTrace& history() const { return history_; }

  /// TR for a window starting on `target_day` (paper Eq. 2/3).
  Prediction predict(std::int64_t target_day, const TimeWindow& window) const;

  /// TR for a job of `duration` seconds submitted at absolute time `now`
  /// (window = [now, now + duration), rounded out to sampling ticks).
  Prediction predict_for_job(SimTime now, SimTime duration) const;

 private:
  const MachineTrace& history_;
  AvailabilityPredictor predictor_;
};

}  // namespace fgcs
