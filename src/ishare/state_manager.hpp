// State manager daemon (paper Fig. 2): stores the history log and answers
// temporal-reliability queries on the job-submission critical path.
//
// The manager is the bridge between the monitoring side (a MachineTrace the
// resource monitor appends to, one day at a time) and the prediction side
// (AvailabilityPredictor, or a fleet-shared PredictionService). It owns no
// data: the history is a non-owning view, so one trace can back a gateway,
// its monitor, and the evaluation harness simultaneously.
//
// When constructed with a PredictionService, every query routes through the
// service's memoizing cache — the intended configuration for fleet
// deployments, where many managers share one service and the scheduler's
// per-placement probes hit warm (Q, H) models whose absorption curves are
// already tabulated: a warm query is an O(1) curve read, never a fresh
// Eq. 3 solve. Whoever appends days to the
// history must call PredictionService::invalidate(machine_id) afterwards
// (see prediction_service.hpp for the staleness contract). Without a
// service, queries run a private AvailabilityPredictor per call — the
// paper's original single-machine behaviour.
#pragma once

#include <cstdint>
#include <memory>

#include "core/prediction_service.hpp"
#include "core/predictor.hpp"
#include "trace/machine_trace.hpp"
#include "trace/window.hpp"

namespace fgcs {

class StateManager {
 public:
  /// Non-owning view of the machine's history log; the log must outlive the
  /// manager and may grow (new days appended by the resource monitor). When
  /// `service` is non-null it answers all queries (its EstimatorConfig wins
  /// over `config`; pass the same one to keep results identical).
  StateManager(const MachineTrace& history, EstimatorConfig config = {},
               std::shared_ptr<PredictionService> service = nullptr);

  const MachineTrace& history() const { return history_; }

  /// The shared prediction service, or nullptr in stand-alone mode.
  const std::shared_ptr<PredictionService>& service() const { return service_; }

  /// TR for a window starting on `target_day` (paper Eq. 2/3).
  Prediction predict(std::int64_t target_day, const TimeWindow& window) const;

  /// TR for a job of `duration` seconds submitted at absolute time `now`
  /// (window = [now, now + duration), rounded out to sampling ticks).
  Prediction predict_for_job(SimTime now, SimTime duration) const;

  /// The PredictionRequest predict_for_job(now, duration) would issue against
  /// `history`: window rounded out to sampling ticks, capped at 24 h.
  /// Exposed so batch callers (JobScheduler) can build identical requests.
  static PredictionRequest job_request(const MachineTrace& history,
                                       SimTime now, SimTime duration);

 private:
  const MachineTrace& history_;
  AvailabilityPredictor predictor_;
  std::shared_ptr<PredictionService> service_;
};

}  // namespace fgcs
