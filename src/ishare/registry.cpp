#include "ishare/registry.hpp"

#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace fgcs {

void Registry::publish(Gateway& gateway) {
  entries_[gateway.machine_id()] = &gateway;
}

bool Registry::unpublish(const std::string& machine_id) {
  return entries_.erase(machine_id) > 0;
}

Gateway* Registry::lookup(const std::string& machine_id) const {
  // Chaos hook: a fired staleness makes the entry look lost (the P2P overlay
  // dropped or has not yet refreshed this gateway's publication).
  if (FGCS_FAILPOINT("registry.lookup.stale")) {
    static Counter& stale =
        MetricsRegistry::global().counter("registry.lookup.stale.total");
    stale.add();
    return nullptr;
  }
  const auto it = entries_.find(machine_id);
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<Gateway*> Registry::gateways() const {
  std::vector<Gateway*> out;
  out.reserve(entries_.size());
  for (const auto& [id, gateway] : entries_) {
    // Chaos hook: per-entry drop from enumeration — the scheduler sees a
    // partial fleet, as it would during P2P churn.
    if (FGCS_FAILPOINT("registry.enumerate.drop")) {
      static Counter& drops =
          MetricsRegistry::global().counter("registry.enumerate.drops.total");
      drops.add();
      continue;
    }
    out.push_back(gateway);
  }
  return out;
}

}  // namespace fgcs
