#include "ishare/registry.hpp"

namespace fgcs {

void Registry::publish(Gateway& gateway) {
  entries_[gateway.machine_id()] = &gateway;
}

bool Registry::unpublish(const std::string& machine_id) {
  return entries_.erase(machine_id) > 0;
}

Gateway* Registry::lookup(const std::string& machine_id) const {
  const auto it = entries_.find(machine_id);
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<Gateway*> Registry::gateways() const {
  std::vector<Gateway*> out;
  out.reserve(entries_.size());
  for (const auto& [id, gateway] : entries_) out.push_back(gateway);
  return out;
}

}  // namespace fgcs
