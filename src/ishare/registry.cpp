#include "ishare/registry.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace fgcs {

void Registry::publish(Gateway& gateway) {
  entries_[gateway.machine_id()] = &gateway;
}

bool Registry::unpublish(const std::string& machine_id) {
  return entries_.erase(machine_id) > 0;
}

Gateway* Registry::lookup(const std::string& machine_id) const {
  // Chaos hook: a fired staleness makes the entry look lost (the P2P overlay
  // dropped or has not yet refreshed this gateway's publication).
  if (FGCS_FAILPOINT("registry.lookup.stale")) {
    static Counter& stale =
        MetricsRegistry::global().counter("registry.lookup.stale.total");
    stale.add();
    return nullptr;
  }
  const auto it = entries_.find(machine_id);
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<Gateway*> Registry::gateways() const {
  std::vector<Gateway*> out;
  out.reserve(entries_.size());
  for (const auto& [id, gateway] : entries_) {
    // Chaos hook: per-entry drop from enumeration — the scheduler sees a
    // partial fleet, as it would during P2P churn.
    if (FGCS_FAILPOINT("registry.enumerate.drop")) {
      static Counter& drops =
          MetricsRegistry::global().counter("registry.enumerate.drops.total");
      drops.add();
      continue;
    }
    out.push_back(gateway);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ShardedRegistry

ShardedRegistry::ShardedRegistry(HashRing ring) : ring_(std::move(ring)) {
  FGCS_REQUIRE_MSG(!ring_.empty(), "sharded registry needs a non-empty ring");
  for (const RingMember& member : ring_.members()) shards_[member.node_id];
}

void ShardedRegistry::publish(Gateway& gateway) {
  const RingMember* owner = ring_.owner(gateway.machine_id());
  FGCS_REQUIRE_MSG(owner != nullptr, "sharded registry ring is empty");
  shards_.at(owner->node_id).publish(gateway);
}

bool ShardedRegistry::unpublish(const std::string& machine_id) {
  bool removed = false;
  for (auto& [node_id, shard] : shards_)
    removed = shard.unpublish(machine_id) || removed;
  return removed;
}

void ShardedRegistry::rebalance(HashRing ring) {
  FGCS_REQUIRE_MSG(!ring.empty(), "sharded registry needs a non-empty ring");
  // Collect every entry once (dedup by id — both copies of a mid-move
  // machine are the same gateway), then publish-before-drop onto the new
  // ring so enumeration never sees a hole during the move.
  std::map<std::string, Gateway*> entries;
  for (const auto& [node_id, shard] : shards_)
    for (Gateway* gateway : shard.gateways())
      entries.emplace(gateway->machine_id(), gateway);
  ring_ = std::move(ring);
  std::map<std::string, Registry> shards;
  for (const RingMember& member : ring_.members()) shards[member.node_id];
  for (const auto& [id, gateway] : entries)
    shards.at(ring_.owner(id)->node_id).publish(*gateway);
  shards_ = std::move(shards);
}

Registry& ShardedRegistry::shard(const std::string& node_id) {
  const auto it = shards_.find(node_id);
  if (it == shards_.end())
    throw DataError("sharded registry: unknown node '" + node_id + "'");
  return it->second;
}

const Registry& ShardedRegistry::shard(const std::string& node_id) const {
  const auto it = shards_.find(node_id);
  if (it == shards_.end())
    throw DataError("sharded registry: unknown node '" + node_id + "'");
  return it->second;
}

Gateway* ShardedRegistry::lookup(const std::string& machine_id) const {
  const RingMember* owner = ring_.owner(machine_id);
  if (owner != nullptr) {
    if (Gateway* gateway = shards_.at(owner->node_id).lookup(machine_id))
      return gateway;
  }
  // Mid-move or stale-ring entry: the machine may still sit on a shard the
  // current ring no longer names as its owner.
  for (const auto& [node_id, shard] : shards_) {
    if (owner != nullptr && node_id == owner->node_id) continue;
    if (Gateway* gateway = shard.lookup(machine_id)) return gateway;
  }
  return nullptr;
}

std::vector<Gateway*> ShardedRegistry::gateways() const {
  std::vector<Gateway*> out;
  for (const RingMember& member : ring_.members()) {
    const std::vector<Gateway*> shard_gateways =
        shards_.at(member.node_id).gateways();
    out.insert(out.end(), shard_gateways.begin(), shard_gateways.end());
  }
  return out;
}

std::size_t ShardedRegistry::size() const {
  std::size_t total = 0;
  for (const auto& [node_id, shard] : shards_) total += shard.size();
  return total;
}

}  // namespace fgcs
