#include "sim/event_queue.hpp"

#include <utility>

namespace fgcs {

void EventQueue::schedule_at(SimTime t, Callback callback) {
  FGCS_REQUIRE_MSG(t >= now_, "cannot schedule an event in the past");
  FGCS_REQUIRE_MSG(callback != nullptr, "event callback must be callable");
  events_.push(Event{t, next_seq_++, std::move(callback)});
}

void EventQueue::schedule_in(SimTime delay, Callback callback) {
  FGCS_REQUIRE(delay >= 0);
  schedule_at(now_ + delay, std::move(callback));
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  // The callback may schedule new events, so detach before invoking.
  Event event = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = event.time;
  event.callback();
  return true;
}

void EventQueue::run_until(SimTime t) {
  FGCS_REQUIRE(t >= now_);
  while (!events_.empty() && events_.top().time <= t) step();
  now_ = t;
}

std::size_t EventQueue::run_all() {
  std::size_t processed = 0;
  while (step()) ++processed;
  return processed;
}

}  // namespace fgcs
