#include "sim/contention.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fgcs {

ContentionStudy::ContentionStudy(SchedParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

std::vector<SchedProcessSpec> ContentionStudy::make_host_group(double host_load,
                                                               int group_size) {
  FGCS_REQUIRE(host_load > 0.0 && host_load <= 1.0);
  FGCS_REQUIRE(group_size >= 1);
  // Random split of the target load across the group (paper: isolated usages
  // randomly distributed), renormalized to sum to host_load.
  std::vector<double> weights(static_cast<std::size_t>(group_size));
  double total = 0.0;
  for (double& w : weights) {
    w = rng_.uniform(0.1, 1.0);
    total += w;
  }
  std::vector<SchedProcessSpec> group;
  group.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    SchedProcessSpec spec;
    spec.name = "host" + std::to_string(i);
    spec.duty = std::clamp(host_load * weights[i] / total, 0.005, 1.0);
    spec.burst_ms = rng_.uniform(28.0, 48.0);
    spec.nice = 0;
    group.push_back(std::move(spec));
  }
  return group;
}

ContentionResult ContentionStudy::run(double host_load, int group_size,
                                      std::optional<int> guest_nice,
                                      double seconds) {
  const std::vector<SchedProcessSpec> group =
      make_host_group(host_load, group_size);

  ContentionResult result;
  result.target_host_load = host_load;

  // Isolated run: host group alone. Same seed stream for both runs so the
  // only difference is the guest's presence.
  const std::uint64_t run_seed = rng_();
  {
    CpuSchedulerSim sim(params_, run_seed);
    std::vector<std::size_t> hosts;
    for (const auto& spec : group) hosts.push_back(sim.add_process(spec));
    sim.run(seconds);
    result.isolated_host_load = sim.total_usage(hosts);
  }

  if (!guest_nice) {
    result.host_load_with_guest = result.isolated_host_load;
    return result;
  }

  {
    CpuSchedulerSim sim(params_, run_seed);
    std::vector<std::size_t> hosts;
    for (const auto& spec : group) hosts.push_back(sim.add_process(spec));
    SchedProcessSpec guest;
    guest.name = "guest";
    guest.duty = 1.0;  // completely CPU-bound (paper §3.2.1)
    guest.nice = *guest_nice;
    const std::size_t guest_idx = sim.add_process(guest);
    sim.run(seconds);
    result.host_load_with_guest = sim.total_usage(hosts);
    result.guest_usage = sim.usages()[guest_idx].usage;
  }

  if (result.isolated_host_load > 0.0)
    result.reduction_rate = std::max(
        0.0, (result.isolated_host_load - result.host_load_with_guest) /
                 result.isolated_host_load);
  return result;
}

std::optional<double> ContentionStudy::find_threshold(
    std::span<const double> loads, int group_size, int guest_nice,
    double slowdown_threshold, double seconds, int repeats) {
  FGCS_REQUIRE(std::is_sorted(loads.begin(), loads.end()));
  FGCS_REQUIRE(repeats >= 1);
  for (const double load : loads) {
    double total = 0.0;
    for (int rep = 0; rep < repeats; ++rep)
      total += run(load, group_size, guest_nice, seconds).reduction_rate;
    if (total / repeats > slowdown_threshold) return load;
  }
  return std::nullopt;
}

MemoryContentionResult run_memory_contention(const MemoryContentionSetup& setup,
                                             SchedParams params,
                                             std::uint64_t seed) {
  FGCS_REQUIRE(setup.machine_mem_mb > setup.kernel_mem_mb);
  MemoryContentionResult result;

  const double available =
      static_cast<double>(setup.machine_mem_mb - setup.kernel_mem_mb);
  const double demanded =
      static_cast<double>(setup.host_mem_mb + setup.guest_mem_mb);
  result.overcommit_ratio = demanded / available;
  result.thrashing = demanded > available;

  // CPU-only component, measured with the scheduler simulation.
  ContentionStudy study(params, seed);
  const double cpu_nice0 =
      study.run(setup.host_cpu_duty, 1, 0).reduction_rate;
  const double cpu_nice19 =
      study.run(setup.host_cpu_duty, 1, 19).reduction_rate;

  if (!result.thrashing) {
    result.reduction_nice0 = cpu_nice0;
    result.reduction_nice19 = cpu_nice19;
    return result;
  }

  // Thrashing: every page fault stalls the faulting process on disk I/O.
  // Effective CPU efficiency drops with the overcommit ratio; CPU priority
  // is irrelevant because the stall is in the paging path. The constant 8
  // is calibrated so a 1.3× overcommit already collapses host usage by >70 %,
  // matching the qualitative observation of the paper's Solaris runs.
  const double overcommit = result.overcommit_ratio - 1.0;
  const double efficiency = 1.0 / (1.0 + 8.0 * overcommit);
  const double thrash_reduction = 1.0 - efficiency;
  result.reduction_nice0 = std::max(cpu_nice0, thrash_reduction);
  result.reduction_nice19 = std::max(cpu_nice19, thrash_reduction);
  return result;
}

}  // namespace fgcs
