// Minimal discrete-event simulation core.
//
// Used by the machine-level FGCS simulation (src/ishare) to drive periodic
// monitor sampling, guest-job lifecycle events, and revocations on one
// deterministic clock. Events at equal timestamps run in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.hpp"
#include "util/time.hpp"

namespace fgcs {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `callback` at absolute time `t` (must not be in the past).
  void schedule_at(SimTime t, Callback callback);

  /// Schedules `callback` `delay` seconds from now.
  void schedule_in(SimTime delay, Callback callback);

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

  /// Runs the next event; returns false if none are pending.
  bool step();

  /// Runs all events with time ≤ `t`, then advances the clock to `t`.
  void run_until(SimTime t);

  /// Runs until the queue drains. Returns the number of events processed.
  std::size_t run_all();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // stable tie-break: earlier scheduling runs first
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace fgcs
