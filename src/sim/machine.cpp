#include "sim/machine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fgcs {

const char* to_string(GuestStatus status) {
  switch (status) {
    case GuestStatus::kNone: return "none";
    case GuestStatus::kRunningDefault: return "running(default)";
    case GuestStatus::kRunningReniced: return "running(reniced)";
    case GuestStatus::kSuspended: return "suspended";
    case GuestStatus::kCompleted: return "completed";
    case GuestStatus::kKilled: return "killed";
  }
  return "?";
}

SimulatedMachine::SimulatedMachine(std::string machine_id, int total_mem_mb,
                                   Thresholds thresholds,
                                   SimTime sampling_period,
                                   std::unique_ptr<HostSignal> signal)
    : machine_id_(std::move(machine_id)),
      total_mem_mb_(total_mem_mb),
      thresholds_(thresholds),
      sampling_period_(sampling_period),
      signal_(std::move(signal)) {
  validate(thresholds_);
  FGCS_REQUIRE(total_mem_mb > 0);
  FGCS_REQUIRE(sampling_period > 0);
  FGCS_REQUIRE_MSG(signal_ != nullptr, "machine needs a host signal");
}

void SimulatedMachine::submit_guest(const GuestJobSpec& job) {
  FGCS_REQUIRE_MSG(!guest_active(), "only one guest runs at a time");
  FGCS_REQUIRE(job.cpu_seconds > 0);
  FGCS_REQUIRE(job.mem_mb > 0);
  guest_job_ = job;
  guest_status_ = GuestStatus::kRunningDefault;
  guest_failure_.reset();
  guest_progress_seconds_ = 0.0;
  over_th2_since_ = -1;
}

bool SimulatedMachine::guest_active() const {
  return guest_status_ == GuestStatus::kRunningDefault ||
         guest_status_ == GuestStatus::kRunningReniced ||
         guest_status_ == GuestStatus::kSuspended;
}

void SimulatedMachine::clear_guest() {
  FGCS_REQUIRE_MSG(!guest_active(), "cannot clear a live guest");
  guest_job_.reset();
  guest_status_ = GuestStatus::kNone;
  guest_failure_.reset();
  guest_progress_seconds_ = 0.0;
  over_th2_since_ = -1;
}

void SimulatedMachine::kill_guest(State failure) {
  guest_status_ = GuestStatus::kKilled;
  guest_failure_ = failure;
  over_th2_since_ = -1;
}

ResourceSample SimulatedMachine::step(SimTime now) {
  const HostSignal::Tick tick = signal_->tick(now);

  ResourceSample sample;
  sample.host_load_pct = pack_load_pct(tick.host_load);
  sample.free_mem_mb = pack_mem_mb(std::max(0.0, tick.free_mem_mb));
  sample.set_up(tick.up);

  if (!guest_active()) return sample;

  // URR: revocation loses the guest outright.
  if (!tick.up) {
    kill_guest(State::kS5);
    return sample;
  }
  // UEC by memory: thrashing must be avoided, independent of priority.
  if (tick.free_mem_mb < static_cast<double>(guest_job_->mem_mb)) {
    kill_guest(State::kS4);
    return sample;
  }

  // UEC by CPU: manage the guest priority per the thresholds.
  const double load = tick.host_load;
  if (load > thresholds_.th2) {
    if (over_th2_since_ < 0) over_th2_since_ = now;
    guest_status_ = GuestStatus::kSuspended;
    if (now - over_th2_since_ >= thresholds_.transient_limit) {
      kill_guest(State::kS3);
      return sample;
    }
    return sample;  // suspended guests make no progress
  }
  over_th2_since_ = -1;
  guest_status_ = load >= thresholds_.th1 ? GuestStatus::kRunningReniced
                                          : GuestStatus::kRunningDefault;

  // The guest soaks the cycles the hosts leave idle.
  const double idle = std::max(0.0, 1.0 - load);
  guest_progress_seconds_ += idle * static_cast<double>(sampling_period_);
  if (guest_progress_seconds_ >= guest_job_->cpu_seconds) {
    guest_status_ = GuestStatus::kCompleted;
    over_th2_since_ = -1;
  }
  return sample;
}

}  // namespace fgcs
