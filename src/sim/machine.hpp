// Coarse-grained (one monitor tick) FGCS machine simulation.
//
// A SimulatedMachine consumes a per-tick host resource signal (load, free
// memory, liveness — produced by src/workload generators) and manages a guest
// process through the paper's lifecycle:
//
//   load < Th1          → guest runs at default priority        (S1)
//   Th1 ≤ load ≤ Th2    → guest is reniced to lowest priority   (S2)
//   load > Th2          → guest is suspended; if the excursion
//                         outlasts the transient limit, killed  (S3)
//   free mem < guest WS → guest killed to avoid thrashing       (S4)
//   machine down        → guest lost                            (S5)
//
// The guest accrues CPU progress from the cycles the hosts leave idle; this
// is what the job-management layer (src/ishare) and the proactive-scheduling
// experiments build on.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/states.hpp"
#include "core/thresholds.hpp"
#include "trace/sample.hpp"
#include "util/time.hpp"

namespace fgcs {

/// Per-tick host-side resource signal (implemented by workload generators).
class HostSignal {
 public:
  virtual ~HostSignal() = default;

  struct Tick {
    double host_load = 0.0;       // total host CPU usage, fraction
    double free_mem_mb = 1024.0;  // free memory before any guest
    bool up = true;
  };

  /// Called exactly once per sampling period, with monotonically increasing t.
  virtual Tick tick(SimTime t) = 0;
};

enum class GuestStatus : std::uint8_t {
  kNone,            // no guest submitted
  kRunningDefault,  // running at default priority (S1)
  kRunningReniced,  // running at lowest priority (S2)
  kSuspended,       // transient load spike above Th2
  kCompleted,       // required CPU work finished
  kKilled,          // unrecoverable failure (S3/S4/S5)
};

const char* to_string(GuestStatus status);

struct GuestJobSpec {
  std::string job_id;
  /// CPU seconds of work the job needs on an idle machine.
  double cpu_seconds = 3600.0;
  /// Working-set size; drives the S4 (thrash) rule.
  int mem_mb = 100;
};

class SimulatedMachine {
 public:
  SimulatedMachine(std::string machine_id, int total_mem_mb,
                   Thresholds thresholds, SimTime sampling_period,
                   std::unique_ptr<HostSignal> signal);

  const std::string& machine_id() const { return machine_id_; }
  int total_mem_mb() const { return total_mem_mb_; }
  SimTime sampling_period() const { return sampling_period_; }
  const Thresholds& thresholds() const { return thresholds_; }

  /// Starts a guest job. Only one guest runs at a time (paper §3.2).
  void submit_guest(const GuestJobSpec& job);

  /// True if a guest is present and not yet completed/killed.
  bool guest_active() const;

  GuestStatus guest_status() const { return guest_status_; }

  /// The failure state that killed the guest (set iff status == kKilled).
  std::optional<State> guest_failure() const { return guest_failure_; }

  /// CPU seconds of guest work done so far.
  double guest_progress_seconds() const { return guest_progress_seconds_; }

  const std::optional<GuestJobSpec>& guest_job() const { return guest_job_; }

  /// Removes a completed/killed guest so a new one can be submitted.
  void clear_guest();

  /// Advances one sampling period ending at time `now` and returns the
  /// sample the resource monitor observes (host-side usage only).
  ResourceSample step(SimTime now);

 private:
  void kill_guest(State failure);

  std::string machine_id_;
  int total_mem_mb_;
  Thresholds thresholds_;
  SimTime sampling_period_;
  std::unique_ptr<HostSignal> signal_;

  std::optional<GuestJobSpec> guest_job_;
  GuestStatus guest_status_ = GuestStatus::kNone;
  std::optional<State> guest_failure_;
  double guest_progress_seconds_ = 0.0;
  SimTime over_th2_since_ = -1;  // start of the current >Th2 excursion
};

}  // namespace fgcs
