// Millisecond-scale single-CPU time-sharing scheduler simulation.
//
// This is the substrate for the paper's §3.2 contention study: it replays the
// behaviour of a 2005-era Linux/Unix priority scheduler closely enough that
// the two availability thresholds (Th1, Th2) emerge from measurement, the way
// they did on the authors' testbed.
//
// Model (documented in DESIGN.md):
//   * Processes alternate CPU bursts (exponential, mean `burst_ms`) and
//     sleeps sized to hit their isolated duty cycle. CPU-bound processes
//     never sleep.
//   * Each nice level has a timeslice: base_timeslice at nice 0 shrinking
//     linearly to min_timeslice at nice 19 (the O(1)-scheduler rule).
//   * Selection: the runnable process with the lowest nice wins; equals are
//     round-robin.
//   * Preemption on wakeup:
//       - strictly higher static priority (lower nice) preempts at the next
//         timer tick — the waker waits the running task's residual tick;
//       - equal priority preempts immediately only if the waker is
//         "interactive" (sleep fraction ≥ interactive_sleep_frac), mirroring
//         the dynamic-priority bonus of the era's kernels; otherwise the
//         waker queues behind the running task's remaining timeslice.
//
// The second rule produces Th1 (a default-priority guest starts hurting hosts
// whose duty exceeds 1 − interactive_sleep_frac); the first produces Th2 (a
// reniced guest's residual-tick latency becomes a >5 % tax once host duty is
// high enough).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fgcs {

struct SchedParams {
  double tick_ms = 10.0;            // timer-tick preemption granularity
  double base_timeslice_ms = 100.0; // nice 0
  double min_timeslice_ms = 10.0;   // nice 19 (one timer tick)
  double interactive_sleep_frac = 0.8;

  double timeslice_ms(int nice) const {
    const double t = base_timeslice_ms -
                     (base_timeslice_ms - min_timeslice_ms) * nice / 19.0;
    return t < min_timeslice_ms ? min_timeslice_ms : t;
  }
};

struct SchedProcessSpec {
  std::string name;
  /// Isolated CPU usage in (0, 1]; 1.0 means CPU-bound (never sleeps).
  double duty = 1.0;
  /// Mean CPU burst per busy period, milliseconds.
  double burst_ms = 50.0;
  int nice = 0;
};

struct ProcessUsage {
  std::string name;
  int nice = 0;
  double cpu_seconds = 0.0;
  /// Achieved CPU usage over the simulated interval.
  double usage = 0.0;
};

class CpuSchedulerSim {
 public:
  explicit CpuSchedulerSim(SchedParams params = {}, std::uint64_t seed = 1);

  /// Adds a process; returns its index. Call before run().
  std::size_t add_process(const SchedProcessSpec& spec);

  /// Simulates `seconds` of wall-clock time from scratch.
  void run(double seconds);

  /// Per-process achieved usage over the last run().
  std::vector<ProcessUsage> usages() const;

  /// Sum of achieved usage over processes whose index satisfies `pred`,
  /// e.g. the host group's total load.
  double total_usage(const std::vector<std::size_t>& indices) const;

  double simulated_seconds() const { return simulated_seconds_; }

 private:
  enum class ProcState : std::uint8_t { kRunnable, kRunning, kSleeping };

  struct Process {
    SchedProcessSpec spec;
    ProcState state = ProcState::kRunnable;
    double remaining_burst_ms = 0.0;
    double remaining_slice_ms = 0.0;
    double wake_time_ms = 0.0;   // valid while sleeping
    double cpu_ms = 0.0;
    std::uint64_t queued_seq = 0;  // FIFO order within a nice level
    bool interactive = false;
  };

  std::size_t pick_next() const;  // index into processes_, or npos
  void start_running(std::size_t idx, double now_ms);
  double draw_burst_ms(const Process& p);
  double draw_sleep_ms(const Process& p, double burst_ms);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  SchedParams params_;
  Rng rng_;
  std::vector<Process> processes_;
  double simulated_seconds_ = 0.0;
  std::uint64_t seq_counter_ = 0;
};

}  // namespace fgcs
