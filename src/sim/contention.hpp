// The paper's §3.2 empirical contention study, as a reusable harness.
//
// CPU experiments (§3.2.1): run an aggregated host group (isolated CPU usages
// summing to a target L_H) alone and together with a CPU-bound guest at a
// given priority, and measure the reduction rate of total host CPU usage.
// Sweeping L_H locates the two thresholds Th1/Th2 — the lowest L_H at which a
// default-priority / reniced guest causes noticeable (>5 %) host slowdown.
//
// CPU+memory experiments (§3.2.2): SPEC-like guests (29–193 MB working sets)
// against Musbus-like interactive host workloads on a 384 MB machine;
// thrashing occurs iff the total working set exceeds physical memory and is
// independent of CPU priority.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/cpu_scheduler.hpp"

namespace fgcs {

struct ContentionResult {
  double target_host_load = 0.0;    // requested Σ isolated duty
  double isolated_host_load = 0.0;  // measured, host group alone
  double host_load_with_guest = 0.0;
  double guest_usage = 0.0;
  /// (isolated − with_guest) / isolated.
  double reduction_rate = 0.0;
};

class ContentionStudy {
 public:
  explicit ContentionStudy(SchedParams params = {}, std::uint64_t seed = 42);

  /// One experiment: host group of `group_size` processes whose isolated
  /// duties sum to `host_load`, plus (optionally) a CPU-bound guest at
  /// `guest_nice`. `seconds` of simulated time per run.
  ContentionResult run(double host_load, int group_size,
                       std::optional<int> guest_nice,
                       double seconds = 300.0);

  /// Sweeps `loads` (ascending) and returns the lowest L_H whose measured
  /// reduction rate exceeds `slowdown_threshold`; empty if none does.
  /// Each load point averages `repeats` independent host groups — single
  /// runs are noisy enough near the threshold to make the crossing jumpy.
  std::optional<double> find_threshold(std::span<const double> loads,
                                       int group_size, int guest_nice,
                                       double slowdown_threshold,
                                       double seconds = 300.0,
                                       int repeats = 3);

 private:
  std::vector<SchedProcessSpec> make_host_group(double host_load,
                                                int group_size);

  SchedParams params_;
  Rng rng_;
};

// --- memory contention ------------------------------------------------------

struct MemoryContentionSetup {
  double host_cpu_duty = 0.3;   // Musbus-like interactive load
  int host_mem_mb = 100;
  int guest_mem_mb = 64;        // SPEC-like working set
  int machine_mem_mb = 384;     // the paper's Solaris testbed
  int kernel_mem_mb = 48;
};

struct MemoryContentionResult {
  bool thrashing = false;
  double overcommit_ratio = 0.0;   // demanded / available physical memory
  double reduction_nice0 = 0.0;    // host CPU usage reduction, guest at nice 0
  double reduction_nice19 = 0.0;   // …and at nice 19
};

/// Runs the §3.2.2 experiment. When the combined working set exceeds physical
/// memory, paging I/O stalls every process: host CPU usage collapses by a
/// factor driven by the overcommit ratio, independent of guest priority
/// (changing CPU priority does not stop page faults). Otherwise the result
/// reduces to the CPU-only contention numbers.
MemoryContentionResult run_memory_contention(const MemoryContentionSetup& setup,
                                             SchedParams params = {},
                                             std::uint64_t seed = 42);

}  // namespace fgcs
