#include "sim/cpu_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace fgcs {

namespace {
constexpr double kInfMs = std::numeric_limits<double>::infinity();
// Event-time granularity. Residual bursts/slices below this are treated as
// finished. It must stay far above the double ULP of the largest simulated
// timestamp (hours in ms ~ 1e7, ULP ~ 2e-9), or sub-ULP residuals make the
// loop spin without advancing time.
constexpr double kEpsMs = 1e-6;
}

CpuSchedulerSim::CpuSchedulerSim(SchedParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  FGCS_REQUIRE(params.tick_ms > 0);
  FGCS_REQUIRE(params.min_timeslice_ms > 0);
  FGCS_REQUIRE(params.base_timeslice_ms >= params.min_timeslice_ms);
  FGCS_REQUIRE(params.interactive_sleep_frac > 0 &&
               params.interactive_sleep_frac <= 1);
}

std::size_t CpuSchedulerSim::add_process(const SchedProcessSpec& spec) {
  FGCS_REQUIRE_MSG(spec.duty > 0.0 && spec.duty <= 1.0,
                   "duty must be in (0, 1]");
  FGCS_REQUIRE(spec.burst_ms > 0.0);
  FGCS_REQUIRE_MSG(spec.nice >= 0 && spec.nice <= 19,
                   "nice must be 0..19 (guest priorities only get lowered)");
  Process p;
  p.spec = spec;
  // Strict comparison: a host at exactly the boundary duty (paper: 20 %) no
  // longer earns the interactivity bonus, so Th1 lands *at* that load.
  p.interactive = (1.0 - spec.duty) > params_.interactive_sleep_frac;
  processes_.push_back(std::move(p));
  return processes_.size() - 1;
}

double CpuSchedulerSim::draw_burst_ms(const Process& p) {
  if (p.spec.duty >= 1.0) return kInfMs;  // CPU-bound: one endless burst
  return std::max(rng_.exponential(p.spec.burst_ms), 1e-3);
}

double CpuSchedulerSim::draw_sleep_ms(const Process& p, double burst_ms) {
  // Sleep sized so the long-run duty matches the spec, with ±20 % jitter so
  // independent processes do not phase-lock.
  const double ratio = (1.0 - p.spec.duty) / p.spec.duty;
  return std::max(burst_ms * ratio * rng_.uniform(0.8, 1.2), 1e-3);
}

std::size_t CpuSchedulerSim::pick_next() const {
  std::size_t best = npos;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    const Process& p = processes_[i];
    if (p.state != ProcState::kRunnable) continue;
    if (best == npos) {
      best = i;
      continue;
    }
    const Process& b = processes_[best];
    if (p.spec.nice < b.spec.nice ||
        (p.spec.nice == b.spec.nice && p.queued_seq < b.queued_seq))
      best = i;
  }
  return best;
}

void CpuSchedulerSim::start_running(std::size_t idx, double now_ms) {
  (void)now_ms;
  Process& p = processes_[idx];
  p.state = ProcState::kRunning;
  if (p.remaining_slice_ms <= 0.0)
    p.remaining_slice_ms = params_.timeslice_ms(p.spec.nice);
  if (p.remaining_burst_ms <= 0.0) p.remaining_burst_ms = draw_burst_ms(p);
}

void CpuSchedulerSim::run(double seconds) {
  FGCS_REQUIRE(seconds > 0);
  FGCS_REQUIRE_MSG(!processes_.empty(), "add processes before run()");
  const double end_ms = seconds * 1000.0;

  // Reset and stagger initial phases.
  for (Process& p : processes_) {
    p.cpu_ms = 0.0;
    p.remaining_slice_ms = 0.0;
    p.remaining_burst_ms = draw_burst_ms(p);
    p.queued_seq = seq_counter_++;
    if (p.spec.duty >= 1.0) {
      p.state = ProcState::kRunnable;
    } else {
      p.state = ProcState::kSleeping;
      const double cycle = p.spec.burst_ms / p.spec.duty;
      p.wake_time_ms = rng_.uniform(0.0, cycle);
    }
  }

  double now_ms = 0.0;
  std::size_t running = npos;
  double tick_deadline_ms = kInfMs;  // pending cross-priority preemption

  auto earliest_wake = [&]() {
    double t = kInfMs;
    for (const Process& p : processes_)
      if (p.state == ProcState::kSleeping) t = std::min(t, p.wake_time_ms);
    return t;
  };

  auto wake_due = [&](double t) {
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      Process& p = processes_[i];
      if (p.state != ProcState::kSleeping || p.wake_time_ms > t) continue;
      p.state = ProcState::kRunnable;
      p.queued_seq = seq_counter_++;
      p.remaining_burst_ms = draw_burst_ms(p);
      if (running != npos && running != i) {
        Process& r = processes_[running];
        if (p.spec.nice < r.spec.nice) {
          // Strictly higher priority: preempt at the next timer tick.
          const double next_tick =
              std::ceil(t / params_.tick_ms) * params_.tick_ms;
          tick_deadline_ms =
              std::min(tick_deadline_ms, std::max(next_tick, t));
        } else if (p.spec.nice == r.spec.nice && p.interactive) {
          // Interactive bonus: immediate preemption of an equal-priority task.
          r.state = ProcState::kRunnable;
          r.queued_seq = seq_counter_++;
          running = npos;
        }
      }
    }
  };

  while (now_ms < end_ms) {
    if (running == npos) {
      const std::size_t next = pick_next();
      if (next != npos) {
        start_running(next, now_ms);
        running = next;
        continue;
      }
      // Idle CPU: jump to the next wakeup.
      const double wake = earliest_wake();
      if (wake >= end_ms) break;
      now_ms = std::max(now_ms, wake);
      wake_due(now_ms);
      continue;
    }

    Process& r = processes_[running];
    const double run_end =
        now_ms + std::min(r.remaining_burst_ms, r.remaining_slice_ms);
    const double wake = earliest_wake();
    const double horizon =
        std::min({run_end, wake, tick_deadline_ms, end_ms});

    // Advance time; the running process accumulates CPU.
    const double delta = horizon - now_ms;
    if (delta > 0) {
      r.cpu_ms += delta;
      r.remaining_burst_ms -= delta;
      r.remaining_slice_ms -= delta;
      now_ms = horizon;
    }
    if (now_ms >= end_ms) break;

    if (r.remaining_burst_ms <= kEpsMs && r.spec.duty < 1.0) {
      // Burst complete: go to sleep.
      const double sleep = draw_sleep_ms(r, r.spec.burst_ms);
      r.state = ProcState::kSleeping;
      r.wake_time_ms = now_ms + sleep;
      r.remaining_burst_ms = 0.0;
      r.remaining_slice_ms = 0.0;
      running = npos;
    } else if (r.remaining_slice_ms <= kEpsMs) {
      // Timeslice expired: round-robin requeue.
      r.state = ProcState::kRunnable;
      r.queued_seq = seq_counter_++;
      r.remaining_slice_ms = 0.0;
      running = npos;
    }

    if (now_ms >= tick_deadline_ms - kEpsMs) {
      // Cross-priority preemption point: hand the CPU to the best runnable.
      tick_deadline_ms = kInfMs;
      if (running != npos) {
        Process& victim = processes_[running];
        victim.state = ProcState::kRunnable;
        victim.queued_seq = seq_counter_++;
        running = npos;
      }
    }

    wake_due(now_ms);
  }

  simulated_seconds_ = seconds;
}

std::vector<ProcessUsage> CpuSchedulerSim::usages() const {
  FGCS_REQUIRE_MSG(simulated_seconds_ > 0, "run() before usages()");
  std::vector<ProcessUsage> out;
  out.reserve(processes_.size());
  for (const Process& p : processes_) {
    ProcessUsage u;
    u.name = p.spec.name;
    u.nice = p.spec.nice;
    u.cpu_seconds = p.cpu_ms / 1000.0;
    u.usage = u.cpu_seconds / simulated_seconds_;
    out.push_back(std::move(u));
  }
  return out;
}

double CpuSchedulerSim::total_usage(const std::vector<std::size_t>& indices) const {
  const std::vector<ProcessUsage> all = usages();
  double total = 0.0;
  for (const std::size_t i : indices) {
    FGCS_REQUIRE(i < all.size());
    total += all[i].usage;
  }
  return total;
}

}  // namespace fgcs
