#include "net/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "net/client.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs::net {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xff;
    hash *= kFnvPrime;
  }
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Zipf(θ) CDF over ranks 1..n: mass(k) ∝ 1/k^θ. O(n) once per plan;
/// sampling is a binary search per draw.
std::vector<double> zipf_cdf(std::size_t n, double theta) {
  std::vector<double> cdf(n);
  double total = 0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf[k] = total;
  }
  for (double& value : cdf) value /= total;
  cdf.back() = 1.0;  // guard against rounding leaving the tail unreachable
  return cdf;
}

std::uint32_t zipf_draw(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.uniform();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::uint32_t>(
      std::min<std::ptrdiff_t>(it - cdf.begin(),
                               static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

double percentile_ms(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

std::uint64_t LoadgenPlan::digest() const {
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, windows.size());
  for (const LoadgenWindow& window : windows) {
    fnv_mix(hash, static_cast<std::uint64_t>(window.start_of_day));
    fnv_mix(hash, static_cast<std::uint64_t>(window.length));
  }
  fnv_mix(hash, ops.size());
  for (const LoadgenOp& op : ops) {
    fnv_mix(hash, double_bits(op.scheduled));
    fnv_mix(hash, op.connection);
    fnv_mix(hash, op.reconnect ? 1 : 0);
    fnv_mix(hash, op.window);
    fnv_mix(hash, op.keys.size());
    for (const std::uint32_t key : op.keys) fnv_mix(hash, key);
  }
  return hash;
}

LoadgenPlan build_plan(const LoadgenConfig& config) {
  FGCS_REQUIRE(config.key_count >= 1);
  FGCS_REQUIRE(config.connections >= 1);
  FGCS_REQUIRE(config.batch_min >= 1 && config.batch_min <= config.batch_max);
  FGCS_REQUIRE(config.distinct_windows >= 1);
  FGCS_REQUIRE(config.zipf_theta >= 0);

  Rng rng(config.seed);
  LoadgenPlan plan;

  plan.windows.reserve(config.distinct_windows);
  for (std::size_t i = 0; i < config.distinct_windows; ++i) {
    // Daytime-ish windows, 1..4 hours: comfortably inside one day, so no
    // wrap-midnight edge cases dilute what the load test measures.
    const SimTime start_hour = rng.uniform_int(5, 19);
    const SimTime hours = rng.uniform_int(1, 4);
    plan.windows.push_back(
        LoadgenWindow{.start_of_day = start_hour * kSecondsPerHour,
                      .length = hours * kSecondsPerHour});
  }

  const std::vector<double> cdf = zipf_cdf(config.key_count, config.zipf_theta);
  const bool paced = config.offered_rate > 0;
  const double mean_gap = paced ? 1.0 / config.offered_rate : 0.0;

  plan.ops.reserve(config.total_ops);
  double clock = 0;
  for (std::size_t i = 0; i < config.total_ops; ++i) {
    if (paced) clock += rng.exponential(mean_gap);
    LoadgenOp op;
    op.scheduled = paced ? clock : 0.0;
    op.connection = static_cast<std::uint32_t>(i % config.connections);
    op.reconnect =
        config.reconnect_prob > 0 && rng.chance(config.reconnect_prob);
    op.window = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config.distinct_windows) - 1));
    const std::size_t batch = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(config.batch_min),
                        static_cast<std::int64_t>(config.batch_max)));
    op.keys.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b)
      op.keys.push_back(zipf_draw(cdf, rng));
    plan.ops.push_back(std::move(op));
  }
  plan.horizon = clock;
  return plan;
}

LoadgenResult run_plan(const LoadgenConfig& config, const LoadgenPlan& plan,
                       const std::string& host, std::uint16_t port,
                       const std::vector<std::string>& keys) {
  FGCS_REQUIRE_MSG(keys.size() == config.key_count,
                   "run_plan: keys must match config.key_count");
  using Clock = std::chrono::steady_clock;
  const bool paced = config.offered_rate > 0;

  // Deal each connection its in-order slice of the global schedule.
  std::vector<std::vector<const LoadgenOp*>> per_conn(config.connections);
  for (const LoadgenOp& op : plan.ops)
    per_conn[op.connection].push_back(&op);

  struct WorkerResult {
    std::vector<double> latencies_ms;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::uint64_t predictions = 0;
    Clock::time_point last_done{};
  };
  std::vector<WorkerResult> results(config.connections);

  const Clock::time_point start = Clock::now() + std::chrono::milliseconds(5);
  std::vector<std::thread> workers;
  workers.reserve(config.connections);
  for (unsigned c = 0; c < config.connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& mine = results[c];
      mine.latencies_ms.reserve(per_conn[c].size());
      ClientConfig client_config;
      client_config.host = host;
      client_config.port = port;
      // The harness measures, it does not heal: one attempt, and failures
      // are counted instead of silently retried at the wrong arrival time.
      client_config.max_attempts = 1;
      PredictionClient client(client_config);
      std::vector<WireRequestItem> items;
      for (const LoadgenOp* op : per_conn[c]) {
        const Clock::time_point scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(op->scheduled));
        if (paced) std::this_thread::sleep_until(scheduled);
        if (op->reconnect) client.close();
        items.clear();
        const LoadgenWindow& window = plan.windows[op->window];
        for (const std::uint32_t key : op->keys)
          items.push_back(WireRequestItem{
              .machine_key = keys[key],
              .request = {.target_day = config.target_day,
                          .window = {.start_of_day = window.start_of_day,
                                     .length = window.length}}});
        // Paced: latency from the *scheduled* arrival (CO-safe). Saturating:
        // from the actual send — there is no arrival clock.
        const Clock::time_point measured_from =
            paced ? scheduled : Clock::now();
        try {
          const std::vector<Prediction> batch = client.predict_batch(items);
          const Clock::time_point done = Clock::now();
          mine.predictions += batch.size();
          ++mine.completed;
          mine.last_done = done;
          mine.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(done - measured_from)
                  .count());
        } catch (const DataError&) {
          ++mine.failed;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  LoadgenResult result;
  result.ops = plan.ops.size();
  std::vector<double> all;
  all.reserve(plan.ops.size());
  Clock::time_point last = start;
  for (const WorkerResult& worker : results) {
    result.completed += worker.completed;
    result.failed += worker.failed;
    result.predictions += worker.predictions;
    all.insert(all.end(), worker.latencies_ms.begin(),
               worker.latencies_ms.end());
    if (worker.completed > 0 && worker.last_done > last)
      last = worker.last_done;
  }
  std::sort(all.begin(), all.end());
  result.wall_seconds =
      std::chrono::duration<double>(last - start).count();
  result.achieved_rate =
      result.wall_seconds > 0
          ? static_cast<double>(result.completed) / result.wall_seconds
          : 0;
  result.p50_ms = percentile_ms(all, 0.50);
  result.p99_ms = percentile_ms(all, 0.99);
  result.p999_ms = percentile_ms(all, 0.999);
  result.max_ms = all.empty() ? 0 : all.back();
  return result;
}

}  // namespace fgcs::net
