// Minimal epoll event loop — the single-threaded reactor under
// PredictionServer (DESIGN.md §9).
//
// One EventLoop owns one epoll instance plus an eventfd used only to wake a
// blocked poll. Registered fds carry a callback invoked with the ready
// event mask; all registration and dispatch happen on the loop's thread
// (or before run() starts) — the *only* cross-thread entry point is stop(),
// which is async-signal-light: it writes the eventfd and sets an atomic.
//
// Dispatch is level-triggered. That choice is load-bearing for the
// fault-injection story: when net.read.short caps a connection's reads to a
// few bytes per event, the remaining buffered bytes re-arm the fd
// immediately, so progress continues without any explicit re-queue logic.
//
// A callback may remove its own fd (or any other) mid-dispatch: the loop
// re-checks registration before invoking each callback of the batch and
// holds a shared_ptr to the one it is running, so removal is safe at any
// point.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

namespace fgcs::net {

class EventLoop {
 public:
  /// Called with the epoll event mask (EPOLLIN | EPOLLOUT | EPOLLHUP | …).
  using Handler = std::function<void(std::uint32_t)>;

  /// Throws DataError when the epoll or wake fd cannot be created.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN etc.). The fd is not owned: the
  /// caller closes it after remove(). Throws DataError on epoll failure.
  void add(int fd, std::uint32_t events, Handler handler);

  /// Changes the interest mask of a registered fd.
  void modify(int fd, std::uint32_t events);

  /// Unregisters; no-op when the fd is not registered.
  void remove(int fd);

  bool contains(int fd) const { return handlers_.count(fd) > 0; }

  /// Registered fds (excluding the internal wake fd).
  std::size_t size() const { return handlers_.size(); }

  /// Waits up to `timeout_ms` (-1 = forever) and dispatches ready handlers.
  /// Returns the number of handlers invoked (0 on timeout or wake-only).
  int poll(int timeout_ms);

  /// poll(-1) until stop() is called.
  void run();

  /// Thread-safe: wakes a blocked poll and makes run() return. A stopped
  /// loop can be run() again after the flag is observed (run() clears it).
  void stop();

 private:
  void drain_wake_fd();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;
};

}  // namespace fgcs::net
