// Lock-free multi-producer single-consumer handoff queue (DESIGN.md §9).
//
// The multi-reactor PredictionServer uses one of these per reactor as its
// inbox: thread-pool workers finishing a predict_batch push completion
// nodes from any thread, the accept thread (in hand-off mode) pushes
// freshly accepted connections, and the owning reactor drains the queue on
// an eventfd wake — always on its own thread, so everything a node carries
// is handed over with no further synchronization.
//
// The structure is an intrusive Treiber stack with a drain-all consumer:
//
//   push    one atomic exchange on the head (wait-free for producers)
//   drain   one atomic exchange to nullptr, then a list reversal
//
// The reversal converts the stack's LIFO chain into FIFO order of the
// *push linearization points*, so a single producer's nodes are always
// consumed in the order it pushed them — which is what keeps per-connection
// response ordering intact when a connection pipelines requests.
//
// Ownership: nodes are heap-allocated by producers and freed by the
// consumer after processing. The queue itself never allocates. take_all()
// on destruction-bound shutdown paths lets the owner reclaim stragglers.
#pragma once

#include <atomic>

namespace fgcs::net {

/// T must expose an intrusive `T* next` member. Producers allocate, the
/// consumer frees.
template <typename T>
class MpscQueue {
 public:
  MpscQueue() = default;
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Thread-safe, wait-free. Returns true when the queue was empty — the
  /// producer that tips empty→non-empty is the one that must wake the
  /// consumer (callers still waking unconditionally stay correct, just
  /// noisier).
  bool push(T* node) {
    T* head = head_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!head_.compare_exchange_weak(head, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    return head == nullptr;
  }

  /// Consumer only: detaches everything pushed so far and returns it in
  /// FIFO push order (oldest first), linked through `next`; nullptr when
  /// empty. The caller owns (and must free) the returned nodes.
  T* take_all() {
    T* chain = head_.exchange(nullptr, std::memory_order_acquire);
    T* fifo = nullptr;
    while (chain != nullptr) {
      T* node = chain;
      chain = chain->next;
      node->next = fifo;
      fifo = node;
    }
    return fifo;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<T*> head_{nullptr};
};

}  // namespace fgcs::net
