#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace fgcs::net {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                            Clock::now())
          .count();
  return left <= 0 ? 0 : static_cast<int>(std::min<long long>(left, 60'000));
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw DataError("net client: " + what + ": " + std::strerror(errno));
}

}  // namespace

PredictionClient::PredictionClient(ClientConfig config)
    : config_(std::move(config)), backoff_rng_(config_.backoff.backoff_seed) {
  FGCS_REQUIRE(config_.port != 0);
  FGCS_REQUIRE(config_.max_attempts >= 1);
  FGCS_REQUIRE(config_.connect_timeout > 0.0 && config_.request_timeout > 0.0);
}

PredictionClient::~PredictionClient() { close(); }

void PredictionClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Prediction PredictionClient::predict(const WireRequestItem& item) {
  return predict_batch({&item, 1}).front();
}

template <typename Result, typename Attempt>
Result PredictionClient::with_retries(const char* what, Attempt&& attempt_fn) {
  std::string last_failure = "no attempts made";
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      // The scheduler helper computes min(cap, base·factor^retry) with
      // seeded jitter; its SimTime result is read here as milliseconds.
      const SimTime pause_ms =
          retry_backoff_delay(config_.backoff, attempt - 1, backoff_rng_);
      std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
    }
    ++stats_.attempts;
    try {
      return attempt_fn();
    } catch (const WrongShardError&) {
      // Not a failure at all: the server answered completely (the stream is
      // still in sync, so the socket stays open) and the answer is "ask the
      // ring". Routing is the sharded client's job, not this retry loop's.
      throw;
    } catch (const RemoteError&) {
      // The server rejected the call itself — retrying identical bytes
      // cannot succeed, so surface it now.
      close();
      throw;
    } catch (const DataError& error) {
      // Transport-level failures (and retryable server rejections) retry:
      // both prediction batches and sample appends are idempotent.
      last_failure = error.what();
      close();
    }
  }
  throw DataError(std::string("net client: ") + what + " failed after " +
                  std::to_string(config_.max_attempts) +
                  " attempts; last: " + last_failure);
}

std::vector<Prediction> PredictionClient::predict_batch(
    std::span<const WireRequestItem> items) {
  ++stats_.batches;
  const std::string what = "batch of " + std::to_string(items.size());
  return with_retries<std::vector<Prediction>>(
      what.c_str(), [&] { return attempt_once(items); });
}

WireAppendAck PredictionClient::append_samples(
    const WireAppendRequest& request) {
  ++stats_.appends;
  const std::string what =
      "append of " + std::to_string(request.samples.size()) + " samples";
  return with_retries<WireAppendAck>(
      what.c_str(), [&] { return attempt_append_once(request); });
}

std::vector<Prediction> PredictionClient::attempt_once(
    std::span<const WireRequestItem> items) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config_.request_timeout));
  ensure_connected();
  send_all(encode_frame(FrameType::kRequest, encode_request(items)), deadline);
  const Frame frame = read_frame(deadline);
  switch (frame.type) {
    case FrameType::kResponse: {
      std::vector<Prediction> results = decode_response(frame.payload);
      if (results.size() != items.size())
        throw DataError("net client: response carries " +
                        std::to_string(results.size()) + " predictions for " +
                        std::to_string(items.size()) + " requests");
      return results;
    }
    case FrameType::kError: {
      ++stats_.server_errors;
      const WireError error = decode_error(frame.payload);
      if (!error.retryable)
        throw RemoteError("net client: server rejected request: " +
                          error.message);
      throw DataError("net client: server error: " + error.message);
    }
    case FrameType::kWrongShard:
      ++stats_.wrong_shards;
      throw WrongShardError(decode_wrong_shard(frame.payload));
    case FrameType::kRequest:
    case FrameType::kAppendSamples:
    case FrameType::kAppendAck:
    case FrameType::kGossipSync:
    case FrameType::kGossipAck:
      break;
  }
  throw DataError("net client: unexpected frame type from server");
}

WireAppendAck PredictionClient::attempt_append_once(
    const WireAppendRequest& request) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config_.request_timeout));
  ensure_connected();
  send_all(encode_frame(FrameType::kAppendSamples, encode_append(request)),
           deadline);
  const Frame frame = read_frame(deadline);
  switch (frame.type) {
    case FrameType::kAppendAck:
      return decode_append_ack(frame.payload);
    case FrameType::kError: {
      ++stats_.server_errors;
      const WireError error = decode_error(frame.payload);
      if (!error.retryable)
        throw RemoteError("net client: server rejected append: " +
                          error.message);
      // Retryable without a transport fault (injected drop, rollup
      // failure): with_retries still closes and reconnects, which the
      // append's idempotence makes safe.
      throw DataError("net client: server error: " + error.message);
    }
    case FrameType::kRequest:
    case FrameType::kResponse:
    case FrameType::kAppendSamples:
    case FrameType::kGossipSync:
    case FrameType::kGossipAck:
    case FrameType::kWrongShard:
      break;
  }
  throw DataError("net client: unexpected frame type from server");
}

GossipMessage PredictionClient::gossip_sync(const GossipMessage& sync) {
  ++stats_.gossips;
  const std::string what =
      "gossip sync of " + std::to_string(sync.members.size()) + " members";
  return with_retries<GossipMessage>(
      what.c_str(), [&] { return attempt_gossip_once(sync); });
}

GossipMessage PredictionClient::attempt_gossip_once(const GossipMessage& sync) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config_.request_timeout));
  ensure_connected();
  send_all(encode_frame(FrameType::kGossipSync, encode_gossip(sync)), deadline);
  const Frame frame = read_frame(deadline);
  switch (frame.type) {
    case FrameType::kGossipAck:
      return decode_gossip(frame.payload);
    case FrameType::kError: {
      ++stats_.server_errors;
      const WireError error = decode_error(frame.payload);
      if (!error.retryable)
        throw RemoteError("net client: server rejected gossip: " +
                          error.message);
      throw DataError("net client: server error: " + error.message);
    }
    case FrameType::kRequest:
    case FrameType::kResponse:
    case FrameType::kAppendSamples:
    case FrameType::kAppendAck:
    case FrameType::kGossipSync:
    case FrameType::kWrongShard:
      break;
  }
  throw DataError("net client: unexpected frame type from server");
}

void PredictionClient::ensure_connected() {
  if (fd_ >= 0) return;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  ++stats_.reconnects;

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &address.sin_addr) != 1)
    throw DataError("net client: invalid server address " + config_.host);

  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config_.connect_timeout));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    wait_io(/*for_write=*/true, deadline, "connect");
    int error = 0;
    socklen_t error_len = sizeof(error);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &error_len) != 0 ||
        error != 0)
      throw DataError("net client: connect failed: " +
                      std::string(std::strerror(error ? error : errno)));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void PredictionClient::send_all(std::span<const std::uint8_t> bytes,
                                Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_io(/*for_write=*/true, deadline, "send");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

Frame PredictionClient::read_frame(Clock::time_point deadline) {
  FrameDecoder decoder;
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    if (std::optional<Frame> frame = decoder.next()) return *frame;
    wait_io(/*for_write=*/false, deadline, "response");
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n == 0) throw DataError("net client: connection closed by server");
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      throw_errno("read");
    }
    decoder.feed({buffer, static_cast<std::size_t>(n)});
  }
}

// ---------------------------------------------------------------------------
// ShardedPredictionClient

namespace {

/// Registry-owned counters for client-side ring routing (DESIGN.md §8
/// idiom; shared across sharded clients like the server's fleet series).
struct RingClientMetrics {
  Counter& hops;
  Counter& refreshes;
  Counter& sub_batches;

  static RingClientMetrics& get() {
    static RingClientMetrics metrics{
        MetricsRegistry::global().counter("registry.ring.hops.total"),
        MetricsRegistry::global().counter("registry.ring.refreshes.total"),
        MetricsRegistry::global().counter("registry.ring.sub_batches.total")};
    return metrics;
  }
};

}  // namespace

ShardedPredictionClient::ShardedPredictionClient(HashRing ring,
                                                 ShardedClientConfig config)
    : ring_(std::move(ring)), config_(std::move(config)) {
  FGCS_REQUIRE_MSG(!ring_.empty(), "sharded client needs a non-empty ring");
  FGCS_REQUIRE(config_.max_forward_hops >= 0);
}

PredictionClient& ShardedPredictionClient::client_for(
    const RingMember& member) {
  FGCS_REQUIRE_MSG(member.port != 0,
                   "ring member " + member.node_id + " has no endpoint");
  const std::string key = member.host + ":" + std::to_string(member.port);
  const auto it = clients_.find(key);
  if (it != clients_.end()) return *it->second;
  ClientConfig config = config_.base;
  config.host = member.host;
  config.port = member.port;
  return *clients_.emplace(key, std::make_unique<PredictionClient>(config))
              .first->second;
}

void ShardedPredictionClient::adopt_ring(HashRing ring) {
  FGCS_REQUIRE_MSG(!ring.empty(), "sharded client needs a non-empty ring");
  ring_ = std::move(ring);
  ++stats_.ring_refreshes;
  RingClientMetrics::get().refreshes.add();
}

Prediction ShardedPredictionClient::predict(const WireRequestItem& item) {
  return predict_batch({&item, 1}).front();
}

std::vector<Prediction> ShardedPredictionClient::predict_batch(
    std::span<const WireRequestItem> items) {
  ++stats_.batches;
  std::vector<Prediction> results(items.size());
  // Items not yet answered, in request order; shrinks as shards answer.
  std::vector<std::size_t> unresolved(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) unresolved[i] = i;

  int hops = 0;
  while (!unresolved.empty()) {
    // Partition the unresolved items by owner, preserving request order
    // within each shard; serve shards in ring-member (id) order so the wire
    // schedule is deterministic for a fixed ring.
    std::map<std::string, std::vector<std::size_t>> by_owner;
    for (const std::size_t index : unresolved) {
      const RingMember* owner = ring_.owner(items[index].machine_key);
      FGCS_REQUIRE_MSG(owner != nullptr, "sharded client ring is empty");
      by_owner[owner->node_id].push_back(index);
    }

    std::optional<HashRing> fresher;
    std::vector<std::size_t> still_unresolved;
    for (auto& [node_id, indices] : by_owner) {
      if (fresher.has_value()) {
        // A hop already invalidated this pass's partition; re-route the
        // rest against the fresher ring instead of asking a stale owner.
        still_unresolved.insert(still_unresolved.end(), indices.begin(),
                                indices.end());
        continue;
      }
      std::vector<WireRequestItem> sub_batch;
      sub_batch.reserve(indices.size());
      for (const std::size_t index : indices) sub_batch.push_back(items[index]);
      ++stats_.sub_batches;
      RingClientMetrics::get().sub_batches.add();
      try {
        const std::vector<Prediction> answered =
            client_for(*ring_.member(node_id)).predict_batch(sub_batch);
        for (std::size_t k = 0; k < indices.size(); ++k)
          results[indices[k]] = answered[k];
      } catch (const WrongShardError& error) {
        ++stats_.wrong_shard_hops;
        RingClientMetrics::get().hops.add();
        fresher = error.ring();
        still_unresolved.insert(still_unresolved.end(), indices.begin(),
                                indices.end());
      }
    }

    if (fresher.has_value()) {
      if (++hops > config_.max_forward_hops)
        throw DataError(
            "net client: wrong-shard forwarding exceeded " +
            std::to_string(config_.max_forward_hops) +
            " hops (rings keep changing under the call)");
      adopt_ring(std::move(*fresher));
    }
    // Keep request order stable across passes for deterministic replay.
    std::sort(still_unresolved.begin(), still_unresolved.end());
    unresolved = std::move(still_unresolved);
  }
  return results;
}

void PredictionClient::wait_io(bool for_write, Clock::time_point deadline,
                               const char* what) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = static_cast<short>(for_write ? POLLOUT : POLLIN);
  for (;;) {
    const int timeout = remaining_ms(deadline);
    if (timeout == 0)
      throw DataError(std::string("net client: timed out waiting for ") +
                      what);
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready > 0) {
      if (pfd.revents & (POLLERR | POLLNVAL))
        throw DataError(std::string("net client: socket error during ") +
                        what);
      return;  // readable/writable (POLLHUP still lets read() see EOF)
    }
    if (ready == 0)
      throw DataError(std::string("net client: timed out waiting for ") +
                      what);
    if (errno != EINTR) throw_errno("poll");
  }
}

}  // namespace fgcs::net
