#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/error.hpp"

namespace fgcs::net {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                            Clock::now())
          .count();
  return left <= 0 ? 0 : static_cast<int>(std::min<long long>(left, 60'000));
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw DataError("net client: " + what + ": " + std::strerror(errno));
}

}  // namespace

PredictionClient::PredictionClient(ClientConfig config)
    : config_(std::move(config)), backoff_rng_(config_.backoff.backoff_seed) {
  FGCS_REQUIRE(config_.port != 0);
  FGCS_REQUIRE(config_.max_attempts >= 1);
  FGCS_REQUIRE(config_.connect_timeout > 0.0 && config_.request_timeout > 0.0);
}

PredictionClient::~PredictionClient() { close(); }

void PredictionClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Prediction PredictionClient::predict(const WireRequestItem& item) {
  return predict_batch({&item, 1}).front();
}

template <typename Result, typename Attempt>
Result PredictionClient::with_retries(const char* what, Attempt&& attempt_fn) {
  std::string last_failure = "no attempts made";
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      // The scheduler helper computes min(cap, base·factor^retry) with
      // seeded jitter; its SimTime result is read here as milliseconds.
      const SimTime pause_ms =
          retry_backoff_delay(config_.backoff, attempt - 1, backoff_rng_);
      std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
    }
    ++stats_.attempts;
    try {
      return attempt_fn();
    } catch (const RemoteError&) {
      // The server rejected the call itself — retrying identical bytes
      // cannot succeed, so surface it now.
      close();
      throw;
    } catch (const DataError& error) {
      // Transport-level failures (and retryable server rejections) retry:
      // both prediction batches and sample appends are idempotent.
      last_failure = error.what();
      close();
    }
  }
  throw DataError(std::string("net client: ") + what + " failed after " +
                  std::to_string(config_.max_attempts) +
                  " attempts; last: " + last_failure);
}

std::vector<Prediction> PredictionClient::predict_batch(
    std::span<const WireRequestItem> items) {
  ++stats_.batches;
  const std::string what = "batch of " + std::to_string(items.size());
  return with_retries<std::vector<Prediction>>(
      what.c_str(), [&] { return attempt_once(items); });
}

WireAppendAck PredictionClient::append_samples(
    const WireAppendRequest& request) {
  ++stats_.appends;
  const std::string what =
      "append of " + std::to_string(request.samples.size()) + " samples";
  return with_retries<WireAppendAck>(
      what.c_str(), [&] { return attempt_append_once(request); });
}

std::vector<Prediction> PredictionClient::attempt_once(
    std::span<const WireRequestItem> items) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config_.request_timeout));
  ensure_connected();
  send_all(encode_frame(FrameType::kRequest, encode_request(items)), deadline);
  const Frame frame = read_frame(deadline);
  switch (frame.type) {
    case FrameType::kResponse: {
      std::vector<Prediction> results = decode_response(frame.payload);
      if (results.size() != items.size())
        throw DataError("net client: response carries " +
                        std::to_string(results.size()) + " predictions for " +
                        std::to_string(items.size()) + " requests");
      return results;
    }
    case FrameType::kError: {
      ++stats_.server_errors;
      const WireError error = decode_error(frame.payload);
      if (!error.retryable)
        throw RemoteError("net client: server rejected request: " +
                          error.message);
      throw DataError("net client: server error: " + error.message);
    }
    case FrameType::kRequest:
    case FrameType::kAppendSamples:
    case FrameType::kAppendAck:
      break;
  }
  throw DataError("net client: unexpected frame type from server");
}

WireAppendAck PredictionClient::attempt_append_once(
    const WireAppendRequest& request) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config_.request_timeout));
  ensure_connected();
  send_all(encode_frame(FrameType::kAppendSamples, encode_append(request)),
           deadline);
  const Frame frame = read_frame(deadline);
  switch (frame.type) {
    case FrameType::kAppendAck:
      return decode_append_ack(frame.payload);
    case FrameType::kError: {
      ++stats_.server_errors;
      const WireError error = decode_error(frame.payload);
      if (!error.retryable)
        throw RemoteError("net client: server rejected append: " +
                          error.message);
      // Retryable without a transport fault (injected drop, rollup
      // failure): with_retries still closes and reconnects, which the
      // append's idempotence makes safe.
      throw DataError("net client: server error: " + error.message);
    }
    case FrameType::kRequest:
    case FrameType::kResponse:
    case FrameType::kAppendSamples:
      break;
  }
  throw DataError("net client: unexpected frame type from server");
}

void PredictionClient::ensure_connected() {
  if (fd_ >= 0) return;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  ++stats_.reconnects;

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &address.sin_addr) != 1)
    throw DataError("net client: invalid server address " + config_.host);

  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config_.connect_timeout));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    wait_io(/*for_write=*/true, deadline, "connect");
    int error = 0;
    socklen_t error_len = sizeof(error);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &error_len) != 0 ||
        error != 0)
      throw DataError("net client: connect failed: " +
                      std::string(std::strerror(error ? error : errno)));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void PredictionClient::send_all(std::span<const std::uint8_t> bytes,
                                Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_io(/*for_write=*/true, deadline, "send");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

Frame PredictionClient::read_frame(Clock::time_point deadline) {
  FrameDecoder decoder;
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    if (std::optional<Frame> frame = decoder.next()) return *frame;
    wait_io(/*for_write=*/false, deadline, "response");
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n == 0) throw DataError("net client: connection closed by server");
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      throw_errno("read");
    }
    decoder.feed({buffer, static_cast<std::size_t>(n)});
  }
}

void PredictionClient::wait_io(bool for_write, Clock::time_point deadline,
                               const char* what) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = static_cast<short>(for_write ? POLLOUT : POLLIN);
  for (;;) {
    const int timeout = remaining_ms(deadline);
    if (timeout == 0)
      throw DataError(std::string("net client: timed out waiting for ") +
                      what);
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready > 0) {
      if (pfd.revents & (POLLERR | POLLNVAL))
        throw DataError(std::string("net client: socket error during ") +
                        what);
      return;  // readable/writable (POLLHUP still lets read() see EOF)
    }
    if (ready == 0)
      throw DataError(std::string("net client: timed out waiting for ") +
                      what);
    if (errno != EINTR) throw_errno("poll");
  }
}

}  // namespace fgcs::net
