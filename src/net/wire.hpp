// Length-prefixed binary wire protocol for networked prediction serving and
// streaming sample ingestion (DESIGN.md §9).
//
// A frame is a fixed 16-byte little-endian header followed by a payload:
//
//   offset  size  field
//        0     4  magic     0x46474353 ("FGCS")
//        4     2  version   kWireVersion (3)
//        6     2  type      1 request | 2 response | 3 error
//                           | 4 append-samples | 5 append-ack
//                           | 6 gossip-sync | 7 gossip-ack | 8 wrong-shard
//        8     4  payload length in bytes (≤ kMaxPayloadBytes)
//       12     4  FNV-1a 32-bit checksum of the payload bytes
//
// Payloads encode BatchRequest spans and Prediction results losslessly:
// every double travels as its IEEE-754 bit pattern (std::bit_cast to
// uint64), so a served Prediction is bit-identical to the in-process one —
// stronger than %.17g text round-tripping, with no parsing ambiguity.
// Integers are fixed-width little-endian; strings are u16-length-prefixed.
//
// Decoding is defensive by contract: every length is validated against both
// the hard limits below and the actual bytes available before any
// allocation or read, trailing bytes are rejected, and malformed input of
// any kind throws DataError — never UB, a crash, or an over-read
// (tests/net/wire_fuzz_test.cpp holds the decoder to this under ASan/UBSan
// with a seeded mutation corpus). FrameDecoder reassembles frames from an
// arbitrarily-chunked byte stream (short reads are the epoll server's
// normal diet), throwing DataError on the first sign of desync (bad magic,
// version, oversized length, checksum mismatch) — framing cannot be
// trusted after that, so the connection must be closed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/predictor.hpp"
#include "ishare/gossip.hpp"
#include "ishare/hash_ring.hpp"
#include "trace/sample.hpp"

namespace fgcs::net {

inline constexpr std::uint32_t kWireMagic = 0x46474353u;  // "FGCS"
/// Version 2 added the append-samples / append-ack frame pair (streaming
/// ingestion); version 3 added the decentralized-registry frames
/// (gossip-sync / gossip-ack / wrong-shard). Any layout change bumps this
/// (docs/WIRE.md §5).
inline constexpr std::uint16_t kWireVersion = 3;
inline constexpr std::size_t kHeaderBytes = 16;
/// Hard cap on a frame payload; a length field above this is a protocol
/// error, not an allocation request (fuzz case: length overflow).
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;  // 16 MiB
/// Hard cap on requests/predictions per frame.
inline constexpr std::uint32_t kMaxBatchItems = 1u << 16;
/// Hard cap on a machine-key string.
inline constexpr std::uint32_t kMaxKeyBytes = 4096;
/// Hard cap on packed samples per append frame (4 MiB of sample payload —
/// about three days of 6-second samples; monitors batch far below this).
inline constexpr std::uint32_t kMaxAppendSamples = 1u << 20;
/// Hard cap on gossip member-table rows and ring members per frame; a
/// registry fleet is a handful of nodes, so this is generous.
inline constexpr std::uint32_t kMaxGossipMembers = 1u << 12;

enum class FrameType : std::uint16_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
  kAppendSamples = 4,
  kAppendAck = 5,
  kGossipSync = 6,  ///< full member-table push (anti-entropy)
  kGossipAck = 7,   ///< receiver's table, answered to a sync
  kWrongShard = 8,  ///< "not my keys" — carries the server's current ring
};

/// One request item as it travels on the wire: the machine is named by a
/// key (a machine id registered on the server, or — when the server allows
/// it — a trace file path the server can load) instead of a local pointer.
struct WireRequestItem {
  std::string machine_key;
  PredictionRequest request{};
};

/// A reassembled frame: validated header + raw payload bytes.
struct Frame {
  FrameType type = FrameType::kRequest;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a 32-bit over the payload (the header checksum field).
std::uint32_t wire_checksum(std::span<const std::uint8_t> payload);

/// Wraps a payload in a framed header (magic, version, type, length,
/// checksum). Throws PreconditionError when the payload exceeds
/// kMaxPayloadBytes.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload);

/// Request payload: u32 count, then per item a u16-length machine key,
/// i64 target_day, i64 window start-of-day, i64 window length, and one
/// initial-state byte (0 = none, 1 + index_of(state) otherwise).
std::vector<std::uint8_t> encode_request(
    std::span<const WireRequestItem> items);
std::vector<WireRequestItem> decode_request(
    std::span<const std::uint8_t> payload);

/// Response payload: u32 count, then per Prediction the TR bits, initial
/// state byte, three absorption-probability bit patterns, u64 training days
/// used, u64 steps, and the estimate/solve second bit patterns.
std::vector<std::uint8_t> encode_response(std::span<const Prediction> results);
std::vector<Prediction> decode_response(std::span<const std::uint8_t> payload);

/// A decoded error frame. `retryable` separates transport-level trouble the
/// sender may outlive (corrupt frame, desynced stream) from semantic
/// rejections that will fail identically on every retry (unknown machine
/// key, undecodable request) — the client fails fast on the latter.
struct WireError {
  std::string message;
  bool retryable = true;
};

/// Error payload: one retryable byte (0 or 1), then a u16-length UTF-8
/// message.
std::vector<std::uint8_t> encode_error(std::string_view message,
                                       bool retryable);
WireError decode_error(std::span<const std::uint8_t> payload);

/// One append-samples frame: a monitor ships a contiguous batch of packed
/// samples starting at an *absolute* sample index (day·samples_per_day +
/// offset since the machine's epoch). Appends are idempotent by
/// construction: indices the server already covers are acknowledged as
/// duplicates, so a client may blindly retry a whole batch. The machine
/// spec fields (epoch day-of-week, sampling period, total memory) make the
/// monitor self-describing — the first append registers the machine, later
/// appends must carry the same spec.
struct WireAppendRequest {
  std::string machine_id;
  std::uint8_t epoch_day_of_week = 0;  ///< 0 = Monday … 6 = Sunday
  std::int64_t sampling_period = 6;    ///< seconds; must divide 86 400
  std::uint32_t total_mem_mb = 1024;
  std::uint64_t first_sample_index = 0;
  std::vector<ResourceSample> samples;
};

/// The server's answer to one append frame: exact bookkeeping for the batch
/// plus the machine's post-append ingest state, so a monitor can resume
/// after reconnecting by asking where next_index stands.
struct WireAppendAck {
  std::uint64_t accepted = 0;      ///< samples newly buffered or rolled up
  std::uint64_t duplicates = 0;    ///< samples already covered (retries)
  std::uint64_t next_index = 0;    ///< first absolute index not yet covered
  std::uint64_t days_closed = 0;   ///< days rolled into the trace by this batch
  std::uint64_t days_retired = 0;  ///< days retired from the sliding window
  std::uint64_t generation = 0;    ///< history generation after the append
};

/// Append payload: u16-length machine id, u8 epoch day-of-week, i64
/// sampling period, u32 total memory, u64 first absolute sample index, u32
/// count (1..kMaxAppendSamples), then count packed 4-byte samples
/// (u8 load pct ≤ 100, u8 flags, u16 free MiB).
std::vector<std::uint8_t> encode_append(const WireAppendRequest& request);
WireAppendRequest decode_append(std::span<const std::uint8_t> payload);

/// Append-ack payload: six u64 fields, fixed 48 bytes.
std::vector<std::uint8_t> encode_append_ack(const WireAppendAck& ack);
WireAppendAck decode_append_ack(std::span<const std::uint8_t> payload);

/// Gossip payload (kGossipSync and kGossipAck share one layout): u16-length
/// sender id, u32 member count, then per member a u16-length node id, a
/// u16-length host, u16 port, u64 incarnation, u64 heartbeat, one health
/// byte (0 alive | 1 suspect | 2 dead | 3 left), and u64 generation.
std::vector<std::uint8_t> encode_gossip(const GossipMessage& message);
GossipMessage decode_gossip(std::span<const std::uint8_t> payload);

/// Wrong-shard payload: the answering server's whole current ring, so the
/// refetch is implicit in the refusal — u64 ring version, u32 vnodes, u32
/// member count, then per member a u16-length node id, a u16-length host,
/// and u16 port.
std::vector<std::uint8_t> encode_wrong_shard(const HashRing& ring);
HashRing decode_wrong_shard(std::span<const std::uint8_t> payload);

/// Incremental frame reassembly over a byte stream. feed() appends whatever
/// the socket produced; next() returns one complete frame at a time (nullopt
/// when more bytes are needed) and throws DataError when the stream cannot
/// be a valid frame sequence. After a throw the decoder is poisoned — every
/// further call throws, mirroring "close the connection".
class FrameDecoder {
 public:
  void feed(std::span<const std::uint8_t> bytes);
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace fgcs::net
