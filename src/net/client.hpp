// PredictionClient — the remote counterpart of PredictionService
// (DESIGN.md §9).
//
// predict_batch() ships a request frame to a PredictionServer and returns
// the decoded Predictions, bit-identical to calling the service in-process
// (the wire carries IEEE-754 bit patterns, net/wire.hpp). The call is
// synchronous and *self-healing*: any transport failure of an attempt —
// connect or request timeout, connection reset, a retryable error frame, a
// corrupt or desynced stream — closes the socket and retries the whole
// (idempotent) batch, pacing attempts with the scheduler's jittered
// capped-exponential-backoff helper (retry_backoff_delay, with
// SchedulerConfig delay fields interpreted in milliseconds). Only after
// max_attempts consecutive failures does the client throw DataError,
// carrying the last attempt's failure. A *non-retryable* error frame —
// the server rejected the request itself (unknown machine key, undecodable
// payload), so every retry would fail identically — fails fast instead,
// throwing RemoteError from the first attempt with no backoff burned.
//
// The retry/backoff stream is seeded (backoff.backoff_seed), so a chaos run
// with pinned failpoints replays its exact retry schedule.
//
// Thread-safety: a client is a single connection and is NOT thread-safe;
// use one client per thread (the server multiplexes them).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "ishare/scheduler.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs::net {

/// The server rejected the request itself (error frame with retryable=0):
/// identical bytes would be rejected identically, so predict_batch throws
/// this immediately instead of burning max_attempts round-trips + backoff.
/// Derives from DataError, so callers that only care about "the call
/// failed" keep working unchanged.
class RemoteError : public DataError {
 public:
  using DataError::DataError;
};

/// The server refused the batch because its ring assigns at least one key
/// to another node (kWrongShard frame, DESIGN.md §11). Carries the server's
/// current ring — the refusal IS the refetch: adopt the ring, re-partition,
/// retry. PredictionClient rethrows this without closing the socket (the
/// stream is still in sync) or burning retry attempts; ShardedPredictionClient
/// handles it transparently.
class WrongShardError : public DataError {
 public:
  explicit WrongShardError(HashRing ring)
      : DataError("net client: server answered wrong-shard (ring version " +
                  std::to_string(ring.version()) + ")"),
        ring_(std::move(ring)) {}

  const HashRing& ring() const { return ring_; }

 private:
  HashRing ring_;
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// TCP connect deadline per attempt, seconds.
  double connect_timeout = 5.0;
  /// Send-request-to-full-response deadline per attempt, seconds.
  double request_timeout = 30.0;
  /// Total attempts per predict_batch call (first try included).
  int max_attempts = 5;
  /// Pause between attempts, computed by retry_backoff_delay with these
  /// fields read in MILLISECONDS (the scheduler uses simulated seconds; a
  /// network client backs off on a thousandfold finer clock).
  SchedulerConfig backoff{.retry_delay = 10,
                          .backoff_factor = 2.0,
                          .max_retry_delay = 2000,
                          .backoff_jitter = 0.1,
                          .backoff_seed = 0x5eedc11e};
};

/// Monotonic per-client counters (single-threaded, like the client itself).
struct ClientStats {
  std::uint64_t batches = 0;      ///< predict_batch calls
  std::uint64_t appends = 0;      ///< append_samples calls
  std::uint64_t gossips = 0;      ///< gossip_sync calls
  std::uint64_t attempts = 0;     ///< wire attempts (≥ batches + appends)
  std::uint64_t retries = 0;      ///< attempts after the first of a call
  std::uint64_t reconnects = 0;   ///< sockets opened
  std::uint64_t server_errors = 0;///< error frames received
  std::uint64_t wrong_shards = 0; ///< kWrongShard frames received
};

class PredictionClient {
 public:
  explicit PredictionClient(ClientConfig config);
  ~PredictionClient();

  PredictionClient(const PredictionClient&) = delete;
  PredictionClient& operator=(const PredictionClient&) = delete;

  /// Round-trips one batch. Returns results aligned with `items`. Throws
  /// DataError after max_attempts failed transport attempts, RemoteError
  /// immediately on a non-retryable server rejection (or PreconditionError
  /// on an unencodable request).
  std::vector<Prediction> predict_batch(
      std::span<const WireRequestItem> items);

  /// Convenience single-request form.
  Prediction predict(const WireRequestItem& item);

  /// Streams one batch of monitor samples to the server's ingest store and
  /// returns its ack. Same self-healing contract as predict_batch — appends
  /// are idempotent (the store skips already-covered indices as duplicates),
  /// so every transport failure *and* every retryable server rejection
  /// (injected drops, rollup failpoints) retries the identical bytes;
  /// non-retryable rejections (ingest disabled, spec mismatch, index gap)
  /// throw RemoteError immediately.
  WireAppendAck append_samples(const WireAppendRequest& request);

  /// Pushes one gossip sync (this node's member table) and returns the
  /// peer's ack table. Same self-healing contract as predict_batch —
  /// full-state syncs are idempotent, so transport failures retry; a peer
  /// without gossip enabled throws RemoteError immediately.
  GossipMessage gossip_sync(const GossipMessage& sync);

  bool connected() const { return fd_ >= 0; }
  void close();

  const ClientStats& stats() const { return stats_; }
  const ClientConfig& config() const { return config_; }

 private:
  std::vector<Prediction> attempt_once(std::span<const WireRequestItem> items);
  WireAppendAck attempt_append_once(const WireAppendRequest& request);
  GossipMessage attempt_gossip_once(const GossipMessage& sync);
  /// Shared retry/backoff loop behind predict_batch and append_samples.
  template <typename Result, typename Attempt>
  Result with_retries(const char* what, Attempt&& attempt);
  void ensure_connected();
  void send_all(std::span<const std::uint8_t> bytes,
                std::chrono::steady_clock::time_point deadline);
  Frame read_frame(std::chrono::steady_clock::time_point deadline);
  void wait_io(bool for_write,
               std::chrono::steady_clock::time_point deadline,
               const char* what);

  ClientConfig config_;
  Rng backoff_rng_;
  int fd_ = -1;
  ClientStats stats_{};
};

struct ShardedClientConfig {
  /// Per-shard connection settings; host and port are ignored (each shard's
  /// endpoint comes from its RingMember).
  ClientConfig base;
  /// Wrong-shard forwards tolerated per predict_batch call before giving
  /// up — each hop adopts the answering server's (fresher) ring and
  /// re-partitions, so a stable fleet resolves in one hop; a bound this low
  /// only trips when rings keep changing under the call.
  int max_forward_hops = 3;
};

/// Aggregated routing counters, on top of the per-shard ClientStats.
struct ShardedClientStats {
  std::uint64_t batches = 0;          ///< predict_batch calls
  std::uint64_t sub_batches = 0;      ///< per-shard wire batches issued
  std::uint64_t wrong_shard_hops = 0; ///< kWrongShard answers handled
  std::uint64_t ring_refreshes = 0;   ///< ring adoptions (hops + adopt_ring)
};

/// Ring-routed client over a fleet of PredictionServers (DESIGN.md §11):
/// partitions each batch by key ownership, round-trips one sub-batch per
/// owning shard, and stitches the results back in request order —
/// bit-identical to a single-server (or in-process) evaluation, since every
/// item is served by exactly one node either way.
///
/// Staleness heals in-band: a server that no longer (or never did) own a
/// key answers kWrongShard with its current ring; the client adopts it,
/// re-partitions the unresolved items, and retries — at most
/// config.max_forward_hops times per call. The cached ring can also be
/// replaced explicitly with adopt_ring() (tests force stale-ring hops with
/// it).
///
/// Not thread-safe, like the per-shard clients it owns.
class ShardedPredictionClient {
 public:
  explicit ShardedPredictionClient(HashRing ring,
                                   ShardedClientConfig config = {});

  /// Round-trips one batch across the owning shards. Returns results
  /// aligned with `items`. Throws DataError when a shard stays unreachable
  /// through its retry budget or the hop bound is exhausted; RemoteError
  /// propagates unchanged.
  std::vector<Prediction> predict_batch(
      std::span<const WireRequestItem> items);

  /// Convenience single-request form.
  Prediction predict(const WireRequestItem& item);

  /// Replaces the cached ring (counts as a ring refresh).
  void adopt_ring(HashRing ring);

  const HashRing& ring() const { return ring_; }
  const ShardedClientStats& stats() const { return stats_; }

  /// The per-shard client for a ring member, created on first use (tests
  /// inspect per-shard stats through this).
  PredictionClient& client_for(const RingMember& member);

 private:
  HashRing ring_;
  ShardedClientConfig config_;
  /// Per-endpoint connections, keyed host:port — kept across ring changes
  /// (an endpoint that re-enters the ring reuses its connection).
  std::map<std::string, std::unique_ptr<PredictionClient>> clients_;
  ShardedClientStats stats_{};
};

}  // namespace fgcs::net
