// PredictionServer — networked serving front-end over PredictionService
// (DESIGN.md §9).
//
// One server owns one listening TCP socket, one epoll EventLoop, and one
// serving thread. Connections are plain length-prefixed wire frames
// (net/wire.hpp): a request frame names machines by key, the server
// resolves each key against its registered traces (falling back to loading
// the key as a trace file path when a trace_root is configured — paths must
// resolve under that root, and the loaded cache is LRU-bounded by
// max_loaded_traces), fans the whole batch into
// PredictionService::predict_batch — which parallelizes over the persistent
// ThreadPool — and answers with one response frame whose Predictions are
// bit-identical to the in-process call.
//
// Failure semantics: a malformed *payload* (undecodable request, unknown
// machine key, unloadable trace) earns a non-retryable error frame and the
// connection keeps serving; a malformed *frame* (bad
// magic/version/length/checksum) means the stream is desynced, so the
// server sends a best-effort retryable error frame and closes that
// connection — other connections are unaffected, and the server keeps
// accepting (tests/net/wire_fuzz_test.cpp holds it to this under a mutation
// corpus). All socket writes use MSG_NOSIGNAL, so a peer that disappears
// mid-response costs one connection, never a SIGPIPE of the process; fd
// exhaustion at accept time is drained through a reserved spare descriptor
// instead of busy-spinning the level-triggered listen fd.
//
// Fault injection (tests/chaos/net_chaos_test.cpp): four failpoints cover
// the distinct network failure modes, each evaluated at a point whose
// count is deterministic for a deterministic client — per accepted
// connection or per received frame, never per read()/write() call, so
// FailpointStats replay exactly:
//
//   net.accept.drop    per accept: connection closed immediately
//   net.read.short     per accept: connection reads capped to 3 bytes/event
//   net.write.stall    per accept: connection writes capped to 16 bytes/event
//   net.frame.corrupt  per frame: frame treated as corrupt (error frame)
//
// Observability: per-instance counters fold into the global registry as
// net.rx.bytes.total, net.tx.bytes.total, net.frames.total,
// net.requests.total, net.errors.total, plus the net.request.seconds
// latency histogram (DESIGN.md §8 naming).
//
// Threading: start() spawns the serving thread; all connection state lives
// on it. add_trace() must happen before start(). stats() and stop() are
// safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/prediction_service.hpp"
#include "net/event_loop.hpp"
#include "net/wire.hpp"
#include "trace/machine_trace.hpp"
#include "util/metrics.hpp"

namespace fgcs::net {

struct ServerConfig {
  /// Listen address; loopback by default (this is a trusted-fleet protocol).
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back with port().
  std::uint16_t port = 0;
  int backlog = 128;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 256;
  /// When non-empty, unknown machine keys are resolved as trace file paths
  /// that must canonicalize to somewhere under this directory; empty (the
  /// default) disables filesystem loading entirely, so clients can only
  /// name registered traces. Registered ids always win over paths.
  std::string trace_root;
  /// Cap on distinct path-loaded traces cached at once; least-recently-used
  /// entries are evicted between requests (never mid-batch, so pointers
  /// handed to predict_batch stay valid).
  std::size_t max_loaded_traces = 32;
};

/// Monotonic serving counters; snapshot via PredictionServer::stats().
struct ServerStats {
  std::uint64_t accepted = 0;      ///< connections accepted
  std::uint64_t dropped = 0;       ///< closed at accept (failpoint/capacity)
  std::uint64_t active = 0;        ///< currently open connections
  std::uint64_t frames = 0;        ///< complete frames received
  std::uint64_t requests = 0;      ///< request frames decoded
  std::uint64_t predictions = 0;   ///< predictions served
  std::uint64_t responses = 0;     ///< response frames sent
  std::uint64_t errors = 0;        ///< error frames sent
  std::uint64_t trace_loads = 0;   ///< trace files loaded from trace_root
  std::uint64_t loaded_traces = 0; ///< path-loaded traces currently cached
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
};

class PredictionServer {
 public:
  /// `service` must be non-null; sharing one service between the server and
  /// in-process callers shares its memoized cache (and its invalidate()).
  PredictionServer(ServerConfig config,
                   std::shared_ptr<PredictionService> service);
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Registers a trace the server owns, keyed by its machine_id. Must be
  /// called before start().
  void add_trace(MachineTrace trace);

  /// Binds, listens, and spawns the serving thread. Throws DataError when
  /// the socket cannot be set up.
  void start();

  /// Stops the loop, joins the thread, and closes every connection.
  /// Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (valid after start(); resolves port 0 to the real one).
  std::uint16_t port() const { return bound_port_; }
  const std::string& host() const { return config_.host; }

  const std::shared_ptr<PredictionService>& service() const {
    return service_;
  }

  /// Safe from any thread while serving. For an exact (replayable) snapshot
  /// call after stop(): the join orders every loop-thread increment — a
  /// live read may trail the serving thread by a few relaxed adds even for
  /// traffic the caller has already observed.
  ServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::vector<std::uint8_t> outbox;
    std::size_t outbox_sent = 0;
    bool short_reads = false;   ///< net.read.short fired at accept
    bool stalled_writes = false;///< net.write.stall fired at accept
    bool want_writable = false; ///< EPOLLOUT currently registered
  };

  void serve_thread_main();
  void handle_accept(std::uint32_t events);
  void handle_connection(int fd, std::uint32_t events);
  void process_frame(Connection& conn, const Frame& frame);
  std::vector<Prediction> serve_request(
      std::span<const std::uint8_t> payload);
  void evict_loaded_traces();
  const MachineTrace* resolve_trace(const std::string& key);
  const MachineTrace* load_trace(const std::string& key);
  void send_frame(Connection& conn, FrameType type,
                  std::span<const std::uint8_t> payload);
  void flush_outbox(Connection& conn);
  void update_write_interest(Connection& conn);
  void close_connection(int fd);

  ServerConfig config_;
  std::shared_ptr<PredictionService> service_;

  /// One path-loaded trace plus its recency stamp for LRU eviction.
  struct LoadedTrace {
    MachineTrace trace;
    std::uint64_t last_used = 0;
  };

  std::map<std::string, MachineTrace> traces_;       // by machine_id
  std::map<std::string, LoadedTrace> loaded_paths_;  // by request key (path)
  std::uint64_t load_clock_ = 0;                     // loop thread only

  std::unique_ptr<EventLoop> loop_;
  std::unordered_map<int, Connection> connections_;  // loop thread only
  int listen_fd_ = -1;
  /// Held open so EMFILE at accept time can be drained: close it, accept
  /// the pending connection onto the freed descriptor, close that, reopen.
  int spare_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> predictions_{0};
  std::atomic<std::uint64_t> trace_loads_{0};
  std::atomic<std::uint64_t> loaded_count_{0};
  // Instruments shared with the global exposition (attachments below).
  Counter rx_bytes_;
  Counter tx_bytes_;
  Counter frames_;
  Counter requests_;
  Counter errors_;
  Histogram request_hist_{Histogram::default_latency_bounds()};
  std::vector<MetricsAttachment> metrics_attachments_;
};

}  // namespace fgcs::net
