// PredictionServer — networked serving front-end over PredictionService
// (DESIGN.md §9, wire layout in docs/WIRE.md).
//
// The server is a fleet of N *reactors* (config.reactors, default 1). Each
// reactor is one thread running its own epoll EventLoop and owning a
// disjoint set of connections end to end: it accepts (or is handed) them,
// reassembles their frames, dispatches decoded request batches into the
// shared PredictionService via the persistent thread pool, and writes their
// outboxes. A connection's fds, decoder state, outbox, and path-loaded
// trace cache are touched by exactly one reactor thread — the strict
// ownership that makes the sharding linearly scalable and keeps every
// single-reactor invariant intact (reactors=1 reproduces the original
// single-threaded server bit for bit on the golden rows).
//
// Listener sharding: every reactor binds its own SO_REUSEPORT listening
// socket on the same host:port, so the kernel load-balances incoming
// connections across reactors with no shared accept lock. Where
// SO_REUSEPORT is unavailable (or when config.force_accept_handoff is set —
// tests use this for deterministic placement), reactor 0 owns the single
// listening socket and hands accepted fds to reactors round-robin through
// their lock-free MPSC inboxes (net/mpsc_queue.hpp), waking the target's
// eventfd.
//
// Request dispatch is asynchronous: the owning reactor decodes and resolves
// a request batch, submits the predict_batch + response encoding to the
// thread pool, and goes back to polling; the pool worker pushes the encoded
// response onto the owning reactor's inbox (same lock-free queue) and wakes
// it, and the reactor appends it to the connection's outbox. A per-
// connection generation counter makes completions for already-closed (and
// possibly fd-reused) connections drop harmlessly. Frames a connection
// pipelines while a batch is in flight are queued and answered strictly in
// arrival order.
//
// Failure semantics (unchanged from the single-reactor server): a malformed
// *payload* (undecodable request, unknown machine key, unloadable trace)
// earns a non-retryable error frame and the connection keeps serving; a
// malformed *frame* (bad magic/version/length/checksum) means the stream is
// desynced, so the server sends a best-effort retryable error frame and
// closes that connection. All socket writes use MSG_NOSIGNAL; fd exhaustion
// at accept time is drained through a per-listener reserved spare
// descriptor.
//
// Fault injection (tests/chaos/net_chaos_test.cpp): failpoints are
// evaluated at points whose global order is deterministic for a sequential
// driver — per accepted connection (net.accept.drop, net.read.short,
// net.write.stall, evaluated by the accepting thread) or per received frame
// (net.frame.corrupt, evaluated by the owning reactor in arrival order) —
// never per read()/write() call, so FailpointStats replay exactly even
// against a 4-reactor server.
//
// Streaming ingest (config.ingest): kAppendSamples frames route through the
// same dispatch machinery — the owning reactor decodes the batch, the thread
// pool runs the TraceStore append (so reactors never block on a day rollup),
// and the ack rides the MPSC inbox back like any completion. Day closes
// invalidate the machine in the PredictionService from inside the store
// callback, and prediction batches resolve streamed machines via pinned
// immutable snapshots, so serving and ingestion never contend on trace data.
//
// Decentralized registry (DESIGN.md §11): a server given a node_id and a
// ring (set_ring()) refuses request batches containing keys the ring
// assigns elsewhere, answering kWrongShard with its current ring so the
// client can re-route — the refusal carries the refetch. A gossip agent
// attached with attach_gossip() answers kGossipSync frames with the merged
// table as kGossipAck; both paths are mutex-guarded so any reactor can
// serve them while the owner ticks the agent.
//
// Observability: each reactor keeps its own instruments, attached to the
// global registry twice — folded into the fleet-wide series
// (net.rx.bytes.total, net.tx.bytes.total, net.frames.total,
// net.requests.total, net.errors.total, net.request.seconds) *and* exposed
// per reactor as net.reactor.<i>.* — so the exposition sums shards without
// double counting. ServerStats is an aggregation over per-reactor
// snapshots (reactor_stats()); there is no separate global counter to
// drift out of sync.
//
// Threading: start() spawns one thread per reactor. add_trace() must happen
// before start(). stats(), reactor_stats() and stop() are safe from any
// thread; snapshots are exact after stop() (the joins order every reactor-
// thread increment).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/prediction_service.hpp"
#include "ishare/gossip.hpp"
#include "ishare/hash_ring.hpp"
#include "trace/machine_trace.hpp"
#include "trace/trace_store.hpp"

namespace fgcs::net {

struct ServerConfig {
  /// Listen address; loopback by default (this is a trusted-fleet protocol).
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back with port().
  std::uint16_t port = 0;
  int backlog = 128;
  /// Connections beyond this (server-wide, all reactors) are accepted and
  /// immediately closed.
  std::size_t max_connections = 256;
  /// Reactor threads. 1 (the default) reproduces the single-reactor server
  /// exactly; N>1 shards connections across N epoll loops.
  unsigned reactors = 1;
  /// Forces the accept-thread hand-off path (reactor 0 accepts, connections
  /// go to reactors round-robin) even where SO_REUSEPORT is available.
  /// Round-robin placement is deterministic, which is what the reactor-
  /// ownership tests and multi-reactor chaos replays pin against.
  bool force_accept_handoff = false;
  /// When non-empty, unknown machine keys are resolved as trace file paths
  /// that must canonicalize to somewhere under this directory; empty (the
  /// default) disables filesystem loading entirely, so clients can only
  /// name registered traces. Registered ids always win over paths.
  std::string trace_root;
  /// Cap on distinct path-loaded traces cached at once *per reactor*;
  /// least-recently-used entries are evicted between batches (never while a
  /// batch that may reference them is in flight).
  std::size_t max_loaded_traces = 32;
  /// Accept kAppendSamples frames: monitors stream packed samples into a
  /// server-owned TraceStore, machines auto-register on first contact, and
  /// every closed day bumps the machine's PredictionService generation so
  /// memoized predictions refresh. Off by default — a serving-only fleet
  /// rejects appends with a non-retryable error.
  bool ingest = false;
  /// Sliding per-machine history budget for ingested traces, in days
  /// (TraceStoreConfig::retention_days); 0 keeps all history.
  std::int64_t ingest_retention_days = 0;
  /// This server's identity on the registry ring (DESIGN.md §11). Empty
  /// (the default) serves every key — the single-registry behavior. When
  /// set *and* a ring has been installed with set_ring(), a request batch
  /// containing any key the ring assigns to a different node is answered
  /// with a kWrongShard frame carrying the current ring instead of being
  /// served.
  std::string node_id;
};

/// Monotonic serving counters. One of these per reactor
/// (PredictionServer::reactor_stats()); PredictionServer::stats() is their
/// field-wise sum.
struct ServerStats {
  std::uint64_t accepted = 0;      ///< connections accepted
  std::uint64_t dropped = 0;       ///< closed at accept (failpoint/capacity)
  std::uint64_t active = 0;        ///< currently open connections
  std::uint64_t frames = 0;        ///< complete frames received
  std::uint64_t requests = 0;      ///< request frames decoded
  std::uint64_t predictions = 0;   ///< predictions served
  std::uint64_t responses = 0;     ///< response frames sent
  std::uint64_t errors = 0;        ///< error frames sent
  std::uint64_t wrong_shard = 0;   ///< batches refused with kWrongShard
  std::uint64_t gossip_syncs = 0;  ///< kGossipSync frames answered
  std::uint64_t trace_loads = 0;   ///< trace files loaded from trace_root
  std::uint64_t loaded_traces = 0; ///< path-loaded traces currently cached
  std::uint64_t appends = 0;          ///< append frames acked
  std::uint64_t append_samples = 0;   ///< samples accepted into the store
  std::uint64_t append_duplicates = 0;///< retransmitted samples skipped
  std::uint64_t days_closed = 0;      ///< day rollups completed
  std::uint64_t days_retired = 0;     ///< history days retired by retention
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;

  ServerStats& operator+=(const ServerStats& other);
  friend bool operator==(const ServerStats&, const ServerStats&) = default;
};

class PredictionServer {
 public:
  /// `service` must be non-null; sharing one service between the server and
  /// in-process callers shares its memoized cache (and its invalidate()).
  PredictionServer(ServerConfig config,
                   std::shared_ptr<PredictionService> service);
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Registers a trace the server owns, keyed by its machine_id. Must be
  /// called before start(). Registered traces are shared read-only by all
  /// reactors.
  void add_trace(MachineTrace trace);

  /// Binds the listener(s), spawns one thread per reactor. Throws DataError
  /// when a socket cannot be set up.
  void start();

  /// Stops every loop, joins the reactor threads, waits out in-flight
  /// batches, and closes every connection. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (valid after start(); resolves port 0 to the real one).
  std::uint16_t port() const { return bound_port_; }
  const std::string& host() const { return config_.host; }

  unsigned reactor_count() const;
  /// True when connections are being handed off from a single accept
  /// thread instead of sharded SO_REUSEPORT listeners (valid after
  /// start()).
  bool accept_handoff() const { return accept_handoff_; }

  const std::shared_ptr<PredictionService>& service() const {
    return service_;
  }

  /// The ingest store, or nullptr when config.ingest is off. Shared by all
  /// reactors; safe to read from any thread (snapshots are immutable).
  TraceStore* store() const { return store_.get(); }

  /// Installs (or replaces) the registry ring this server routes by.
  /// Thread-safe, callable while serving — reactors pick up the new ring on
  /// their next batch. With config.node_id empty the ring is only echoed in
  /// kWrongShard frames, never enforced.
  void set_ring(HashRing ring);

  /// The current ring, or nullptr when none was installed. The snapshot is
  /// immutable; a concurrent set_ring() swaps the pointer, not the object.
  std::shared_ptr<const HashRing> ring() const;

  /// Attaches the gossip agent answering this server's kGossipSync frames
  /// (nullptr detaches). The agent must outlive the attachment; the server
  /// serializes all access through an internal mutex, so the owner may tick
  /// the same agent from its own thread under the same contract.
  void attach_gossip(GossipAgent* agent);

  /// Merges one received sync into the attached agent and returns the ack.
  /// Throws DataError when no agent is attached. Thread-safe.
  GossipMessage handle_gossip_sync(const GossipMessage& sync);

  /// Owner-side gossip round under the same mutex as handle_gossip_sync:
  /// ticks the attached agent and returns the peer ids to push to plus the
  /// sync to send them. Throws DataError when no agent is attached.
  std::pair<std::vector<std::string>, GossipMessage> gossip_tick();

  /// Merges a peer's ack into the attached agent (no-op contractually only
  /// for a detached agent, which throws). Thread-safe.
  void gossip_merge_ack(const GossipMessage& ack);

  /// The attached agent's current routing ring (under the mutex). Callers
  /// typically follow with set_ring() to publish it to the reactors.
  HashRing gossip_ring();

  /// Aggregate counters: the field-wise sum of reactor_stats(). Safe from
  /// any thread while serving; exact after stop().
  ServerStats stats() const;

  /// Per-reactor snapshots, index-aligned with the reactor threads. The
  /// invariant `stats() == sum(reactor_stats())` is pinned by
  /// tests/net/reactor_test.cpp.
  std::vector<ServerStats> reactor_stats() const;

 private:
  friend class Reactor;
  class Reactor;

  ServerConfig config_;
  std::shared_ptr<PredictionService> service_;
  /// Streaming ingest sink (config.ingest only). Its day-closed callback
  /// invalidates the machine in service_, so one generation bump per closed
  /// day is structural, not best-effort.
  std::unique_ptr<TraceStore> store_;

  std::map<std::string, MachineTrace> traces_;  // by machine_id, frozen at start()
  /// Registry ring for shard routing; swapped whole under ring_mutex_ so
  /// reactors read a consistent immutable snapshot.
  std::shared_ptr<const HashRing> ring_;
  mutable std::mutex ring_mutex_;
  /// Gossip agent answering kGossipSync (fgcs_serve owns it); guarded by
  /// gossip_mutex_ against concurrent reactor handling and owner ticks.
  GossipAgent* gossip_agent_ = nullptr;
  std::mutex gossip_mutex_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> total_active_{0};  // capacity check, all reactors
  std::uint16_t bound_port_ = 0;
  bool accept_handoff_ = false;
  std::atomic<bool> running_{false};
  bool started_ = false;
};

}  // namespace fgcs::net
