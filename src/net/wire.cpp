#include "net/wire.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

#include "core/states.hpp"
#include "util/error.hpp"

namespace fgcs::net {

namespace {

// All multi-byte fields are explicit little-endian so traces served across
// heterogeneous fleets stay bit-identical regardless of host endianness.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked sequential reader. Every read validates the remaining
/// byte count *before* touching memory, so a lying length field can only
/// ever produce a DataError, never an over-read.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }

  std::uint8_t u8() {
    need(1, "u8");
    return bytes_[pos_++];
  }

  std::uint16_t u16() {
    need(2, "u16");
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | bytes_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | bytes_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str(std::size_t length) {
    need(length, "string body");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), length);
    pos_ += length;
    return s;
  }

  void expect_done(const char* what) const {
    if (pos_ != bytes_.size())
      throw DataError(std::string("wire: ") + what + ": " +
                      std::to_string(bytes_.size() - pos_) +
                      " trailing payload byte(s)");
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (remaining() < n)
      throw DataError(std::string("wire: truncated payload reading ") + what);
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

std::uint32_t read_u32_at(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint16_t read_u16_at(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

}  // namespace

std::uint32_t wire_checksum(std::span<const std::uint8_t> payload) {
  // FNV-1a 32-bit: cheap, stateless, and plenty to catch the torn/corrupt
  // frames the chaos failpoints inject (integrity, not authentication).
  std::uint32_t hash = 0x811c9dc5u;
  for (const std::uint8_t byte : payload) {
    hash ^= byte;
    hash *= 0x01000193u;
  }
  return hash;
}

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload) {
  FGCS_REQUIRE_MSG(payload.size() <= kMaxPayloadBytes,
                   "frame payload exceeds kMaxPayloadBytes");
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  put_u32(frame, kWireMagic);
  put_u16(frame, kWireVersion);
  put_u16(frame, static_cast<std::uint16_t>(type));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, wire_checksum(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::vector<std::uint8_t> encode_request(
    std::span<const WireRequestItem> items) {
  FGCS_REQUIRE_MSG(items.size() <= kMaxBatchItems,
                   "request batch exceeds kMaxBatchItems");
  std::vector<std::uint8_t> payload;
  payload.reserve(16 + items.size() * 48);
  put_u32(payload, static_cast<std::uint32_t>(items.size()));
  for (const WireRequestItem& item : items) {
    FGCS_REQUIRE_MSG(item.machine_key.size() <= kMaxKeyBytes,
                     "machine key exceeds kMaxKeyBytes");
    put_u16(payload, static_cast<std::uint16_t>(item.machine_key.size()));
    payload.insert(payload.end(), item.machine_key.begin(),
                   item.machine_key.end());
    put_i64(payload, item.request.target_day);
    put_i64(payload, item.request.window.start_of_day);
    put_i64(payload, item.request.window.length);
    payload.push_back(
        item.request.initial_state
            ? static_cast<std::uint8_t>(
                  1 + index_of(*item.request.initial_state))
            : std::uint8_t{0});
  }
  return payload;
}

std::vector<WireRequestItem> decode_request(
    std::span<const std::uint8_t> payload) {
  Reader reader(payload);
  const std::uint32_t count = reader.u32();
  if (count > kMaxBatchItems)
    throw DataError("wire: request batch count " + std::to_string(count) +
                    " exceeds limit " + std::to_string(kMaxBatchItems));
  // Even an empty item costs 27 bytes; reject absurd counts before reserving.
  if (static_cast<std::size_t>(count) * 27 > reader.remaining())
    throw DataError("wire: request batch count " + std::to_string(count) +
                    " does not fit the payload");
  std::vector<WireRequestItem> items;
  items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WireRequestItem item;
    const std::uint16_t key_length = reader.u16();
    if (key_length > kMaxKeyBytes)
      throw DataError("wire: machine key length " +
                      std::to_string(key_length) + " exceeds limit");
    item.machine_key = reader.str(key_length);
    item.request.target_day = reader.i64();
    item.request.window.start_of_day = reader.i64();
    item.request.window.length = reader.i64();
    const std::uint8_t init = reader.u8();
    if (init > kStateCount)
      throw DataError("wire: invalid initial-state byte " +
                      std::to_string(init));
    if (init != 0) item.request.initial_state = state_from_index(init - 1);
    items.push_back(std::move(item));
  }
  reader.expect_done("request");
  return items;
}

std::vector<std::uint8_t> encode_response(std::span<const Prediction> results) {
  FGCS_REQUIRE_MSG(results.size() <= kMaxBatchItems,
                   "response batch exceeds kMaxBatchItems");
  std::vector<std::uint8_t> payload;
  payload.reserve(4 + results.size() * 65);
  put_u32(payload, static_cast<std::uint32_t>(results.size()));
  for (const Prediction& p : results) {
    put_f64(payload, p.temporal_reliability);
    payload.push_back(static_cast<std::uint8_t>(index_of(p.initial_state)));
    for (const double absorb : p.p_absorb) put_f64(payload, absorb);
    put_u64(payload, p.training_days_used);
    put_u64(payload, p.steps);
    put_f64(payload, p.estimate_seconds);
    put_f64(payload, p.solve_seconds);
  }
  return payload;
}

std::vector<Prediction> decode_response(std::span<const std::uint8_t> payload) {
  Reader reader(payload);
  const std::uint32_t count = reader.u32();
  if (count > kMaxBatchItems)
    throw DataError("wire: response batch count " + std::to_string(count) +
                    " exceeds limit " + std::to_string(kMaxBatchItems));
  if (static_cast<std::size_t>(count) * 65 != reader.remaining())
    throw DataError("wire: response batch count " + std::to_string(count) +
                    " does not match the payload size");
  std::vector<Prediction> results;
  results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Prediction p;
    p.temporal_reliability = reader.f64();
    const std::uint8_t state = reader.u8();
    if (state >= kStateCount)
      throw DataError("wire: invalid prediction state byte " +
                      std::to_string(state));
    p.initial_state = state_from_index(state);
    for (double& absorb : p.p_absorb) absorb = reader.f64();
    p.training_days_used = static_cast<std::size_t>(reader.u64());
    p.steps = static_cast<std::size_t>(reader.u64());
    p.estimate_seconds = reader.f64();
    p.solve_seconds = reader.f64();
    results.push_back(p);
  }
  reader.expect_done("response");
  return results;
}

std::vector<std::uint8_t> encode_error(std::string_view message,
                                       bool retryable) {
  // Truncate rather than reject: error frames are a best-effort diagnostic.
  const std::size_t length = std::min<std::size_t>(message.size(), 0xffff);
  std::vector<std::uint8_t> payload;
  payload.reserve(3 + length);
  payload.push_back(retryable ? std::uint8_t{1} : std::uint8_t{0});
  put_u16(payload, static_cast<std::uint16_t>(length));
  payload.insert(payload.end(), message.begin(), message.begin() + length);
  return payload;
}

WireError decode_error(std::span<const std::uint8_t> payload) {
  Reader reader(payload);
  const std::uint8_t retryable = reader.u8();
  if (retryable > 1)
    throw DataError("wire: invalid error retryable byte " +
                    std::to_string(retryable));
  const std::uint16_t length = reader.u16();
  WireError error;
  error.message = reader.str(length);
  error.retryable = retryable == 1;
  reader.expect_done("error");
  return error;
}

std::vector<std::uint8_t> encode_append(const WireAppendRequest& request) {
  FGCS_REQUIRE_MSG(request.machine_id.size() <= kMaxKeyBytes,
                   "machine id exceeds kMaxKeyBytes");
  FGCS_REQUIRE_MSG(!request.samples.empty(), "append batch must not be empty");
  FGCS_REQUIRE_MSG(request.samples.size() <= kMaxAppendSamples,
                   "append batch exceeds kMaxAppendSamples");
  FGCS_REQUIRE_MSG(request.epoch_day_of_week <= 6,
                   "epoch day-of-week out of range");
  FGCS_REQUIRE_MSG(request.sampling_period >= 1 &&
                       86'400 % request.sampling_period == 0,
                   "sampling period must divide one day");
  std::vector<std::uint8_t> payload;
  payload.reserve(32 + request.machine_id.size() + request.samples.size() * 4);
  put_u16(payload, static_cast<std::uint16_t>(request.machine_id.size()));
  payload.insert(payload.end(), request.machine_id.begin(),
                 request.machine_id.end());
  payload.push_back(request.epoch_day_of_week);
  put_i64(payload, request.sampling_period);
  put_u32(payload, request.total_mem_mb);
  put_u64(payload, request.first_sample_index);
  put_u32(payload, static_cast<std::uint32_t>(request.samples.size()));
  for (const ResourceSample& sample : request.samples) {
    FGCS_REQUIRE_MSG(sample.host_load_pct <= 100,
                     "sample load percent out of range");
    payload.push_back(sample.host_load_pct);
    payload.push_back(sample.flags);
    put_u16(payload, sample.free_mem_mb);
  }
  return payload;
}

WireAppendRequest decode_append(std::span<const std::uint8_t> payload) {
  Reader reader(payload);
  WireAppendRequest request;
  const std::uint16_t key_length = reader.u16();
  if (key_length > kMaxKeyBytes)
    throw DataError("wire: machine id length " + std::to_string(key_length) +
                    " exceeds limit");
  request.machine_id = reader.str(key_length);
  request.epoch_day_of_week = reader.u8();
  if (request.epoch_day_of_week > 6)
    throw DataError("wire: epoch day-of-week " +
                    std::to_string(request.epoch_day_of_week) +
                    " out of range");
  request.sampling_period = reader.i64();
  if (request.sampling_period < 1 ||
      86'400 % request.sampling_period != 0)
    throw DataError("wire: sampling period " +
                    std::to_string(request.sampling_period) +
                    " does not divide one day");
  request.total_mem_mb = reader.u32();
  request.first_sample_index = reader.u64();
  const std::uint32_t count = reader.u32();
  if (count == 0)
    throw DataError("wire: empty append batch");
  if (count > kMaxAppendSamples)
    throw DataError("wire: append batch count " + std::to_string(count) +
                    " exceeds limit " + std::to_string(kMaxAppendSamples));
  // Samples are fixed 4 bytes each and must exactly fill the remainder —
  // rejected before any reserve when the count lies about the byte budget.
  if (static_cast<std::size_t>(count) * 4 != reader.remaining())
    throw DataError("wire: append batch count " + std::to_string(count) +
                    " does not match the payload size");
  request.samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ResourceSample sample;
    sample.host_load_pct = reader.u8();
    if (sample.host_load_pct > 100)
      throw DataError("wire: sample load percent " +
                      std::to_string(sample.host_load_pct) +
                      " out of range");
    sample.flags = reader.u8();
    sample.free_mem_mb = reader.u16();
    request.samples.push_back(sample);
  }
  reader.expect_done("append");
  return request;
}

std::vector<std::uint8_t> encode_append_ack(const WireAppendAck& ack) {
  std::vector<std::uint8_t> payload;
  payload.reserve(48);
  put_u64(payload, ack.accepted);
  put_u64(payload, ack.duplicates);
  put_u64(payload, ack.next_index);
  put_u64(payload, ack.days_closed);
  put_u64(payload, ack.days_retired);
  put_u64(payload, ack.generation);
  return payload;
}

WireAppendAck decode_append_ack(std::span<const std::uint8_t> payload) {
  Reader reader(payload);
  WireAppendAck ack;
  ack.accepted = reader.u64();
  ack.duplicates = reader.u64();
  ack.next_index = reader.u64();
  ack.days_closed = reader.u64();
  ack.days_retired = reader.u64();
  ack.generation = reader.u64();
  reader.expect_done("append ack");
  return ack;
}

namespace {

/// Shared by the gossip and wrong-shard codecs: a (node id, host) pair with
/// both lengths validated against kMaxKeyBytes before the strings are read.
void put_id_host(std::vector<std::uint8_t>& payload, const std::string& id,
                 const std::string& host) {
  FGCS_REQUIRE_MSG(id.size() <= kMaxKeyBytes, "node id exceeds kMaxKeyBytes");
  FGCS_REQUIRE_MSG(host.size() <= kMaxKeyBytes, "host exceeds kMaxKeyBytes");
  put_u16(payload, static_cast<std::uint16_t>(id.size()));
  payload.insert(payload.end(), id.begin(), id.end());
  put_u16(payload, static_cast<std::uint16_t>(host.size()));
  payload.insert(payload.end(), host.begin(), host.end());
}

std::string read_bounded_str(Reader& reader, const char* what) {
  const std::uint16_t length = reader.u16();
  if (length > kMaxKeyBytes)
    throw DataError(std::string("wire: ") + what + " length " +
                    std::to_string(length) + " exceeds limit");
  return reader.str(length);
}

}  // namespace

std::vector<std::uint8_t> encode_gossip(const GossipMessage& message) {
  FGCS_REQUIRE_MSG(message.members.size() <= kMaxGossipMembers,
                   "gossip member table exceeds kMaxGossipMembers");
  FGCS_REQUIRE_MSG(message.sender.size() <= kMaxKeyBytes,
                   "gossip sender exceeds kMaxKeyBytes");
  std::vector<std::uint8_t> payload;
  payload.reserve(8 + message.sender.size() + message.members.size() * 48);
  put_u16(payload, static_cast<std::uint16_t>(message.sender.size()));
  payload.insert(payload.end(), message.sender.begin(), message.sender.end());
  put_u32(payload, static_cast<std::uint32_t>(message.members.size()));
  for (const MemberState& member : message.members) {
    put_id_host(payload, member.node_id, member.host);
    put_u16(payload, member.port);
    put_u64(payload, member.incarnation);
    put_u64(payload, member.heartbeat);
    payload.push_back(static_cast<std::uint8_t>(member.health));
    put_u64(payload, member.generation);
  }
  return payload;
}

GossipMessage decode_gossip(std::span<const std::uint8_t> payload) {
  Reader reader(payload);
  GossipMessage message;
  message.sender = read_bounded_str(reader, "gossip sender");
  const std::uint32_t count = reader.u32();
  if (count > kMaxGossipMembers)
    throw DataError("wire: gossip member count " + std::to_string(count) +
                    " exceeds limit " + std::to_string(kMaxGossipMembers));
  // Even an empty member row costs 31 bytes; reject absurd counts before
  // reserving.
  if (static_cast<std::size_t>(count) * 31 > reader.remaining())
    throw DataError("wire: gossip member count " + std::to_string(count) +
                    " does not fit the payload");
  message.members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    MemberState member;
    member.node_id = read_bounded_str(reader, "gossip node id");
    if (member.node_id.empty())
      throw DataError("wire: gossip member with empty node id");
    member.host = read_bounded_str(reader, "gossip host");
    member.port = reader.u16();
    member.incarnation = reader.u64();
    member.heartbeat = reader.u64();
    const std::uint8_t health = reader.u8();
    if (health > static_cast<std::uint8_t>(MemberHealth::kLeft))
      throw DataError("wire: invalid gossip health byte " +
                      std::to_string(health));
    member.health = static_cast<MemberHealth>(health);
    member.generation = reader.u64();
    message.members.push_back(std::move(member));
  }
  reader.expect_done("gossip");
  return message;
}

std::vector<std::uint8_t> encode_wrong_shard(const HashRing& ring) {
  FGCS_REQUIRE_MSG(ring.size() <= kMaxGossipMembers,
                   "ring member count exceeds kMaxGossipMembers");
  std::vector<std::uint8_t> payload;
  payload.reserve(16 + ring.size() * 32);
  put_u64(payload, ring.version());
  put_u32(payload, ring.vnodes());
  put_u32(payload, static_cast<std::uint32_t>(ring.size()));
  for (const RingMember& member : ring.members()) {
    put_id_host(payload, member.node_id, member.host);
    put_u16(payload, member.port);
  }
  return payload;
}

HashRing decode_wrong_shard(std::span<const std::uint8_t> payload) {
  Reader reader(payload);
  const std::uint64_t version = reader.u64();
  const std::uint32_t vnodes = reader.u32();
  if (vnodes == 0)
    throw DataError("wire: wrong-shard ring with zero vnodes");
  // Keep a hostile vnode count from turning into a giant allocation in the
  // HashRing constructor: the wire cap is far above any real deployment.
  if (vnodes > 4096)
    throw DataError("wire: wrong-shard vnode count " + std::to_string(vnodes) +
                    " exceeds limit 4096");
  const std::uint32_t count = reader.u32();
  if (count == 0)
    throw DataError("wire: wrong-shard ring with no members");
  if (count > kMaxGossipMembers)
    throw DataError("wire: wrong-shard member count " + std::to_string(count) +
                    " exceeds limit " + std::to_string(kMaxGossipMembers));
  if (static_cast<std::size_t>(count) * 6 > reader.remaining())
    throw DataError("wire: wrong-shard member count " + std::to_string(count) +
                    " does not fit the payload");
  std::vector<RingMember> members;
  members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RingMember member;
    member.node_id = read_bounded_str(reader, "ring node id");
    if (member.node_id.empty())
      throw DataError("wire: ring member with empty node id");
    member.host = read_bounded_str(reader, "ring host");
    member.port = reader.u16();
    members.push_back(std::move(member));
  }
  reader.expect_done("wrong shard");
  try {
    return HashRing(std::move(members), vnodes, version);
  } catch (const PreconditionError& e) {
    // Duplicate ids etc. — a malformed *payload*, not a caller bug.
    throw DataError(std::string("wire: wrong-shard ring rejected: ") +
                    e.what());
  }
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) throw DataError("wire: decoder poisoned by earlier error");
  // Compact lazily: drop consumed prefix once it dominates the buffer, so a
  // long-lived connection doesn't grow its buffer with every frame.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) throw DataError("wire: decoder poisoned by earlier error");
  if (buffered() < kHeaderBytes) return std::nullopt;
  const std::uint8_t* header = buffer_.data() + consumed_;

  // Validate the header as soon as it is complete, *before* waiting for the
  // payload: a desynced stream must fail fast, not stall on a garbage
  // length.
  const std::uint32_t magic = read_u32_at(header);
  if (magic != kWireMagic) {
    poisoned_ = true;
    throw DataError("wire: bad magic 0x" + [magic] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }());
  }
  const std::uint16_t version = read_u16_at(header + 4);
  if (version != kWireVersion) {
    poisoned_ = true;
    throw DataError("wire: unsupported version " + std::to_string(version));
  }
  const std::uint16_t type = read_u16_at(header + 6);
  if (type < static_cast<std::uint16_t>(FrameType::kRequest) ||
      type > static_cast<std::uint16_t>(FrameType::kWrongShard)) {
    poisoned_ = true;
    throw DataError("wire: unknown frame type " + std::to_string(type));
  }
  const std::uint32_t length = read_u32_at(header + 8);
  if (length > kMaxPayloadBytes) {
    poisoned_ = true;
    throw DataError("wire: payload length " + std::to_string(length) +
                    " exceeds limit " + std::to_string(kMaxPayloadBytes));
  }

  if (buffered() < kHeaderBytes + length) return std::nullopt;

  const std::uint32_t checksum = read_u32_at(header + 12);
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(header + kHeaderBytes, header + kHeaderBytes + length);
  if (wire_checksum(frame.payload) != checksum) {
    poisoned_ = true;
    throw DataError("wire: payload checksum mismatch");
  }
  consumed_ += kHeaderBytes + length;
  return frame;
}

}  // namespace fgcs::net
