#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <string>

#include "util/error.hpp"

namespace fgcs::net {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw DataError("event_loop: " + what + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl(wake fd)");
  }
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events, Handler handler) {
  FGCS_REQUIRE(fd >= 0);
  FGCS_REQUIRE_MSG(!contains(fd), "fd already registered");
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0)
    throw_errno("epoll_ctl(add)");
  handlers_.emplace(fd, std::make_shared<Handler>(std::move(handler)));
}

void EventLoop::modify(int fd, std::uint32_t events) {
  FGCS_REQUIRE_MSG(contains(fd), "fd not registered");
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0)
    throw_errno("epoll_ctl(mod)");
}

void EventLoop::remove(int fd) {
  const auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  // The fd may already be closed by the caller; ignore ctl errors.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(it);
}

void EventLoop::drain_wake_fd() {
  std::uint64_t value = 0;
  while (::read(wake_fd_, &value, sizeof(value)) > 0) {
  }
}

int EventLoop::poll(int timeout_ms) {
  std::array<epoll_event, 64> events{};
  int ready = 0;
  do {
    ready = epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) throw_errno("epoll_wait");

  int dispatched = 0;
  for (int i = 0; i < ready; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    if (fd == wake_fd_) {
      drain_wake_fd();
      continue;
    }
    // A handler earlier in this batch may have removed this fd — re-check,
    // and pin the handler so self-removal inside the call stays safe.
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    const std::shared_ptr<Handler> handler = it->second;
    (*handler)(events[static_cast<std::size_t>(i)].events);
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::run() {
  while (!stop_requested_.load(std::memory_order_acquire)) poll(-1);
  stop_requested_.store(false, std::memory_order_release);
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  // Best effort: a full eventfd counter still wakes the poller.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace fgcs::net
