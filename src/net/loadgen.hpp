// Open-loop workload generation for the prediction wire protocol
// (docs/BENCHMARKS.md).
//
// YCSB-style: a *plan* is a seeded, fully deterministic request schedule —
// Poisson arrivals at a fixed offered rate, Zipf-skewed key popularity,
// per-op batch sizes, and (in churn-heavy mixes) connection teardown —
// built by build_plan() as a pure function of LoadgenConfig. The same seed
// therefore yields a byte-identical schedule (pinned by digest(), an
// FNV-1a fold over every op), no matter where or how often it is built.
//
// run_plan() then *executes* a plan against a live server, one thread per
// connection, and reports latency the coordinated-omission-safe way: every
// op has a scheduled send time on the open-loop arrival clock, and its
// latency is measured from that *scheduled* instant — not from the moment
// the connection got around to sending it. A sender that falls behind
// therefore charges its queueing delay to the ops it delayed, instead of
// silently omitting the coordination the way closed-loop "send, wait,
// measure, repeat" harnesses do. Offered vs. achieved throughput makes the
// same failure visible at the rate level.
//
// A non-positive offered_rate switches to saturation mode: no pacing, all
// ops scheduled immediately, latency measured from actual send (there is
// no arrival clock to be safe against) — this is what bench_net_scaling
// uses to find the throughput ceiling per reactor count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace fgcs::net {

struct LoadgenConfig {
  std::uint64_t seed = 1;
  /// Ops per second across all connections (Poisson arrivals); <= 0 means
  /// saturate: no pacing, every connection sends back to back.
  double offered_rate = 200.0;
  /// Total predict_batch calls in the plan.
  std::size_t total_ops = 1000;
  /// Concurrent connections; ops are dealt round-robin so each connection
  /// executes an in-order slice of the global arrival sequence.
  unsigned connections = 8;
  /// Number of distinct machine keys the Zipf draw ranges over.
  std::size_t key_count = 4;
  /// Zipf(θ) skew for key popularity: rank-k key gets mass ∝ 1/k^θ.
  /// θ=0.99 is the YCSB default ("hot keys dominate"); 0 is uniform.
  double zipf_theta = 0.99;
  /// Requests per op, drawn uniformly in [batch_min, batch_max].
  std::size_t batch_min = 1;
  std::size_t batch_max = 4;
  /// Probability an op tears down and re-establishes its connection first
  /// (churn-heavy mixes stress accept/hand-off; 0 = persistent connections).
  double reconnect_prob = 0.0;
  /// Distinct (start, length) prediction windows the plan draws from. Few
  /// windows = read-mostly (the service memo-cache absorbs repeats); many =
  /// cache-miss-heavy (every op is new solver work).
  std::size_t distinct_windows = 4;
  /// target_day stamped on every request (callers set it to the served
  /// traces' day_count, i.e. "predict tomorrow").
  std::int64_t target_day = 10;
};

/// One predict_batch call in the schedule.
struct LoadgenOp {
  double scheduled = 0;          ///< seconds after run start (arrival clock)
  std::uint32_t connection = 0;  ///< executing connection index
  bool reconnect = false;        ///< tear down the connection first
  std::uint32_t window = 0;      ///< index into LoadgenPlan::windows
  std::vector<std::uint32_t> keys;  ///< key indices, one per batched request
};

struct LoadgenWindow {
  SimTime start_of_day = 0;
  SimTime length = 0;
};

struct LoadgenPlan {
  std::vector<LoadgenWindow> windows;
  std::vector<LoadgenOp> ops;
  /// Arrival time of the last op — the nominal run length at offered_rate.
  double horizon = 0;

  /// FNV-1a 64 fold over every schedule field (bit patterns for doubles):
  /// equal digests ⇔ byte-identical schedules. Pinned by the determinism
  /// tests and printed by fgcs_loadgen --plan-only.
  std::uint64_t digest() const;
};

/// Pure function of config: same config ⇒ identical plan (and digest).
LoadgenPlan build_plan(const LoadgenConfig& config);

struct LoadgenResult {
  std::size_t ops = 0;        ///< ops attempted
  std::size_t completed = 0;  ///< predict_batch calls that returned
  std::size_t failed = 0;     ///< calls that threw (counted, not retried)
  std::uint64_t predictions = 0;
  double wall_seconds = 0;    ///< first scheduled send to last completion
  double achieved_rate = 0;   ///< completed / wall_seconds
  // Latency quantiles in milliseconds, measured from the *scheduled* send
  // time (coordinated-omission-safe) when paced, from actual send when
  // saturating.
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
};

/// Executes `plan` against host:port with one PredictionClient per
/// connection. `keys` maps the plan's key indices to machine keys the
/// server can resolve; its size must equal config.key_count.
LoadgenResult run_plan(const LoadgenConfig& config, const LoadgenPlan& plan,
                       const std::string& host, std::uint16_t port,
                       const std::vector<std::string>& keys);

}  // namespace fgcs::net
