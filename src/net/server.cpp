#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/trace_span.hpp"

namespace fgcs::net {

namespace {

/// Per-event read cap when net.read.short fired at accept: small enough to
/// split the 16-byte header across reads (exercising FrameDecoder
/// reassembly), large enough that a golden batch still completes quickly.
constexpr std::size_t kShortReadBytes = 3;
/// Per-event write cap when net.write.stall fired at accept.
constexpr std::size_t kStallWriteBytes = 16;

[[noreturn]] void throw_errno(const std::string& what) {
  throw DataError("net server: " + what + ": " + std::strerror(errno));
}

}  // namespace

PredictionServer::PredictionServer(ServerConfig config,
                                   std::shared_ptr<PredictionService> service)
    : config_(std::move(config)), service_(std::move(service)) {
  FGCS_REQUIRE(service_ != nullptr);
  FGCS_REQUIRE(config_.backlog >= 1);
  FGCS_REQUIRE(config_.max_connections >= 1);
  MetricsRegistry& registry = MetricsRegistry::global();
  metrics_attachments_.push_back(
      registry.attach("net.rx.bytes.total", rx_bytes_));
  metrics_attachments_.push_back(
      registry.attach("net.tx.bytes.total", tx_bytes_));
  metrics_attachments_.push_back(registry.attach("net.frames.total", frames_));
  metrics_attachments_.push_back(
      registry.attach("net.requests.total", requests_));
  metrics_attachments_.push_back(registry.attach("net.errors.total", errors_));
  metrics_attachments_.push_back(
      registry.attach("net.request.seconds", request_hist_));
}

PredictionServer::~PredictionServer() { stop(); }

void PredictionServer::add_trace(MachineTrace trace) {
  FGCS_REQUIRE_MSG(!running(), "add_trace must precede start()");
  std::string id = trace.machine_id();
  traces_.insert_or_assign(std::move(id), std::move(trace));
}

void PredictionServer::start() {
  FGCS_REQUIRE_MSG(!running() && listen_fd_ < 0,
                   "server already started (one start/stop cycle per server)");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw DataError("net server: invalid listen address " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind/listen on " + config_.host + ":" +
                std::to_string(config_.port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

  loop_ = std::make_unique<EventLoop>();
  loop_->add(listen_fd_, EPOLLIN,
             [this](std::uint32_t events) { handle_accept(events); });
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_thread_main(); });
}

void PredictionServer::stop() {
  if (thread_.joinable()) {
    loop_->stop();
    thread_.join();
  }
  running_.store(false, std::memory_order_release);
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  active_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (spare_fd_ >= 0) {
    ::close(spare_fd_);
    spare_fd_ = -1;
  }
  loop_.reset();
}

void PredictionServer::serve_thread_main() { loop_->run(); }

void PredictionServer::handle_accept(std::uint32_t) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if ((errno == EMFILE || errno == ENFILE) && spare_fd_ >= 0) {
        // Out of descriptors with a connection still pending: the
        // level-triggered listen fd would re-fire forever. Spend the spare
        // fd to drain and refuse the connection, then reopen the reserve.
        ::close(spare_fd_);
        const int drained = ::accept4(listen_fd_, nullptr, nullptr,
                                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (drained >= 0) {
          accepted_.fetch_add(1, std::memory_order_relaxed);
          dropped_.fetch_add(1, std::memory_order_relaxed);
          ::close(drained);
        }
        spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        continue;
      }
      return;  // EAGAIN (or transient error): wait for next event
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    // The failpoint is evaluated exactly once per accept — before the
    // capacity check, so its evaluation count replays deterministically.
    const bool drop = FGCS_FAILPOINT("net.accept.drop");
    if (drop || connections_.size() >= config_.max_connections) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    conn.short_reads = FGCS_FAILPOINT("net.read.short");
    conn.stalled_writes = FGCS_FAILPOINT("net.write.stall");
    connections_.emplace(fd, std::move(conn));
    active_.store(connections_.size(), std::memory_order_relaxed);
    loop_->add(fd, EPOLLIN,
               [this, fd](std::uint32_t events) {
                 handle_connection(fd, events);
               });
  }
}

void PredictionServer::handle_connection(int fd, std::uint32_t events) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_connection(fd);
    return;
  }
  if (events & EPOLLOUT) {
    flush_outbox(it->second);
    update_write_interest(it->second);
  }
  if (!(events & EPOLLIN)) return;

  Connection& conn = it->second;
  std::uint8_t buffer[64 * 1024];
  const std::size_t cap = conn.short_reads ? kShortReadBytes : sizeof(buffer);
  for (;;) {
    const ssize_t n = ::read(fd, buffer, cap);
    if (n == 0) {
      close_connection(fd);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      close_connection(fd);
      return;
    }
    rx_bytes_.add(static_cast<std::uint64_t>(n));
    try {
      conn.decoder.feed({buffer, static_cast<std::size_t>(n)});
      while (std::optional<Frame> frame = conn.decoder.next())
        process_frame(conn, *frame);
    } catch (const DataError& error) {
      // Framing desync: answer best-effort (the outbox may never drain on a
      // desynced peer, so write the error frame directly) and close.
      // MSG_NOSIGNAL: a peer that already hung up must cost this
      // connection, not a process-killing SIGPIPE.
      errors_.add(1);
      const std::vector<std::uint8_t> frame = encode_frame(
          FrameType::kError, encode_error(error.what(), /*retryable=*/true));
      const ssize_t written =
          ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      if (written > 0) tx_bytes_.add(static_cast<std::uint64_t>(written));
      close_connection(fd);
      return;
    }
    // Level-triggered epoll re-arms the fd while bytes remain buffered, so
    // a capped connection keeps making progress one nibble per event.
    if (conn.short_reads) break;
  }
  update_write_interest(conn);
}

void PredictionServer::process_frame(Connection& conn, const Frame& frame) {
  frames_.add(1);
  if (frame.type != FrameType::kRequest) {
    // Only clients send responses/errors; answer and keep the connection —
    // framing is still intact.
    errors_.add(1);
    send_frame(conn, FrameType::kError,
               encode_error("unexpected frame type on server",
                            /*retryable=*/false));
    return;
  }
  TraceSpan span("net.request", &request_hist_);
  // Deterministically injectable "the bytes lied": treat this frame as
  // corrupt without decoding it. Evaluated once per received frame.
  if (FGCS_FAILPOINT("net.frame.corrupt")) {
    errors_.add(1);
    send_frame(conn, FrameType::kError,
               encode_error("injected: net.frame.corrupt",
                            /*retryable=*/true));
    return;
  }
  try {
    const std::vector<Prediction> results = serve_request(frame.payload);
    responses_.fetch_add(1, std::memory_order_relaxed);
    predictions_.fetch_add(results.size(), std::memory_order_relaxed);
    send_frame(conn, FrameType::kResponse, encode_response(results));
  } catch (const std::exception& error) {
    // Undecodable payload, unknown machine, or a semantic precondition the
    // prediction stack rejected: the *connection* is fine, the request is
    // not — and resending the same bytes cannot change the outcome, so the
    // error frame is marked non-retryable. Keep serving.
    errors_.add(1);
    send_frame(conn, FrameType::kError,
               encode_error(error.what(), /*retryable=*/false));
  }
}

std::vector<Prediction> PredictionServer::serve_request(
    std::span<const std::uint8_t> payload) {
  const std::vector<WireRequestItem> items = decode_request(payload);
  requests_.add(1);
  // Trim the loaded-trace cache *between* batches only: pointers resolved
  // below must stay valid until predict_batch returns, so a batch may
  // transiently overshoot max_loaded_traces by its own (bounded) size.
  evict_loaded_traces();
  std::vector<BatchRequest> batch;
  batch.reserve(items.size());
  for (const WireRequestItem& item : items)
    batch.push_back(BatchRequest{.trace = resolve_trace(item.machine_key),
                                 .request = item.request});
  return service_->predict_batch(batch);
}

void PredictionServer::evict_loaded_traces() {
  while (loaded_paths_.size() > config_.max_loaded_traces) {
    auto victim = loaded_paths_.begin();
    for (auto it = loaded_paths_.begin(); it != loaded_paths_.end(); ++it)
      if (it->second.last_used < victim->second.last_used) victim = it;
    loaded_paths_.erase(victim);
  }
  loaded_count_.store(loaded_paths_.size(), std::memory_order_relaxed);
}

const MachineTrace* PredictionServer::resolve_trace(const std::string& key) {
  if (const auto it = traces_.find(key); it != traces_.end())
    return &it->second;
  if (const auto it = loaded_paths_.find(key); it != loaded_paths_.end()) {
    it->second.last_used = ++load_clock_;
    return &it->second.trace;
  }
  return load_trace(key);
}

const MachineTrace* PredictionServer::load_trace(const std::string& key) {
  if (config_.trace_root.empty())
    throw DataError("net server: unknown machine key '" + key + "'");
  // Sandbox the load: the key must canonicalize to a path under trace_root
  // (symlinks and ".." resolved), or the client is probing the filesystem.
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root = fs::weakly_canonical(config_.trace_root, ec);
  const fs::path resolved =
      ec ? fs::path{} : fs::weakly_canonical(root / key, ec);
  const auto [mismatch_root, ignored] =
      std::mismatch(root.begin(), root.end(), resolved.begin(),
                    resolved.end());
  if (ec || root.empty() || mismatch_root != root.end())
    throw DataError("net server: machine key '" + key +
                    "' is not a trace under the configured root");
  // Loading throws DataError itself when the path is not a readable trace.
  const auto [it, inserted] = loaded_paths_.emplace(
      key, LoadedTrace{.trace = MachineTrace::load_file(resolved.string()),
                       .last_used = ++load_clock_});
  trace_loads_.fetch_add(1, std::memory_order_relaxed);
  loaded_count_.store(loaded_paths_.size(), std::memory_order_relaxed);
  return &it->second.trace;
}

void PredictionServer::send_frame(Connection& conn, FrameType type,
                                  std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  // Compact the outbox before growing it so a long-lived connection's
  // buffer stays proportional to unsent bytes.
  if (conn.outbox_sent > 0) {
    conn.outbox.erase(conn.outbox.begin(),
                      conn.outbox.begin() +
                          static_cast<std::ptrdiff_t>(conn.outbox_sent));
    conn.outbox_sent = 0;
  }
  conn.outbox.insert(conn.outbox.end(), frame.begin(), frame.end());
  flush_outbox(conn);
  update_write_interest(conn);
}

void PredictionServer::flush_outbox(Connection& conn) {
  while (conn.outbox_sent < conn.outbox.size()) {
    const std::size_t remaining = conn.outbox.size() - conn.outbox_sent;
    const std::size_t chunk =
        conn.stalled_writes ? std::min(kStallWriteBytes, remaining)
                            : remaining;
    // MSG_NOSIGNAL: a client that closed mid-response must not SIGPIPE the
    // whole server; the EPIPE surfaces as EPOLLERR/HUP and closes only this
    // connection.
    const ssize_t n = ::send(conn.fd, conn.outbox.data() + conn.outbox_sent,
                             chunk, MSG_NOSIGNAL);
    if (n < 0) {
      // EAGAIN: wait for EPOLLOUT. Hard errors surface as EPOLLERR/HUP on
      // the next poll, which closes the connection.
      return;
    }
    tx_bytes_.add(static_cast<std::uint64_t>(n));
    conn.outbox_sent += static_cast<std::size_t>(n);
    // A stalled connection sends one capped chunk per event and yields; the
    // EPOLLOUT interest registered by the caller paces the rest.
    if (conn.stalled_writes) break;
  }
  if (conn.outbox_sent == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_sent = 0;
  }
}

void PredictionServer::update_write_interest(Connection& conn) {
  const bool want = conn.outbox_sent < conn.outbox.size();
  if (want == conn.want_writable) return;
  loop_->modify(conn.fd, EPOLLIN | (want ? EPOLLOUT : 0u));
  conn.want_writable = want;
}

void PredictionServer::close_connection(int fd) {
  loop_->remove(fd);
  ::close(fd);
  connections_.erase(fd);
  active_.store(connections_.size(), std::memory_order_relaxed);
}

ServerStats PredictionServer::stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.active = active_.load(std::memory_order_relaxed);
  stats.frames = frames_.value();
  stats.requests = requests_.value();
  stats.predictions = predictions_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.errors = errors_.value();
  stats.trace_loads = trace_loads_.load(std::memory_order_relaxed);
  stats.loaded_traces = loaded_count_.load(std::memory_order_relaxed);
  stats.rx_bytes = rx_bytes_.value();
  stats.tx_bytes = tx_bytes_.value();
  return stats;
}

}  // namespace fgcs::net
