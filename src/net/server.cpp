#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>

#include "net/event_loop.hpp"
#include "net/mpsc_queue.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace_span.hpp"

namespace fgcs::net {

namespace {

/// Per-event read cap when net.read.short fired at accept: small enough to
/// split the 16-byte header across reads (exercising FrameDecoder
/// reassembly), large enough that a golden batch still completes quickly.
constexpr std::size_t kShortReadBytes = 3;
/// Per-event write cap when net.write.stall fired at accept.
constexpr std::size_t kStallWriteBytes = 16;

[[noreturn]] void throw_errno(const std::string& what) {
  throw DataError("net server: " + what + ": " + std::strerror(errno));
}

}  // namespace

ServerStats& ServerStats::operator+=(const ServerStats& other) {
  accepted += other.accepted;
  dropped += other.dropped;
  active += other.active;
  frames += other.frames;
  requests += other.requests;
  predictions += other.predictions;
  responses += other.responses;
  errors += other.errors;
  wrong_shard += other.wrong_shard;
  gossip_syncs += other.gossip_syncs;
  trace_loads += other.trace_loads;
  loaded_traces += other.loaded_traces;
  appends += other.appends;
  append_samples += other.append_samples;
  append_duplicates += other.append_duplicates;
  days_closed += other.days_closed;
  days_retired += other.days_retired;
  rx_bytes += other.rx_bytes;
  tx_bytes += other.tx_bytes;
  return *this;
}

// ---------------------------------------------------------------------------
// Reactor: one thread, one EventLoop, one disjoint set of connections.

class PredictionServer::Reactor {
 public:
  Reactor(PredictionServer& server, unsigned index);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Creates, binds, and registers this reactor's listening socket. With
  /// `reuse_port` the socket is marked SO_REUSEPORT so sibling reactors can
  /// bind the same address; a failure to set the option throws DataError
  /// (the server falls back to hand-off mode).
  void open_listener(std::uint16_t port, bool reuse_port);

  std::uint16_t bound_port() const { return bound_port_; }

  /// Thread body: dispatch this reactor's loop until stop().
  void run();
  void stop_loop() { loop_.stop(); }

  /// Post-join teardown: waits out in-flight pool tasks, reclaims queued
  /// inbox nodes, and closes every owned descriptor. Idempotent.
  void shutdown();

  /// Acceptor-side entry for hand-off mode: transfers a freshly accepted
  /// connection (plus its per-accept failpoint flags) to this reactor.
  void enqueue_adopt(int fd, bool short_reads, bool stalled_writes);

  ServerStats snapshot() const;

 private:
  struct Connection {
    int fd = -1;
    /// Guards async completions against fd reuse: a completion whose
    /// generation no longer matches the connection at that fd is dropped.
    std::uint64_t generation = 0;
    FrameDecoder decoder;
    std::vector<std::uint8_t> outbox;
    std::size_t outbox_sent = 0;
    /// Frames received but not yet processed; drained strictly in order,
    /// one in-flight batch per connection, so pipelined requests are
    /// answered FIFO.
    std::deque<Frame> pending;
    bool busy = false;          ///< a predict_batch for this conn is in the pool
    bool short_reads = false;   ///< net.read.short fired at accept
    bool stalled_writes = false;///< net.write.stall fired at accept
    bool want_writable = false; ///< EPOLLOUT currently registered
  };

  /// One message in the reactor's lock-free inbox: either a connection
  /// being handed off by the accept thread, or an encoded response frame a
  /// pool worker finished for one of this reactor's connections.
  struct InboxNode {
    InboxNode* next = nullptr;
    enum class Kind { kAdopt, kCompletion, kAppendDone } kind = Kind::kCompletion;
    int fd = -1;                       // kAdopt: the accepted socket
    bool short_reads = false;          // kAdopt
    bool stalled_writes = false;       // kAdopt
    std::uint64_t generation = 0;      // completions: owning connection
    std::vector<std::uint8_t> frame;   // completions: encoded wire frame
    bool is_error = false;             // completions: error vs response/ack
    std::uint64_t predictions = 0;     // kCompletion: results in the frame
    // kAppendDone bookkeeping, copied from the store's AppendResult so the
    // owning reactor attributes the ingest counters (stats() stays the exact
    // sum of reactor snapshots — no store-global counter to drift).
    std::uint64_t appended = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t closed = 0;
    std::uint64_t retired = 0;
  };

  /// One path-loaded trace plus its recency stamp for LRU eviction.
  struct LoadedTrace {
    MachineTrace trace;
    std::uint64_t last_used = 0;
  };

  void wake();
  void handle_accept(std::uint32_t events);
  void drain_inbox(std::uint32_t events);
  void adopt(int fd, bool short_reads, bool stalled_writes);
  void handle_connection(int fd, std::uint32_t events);
  void pump(Connection& conn);
  void dispatch_request(Connection& conn, std::span<const std::uint8_t> payload);
  void dispatch_append(Connection& conn, std::span<const std::uint8_t> payload);
  void complete(const InboxNode& node);
  void evict_loaded_traces();
  /// Resolves a machine key to a trace for one batch. A hit on the ingest
  /// store pushes its snapshot onto `pins`, which the caller must keep alive
  /// until the batch completes (registered and path-loaded traces have their
  /// own lifetime guarantees).
  const MachineTrace* resolve_trace(
      const std::string& key,
      std::vector<std::shared_ptr<const MachineTrace>>& pins);
  const MachineTrace* load_trace(const std::string& key);
  void send_frame(Connection& conn, FrameType type,
                  std::span<const std::uint8_t> payload);
  void enqueue_bytes(Connection& conn, std::span<const std::uint8_t> bytes);
  void flush_outbox(Connection& conn);
  void update_write_interest(Connection& conn);
  void close_connection(int fd);

  PredictionServer& server_;
  const unsigned index_;

  EventLoop loop_;
  int listen_fd_ = -1;
  /// Held open so EMFILE at accept time can be drained: close it, accept
  /// the pending connection onto the freed descriptor, close that, reopen.
  int spare_fd_ = -1;
  /// Producers (pool workers, the accept thread) write here after pushing
  /// to inbox_; registered EPOLLIN in loop_, so the reactor wakes to drain.
  int notify_fd_ = -1;
  MpscQueue<InboxNode> inbox_;

  std::unordered_map<int, Connection> connections_;  // reactor thread only
  std::uint64_t next_generation_ = 0;                // reactor thread only
  std::map<std::string, LoadedTrace> loaded_paths_;  // reactor thread only
  std::uint64_t load_clock_ = 0;                     // reactor thread only
  /// Batches dispatched to the pool whose completion has not yet been
  /// drained. While non-zero the loaded-trace cache must not evict (an
  /// in-flight batch may hold pointers into it).
  std::size_t in_flight_ = 0;                        // reactor thread only
  /// Pool tasks submitted but not yet finished pushing their node; stop()
  /// waits this out before reclaiming the inbox.
  std::atomic<std::uint64_t> pending_tasks_{0};
  unsigned round_robin_next_ = 0;                    // accept thread only
  std::uint16_t bound_port_ = 0;
  bool shutdown_done_ = false;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> predictions_{0};
  std::atomic<std::uint64_t> trace_loads_{0};
  std::atomic<std::uint64_t> loaded_count_{0};
  // Instruments shared with the global exposition: attached both to the
  // fleet-wide net.* series (summed across reactors) and to this reactor's
  // net.reactor.<i>.* series.
  Counter rx_bytes_;
  Counter tx_bytes_;
  Counter frames_;
  Counter requests_;
  Counter errors_;
  // Decentralized-registry instruments (registry.ring.* / registry.gossip.*
  // fleet-wide + net.reactor.<i>.*).
  Counter wrong_shard_;
  Counter gossip_syncs_;
  // Ingest instruments (ingest.* fleet-wide + net.reactor.<i>.ingest.*).
  Counter appends_;
  Counter append_samples_;
  Counter append_duplicates_;
  Counter days_closed_;
  Counter days_retired_;
  Histogram request_hist_{Histogram::default_latency_bounds()};
  std::vector<MetricsAttachment> metrics_attachments_;
};

namespace {
/// Set by Reactor::run() so handlers can assert strict connection
/// ownership: a connection's events and completions are only ever serviced
/// on its owning reactor's thread.
thread_local const void* t_current_reactor = nullptr;
}  // namespace

PredictionServer::Reactor::Reactor(PredictionServer& server, unsigned index)
    : server_(server), index_(index) {
  notify_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (notify_fd_ < 0) throw_errno("eventfd(reactor inbox)");
  loop_.add(notify_fd_, EPOLLIN,
            [this](std::uint32_t events) { drain_inbox(events); });

  MetricsRegistry& registry = MetricsRegistry::global();
  const std::string prefix = "net.reactor." + std::to_string(index_) + ".";
  const auto attach_both = [&](const char* name, Counter& counter) {
    metrics_attachments_.push_back(
        registry.attach(std::string("net.") + name, counter));
    metrics_attachments_.push_back(registry.attach(prefix + name, counter));
  };
  attach_both("rx.bytes.total", rx_bytes_);
  attach_both("tx.bytes.total", tx_bytes_);
  attach_both("frames.total", frames_);
  attach_both("requests.total", requests_);
  attach_both("errors.total", errors_);
  // Registry-routing series keep their own fleet-wide prefix (they are a
  // registry concern, not a transport one) but still shard per reactor.
  metrics_attachments_.push_back(
      registry.attach("registry.ring.wrong_shard.total", wrong_shard_));
  metrics_attachments_.push_back(
      registry.attach(prefix + "wrong_shard.total", wrong_shard_));
  metrics_attachments_.push_back(
      registry.attach("registry.gossip.syncs.served.total", gossip_syncs_));
  metrics_attachments_.push_back(
      registry.attach(prefix + "gossip.syncs.total", gossip_syncs_));
  // Ingest series live under their own fleet-wide prefix (they are a store
  // concern, not a transport one) but still shard per reactor.
  const auto attach_ingest = [&](const char* name, Counter& counter) {
    metrics_attachments_.push_back(
        registry.attach(std::string("ingest.") + name, counter));
    metrics_attachments_.push_back(
        registry.attach(prefix + "ingest." + name, counter));
  };
  attach_ingest("appends.total", appends_);
  attach_ingest("samples.total", append_samples_);
  attach_ingest("duplicates.total", append_duplicates_);
  attach_ingest("days.closed.total", days_closed_);
  attach_ingest("days.retired.total", days_retired_);
  metrics_attachments_.push_back(
      registry.attach("net.request.seconds", request_hist_));
  metrics_attachments_.push_back(
      registry.attach(prefix + "request.seconds", request_hist_));
}

PredictionServer::Reactor::~Reactor() { shutdown(); }

void PredictionServer::Reactor::open_listener(std::uint16_t port,
                                              bool reuse_port) {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port &&
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
          0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("setsockopt(SO_REUSEPORT)");
  }

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, server_.config_.host.c_str(), &address.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw DataError("net server: invalid listen address " +
                    server_.config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, server_.config_.backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind/listen on " + server_.config_.host + ":" +
                std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  loop_.add(listen_fd_, EPOLLIN,
            [this](std::uint32_t events) { handle_accept(events); });
}

void PredictionServer::Reactor::run() {
  t_current_reactor = this;
  loop_.run();
  t_current_reactor = nullptr;
}

void PredictionServer::Reactor::shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  // In-flight pool tasks hold `this`; they finish by pushing their node and
  // dropping pending_tasks_, after which the inbox can be reclaimed.
  while (pending_tasks_.load(std::memory_order_acquire) != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (InboxNode* node = inbox_.take_all(); node != nullptr;) {
    InboxNode* next = node->next;
    if (node->kind == InboxNode::Kind::kAdopt && node->fd >= 0)
      ::close(node->fd);
    delete node;
    node = next;
  }
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  active_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (spare_fd_ >= 0) {
    ::close(spare_fd_);
    spare_fd_ = -1;
  }
  if (notify_fd_ >= 0) {
    ::close(notify_fd_);
    notify_fd_ = -1;
  }
}

void PredictionServer::Reactor::wake() {
  const std::uint64_t one = 1;
  // Best effort: a full eventfd counter still wakes the poller.
  [[maybe_unused]] const ssize_t n =
      ::write(notify_fd_, &one, sizeof(one));
}

void PredictionServer::Reactor::enqueue_adopt(int fd, bool short_reads,
                                              bool stalled_writes) {
  auto* node = new InboxNode;
  node->kind = InboxNode::Kind::kAdopt;
  node->fd = fd;
  node->short_reads = short_reads;
  node->stalled_writes = stalled_writes;
  inbox_.push(node);
  wake();
}

void PredictionServer::Reactor::handle_accept(std::uint32_t) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if ((errno == EMFILE || errno == ENFILE) && spare_fd_ >= 0) {
        // Out of descriptors with a connection still pending: the
        // level-triggered listen fd would re-fire forever. Spend the spare
        // fd to drain and refuse the connection, then reopen the reserve.
        ::close(spare_fd_);
        const int drained = ::accept4(listen_fd_, nullptr, nullptr,
                                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (drained >= 0) {
          accepted_.fetch_add(1, std::memory_order_relaxed);
          dropped_.fetch_add(1, std::memory_order_relaxed);
          ::close(drained);
        }
        spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        continue;
      }
      return;  // EAGAIN (or transient error): wait for next event
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    // The failpoint is evaluated exactly once per accept — before the
    // capacity check, so its evaluation count replays deterministically.
    const bool drop = FGCS_FAILPOINT("net.accept.drop");
    if (drop || server_.total_active_.load(std::memory_order_relaxed) >=
                    server_.config_.max_connections) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Per-accept failpoints are evaluated here on the accepting thread (so
    // their order is the accept order, deterministic for a sequential
    // driver) and travel with the connection on hand-off.
    const bool short_reads = FGCS_FAILPOINT("net.read.short");
    const bool stalled_writes = FGCS_FAILPOINT("net.write.stall");
    server_.total_active_.fetch_add(1, std::memory_order_relaxed);
    if (server_.accept_handoff_) {
      const unsigned target =
          round_robin_next_++ % static_cast<unsigned>(server_.reactors_.size());
      if (target != index_) {
        server_.reactors_[target]->enqueue_adopt(fd, short_reads,
                                                 stalled_writes);
        continue;
      }
    }
    adopt(fd, short_reads, stalled_writes);
  }
}

void PredictionServer::Reactor::adopt(int fd, bool short_reads,
                                      bool stalled_writes) {
  Connection conn;
  conn.fd = fd;
  conn.generation = ++next_generation_;
  conn.short_reads = short_reads;
  conn.stalled_writes = stalled_writes;
  connections_.emplace(fd, std::move(conn));
  active_.store(connections_.size(), std::memory_order_relaxed);
  loop_.add(fd, EPOLLIN,
            [this, fd](std::uint32_t events) { handle_connection(fd, events); });
}

void PredictionServer::Reactor::drain_inbox(std::uint32_t) {
  FGCS_REQUIRE_MSG(t_current_reactor == this || !server_.running(),
                   "inbox drained off the owning reactor thread");
  std::uint64_t value = 0;
  while (::read(notify_fd_, &value, sizeof(value)) > 0) {
  }
  for (InboxNode* node = inbox_.take_all(); node != nullptr;) {
    InboxNode* next = node->next;
    if (node->kind == InboxNode::Kind::kAdopt)
      adopt(node->fd, node->short_reads, node->stalled_writes);
    else
      complete(*node);
    delete node;
    node = next;
  }
}

void PredictionServer::Reactor::handle_connection(int fd,
                                                 std::uint32_t events) {
  FGCS_REQUIRE_MSG(t_current_reactor == this,
                   "connection serviced off its owning reactor");
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_connection(fd);
    return;
  }
  if (events & EPOLLOUT) {
    flush_outbox(it->second);
    update_write_interest(it->second);
  }
  if (!(events & EPOLLIN)) return;

  Connection& conn = it->second;
  std::uint8_t buffer[64 * 1024];
  const std::size_t cap = conn.short_reads ? kShortReadBytes : sizeof(buffer);
  for (;;) {
    const ssize_t n = ::read(fd, buffer, cap);
    if (n == 0) {
      close_connection(fd);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      close_connection(fd);
      return;
    }
    rx_bytes_.add(static_cast<std::uint64_t>(n));
    try {
      conn.decoder.feed({buffer, static_cast<std::size_t>(n)});
      while (std::optional<Frame> frame = conn.decoder.next())
        conn.pending.push_back(std::move(*frame));
      pump(conn);
    } catch (const DataError& error) {
      // Framing desync: answer best-effort (the outbox may never drain on a
      // desynced peer, so write the error frame directly) and close.
      // MSG_NOSIGNAL: a peer that already hung up must cost this
      // connection, not a process-killing SIGPIPE.
      errors_.add(1);
      const std::vector<std::uint8_t> frame = encode_frame(
          FrameType::kError, encode_error(error.what(), /*retryable=*/true));
      const ssize_t written =
          ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      if (written > 0) tx_bytes_.add(static_cast<std::uint64_t>(written));
      close_connection(fd);
      return;
    }
    // Level-triggered epoll re-arms the fd while bytes remain buffered, so
    // a capped connection keeps making progress one nibble per event.
    if (conn.short_reads) break;
  }
  update_write_interest(conn);
}

void PredictionServer::Reactor::pump(Connection& conn) {
  // One in-flight batch per connection: responses come back in request
  // order even when the client pipelines. Frames that fail synchronously
  // (wrong type, injected corruption, undecodable payload) answer in the
  // same strict order.
  while (!conn.busy && !conn.pending.empty()) {
    const Frame frame = std::move(conn.pending.front());
    conn.pending.pop_front();
    frames_.add(1);
    if (frame.type == FrameType::kGossipSync) {
      // Anti-entropy: merge the peer's table into the attached agent and
      // answer ours. Handled before the data-frame failpoints so gossip
      // traffic never perturbs a pinned net.* chaos replay.
      try {
        const GossipMessage ack =
            server_.handle_gossip_sync(decode_gossip(frame.payload));
        gossip_syncs_.add(1);
        send_frame(conn, FrameType::kGossipAck, encode_gossip(ack));
      } catch (const std::exception& error) {
        // No agent attached or an undecodable table: semantic rejection.
        errors_.add(1);
        send_frame(conn, FrameType::kError,
                   encode_error(error.what(), /*retryable=*/false));
      }
      continue;
    }
    if (frame.type != FrameType::kRequest &&
        frame.type != FrameType::kAppendSamples) {
      // Only clients send responses/errors/acks; answer and keep the
      // connection — framing is still intact.
      errors_.add(1);
      send_frame(conn, FrameType::kError,
                 encode_error("unexpected frame type on server",
                              /*retryable=*/false));
      continue;
    }
    // Deterministically injectable "the bytes lied": treat this frame as
    // corrupt without decoding it. Evaluated once per received data frame
    // (request or append), in arrival order on the owning reactor.
    if (FGCS_FAILPOINT("net.frame.corrupt")) {
      errors_.add(1);
      send_frame(conn, FrameType::kError,
                 encode_error("injected: net.frame.corrupt",
                              /*retryable=*/true));
      continue;
    }
    if (frame.type == FrameType::kAppendSamples) {
      if (server_.store_ == nullptr) {
        // A serving-only fleet: appends are a client misconfiguration, not
        // transport trouble — reject without retry, keep the connection.
        errors_.add(1);
        send_frame(conn, FrameType::kError,
                   encode_error("ingest is disabled on this server",
                                /*retryable=*/false));
        continue;
      }
      // Injected ingest backpressure: the batch is dropped before decoding,
      // but appends are idempotent, so the client may retry the same bytes
      // on the same connection — retryable WITHOUT the close that framing
      // errors earn (the stream is still in sync). Evaluated once per
      // append frame, in arrival order on the owning reactor.
      if (FGCS_FAILPOINT("ingest.append.drop")) {
        errors_.add(1);
        send_frame(conn, FrameType::kError,
                   encode_error("injected: ingest.append.drop",
                                /*retryable=*/true));
        continue;
      }
      try {
        dispatch_append(conn, frame.payload);
      } catch (const std::exception& error) {
        // Undecodable append payload: same contract as a bad request.
        errors_.add(1);
        send_frame(conn, FrameType::kError,
                   encode_error(error.what(), /*retryable=*/false));
      }
      continue;
    }
    try {
      dispatch_request(conn, frame.payload);
    } catch (const std::exception& error) {
      // Undecodable payload, unknown machine, or a semantic precondition
      // the prediction stack rejected before dispatch: the *connection* is
      // fine, the request is not — and resending the same bytes cannot
      // change the outcome, so the error frame is marked non-retryable.
      errors_.add(1);
      send_frame(conn, FrameType::kError,
                 encode_error(error.what(), /*retryable=*/false));
    }
  }
}

void PredictionServer::Reactor::dispatch_request(
    Connection& conn, std::span<const std::uint8_t> payload) {
  const std::vector<WireRequestItem> items = decode_request(payload);
  requests_.add(1);
  // Shard routing: with an identity and a ring installed, a batch naming
  // any key the ring assigns to another node is refused whole — the
  // kWrongShard answer carries the current ring, so the client's refetch is
  // implicit. All-or-nothing keeps the response contract one-frame-per-
  // request-frame and forces the client to re-partition with a ring at
  // least as fresh as ours.
  if (!server_.config_.node_id.empty()) {
    if (const std::shared_ptr<const HashRing> ring = server_.ring()) {
      const bool owns_all = std::all_of(
          items.begin(), items.end(), [&](const WireRequestItem& item) {
            const RingMember* owner = ring->owner(item.machine_key);
            return owner != nullptr &&
                   owner->node_id == server_.config_.node_id;
          });
      if (!owns_all) {
        wrong_shard_.add(1);
        send_frame(conn, FrameType::kWrongShard, encode_wrong_shard(*ring));
        return;
      }
    }
  }
  // Trim the loaded-trace cache only while no batch is in flight: pointers
  // resolved below stay valid until their predict_batch returns, so the
  // cache may transiently overshoot max_loaded_traces by the in-flight
  // batches' (bounded) key sets.
  if (in_flight_ == 0) evict_loaded_traces();
  std::vector<BatchRequest> batch;
  batch.reserve(items.size());
  // Snapshots resolved from the ingest store are pinned for the batch's
  // lifetime (moved into the pool task below): a concurrent day-close swaps
  // the store's pointer but cannot free a trace a prediction still reads.
  std::vector<std::shared_ptr<const MachineTrace>> pins;
  for (const WireRequestItem& item : items)
    batch.push_back(
        BatchRequest{.trace = resolve_trace(item.machine_key, pins),
                     .request = item.request});

  auto* node = new InboxNode;
  node->kind = InboxNode::Kind::kCompletion;
  node->fd = conn.fd;
  node->generation = conn.generation;
  pending_tasks_.fetch_add(1, std::memory_order_acq_rel);
  try {
    ThreadPool::default_pool().submit(
        [this, node, batch = std::move(batch), pins = std::move(pins)] {
          try {
            TraceSpan span("net.request", &request_hist_);
            const std::vector<Prediction> results =
                server_.service_->predict_batch(batch);
            node->predictions = results.size();
            node->frame =
                encode_frame(FrameType::kResponse, encode_response(results));
          } catch (const std::exception& error) {
            node->is_error = true;
            node->frame = encode_frame(
                FrameType::kError,
                encode_error(error.what(), /*retryable=*/false));
          }
          // Push before dropping pending_tasks_: shutdown() reclaims the
          // inbox only after the counter drains to zero.
          inbox_.push(node);
          wake();
          pending_tasks_.fetch_sub(1, std::memory_order_release);
        });
  } catch (...) {
    pending_tasks_.fetch_sub(1, std::memory_order_release);
    delete node;
    throw;
  }
  conn.busy = true;
  ++in_flight_;
}

void PredictionServer::Reactor::dispatch_append(
    Connection& conn, std::span<const std::uint8_t> payload) {
  // Decode on the reactor (so malformed payloads answer synchronously, like
  // requests), run the store append on the pool (a day-close copies the
  // whole history — never on the event loop), ack through the inbox.
  WireAppendRequest request = decode_append(payload);
  auto* node = new InboxNode;
  node->kind = InboxNode::Kind::kAppendDone;
  node->fd = conn.fd;
  node->generation = conn.generation;
  pending_tasks_.fetch_add(1, std::memory_order_acq_rel);
  try {
    ThreadPool::default_pool().submit([this, node,
                                       request = std::move(request)] {
      try {
        const MachineSpec spec{
            .machine_id = request.machine_id,
            .epoch_day_of_week = request.epoch_day_of_week,
            .sampling_period = request.sampling_period,
            .total_mem_mb = static_cast<int>(request.total_mem_mb)};
        const AppendResult result = server_.store_->append(
            spec, request.first_sample_index, request.samples);
        node->appended = result.accepted;
        node->duplicates = result.duplicates;
        node->closed = result.days_closed;
        node->retired = result.days_retired;
        const WireAppendAck ack{
            .accepted = result.accepted,
            .duplicates = result.duplicates,
            .next_index = result.next_index,
            .days_closed = result.days_closed,
            .days_retired = result.days_retired,
            .generation =
                server_.service_->history_generation(request.machine_id)};
        node->frame =
            encode_frame(FrameType::kAppendAck, encode_append_ack(ack));
      } catch (const RollupError& error) {
        // Injected rollup failure: the store kept the batch's earlier
        // samples and the day buffer intact, so a client retry of the same
        // bytes dedups the overlap and resumes the close — retryable, and
        // the connection stays up (framing never desynced).
        node->is_error = true;
        node->frame = encode_frame(
            FrameType::kError, encode_error(error.what(), /*retryable=*/true));
      } catch (const std::exception& error) {
        // Spec mismatch, index gap: semantic rejection a retry cannot fix.
        node->is_error = true;
        node->frame = encode_frame(
            FrameType::kError, encode_error(error.what(), /*retryable=*/false));
      }
      inbox_.push(node);
      wake();
      pending_tasks_.fetch_sub(1, std::memory_order_release);
    });
  } catch (...) {
    pending_tasks_.fetch_sub(1, std::memory_order_release);
    delete node;
    throw;
  }
  conn.busy = true;
  ++in_flight_;
}

void PredictionServer::Reactor::complete(const InboxNode& node) {
  --in_flight_;
  const auto it = connections_.find(node.fd);
  // The connection may have closed (or its fd been reused by a later
  // accept) while the batch was in the pool; the generation mismatch makes
  // the stale completion drop harmlessly.
  if (it == connections_.end() || it->second.generation != node.generation)
    return;
  Connection& conn = it->second;
  conn.busy = false;
  if (node.is_error) {
    errors_.add(1);
  } else if (node.kind == InboxNode::Kind::kAppendDone) {
    appends_.add(1);
    append_samples_.add(node.appended);
    append_duplicates_.add(node.duplicates);
    days_closed_.add(node.closed);
    days_retired_.add(node.retired);
  } else {
    responses_.fetch_add(1, std::memory_order_relaxed);
    predictions_.fetch_add(node.predictions, std::memory_order_relaxed);
  }
  enqueue_bytes(conn, node.frame);
  pump(conn);
}

void PredictionServer::Reactor::evict_loaded_traces() {
  while (loaded_paths_.size() > server_.config_.max_loaded_traces) {
    auto victim = loaded_paths_.begin();
    for (auto it = loaded_paths_.begin(); it != loaded_paths_.end(); ++it)
      if (it->second.last_used < victim->second.last_used) victim = it;
    loaded_paths_.erase(victim);
  }
  loaded_count_.store(loaded_paths_.size(), std::memory_order_relaxed);
}

const MachineTrace* PredictionServer::Reactor::resolve_trace(
    const std::string& key,
    std::vector<std::shared_ptr<const MachineTrace>>& pins) {
  if (const auto it = server_.traces_.find(key); it != server_.traces_.end())
    return &it->second;
  if (server_.store_ != nullptr) {
    if (std::shared_ptr<const MachineTrace> snap = server_.store_->snapshot(key)) {
      pins.push_back(std::move(snap));
      return pins.back().get();
    }
  }
  if (const auto it = loaded_paths_.find(key); it != loaded_paths_.end()) {
    it->second.last_used = ++load_clock_;
    return &it->second.trace;
  }
  return load_trace(key);
}

const MachineTrace* PredictionServer::Reactor::load_trace(
    const std::string& key) {
  if (server_.config_.trace_root.empty())
    throw DataError("net server: unknown machine key '" + key + "'");
  // Sandbox the load: the key must canonicalize to a path under trace_root
  // (symlinks and ".." resolved), or the client is probing the filesystem.
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root = fs::weakly_canonical(server_.config_.trace_root, ec);
  const fs::path resolved =
      ec ? fs::path{} : fs::weakly_canonical(root / key, ec);
  const auto [mismatch_root, ignored] =
      std::mismatch(root.begin(), root.end(), resolved.begin(),
                    resolved.end());
  if (ec || root.empty() || mismatch_root != root.end())
    throw DataError("net server: machine key '" + key +
                    "' is not a trace under the configured root");
  // Loading throws DataError itself when the path is not a readable trace.
  const auto [it, inserted] = loaded_paths_.emplace(
      key, LoadedTrace{.trace = MachineTrace::load_file(resolved.string()),
                       .last_used = ++load_clock_});
  trace_loads_.fetch_add(1, std::memory_order_relaxed);
  loaded_count_.store(loaded_paths_.size(), std::memory_order_relaxed);
  return &it->second.trace;
}

void PredictionServer::Reactor::send_frame(
    Connection& conn, FrameType type, std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  enqueue_bytes(conn, frame);
}

void PredictionServer::Reactor::enqueue_bytes(
    Connection& conn, std::span<const std::uint8_t> bytes) {
  // Compact the outbox before growing it so a long-lived connection's
  // buffer stays proportional to unsent bytes.
  if (conn.outbox_sent > 0) {
    conn.outbox.erase(conn.outbox.begin(),
                      conn.outbox.begin() +
                          static_cast<std::ptrdiff_t>(conn.outbox_sent));
    conn.outbox_sent = 0;
  }
  conn.outbox.insert(conn.outbox.end(), bytes.begin(), bytes.end());
  flush_outbox(conn);
  update_write_interest(conn);
}

void PredictionServer::Reactor::flush_outbox(Connection& conn) {
  while (conn.outbox_sent < conn.outbox.size()) {
    const std::size_t remaining = conn.outbox.size() - conn.outbox_sent;
    const std::size_t chunk =
        conn.stalled_writes ? std::min(kStallWriteBytes, remaining)
                            : remaining;
    // MSG_NOSIGNAL: a client that closed mid-response must not SIGPIPE the
    // whole server; the EPIPE surfaces as EPOLLERR/HUP and closes only this
    // connection.
    const ssize_t n = ::send(conn.fd, conn.outbox.data() + conn.outbox_sent,
                             chunk, MSG_NOSIGNAL);
    if (n < 0) {
      // EAGAIN: wait for EPOLLOUT. Hard errors surface as EPOLLERR/HUP on
      // the next poll, which closes the connection.
      return;
    }
    tx_bytes_.add(static_cast<std::uint64_t>(n));
    conn.outbox_sent += static_cast<std::size_t>(n);
    // A stalled connection sends one capped chunk per event and yields; the
    // EPOLLOUT interest registered by the caller paces the rest.
    if (conn.stalled_writes) break;
  }
  if (conn.outbox_sent == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_sent = 0;
  }
}

void PredictionServer::Reactor::update_write_interest(Connection& conn) {
  const bool want = conn.outbox_sent < conn.outbox.size();
  if (want == conn.want_writable) return;
  loop_.modify(conn.fd, EPOLLIN | (want ? EPOLLOUT : 0u));
  conn.want_writable = want;
}

void PredictionServer::Reactor::close_connection(int fd) {
  loop_.remove(fd);
  ::close(fd);
  connections_.erase(fd);
  active_.store(connections_.size(), std::memory_order_relaxed);
  server_.total_active_.fetch_sub(1, std::memory_order_relaxed);
}

ServerStats PredictionServer::Reactor::snapshot() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.active = active_.load(std::memory_order_relaxed);
  stats.frames = frames_.value();
  stats.requests = requests_.value();
  stats.predictions = predictions_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.errors = errors_.value();
  stats.wrong_shard = wrong_shard_.value();
  stats.gossip_syncs = gossip_syncs_.value();
  stats.trace_loads = trace_loads_.load(std::memory_order_relaxed);
  stats.loaded_traces = loaded_count_.load(std::memory_order_relaxed);
  stats.appends = appends_.value();
  stats.append_samples = append_samples_.value();
  stats.append_duplicates = append_duplicates_.value();
  stats.days_closed = days_closed_.value();
  stats.days_retired = days_retired_.value();
  stats.rx_bytes = rx_bytes_.value();
  stats.tx_bytes = tx_bytes_.value();
  return stats;
}

// ---------------------------------------------------------------------------
// PredictionServer: reactor fleet lifecycle + aggregation.

PredictionServer::PredictionServer(ServerConfig config,
                                   std::shared_ptr<PredictionService> service)
    : config_(std::move(config)), service_(std::move(service)) {
  FGCS_REQUIRE(service_ != nullptr);
  FGCS_REQUIRE(config_.backlog >= 1);
  FGCS_REQUIRE(config_.max_connections >= 1);
  FGCS_REQUIRE_MSG(config_.reactors >= 1, "need at least one reactor");
  if (config_.ingest) {
    // The day-closed callback runs on whichever pool worker drove the
    // append, under the machine's store lock; invalidate() is thread-safe
    // and cheap (one generation bump). One closed day ⇒ exactly one bump —
    // tests/net/ingest_differential_test.cpp pins that.
    store_ = std::make_unique<TraceStore>(
        TraceStoreConfig{.retention_days = config_.ingest_retention_days},
        [this](const TraceStore::DayClosedEvent& event) {
          service_->invalidate(event.machine_id);
        });
  }
  reactors_.reserve(config_.reactors);
  for (unsigned i = 0; i < config_.reactors; ++i)
    reactors_.push_back(std::make_unique<Reactor>(*this, i));
}

PredictionServer::~PredictionServer() { stop(); }

void PredictionServer::add_trace(MachineTrace trace) {
  FGCS_REQUIRE_MSG(!running(), "add_trace must precede start()");
  std::string id = trace.machine_id();
  traces_.insert_or_assign(std::move(id), std::move(trace));
}

unsigned PredictionServer::reactor_count() const {
  return static_cast<unsigned>(reactors_.size());
}

void PredictionServer::start() {
  FGCS_REQUIRE_MSG(!started_,
                   "server already started (one start/stop cycle per server)");

  if (reactors_.size() == 1) {
    // The reactors=1 special case is the original single-reactor server:
    // one plain listener, no SO_REUSEPORT, no hand-off.
    accept_handoff_ = false;
    reactors_[0]->open_listener(config_.port, /*reuse_port=*/false);
  } else if (config_.force_accept_handoff) {
    accept_handoff_ = true;
    reactors_[0]->open_listener(config_.port, /*reuse_port=*/false);
  } else {
    // Preferred sharding: every reactor binds its own SO_REUSEPORT listener
    // on the same address and the kernel spreads connections. If the
    // platform refuses the option, fall back to hand-off mode.
    try {
      reactors_[0]->open_listener(config_.port, /*reuse_port=*/true);
      for (std::size_t i = 1; i < reactors_.size(); ++i)
        reactors_[i]->open_listener(reactors_[0]->bound_port(),
                                    /*reuse_port=*/true);
      accept_handoff_ = false;
    } catch (const DataError&) {
      // Rebuild the reactor fleet so no half-opened listener leaks, then
      // take the single-listener path.
      reactors_.clear();
      for (unsigned i = 0; i < config_.reactors; ++i)
        reactors_.push_back(std::make_unique<Reactor>(*this, i));
      accept_handoff_ = true;
      reactors_[0]->open_listener(config_.port, /*reuse_port=*/false);
    }
  }
  bound_port_ = reactors_[0]->bound_port();

  started_ = true;
  running_.store(true, std::memory_order_release);
  threads_.reserve(reactors_.size());
  for (const std::unique_ptr<Reactor>& reactor : reactors_)
    threads_.emplace_back([r = reactor.get()] { r->run(); });
}

void PredictionServer::stop() {
  if (!threads_.empty()) {
    for (const std::unique_ptr<Reactor>& reactor : reactors_)
      reactor->stop_loop();
    for (std::thread& thread : threads_) thread.join();
    threads_.clear();
  }
  running_.store(false, std::memory_order_release);
  for (const std::unique_ptr<Reactor>& reactor : reactors_)
    reactor->shutdown();
  total_active_.store(0, std::memory_order_relaxed);
}

void PredictionServer::set_ring(HashRing ring) {
  auto snapshot = std::make_shared<const HashRing>(std::move(ring));
  std::lock_guard<std::mutex> lock(ring_mutex_);
  ring_ = std::move(snapshot);
}

std::shared_ptr<const HashRing> PredictionServer::ring() const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  return ring_;
}

void PredictionServer::attach_gossip(GossipAgent* agent) {
  std::lock_guard<std::mutex> lock(gossip_mutex_);
  gossip_agent_ = agent;
}

GossipMessage PredictionServer::handle_gossip_sync(const GossipMessage& sync) {
  std::lock_guard<std::mutex> lock(gossip_mutex_);
  if (gossip_agent_ == nullptr)
    throw DataError("net server: gossip is not enabled on this server");
  return gossip_agent_->handle_sync(sync);
}

std::pair<std::vector<std::string>, GossipMessage>
PredictionServer::gossip_tick() {
  std::lock_guard<std::mutex> lock(gossip_mutex_);
  if (gossip_agent_ == nullptr)
    throw DataError("net server: gossip is not enabled on this server");
  std::vector<std::string> peers = gossip_agent_->tick();
  return {std::move(peers), gossip_agent_->make_sync()};
}

void PredictionServer::gossip_merge_ack(const GossipMessage& ack) {
  std::lock_guard<std::mutex> lock(gossip_mutex_);
  if (gossip_agent_ == nullptr)
    throw DataError("net server: gossip is not enabled on this server");
  gossip_agent_->handle_ack(ack);
}

HashRing PredictionServer::gossip_ring() {
  std::lock_guard<std::mutex> lock(gossip_mutex_);
  if (gossip_agent_ == nullptr)
    throw DataError("net server: gossip is not enabled on this server");
  return gossip_agent_->ring();
}

ServerStats PredictionServer::stats() const {
  // The aggregate IS the sum of the shards — there is no separate global
  // counter set that could double-count or drift (the PR-6 stats fix).
  ServerStats total;
  for (const std::unique_ptr<Reactor>& reactor : reactors_)
    total += reactor->snapshot();
  return total;
}

std::vector<ServerStats> PredictionServer::reactor_stats() const {
  std::vector<ServerStats> stats;
  stats.reserve(reactors_.size());
  for (const std::unique_ptr<Reactor>& reactor : reactors_)
    stats.push_back(reactor->snapshot());
  return stats;
}

}  // namespace fgcs::net
