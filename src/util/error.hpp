// Error-handling helpers shared by all fgcs libraries.
//
// Precondition violations throw fgcs::PreconditionError; they indicate caller
// bugs, not environmental failures, and are therefore cheap to test for.
#pragma once

#include <stdexcept>
#include <string>

namespace fgcs {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when input data (a trace file, a log) is malformed.
class DataError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition failed: " + expr +
                          (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace fgcs

/// FGCS_REQUIRE(cond) / FGCS_REQUIRE_MSG(cond, msg): validate a precondition
/// of a public entry point. Always on (not tied to NDEBUG) — the checks guard
/// API misuse, and every call site is far from any hot inner loop.
#define FGCS_REQUIRE(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::fgcs::detail::throw_precondition(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define FGCS_REQUIRE_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr))                                                           \
      ::fgcs::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
