// Shared-memory parallel helpers.
//
// parallel_for runs an index range on the process-wide persistent
// work-stealing pool (util/thread_pool.hpp): workers are spawned once and
// reused across calls, and the range is claimed in small dynamic chunks, so
// repeated fan-outs — a prediction service probing the fleet per job
// placement, a generator building 20 machines × 91 days of traces — pay no
// thread spawn/teardown per call and one slow index stalls only its chunk.
// With an effective width of one (single-core host, or max_threads = 1) the
// loop degrades to the serial loop in index order with no thread activity.
//
// The callable must be safe to run concurrently for distinct indices. The
// first exception it throws is captured, the not-yet-claimed remainder of
// the range is abandoned, and the exception is rethrown on the caller once
// in-flight work settles. Calling parallel_for from inside a parallel_for
// body is safe: the inner caller works its own range, so nesting cannot
// deadlock.
//
// spawn_parallel_for is the retired spawn-per-call implementation (fresh
// std::threads every call, static chunking). It is kept only as the
// regression baseline: bench_ext_service measures pool dispatch against it,
// and the pool tests pin behavioural parity (visit-each-once, exception
// propagation) between the two.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace fgcs {

/// Invokes `body(i)` for i in [0, count) on the persistent default pool,
/// using at most `max_threads` threads (0 = the pool's worker count).
template <typename Body>
void parallel_for(std::size_t count, Body&& body, unsigned max_threads = 0) {
  if (count == 0) return;
  ThreadPool& pool = ThreadPool::default_pool();
  const unsigned width =
      max_threads == 0 ? pool.worker_count() : max_threads;
  if (width <= 1 || count == 1) {
    // Serial fast path: no pool startup, no std::function wrap.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  const std::function<void(std::size_t)> wrapped =
      [&body](std::size_t i) { body(i); };
  pool.for_each_index(count, wrapped, max_threads);
}

/// Legacy spawn-per-call parallel loop: creates up to `max_threads` fresh
/// std::threads (0 = hardware_concurrency), statically chunked, joined
/// before returning. Superseded by parallel_for on the persistent pool;
/// kept as the comparison baseline for benches and parity tests only.
template <typename Body>
void spawn_parallel_for(std::size_t count, Body&& body,
                        unsigned max_threads = 0) {
  if (count == 0) return;
  unsigned hw = max_threads == 0 ? std::thread::hardware_concurrency()
                                 : max_threads;
  if (hw == 0) hw = 1;
  const std::size_t threads = std::min<std::size_t>(hw, count);

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const std::size_t chunk = (count + threads - 1) / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t lo = t * chunk;
    const std::size_t hi = std::min(count, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fgcs
