// Shared-memory parallel helpers.
//
// Fleet-scale work — generating 20 machines × 91 days of traces, evaluating
// hundreds of windows per machine — is embarrassingly parallel across
// machines. parallel_for runs an index range across a bounded thread pool
// (hardware_concurrency by default) with static chunking; on a single-core
// host it degrades to the serial loop with no thread spawn.
//
// The callable must be safe to run concurrently for distinct indices and
// must not throw across threads unhandled: exceptions are captured and the
// first one is rethrown on the caller after all workers join.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace fgcs {

/// Invokes `body(i)` for i in [0, count), distributing contiguous chunks
/// over at most `max_threads` threads (0 = hardware_concurrency).
template <typename Body>
void parallel_for(std::size_t count, Body&& body, unsigned max_threads = 0) {
  if (count == 0) return;
  unsigned hw = max_threads == 0 ? std::thread::hardware_concurrency()
                                 : max_threads;
  if (hw == 0) hw = 1;
  const std::size_t threads =
      std::min<std::size_t>(hw, count);

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const std::size_t chunk = (count + threads - 1) / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t lo = t * chunk;
    const std::size_t hi = std::min(count, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fgcs
