// Simulation time base and a minimal civil calendar.
//
// The whole system runs on one discrete clock: seconds since the start of the
// monitored period ("epoch"). The paper's estimator needs to know, for any
// instant, (a) the second-of-day and (b) whether the day is a weekday or a
// weekend, because Q/H statistics are drawn from the same clock-time window
// on the most recent days of the same type.
#pragma once

#include <cstdint>
#include <string>

namespace fgcs {

/// Seconds since the epoch of the monitored period.
using SimTime = std::int64_t;

inline constexpr SimTime kSecondsPerMinute = 60;
inline constexpr SimTime kSecondsPerHour = 3600;
inline constexpr SimTime kSecondsPerDay = 86400;
inline constexpr int kHoursPerDay = 24;

/// Day classification used by the estimator (paper §4.2: statistics come from
/// "the corresponding time windows of the most recent N weekdays (weekends)").
enum class DayType : std::uint8_t { kWeekday = 0, kWeekend = 1 };

const char* to_string(DayType type);

/// Maps sim-time to calendar facts. The epoch is anchored on a configurable
/// weekday index so that synthetic traces can start on any day of the week.
class Calendar {
 public:
  /// `epoch_day_of_week`: 0 = Monday … 6 = Sunday for day index 0.
  explicit Calendar(int epoch_day_of_week = 0);

  /// Day index (0-based) containing `t`. Negative times belong to day -1, etc.
  static constexpr std::int64_t day_index(SimTime t) {
    return t >= 0 ? t / kSecondsPerDay : (t - kSecondsPerDay + 1) / kSecondsPerDay;
  }

  /// Second within the day, in [0, 86400).
  static constexpr SimTime second_of_day(SimTime t) {
    const SimTime r = t % kSecondsPerDay;
    return r >= 0 ? r : r + kSecondsPerDay;
  }

  /// 0 = Monday … 6 = Sunday.
  int day_of_week(std::int64_t day) const;

  DayType day_type(std::int64_t day) const;

  /// DayType of the day containing the instant `t`.
  DayType day_type_at(SimTime t) const { return day_type(day_index(t)); }

  int epoch_day_of_week() const { return epoch_day_of_week_; }

 private:
  int epoch_day_of_week_;
};

/// "HH:MM:SS" rendering of a second-of-day (for bench tables and logs).
std::string format_time_of_day(SimTime second_of_day);

/// "d3 14:05:00" rendering of an absolute sim time.
std::string format_sim_time(SimTime t);

}  // namespace fgcs
