#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

namespace fgcs {

namespace {

/// The pool (and worker slot) the current thread belongs to, so submissions
/// from inside a task land on the submitter's own deque.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

void fetch_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t previous = target.load(std::memory_order_relaxed);
  while (previous < value &&
         !target.compare_exchange_weak(previous, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Environment knob in [1, 512]; `fallback` when unset or unparsable.
unsigned env_thread_count(const char* name, unsigned fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || value == 0) return fallback;
  return static_cast<unsigned>(std::min<unsigned long>(value, 512));
}

}  // namespace

double PoolStats::utilization() const {
  if (!started || workers == 0 || wall_seconds <= 0.0) return 0.0;
  return busy_seconds / (wall_seconds * static_cast<double>(workers));
}

ThreadPool::ThreadPool(unsigned workers)
    : worker_target_(workers == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : workers),
      queues_(std::make_unique<Worker[]>(worker_target_)) {}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::ensure_started() {
  if (started_.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(start_mutex_);
  if (started_.load(std::memory_order_relaxed)) return;
  start_time_ = std::chrono::steady_clock::now();
  threads_.reserve(worker_target_);
  for (std::size_t w = 0; w < worker_target_; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
  started_.store(true, std::memory_order_release);
}

void ThreadPool::enqueue(std::function<void()> task) {
  ensure_started();
  std::size_t target;
  if (tls_worker.pool == this) {
    target = tls_worker.index;
  } else {
    target = round_robin_.fetch_add(1, std::memory_order_relaxed) %
             worker_target_;
  }
  {
    const std::lock_guard<std::mutex> lock(queues_[target].mutex);
    queues_[target].tasks.push_back(std::move(task));
  }
  const std::size_t depth = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  fetch_max(high_water_, depth);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    // Empty critical section: pairs with the worker's predicate check so a
    // worker observing pending_ == 0 is guaranteed to receive the notify.
    const std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::take_task(std::size_t index) {
  {
    Worker& own = queues_[index];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      // Own work newest-first: the task most likely still warm in cache.
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  for (std::size_t step = 1; step < worker_target_; ++step) {
    Worker& victim = queues_[(index + step) % worker_target_];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      // Steal oldest-first: the task the victim is furthest from running.
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::worker_main(std::size_t index) {
  tls_worker = {this, index};
  for (;;) {
    std::function<void()> task = take_task(index);
    if (!task) {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [this] {
        return pending_.load(std::memory_order_relaxed) > 0 || shutdown_;
      });
      if (shutdown_ && pending_.load(std::memory_order_relaxed) == 0) return;
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    task();
    busy_nanos_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& body,
                                unsigned max_concurrency) {
  if (count == 0) return;
  std::size_t width =
      max_concurrency == 0 ? worker_target_ : max_concurrency;
  width = std::min(std::max<std::size_t>(width, 1), count);
  if (width <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ensure_started();
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);

  // Shared loop state: helpers claim chunks from `next`; each claimed chunk
  // is eventually accounted in `done` (run or abandoned after an error), and
  // the caller returns once done == count. Held by shared_ptr so helpers
  // scheduled after the loop drained can still see it, find no work, and
  // exit without touching `body`.
  struct Loop {
    std::size_t count = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};
    std::mutex mutex;
    std::condition_variable finished;
    std::size_t done = 0;              // guarded by mutex
    std::exception_ptr error;          // guarded by mutex
  };
  auto loop = std::make_shared<Loop>();
  loop->count = count;
  // Dynamic chunking: ~8 chunks per participating thread balances load
  // (one slow index stalls only its chunk) against claim-counter traffic.
  loop->chunk = std::max<std::size_t>(1, count / (width * 8));
  loop->body = &body;

  const auto run_chunks = [](const std::shared_ptr<Loop>& state) {
    for (;;) {
      const std::size_t lo =
          state->next.fetch_add(state->chunk, std::memory_order_relaxed);
      if (lo >= state->count) return;
      const std::size_t hi = std::min(state->count, lo + state->chunk);
      if (!state->stop.load(std::memory_order_relaxed)) {
        try {
          for (std::size_t i = lo; i < hi; ++i) (*state->body)(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(state->mutex);
          if (!state->error) state->error = std::current_exception();
          state->stop.store(true, std::memory_order_relaxed);
        }
      }
      const std::lock_guard<std::mutex> lock(state->mutex);
      state->done += hi - lo;
      if (state->done == state->count) state->finished.notify_all();
    }
  };

  // Helpers beyond the pool's worker count (or the chunk count) would only
  // queue up to find no work left; the caller is the +1 participant.
  const std::size_t chunks = (count + loop->chunk - 1) / loop->chunk;
  const std::size_t helpers =
      std::min({width - 1, static_cast<std::size_t>(worker_target_), chunks});
  for (std::size_t h = 0; h < helpers; ++h)
    enqueue([loop, run_chunks] { run_chunks(loop); });

  run_chunks(loop);

  std::unique_lock<std::mutex> lock(loop->mutex);
  loop->finished.wait(lock, [&] { return loop->done == loop->count; });
  // Take the exception out of the shared state before rethrowing: helpers
  // may still hold `loop` (their task object dies after this wait returns),
  // and if the Loop kept the last reference, the exception — including the
  // refcounted message the caller is reading via what() — would be freed on
  // a worker thread, racing the caller's catch block.
  std::exception_ptr error = std::move(loop->error);
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

PoolStats ThreadPool::stats() const {
  PoolStats stats;
  stats.workers = worker_target_;
  stats.started = started_.load(std::memory_order_acquire);
  stats.tasks_submitted = submitted_.load(std::memory_order_relaxed);
  stats.tasks_executed = executed_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
  stats.queue_depth_high_water = high_water_.load(std::memory_order_relaxed);
  stats.busy_seconds =
      static_cast<double>(busy_nanos_.load(std::memory_order_relaxed)) / 1e9;
  if (stats.started) {
    stats.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_time_)
                             .count();
  }
  return stats;
}

void ThreadPool::attach_metrics(MetricsRegistry& registry) {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  if (!metrics_attachments_.empty()) return;
  using Kind = MetricsRegistry::Kind;
  const auto count_of = [](const std::atomic<std::uint64_t>& source) {
    return [&source] {
      return static_cast<double>(source.load(std::memory_order_relaxed));
    };
  };
  metrics_attachments_.push_back(registry.attach_callback(
      "pool.tasks_submitted.total", Kind::kCounter, count_of(submitted_)));
  metrics_attachments_.push_back(registry.attach_callback(
      "pool.tasks_executed.total", Kind::kCounter, count_of(executed_)));
  metrics_attachments_.push_back(registry.attach_callback(
      "pool.steals.total", Kind::kCounter, count_of(steals_)));
  metrics_attachments_.push_back(registry.attach_callback(
      "pool.parallel_fors.total", Kind::kCounter, count_of(parallel_fors_)));
  metrics_attachments_.push_back(registry.attach_callback(
      "pool.queue_depth.high_water", Kind::kGauge, count_of(high_water_)));
  metrics_attachments_.push_back(registry.attach_callback(
      "pool.busy.seconds", Kind::kGauge, [this] {
        return static_cast<double>(
                   busy_nanos_.load(std::memory_order_relaxed)) /
               1e9;
      }));
  metrics_attachments_.push_back(registry.attach_callback(
      "pool.workers", Kind::kGauge,
      [this] { return static_cast<double>(worker_target_); }));
}

ThreadPool& ThreadPool::default_pool() {
  // FGCS_THREADS pins the worker count; FGCS_MAX_THREADS caps autodetection.
  // Read once — the pool outlives any knob change.
  static ThreadPool pool([] {
    const unsigned detected = std::max(1u, std::thread::hardware_concurrency());
    const unsigned capped =
        std::min(detected, env_thread_count("FGCS_MAX_THREADS", detected));
    return env_thread_count("FGCS_THREADS", capped);
  }());
  static const bool attached =
      (pool.attach_metrics(MetricsRegistry::global()), true);
  (void)attached;
  return pool;
}

}  // namespace fgcs
