// Deterministic fault injection: a process-wide registry of named failpoints.
//
// A failpoint is a named site in production code (e.g. "gateway.execute.revoke")
// that normally does nothing. Tests, the chaos driver (tools/fgcs_chaos) or the
// FGCS_FAILPOINTS environment variable can *arm* a point with a trigger —
// fire-once, every-Nth evaluation, probability-p from an explicitly seeded
// project Rng, or always — and an optional latency payload. Armed points make
// the instrumented site take its injected-failure path, which is how the
// degraded paths of the ishare stack (scheduler retry, replication fallback,
// prediction-cache invalidation, trace-load rejection) are exercised
// systematically instead of only by whatever failures a generated trace
// happens to contain.
//
// Determinism contract (DESIGN.md §7): with a fixed arming spec, firing is a
// pure function of the per-point evaluation count (and, for probability
// triggers, of the point's own seeded Rng stream), never of wall-clock time or
// thread identity. Counter and probability state advance once per evaluation
// under the registry mutex, so the *number* of fires over N evaluations is
// reproducible even when the evaluations race across threads.
//
// Cost contract: with nothing armed, FGCS_FAILPOINT compiles to one relaxed
// atomic load and a predictable branch — cheap enough for per-monitor-tick
// sites. The registry mutex is only ever taken while at least one point is
// armed (or until the stats of a finished run are reset).
//
// Spec grammar (also accepted by FGCS_FAILPOINTS):
//
//   spec    := point *(";" point)
//   point   := name "=" trigger *("," option)
//   trigger := "off" | "once" | "always" | "every:" N | "prob:" P [":" SEED]
//   option  := "latency=" SECONDS
//
//   e.g.
//   FGCS_FAILPOINTS="gateway.execute.revoke=prob:0.3:42;service.estimate.slow=always,latency=0.01"
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace fgcs {

class Counter;

struct FailpointSpec {
  enum class Trigger : std::uint8_t {
    kOff,          ///< registered but never fires (counts evaluations)
    kOnce,         ///< fires on the first evaluation only
    kAlways,       ///< fires on every evaluation
    kEveryNth,     ///< fires on evaluations N, 2N, 3N, …
    kProbability,  ///< fires with probability `probability` per evaluation
  };

  Trigger trigger = Trigger::kAlways;
  /// Period for kEveryNth (must be ≥ 1).
  std::uint64_t n = 1;
  /// Fire probability for kProbability (in [0, 1]).
  double probability = 1.0;
  /// Seed of the point's private Rng stream (kProbability only).
  std::uint64_t seed = 0x5eedfa11;
  /// Payload for latency-injection sites (consumed via fire_latency()).
  double latency_seconds = 0.0;
};

/// Parses one trigger spec, e.g. "prob:0.25:7,latency=0.5". Throws DataError
/// on malformed input.
FailpointSpec parse_failpoint_mode(const std::string& text);

/// Per-point counters. `fires <= evaluations` always holds.
struct FailpointCounters {
  std::string name;
  bool armed = false;
  std::uint64_t evaluations = 0;
  std::uint64_t fires = 0;

  friend bool operator==(const FailpointCounters&,
                         const FailpointCounters&) = default;
};

/// Snapshot of every point the registry has seen, sorted by name, plus the
/// ordered log of fired point names (capped; meaningful for single-threaded
/// scenarios). Chaos tests assert determinism by comparing two snapshots.
struct FailpointStats {
  std::vector<FailpointCounters> points;
  std::vector<std::string> fired_sequence;

  std::uint64_t total_fires() const;
  /// nullptr when the point was never armed or evaluated.
  const FailpointCounters* find(std::string_view name) const;

  friend bool operator==(const FailpointStats&, const FailpointStats&) = default;
};

class Failpoints {
 public:
  /// The process-wide registry (failpoints cross-cut layers by design).
  static Failpoints& instance();

  /// True iff any point is currently armed. This is the *only* check the
  /// disabled fast path performs.
  static bool enabled() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms (or re-arms, resetting trigger state) the named point.
  void arm(const std::string& name, FailpointSpec spec);

  /// Stops the point firing; its counters are retained until reset().
  /// Returns false when the name was not armed.
  bool disarm(const std::string& name);

  void disarm_all();

  /// Disarms everything and clears all counters and the fired log.
  void reset();

  /// Evaluates the named point: records the evaluation and returns true when
  /// the armed trigger fires. Unregistered names never fire. Call through
  /// FGCS_FAILPOINT so the disabled fast path stays one atomic load.
  bool fire(std::string_view name);

  /// Like fire(), but returns the armed latency payload in seconds when the
  /// point fires, and 0.0 otherwise.
  double fire_latency(std::string_view name);

  /// Arms every point of a "name=trigger;name=trigger" spec (grammar above).
  /// Throws DataError on malformed input; points armed before the bad clause
  /// stay armed.
  void arm_from_spec(const std::string& spec);

  /// Arms from the FGCS_FAILPOINTS environment variable (done once at program
  /// start by a static initializer). Returns false when unset or empty.
  bool arm_from_env();

  FailpointStats stats() const;

 private:
  struct Point {
    FailpointSpec spec;
    Rng rng{0};
    bool armed = false;
    /// Lifetime counters, reported by stats().
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
    /// Trigger state, reset by every arm() so a re-armed point starts its
    /// once/every-Nth cycle fresh.
    std::uint64_t armed_evaluations = 0;
    std::uint64_t armed_fires = 0;
    /// Cached `failpoint.fire.<name>` instrument (global registry), resolved
    /// on the point's first fire.
    Counter* fires_metric = nullptr;
  };

  /// Maximum entries retained in the fired-sequence log.
  static constexpr std::size_t kMaxFiredLog = 4096;

  Failpoints() = default;

  /// Must be called with mutex_ held. Returns whether the point fired.
  bool evaluate_locked(Point& point, std::string_view name);

  inline static std::atomic<int> armed_count_{0};

  mutable std::mutex mutex_;
  std::map<std::string, Point, std::less<>> points_;
  std::vector<std::string> fired_sequence_;
};

/// Evaluates a failpoint by name; false (and nearly free) when nothing is
/// armed anywhere in the process.
#define FGCS_FAILPOINT(name)        \
  (::fgcs::Failpoints::enabled() && \
   ::fgcs::Failpoints::instance().fire(name))

/// Latency-payload variant: seconds to inject, 0.0 when not fired.
#define FGCS_FAILPOINT_LATENCY(name)  \
  (::fgcs::Failpoints::enabled()      \
       ? ::fgcs::Failpoints::instance().fire_latency(name) \
       : 0.0)

}  // namespace fgcs
