#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fgcs {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  FGCS_REQUIRE(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += aik * rhs(k, j);
    }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  FGCS_REQUIRE(cols_ == v.size());
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out[i] += (*this)(i, j) * v[j];
  return out;
}

std::vector<double> lu_solve(Matrix a, std::vector<double> b) {
  FGCS_REQUIRE(a.rows() == a.cols());
  FGCS_REQUIRE(a.rows() == b.size());
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    if (std::abs(a(pivot, col)) < 1e-13)
      throw DataError("lu_solve: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a(i, j) * x[j];
    x[i] = acc / a(i, i);
  }
  return x;
}

std::vector<double> solve_toeplitz(std::span<const double> r,
                                   std::span<const double> rhs) {
  FGCS_REQUIRE(!r.empty());
  FGCS_REQUIRE(r.size() == rhs.size());
  const std::size_t n = r.size();
  if (std::abs(r[0]) < 1e-13) throw DataError("solve_toeplitz: r[0] is zero");

  // Levinson recursion maintaining the forward predictor `f` and solution `x`.
  std::vector<double> f{1.0};
  std::vector<double> x{rhs[0] / r[0]};
  double error = r[0];

  for (std::size_t m = 1; m < n; ++m) {
    // Reflection coefficient from the forward predictor.
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += f[i] * r[m - i];
    const double k = -acc / error;
    // Update forward predictor: f' = [f,0] + k * reverse([f,0]).
    std::vector<double> next_f(m + 1, 0.0);
    for (std::size_t i = 0; i <= m; ++i) {
      const double fi = i < m ? f[i] : 0.0;
      const double fr = (m - i) < m ? f[m - i] : 0.0;  // reversed with 0 append
      next_f[i] = fi + k * fr;
    }
    f = std::move(next_f);
    error *= (1.0 - k * k);
    if (std::abs(error) < 1e-13)
      throw DataError("solve_toeplitz: ill-conditioned system");
    // Update the solution.
    double eps = -rhs[m];
    for (std::size_t i = 0; i < m; ++i) eps += x[i] * r[m - i];
    const double mu = -eps / error;
    std::vector<double> next_x(m + 1, 0.0);
    for (std::size_t i = 0; i <= m; ++i) {
      const double xi = i < m ? x[i] : 0.0;
      next_x[i] = xi + mu * f[m - i];
    }
    x = std::move(next_x);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& a, std::span<const double> b,
                                  double ridge) {
  FGCS_REQUIRE(a.rows() == b.size());
  FGCS_REQUIRE(a.rows() >= a.cols());
  const Matrix at = a.transposed();
  Matrix ata = at * a;
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += ridge;
  std::vector<double> atb = at * b;
  return lu_solve(std::move(ata), std::move(atb));
}

}  // namespace fgcs
