// Small dense linear algebra for the time-series substrate.
//
// The linear models (paper Table 1) need three solvers:
//   * Levinson–Durbin on Toeplitz systems — Yule–Walker AR fitting,
//   * a generic LU solve with partial pivoting — ARMA regression step,
//   * least squares via normal equations — Hannan–Rissanen stage 2.
// Problem sizes are tiny (order p, q ≤ 16), so a straightforward dense
// implementation is the right tool; no external BLAS dependency.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fgcs {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<const double> data() const { return data_; }

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  std::vector<double> operator*(std::span<const double> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by LU decomposition with partial pivoting.
/// Throws DataError if A is (numerically) singular.
std::vector<double> lu_solve(Matrix a, std::vector<double> b);

/// Solves the symmetric Toeplitz system T x = rhs where T(i,j) = r[|i-j|],
/// via Levinson recursion. `r` has n entries (lags 0..n-1), rhs has n.
/// Throws DataError if the recursion encounters a zero prediction error.
std::vector<double> solve_toeplitz(std::span<const double> r,
                                   std::span<const double> rhs);

/// Least-squares solution of min ||A x - b||² via the normal equations,
/// with a small ridge term for numerical safety on near-collinear designs.
std::vector<double> least_squares(const Matrix& a, std::span<const double> b,
                                  double ridge = 1e-9);

}  // namespace fgcs
