// RAII wall-time tracing spans (DESIGN.md §8).
//
// A TraceSpan measures one timed region. On finish (explicit or at scope
// exit) it does two things:
//
//   1. observes the elapsed seconds into an optional Histogram, feeding the
//      `*.seconds` latency metrics in the MetricsRegistry;
//   2. if tracing is enabled, appends one JSON event to the process trace
//      log for offline timeline analysis.
//
// Tracing is off unless the FGCS_TRACE_FILE environment variable names a
// writable path at first use (or a test calls TraceLog::instance().open()).
// Disabled, a span costs two steady_clock reads plus one relaxed atomic
// load — that is why the prediction-service *hit* path carries no span at
// all (a warm hit is ~0.4 µs; see prediction_service.cpp) while the
// estimate/solve/batch phases, each ≥ tens of µs, do.
//
// The log format is JSON Lines, one complete event per line:
//
//   {"name":"service.solve","ts":123.456,"dur":78.9,"tid":3}
//
// `ts` is microseconds since the process trace epoch (first TraceLog use),
// `dur` is microseconds, `tid` is a small dense id assigned per thread.
// Lines are written under a mutex, so concurrent spans interleave whole
// lines, never bytes.
//
// Usage:
//
//   void Service::solve_phase() {
//     FGCS_SPAN("service.solve");      // histogram service.solve.seconds
//     ...                              // timed to end of scope
//   }
//
//   TraceSpan span("service.estimate", &histogram);
//   ...
//   double seconds = span.finish();    // also usable as a plain timer
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "util/metrics.hpp"

namespace fgcs {

/// Process-wide JSONL trace sink. All methods are thread-safe.
class TraceLog {
 public:
  /// Never destroyed, same rationale as MetricsRegistry::global(). Reads
  /// FGCS_TRACE_FILE once on first call.
  static TraceLog& instance();

  /// Cheap disabled-check: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// (Re)directs events to `path`, truncating it. Throws DataError when the
  /// file cannot be opened. Mostly for tests; production use is the env var.
  void open(const std::string& path);
  void close();

  /// Appends one event line. No-op when disabled.
  void emit(std::string_view name, double start_us, double duration_us);

  /// Microseconds from the trace epoch to `t`.
  double to_trace_us(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

 private:
  TraceLog();
  ~TraceLog() = default;  // never runs: the instance is intentionally leaked

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;  // guarded by mutex_
};

/// One timed region. Not copyable or movable: it is meant to live on the
/// stack for exactly the region it measures.
class TraceSpan {
 public:
  /// `name` must outlive the span (string literals in practice). `histogram`
  /// may be null (trace-event-only span).
  explicit TraceSpan(const char* name, Histogram* histogram = nullptr)
      : name_(name),
        histogram_(histogram),
        start_(std::chrono::steady_clock::now()) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { finish(); }

  /// Stops the span (idempotent: first call wins), records the histogram
  /// observation and the trace event, and returns the elapsed seconds — so
  /// callers can reuse the measurement instead of timing twice.
  double finish();

  /// Elapsed seconds so far (or final value once finished). Does not stop.
  double elapsed_seconds() const;

 private:
  const char* name_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  bool finished_ = false;
  double elapsed_seconds_ = 0.0;
};

}  // namespace fgcs

#define FGCS_SPAN_CONCAT2(a, b) a##b
#define FGCS_SPAN_CONCAT(a, b) FGCS_SPAN_CONCAT2(a, b)

/// Times the rest of the enclosing scope into the latency histogram
/// `<name>.seconds` (global registry) and, when tracing is on, the trace
/// log. `name` must be a string literal. The histogram lookup is a
/// function-local static: the registry mutex is paid once per call site.
#define FGCS_SPAN(name)                                                        \
  static ::fgcs::Histogram& FGCS_SPAN_CONCAT(fgcs_span_hist_, __LINE__) =      \
      ::fgcs::MetricsRegistry::global().latency_histogram(name ".seconds");    \
  const ::fgcs::TraceSpan FGCS_SPAN_CONCAT(fgcs_span_, __LINE__)(              \
      name, &FGCS_SPAN_CONCAT(fgcs_span_hist_, __LINE__))
