#include "util/trace_span.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace fgcs {

namespace {

/// Small dense per-thread id for the "tid" field — stable within a process,
/// readable in a timeline (unlike hashed native handles).
unsigned current_trace_tid() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

TraceLog::TraceLog() : epoch_(std::chrono::steady_clock::now()) {
  const char* path = std::getenv("FGCS_TRACE_FILE");
  if (path != nullptr && *path != '\0') {
    std::FILE* file = std::fopen(path, "w");
    // A bad env path shouldn't take the process down; tracing simply stays
    // off (open() is the throwing, programmatic route).
    if (file != nullptr) {
      file_ = file;
      enabled_.store(true, std::memory_order_release);
    }
  }
}

TraceLog& TraceLog::instance() {
  static TraceLog* log = new TraceLog();
  return *log;
}

void TraceLog::open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr)
    throw DataError("cannot open trace file: " + path);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  enabled_.store(true, std::memory_order_release);
}

void TraceLog::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_release);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void TraceLog::emit(std::string_view name, double start_us,
                    double duration_us) {
  if (!enabled()) return;
  const unsigned tid = current_trace_tid();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;  // closed between the enabled() check and here
  std::fprintf(file_, "{\"name\":\"%.*s\",\"ts\":%.3f,\"dur\":%.3f,\"tid\":%u}\n",
               static_cast<int>(name.size()), name.data(), start_us,
               duration_us, tid);
  // Flush per event: traces exist to debug hangs and crashes, where buffered
  // tail events would be the ones lost.
  std::fflush(file_);
}

double TraceSpan::finish() {
  if (finished_) return elapsed_seconds_;
  finished_ = true;
  const auto end = std::chrono::steady_clock::now();
  elapsed_seconds_ = std::chrono::duration<double>(end - start_).count();
  if (histogram_ != nullptr) histogram_->observe(elapsed_seconds_);
  TraceLog& log = TraceLog::instance();
  if (log.enabled())
    log.emit(name_, log.to_trace_us(start_), elapsed_seconds_ * 1e6);
  return elapsed_seconds_;
}

double TraceSpan::elapsed_seconds() const {
  if (finished_) return elapsed_seconds_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace fgcs
