#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fgcs {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  FGCS_REQUIRE_MSG(count_ > 0, "min() of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  FGCS_REQUIRE_MSG(count_ > 0, "max() of empty accumulator");
  return max_;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  RunningStats acc;
  for (double v : values) acc.add(v);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = percentile(values, 0.5);
  s.p95 = percentile(values, 0.95);
  return s;
}

double mean(std::span<const double> values) {
  RunningStats acc;
  for (double v : values) acc.add(v);
  return acc.mean();
}

double variance(std::span<const double> values) {
  RunningStats acc;
  for (double v : values) acc.add(v);
  return acc.variance();
}

double percentile(std::span<const double> values, double q) {
  FGCS_REQUIRE(!values.empty());
  FGCS_REQUIRE(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

std::vector<double> autocovariance(std::span<const double> series,
                                   std::size_t max_lag) {
  FGCS_REQUIRE_MSG(series.size() > max_lag,
                   "series must be longer than the maximum lag");
  const std::size_t n = series.size();
  const double mu = mean(series);
  std::vector<double> gamma(max_lag + 1, 0.0);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (std::size_t t = lag; t < n; ++t)
      acc += (series[t] - mu) * (series[t - lag] - mu);
    gamma[lag] = acc / static_cast<double>(n);
  }
  return gamma;
}

std::vector<double> autocorrelation(std::span<const double> series,
                                    std::size_t max_lag) {
  std::vector<double> gamma = autocovariance(series, max_lag);
  const double g0 = gamma[0];
  if (g0 <= 0.0) return std::vector<double>(max_lag + 1, 0.0);
  for (double& g : gamma) g /= g0;
  return gamma;
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  FGCS_REQUIRE(x.size() == y.size());
  FGCS_REQUIRE(x.size() >= 2);
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  LinearFit fit;
  if (sxx > 0.0) {
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  } else {
    fit.intercept = my;
  }
  return fit;
}

}  // namespace fgcs
