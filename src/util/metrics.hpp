// Process-wide observability instruments (DESIGN.md §8).
//
// Every serving component in the stack — PredictionService, ThreadPool,
// JobScheduler, the ishare daemons, the failpoint registry — feeds named
// counters, gauges, and fixed-bucket latency histograms into one
// MetricsRegistry, so a binary can answer "what is the fleet doing?" with a
// single Prometheus-style text dump (tools/fgcs_metrics,
// `fgcs_predict --batch --metrics`, examples/fleet_simulation) instead of
// one ad-hoc stats struct per subsystem.
//
// Cost contract (bench_obs_overhead is the regression guard): the hot path
// of every instrument is lock-free —
//
//   Counter::add        one relaxed atomic fetch-add, nothing else
//   Gauge::set          one relaxed atomic store
//   Gauge::update_max   one relaxed load + CAS only when the value grows
//   Histogram::observe  one bucket fetch-add + one CAS-loop sum add
//
// The registry mutex is taken only at instrument *registration*
// (get-or-create by name, attachment, detachment) and at render time, never
// per recorded value. Components therefore resolve their instruments once —
// at construction or via a function-local static — and record through the
// returned reference.
//
// Two ways to surface a value:
//
//  1. Registry-owned instruments (`counter(name)` / `gauge(name)` /
//     `histogram(name, bounds)`): get-or-create, shared by every caller
//     using the name. References stay valid for the registry's lifetime
//     (the global registry is never destroyed).
//
//  2. Attachments: a component that keeps per-instance instruments (so its
//     own snapshot struct, e.g. ServiceStats, stays exact) registers them
//     with `attach(name, instrument)`; render_text() folds attached values
//     into the named series, summing across instances. The returned RAII
//     handle detaches on destruction, so a dying component simply drops out
//     of the exposition. This is what keeps the PredictionService /
//     ThreadPool hot paths at *exactly* the instrument cost above — no
//     double-write into a second, registry-owned copy.
//
// Naming convention: `subsystem.what.unit` with unit one of `total`
// (monotone counts), `seconds` (histograms / durations), or a bare noun for
// gauges (e.g. `pool.queue_depth.high_water`). render_text() maps names to
// Prometheus form: `service.lookups.total` → `fgcs_service_lookups_total`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fgcs {

/// Monotone event count. Hot path: one relaxed atomic add.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or running-max / running-sum) double value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// Atomic `value = max(value, candidate)`; CAS only when it would grow.
  void update_max(double candidate);
  /// Atomic accumulate (CAS loop).
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` (≤ upper bound) semantics.
/// There is no separate total count: count() is the sum of the bucket
/// counts (including the overflow bucket), so `count == Σ buckets` holds in
/// every snapshot by construction, even one racing concurrent observes.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing; an implicit
  /// +Inf overflow bucket is appended.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Default decade buckets for wall-time seconds: 1 µs … 10 s.
  static std::vector<double> default_latency_bounds();

  void observe(double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Buckets including the overflow bucket (index bounds().size()).
  std::size_t bucket_count() const { return bounds_.size() + 1; }
  std::uint64_t bucket(std::size_t index) const;
  std::uint64_t count() const;
  double sum() const;
  void reset();

  struct Snapshot {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> buckets;  ///< per-bucket (non-cumulative)
    std::uint64_t count = 0;             ///< Σ buckets
    double sum = 0.0;
  };
  Snapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry;

/// RAII registration of an external instrument (or value callback) into a
/// registry; detaches on destruction. Move-only.
class MetricsAttachment {
 public:
  MetricsAttachment() = default;
  MetricsAttachment(MetricsAttachment&& other) noexcept;
  MetricsAttachment& operator=(MetricsAttachment&& other) noexcept;
  MetricsAttachment(const MetricsAttachment&) = delete;
  MetricsAttachment& operator=(const MetricsAttachment&) = delete;
  ~MetricsAttachment();

  void detach();

 private:
  friend class MetricsRegistry;
  MetricsAttachment(MetricsRegistry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry. Intentionally never destroyed, so references
  /// to its instruments and attachments held by static-lifetime components
  /// (e.g. the default thread pool) stay valid through static destruction.
  static MetricsRegistry& global();

  /// Get-or-create. Throws PreconditionError when the name already exists
  /// with a different instrument kind. References stay valid as long as the
  /// registry lives (instruments are never removed).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is used only on first creation; later calls return the
  /// existing histogram unchanged.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);
  /// histogram(name) with default_latency_bounds().
  Histogram& latency_histogram(std::string_view name);

  /// Folds an external instrument into the exposition under `name` (summed
  /// with the owned instrument and other attachments of the same name, which
  /// must all share the kind — and, for histograms, the bucket bounds). The
  /// instrument must outlive the returned handle.
  [[nodiscard]] MetricsAttachment attach(std::string_view name,
                                         const Counter& counter);
  [[nodiscard]] MetricsAttachment attach(std::string_view name,
                                         const Gauge& gauge);
  [[nodiscard]] MetricsAttachment attach(std::string_view name,
                                         const Histogram& histogram);
  /// Callback form for derived values (e.g. nanosecond counters exposed in
  /// seconds). The callback is invoked under the registry mutex at render
  /// time; it must not call back into the registry.
  [[nodiscard]] MetricsAttachment attach_callback(std::string_view name,
                                                  Kind kind,
                                                  std::function<double()> fn);

  /// Prometheus-style text exposition: stable order (lexicographic by name),
  /// `# TYPE` line per metric, histogram rendered as cumulative
  /// `_bucket{le="…"}` series plus `_sum` and `_count`. Values merge owned
  /// instruments with all live attachments of the same name.
  std::string render_text() const;

  /// Current value helpers for tests and assertions (0 / empty when absent).
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  /// Zeroes every owned instrument (attachments are not touched — their
  /// owners' values are theirs). Registered names survive, so references
  /// handed out earlier stay valid.
  void reset();

  /// Registered (owned or attached) metric names, sorted.
  std::vector<std::string> names() const;

 private:
  friend class MetricsAttachment;

  struct Owned {
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Attached {
    std::string name;
    Kind kind = Kind::kCounter;
    std::function<double()> value;     // counters / gauges / callbacks
    const Histogram* histogram = nullptr;  // histogram attachments
  };

  Owned& owned_slot(std::string_view name, Kind kind);
  MetricsAttachment attach_impl(Attached attached);
  void detach(std::uint64_t id);

  mutable std::mutex mutex_;
  std::map<std::string, Owned, std::less<>> owned_;
  std::map<std::uint64_t, Attached> attached_;
  std::uint64_t next_attachment_id_ = 1;
};

}  // namespace fgcs
