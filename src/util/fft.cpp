#include "util/fft.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace fgcs {

void fft_inplace(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  FGCS_REQUIRE_MSG(n > 0 && (n & (n - 1)) == 0, "FFT size must be a power of 2");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= scale;
  }
}

std::size_t next_pow2(std::size_t n) {
  FGCS_REQUIRE(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {
constexpr std::size_t kDirectThreshold = 64;

std::vector<double> convolve_direct(std::span<const double> a,
                                    std::span<const double> b) {
  std::vector<double> c(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) c[i + j] += a[i] * b[j];
  }
  return c;
}
}  // namespace

std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b) {
  FGCS_REQUIRE(!a.empty() && !b.empty());
  if (a.size() * b.size() <= kDirectThreshold * kDirectThreshold)
    return convolve_direct(a, b);

  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  std::vector<std::complex<double>> fa(n), fb(n);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
  fft_inplace(fa, false);
  fft_inplace(fb, false);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fft_inplace(fa, true);

  std::vector<double> c(out_len);
  for (std::size_t i = 0; i < out_len; ++i) c[i] = fa[i].real();
  return c;
}

}  // namespace fgcs
