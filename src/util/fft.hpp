// Radix-2 FFT and FFT-based linear convolution, from scratch.
//
// Used by the fast TR solver (core/fast_solver.hpp) to replace the O(n²)
// convolutions of the Eq. 3 recursion with O(n log n) products. The sizes
// involved (a 10 h window at 6 s ticks is n = 6000) are far past the point
// where FFT convolution wins.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace fgcs {

/// In-place iterative Cooley–Tukey FFT. `a.size()` must be a power of two.
/// `inverse` applies the conjugate transform and the 1/N scaling.
void fft_inplace(std::vector<std::complex<double>>& a, bool inverse);

/// Smallest power of two ≥ n (n ≥ 1).
std::size_t next_pow2(std::size_t n);

/// Linear convolution c[k] = Σ_i a[i]·b[k−i], length |a|+|b|−1.
/// Uses the FFT above for large inputs and the direct O(n·m) sum for small
/// ones (the crossover is internal).
std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b);

}  // namespace fgcs
