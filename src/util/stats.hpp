// Descriptive statistics used across the estimator, the evaluation harness,
// and the benchmark tables.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fgcs {

/// Single-pass accumulator (Welford) for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample set, convenient for bench rows.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
};

Summary summarize(std::span<const double> values);

double mean(std::span<const double> values);
double variance(std::span<const double> values);

/// Linearly interpolated percentile, q in [0, 1]. Sorts a copy.
double percentile(std::span<const double> values, double q);

/// Sample autocovariance at the given lags (biased, 1/n normalization —
/// the convention Yule–Walker estimation expects).
std::vector<double> autocovariance(std::span<const double> series, std::size_t max_lag);

/// Autocorrelation: autocovariance normalized by lag-0.
std::vector<double> autocorrelation(std::span<const double> series, std::size_t max_lag);

/// Least-squares slope/intercept fit of y against x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
LinearFit fit_line(std::span<const double> x, std::span<const double> y);

}  // namespace fgcs
