#include "util/failpoint.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace fgcs {

namespace {

/// Point names are dotted lowercase identifiers; reject anything else so a
/// typo in an FGCS_FAILPOINTS spec fails loudly instead of arming a point
/// that no code site ever evaluates.
bool valid_point_name(std::string_view name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
           c == '_';
  });
}

std::uint64_t parse_uint(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(text, &used);
    if (used != text.size()) throw DataError("");
    return value;
  } catch (const std::exception&) {
    throw DataError(std::string("failpoint spec: bad ") + what + " '" + text +
                    "'");
  }
}

double parse_double(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw DataError("");
    return value;
  } catch (const std::exception&) {
    throw DataError(std::string("failpoint spec: bad ") + what + " '" + text +
                    "'");
  }
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

FailpointSpec parse_failpoint_mode(const std::string& text) {
  const std::vector<std::string> parts = split(text, ',');
  FGCS_REQUIRE(!parts.empty());

  FailpointSpec spec;
  const std::vector<std::string> trigger = split(parts[0], ':');
  const std::string& kind = trigger[0];
  if (kind == "off" && trigger.size() == 1) {
    spec.trigger = FailpointSpec::Trigger::kOff;
  } else if (kind == "once" && trigger.size() == 1) {
    spec.trigger = FailpointSpec::Trigger::kOnce;
  } else if (kind == "always" && trigger.size() == 1) {
    spec.trigger = FailpointSpec::Trigger::kAlways;
  } else if (kind == "every" && trigger.size() == 2) {
    spec.trigger = FailpointSpec::Trigger::kEveryNth;
    spec.n = parse_uint(trigger[1], "every-Nth period");
    if (spec.n == 0) throw DataError("failpoint spec: every:N needs N >= 1");
  } else if (kind == "prob" && (trigger.size() == 2 || trigger.size() == 3)) {
    spec.trigger = FailpointSpec::Trigger::kProbability;
    spec.probability = parse_double(trigger[1], "probability");
    if (spec.probability < 0.0 || spec.probability > 1.0)
      throw DataError("failpoint spec: probability must be in [0, 1]");
    if (trigger.size() == 3) spec.seed = parse_uint(trigger[2], "seed");
  } else {
    throw DataError("failpoint spec: unknown trigger '" + parts[0] + "'");
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::vector<std::string> option = split(parts[i], '=');
    if (option.size() == 2 && option[0] == "latency") {
      spec.latency_seconds = parse_double(option[1], "latency");
      if (spec.latency_seconds < 0.0)
        throw DataError("failpoint spec: latency must be >= 0");
    } else {
      throw DataError("failpoint spec: unknown option '" + parts[i] + "'");
    }
  }
  return spec;
}

std::uint64_t FailpointStats::total_fires() const {
  std::uint64_t total = 0;
  for (const FailpointCounters& point : points) total += point.fires;
  return total;
}

const FailpointCounters* FailpointStats::find(std::string_view name) const {
  for (const FailpointCounters& point : points)
    if (point.name == name) return &point;
  return nullptr;
}

Failpoints& Failpoints::instance() {
  static Failpoints registry;
  return registry;
}

void Failpoints::arm(const std::string& name, FailpointSpec spec) {
  FGCS_REQUIRE_MSG(valid_point_name(name),
                   "failpoint names are dotted lowercase identifiers");
  const std::lock_guard<std::mutex> lock(mutex_);
  Point& point = points_[name];
  if (!point.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  // Re-arming resets trigger state (lifetime counters stay: run history).
  point.spec = spec;
  point.rng.reseed(spec.seed);
  point.armed = true;
  point.armed_evaluations = 0;
  point.armed_fires = 0;
}

bool Failpoints::disarm(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return false;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void Failpoints::disarm_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, point] : points_) {
    if (point.armed) {
      point.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void Failpoints::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, point] : points_)
    if (point.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  points_.clear();
  fired_sequence_.clear();
}

bool Failpoints::evaluate_locked(Point& point, std::string_view name) {
  ++point.evaluations;
  if (!point.armed) return false;
  ++point.armed_evaluations;

  bool fired = false;
  switch (point.spec.trigger) {
    case FailpointSpec::Trigger::kOff:
      break;
    case FailpointSpec::Trigger::kOnce:
      fired = point.armed_fires == 0;
      break;
    case FailpointSpec::Trigger::kAlways:
      fired = true;
      break;
    case FailpointSpec::Trigger::kEveryNth:
      fired = point.armed_evaluations % point.spec.n == 0;
      break;
    case FailpointSpec::Trigger::kProbability:
      fired = point.rng.chance(point.spec.probability);
      break;
  }
  if (fired) {
    ++point.fires;
    ++point.armed_fires;
    if (fired_sequence_.size() < kMaxFiredLog)
      fired_sequence_.emplace_back(name);
    // Surface fires as metrics (DESIGN.md §8): one aggregate counter plus a
    // per-point series. Instrument refs are resolved once per point and
    // cached — fires are rare (armed chaos runs only), so the registry
    // lookup cost is off every hot path. Lock order is failpoint mutex_ →
    // registry mutex; the registry never evaluates failpoints, so the order
    // is acyclic.
    static Counter& total_fires =
        MetricsRegistry::global().counter("failpoint.fires.total");
    total_fires.add();
    if (point.fires_metric == nullptr) {
      point.fires_metric = &MetricsRegistry::global().counter(
          "failpoint.fire." + std::string(name));
    }
    point.fires_metric->add();
  }
  return fired;
}

bool Failpoints::fire(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it == points_.end()) return false;
  return evaluate_locked(it->second, name);
}

double Failpoints::fire_latency(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it == points_.end()) return 0.0;
  return evaluate_locked(it->second, name) ? it->second.spec.latency_seconds
                                           : 0.0;
}

void Failpoints::arm_from_spec(const std::string& spec) {
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0)
      throw DataError("failpoint spec: expected 'name=trigger', got '" +
                      clause + "'");
    const std::string name = clause.substr(0, eq);
    if (!valid_point_name(name))
      throw DataError("failpoint spec: bad point name '" + name + "'");
    arm(name, parse_failpoint_mode(clause.substr(eq + 1)));
  }
}

bool Failpoints::arm_from_env() {
  const char* spec = std::getenv("FGCS_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return false;
  arm_from_spec(spec);
  return true;
}

FailpointStats Failpoints::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  FailpointStats stats;
  stats.points.reserve(points_.size());
  for (const auto& [name, point] : points_)
    stats.points.push_back(FailpointCounters{.name = name,
                                             .armed = point.armed,
                                             .evaluations = point.evaluations,
                                             .fires = point.fires});
  stats.fired_sequence = fired_sequence_;
  return stats;
}

namespace {
/// Arms FGCS_FAILPOINTS before main() so every binary honours the variable
/// without per-tool wiring. A malformed spec aborts with the DataError
/// message — better than silently running an un-injected "chaos" experiment.
[[maybe_unused]] const bool g_env_armed = Failpoints::instance().arm_from_env();
}  // namespace

}  // namespace fgcs
