// Minimal command-line parsing for the tools/ binaries.
//
// Supports `--key value`, `--key=value` and boolean `--flag` options plus
// bare positional arguments. Unknown options are an error (fail fast rather
// than silently ignoring a typo).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace fgcs {

class ArgParser {
 public:
  /// `flag_names`: options that take no value (everything else does).
  ArgParser(int argc, const char* const* argv,
            std::set<std::string> flag_names = {});

  const std::string& program() const { return program_; }

  bool has(const std::string& name) const;

  /// Value options. The *_or forms supply defaults; the plain forms throw
  /// PreconditionError when the option is absent.
  std::string get(const std::string& name) const;
  std::string get_or(const std::string& name, std::string fallback) const;
  std::int64_t get_int(const std::string& name) const;
  std::int64_t get_int_or(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name) const;
  double get_double_or(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Options present on the command line that were never queried — call at
  /// the end of argument handling to reject typos.
  void check_all_consumed() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> consumed_;
};

/// Parses "HH:MM" or "HH:MM:SS" into a second-of-day.
std::int64_t parse_time_of_day(const std::string& text);

}  // namespace fgcs
