#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/error.hpp"

namespace fgcs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FGCS_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FGCS_REQUIRE_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os.write("                                                            ",
               static_cast<std::streamsize>(widths[c] - row[c].size()));
    }
    os << " |\n";
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw DataError("cannot open CSV output file: " + path);
  write_csv(out);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace fgcs
