// Deterministic pseudo-random number generation.
//
// Every stochastic component in fgcs (trace generation, noise injection,
// Monte-Carlo validation of the SMP solver) draws from an explicitly seeded
// Rng so that traces, tests, and benchmark tables reproduce bit-for-bit
// across runs and machines. The engine is xoshiro256** (public domain,
// Blackman & Vigna), seeded through SplitMix64.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace fgcs {

/// xoshiro256** engine. Satisfies std::uniform_random_bit_generator, so it
/// can also feed <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Uses rejection to stay unbiased.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    FGCS_REQUIRE(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(operator()());  // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
      draw = operator()();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double scale = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * scale;
    has_cached_normal_ = true;
    return u * scale;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given mean (rate = 1/mean).
  double exponential(double mean) {
    FGCS_REQUIRE(mean > 0);
    double u;
    do {
      u = uniform();
    } while (u == 0.0);
    return -mean * std::log(u);
  }

  /// Poisson draw (Knuth for small means, normal approximation for large).
  std::int64_t poisson(double mean) {
    FGCS_REQUIRE(mean >= 0);
    if (mean == 0) return 0;
    if (mean > 64) {
      const double draw = normal(mean, std::sqrt(mean));
      return draw < 0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
    }
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }

  /// Derives an independent child stream (for per-machine / per-day streams).
  Rng fork(std::uint64_t stream_id) {
    return Rng(operator()() ^ (stream_id * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fgcs
