#include "util/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/error.hpp"

namespace fgcs {

namespace {

void atomic_add_double(std::atomic<double>& target, double delta) {
  double previous = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(previous, previous + delta,
                                       std::memory_order_relaxed)) {
  }
}

const char* kind_name(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::kCounter: return "counter";
    case MetricsRegistry::Kind::kGauge: return "gauge";
    case MetricsRegistry::Kind::kHistogram: return "histogram";
  }
  return "?";
}

/// `service.lookups.total` → `fgcs_service_lookups_total`. Prometheus metric
/// names admit [a-zA-Z0-9_:]; anything else becomes '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = "fgcs_";
  out.reserve(name.size() + 5);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Shortest round-trip-exact decimal; integers render without exponent so the
/// common counter-as-double case stays human-readable.
std::string format_value(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

/// Bucket upper bounds are configured constants (1e-6, 0.01, 60, …), not
/// measured values — render them short and readable.
std::string format_bound(double value) {
  if (std::isinf(value)) return "+Inf";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

std::string format_count(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

}  // namespace

void Gauge::update_max(double candidate) {
  double previous = value_.load(std::memory_order_relaxed);
  while (previous < candidate &&
         !value_.compare_exchange_weak(previous, candidate,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::add(double delta) { atomic_add_double(value_, delta); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  FGCS_REQUIRE_MSG(!bounds_.empty(),
                   "Histogram needs at least one bucket bound");
  FGCS_REQUIRE_MSG(std::is_sorted(bounds_.begin(), bounds_.end(),
                                  [](double a, double b) { return a <= b; }),
                   "Histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::vector<double> Histogram::default_latency_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
}

std::uint64_t Histogram::bucket(std::size_t index) const {
  FGCS_REQUIRE_MSG(index < bucket_count(),
                   "Histogram bucket index out of range");
  return buckets_[index].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < bucket_count(); ++i)
    total += buckets_[i].load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (std::size_t i = 0; i < bucket_count(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.upper_bounds = bounds_;
  snap.buckets.resize(bucket_count());
  for (std::size_t i = 0; i < bucket_count(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

MetricsAttachment::MetricsAttachment(MetricsAttachment&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

MetricsAttachment& MetricsAttachment::operator=(
    MetricsAttachment&& other) noexcept {
  if (this != &other) {
    detach();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

MetricsAttachment::~MetricsAttachment() { detach(); }

void MetricsAttachment::detach() {
  if (registry_ != nullptr) {
    registry_->detach(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: static-lifetime components (default_pool, function-
  // local instrument refs) may record during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Owned& MetricsRegistry::owned_slot(std::string_view name,
                                                    Kind kind) {
  const auto it = owned_.find(name);
  if (it != owned_.end()) {
    if (it->second.kind != kind) {
      throw PreconditionError("metric '" + std::string(name) +
                              "' already registered as " +
                              kind_name(it->second.kind) + ", requested " +
                              kind_name(kind));
    }
    return it->second;
  }
  Owned slot;
  slot.kind = kind;
  return owned_.emplace(std::string(name), std::move(slot)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Owned& slot = owned_slot(name, Kind::kCounter);
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Owned& slot = owned_slot(name, Kind::kGauge);
  if (!slot.gauge) slot.gauge = std::make_unique<Gauge>();
  return *slot.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Owned& slot = owned_slot(name, Kind::kHistogram);
  if (!slot.histogram)
    slot.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot.histogram;
}

Histogram& MetricsRegistry::latency_histogram(std::string_view name) {
  return histogram(name, Histogram::default_latency_bounds());
}

MetricsAttachment MetricsRegistry::attach(std::string_view name,
                                          const Counter& counter) {
  Attached attached;
  attached.name = std::string(name);
  attached.kind = Kind::kCounter;
  attached.value = [&counter] { return static_cast<double>(counter.value()); };
  return attach_impl(std::move(attached));
}

MetricsAttachment MetricsRegistry::attach(std::string_view name,
                                          const Gauge& gauge) {
  Attached attached;
  attached.name = std::string(name);
  attached.kind = Kind::kGauge;
  attached.value = [&gauge] { return gauge.value(); };
  return attach_impl(std::move(attached));
}

MetricsAttachment MetricsRegistry::attach(std::string_view name,
                                          const Histogram& histogram) {
  Attached attached;
  attached.name = std::string(name);
  attached.kind = Kind::kHistogram;
  attached.histogram = &histogram;
  return attach_impl(std::move(attached));
}

MetricsAttachment MetricsRegistry::attach_callback(std::string_view name,
                                                   Kind kind,
                                                   std::function<double()> fn) {
  FGCS_REQUIRE_MSG(kind != Kind::kHistogram,
               "attach_callback supports counters and gauges only");
  Attached attached;
  attached.name = std::string(name);
  attached.kind = kind;
  attached.value = std::move(fn);
  return attach_impl(std::move(attached));
}

MetricsAttachment MetricsRegistry::attach_impl(Attached attached) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = owned_.find(attached.name);
  if (it != owned_.end() && it->second.kind != attached.kind) {
    throw PreconditionError("metric '" + attached.name +
                            "' already registered as " +
                            kind_name(it->second.kind) + ", attachment is " +
                            kind_name(attached.kind));
  }
  for (const auto& [id, existing] : attached_) {
    if (existing.name == attached.name && existing.kind != attached.kind) {
      throw PreconditionError("metric '" + attached.name +
                              "' already attached as " +
                              kind_name(existing.kind) + ", attachment is " +
                              kind_name(attached.kind));
    }
  }
  const std::uint64_t id = next_attachment_id_++;
  attached_.emplace(id, std::move(attached));
  return MetricsAttachment(this, id);
}

void MetricsRegistry::detach(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  attached_.erase(id);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  const auto it = owned_.find(name);
  if (it != owned_.end() && it->second.counter) total += it->second.counter->value();
  for (const auto& [id, attached] : attached_) {
    if (attached.name == name && attached.kind == Kind::kCounter &&
        attached.value) {
      total += static_cast<std::uint64_t>(attached.value());
    }
  }
  return total;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  const auto it = owned_.find(name);
  if (it != owned_.end() && it->second.gauge) total += it->second.gauge->value();
  for (const auto& [id, attached] : attached_) {
    if (attached.name == name && attached.kind == Kind::kGauge && attached.value)
      total += attached.value();
  }
  return total;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, slot] : owned_) {
    if (slot.counter) slot.counter->reset();
    if (slot.gauge) slot.gauge->reset();
    if (slot.histogram) slot.histogram->reset();
  }
}

std::vector<std::string> MetricsRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(owned_.size() + attached_.size());
  for (const auto& [name, slot] : owned_) out.push_back(name);
  for (const auto& [id, attached] : attached_) out.push_back(attached.name);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string MetricsRegistry::render_text() const {
  // Merge owned + attachments into per-name series, then render in map
  // (lexicographic) order so output is byte-stable for a given set of values.
  struct Series {
    Kind kind = Kind::kCounter;
    double scalar = 0.0;
    bool has_histogram = false;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // per-bucket, overflow last
    double sum = 0.0;
  };
  std::map<std::string, Series> merged;

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto merge_histogram = [](Series& series, const Histogram& histogram,
                                  const std::string& name) {
    const Histogram::Snapshot snap = histogram.snapshot();
    if (!series.has_histogram) {
      series.has_histogram = true;
      series.bounds = snap.upper_bounds;
      series.buckets.assign(snap.buckets.size(), 0);
    } else if (series.bounds != snap.upper_bounds) {
      throw PreconditionError("metric '" + name +
                              "': histogram bucket bounds differ between "
                              "instances sharing the name");
    }
    for (std::size_t i = 0; i < snap.buckets.size(); ++i)
      series.buckets[i] += snap.buckets[i];
    series.sum += snap.sum;
  };

  for (const auto& [name, slot] : owned_) {
    Series& series = merged[name];
    series.kind = slot.kind;
    if (slot.counter) series.scalar += static_cast<double>(slot.counter->value());
    if (slot.gauge) series.scalar += slot.gauge->value();
    if (slot.histogram) merge_histogram(series, *slot.histogram, name);
  }
  for (const auto& [id, attached] : attached_) {
    Series& series = merged[attached.name];
    series.kind = attached.kind;
    if (attached.histogram != nullptr) {
      merge_histogram(series, *attached.histogram, attached.name);
    } else if (attached.value) {
      series.scalar += attached.value();
    }
  }

  std::string out;
  for (const auto& [name, series] : merged) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " " + kind_name(series.kind) + "\n";
    if (series.kind == Kind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < series.buckets.size(); ++i) {
        cumulative += series.buckets[i];
        const std::string le = i < series.bounds.size()
                                   ? format_bound(series.bounds[i])
                                   : "+Inf";
        out += prom + "_bucket{le=\"" + le + "\"} " +
               format_count(cumulative) + "\n";
      }
      out += prom + "_sum " + format_value(series.sum) + "\n";
      out += prom + "_count " + format_count(cumulative) + "\n";
    } else {
      out += prom + " " + format_value(series.scalar) + "\n";
    }
  }
  return out;
}

}  // namespace fgcs
