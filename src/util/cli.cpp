#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"
#include "util/time.hpp"

namespace fgcs {

ArgParser::ArgParser(int argc, const char* const* argv,
                     std::set<std::string> flag_names) {
  FGCS_REQUIRE(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      values_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    if (flag_names.count(name) > 0) {
      flags_.insert(name);
      continue;
    }
    FGCS_REQUIRE_MSG(i + 1 < argc, "option --" + name + " needs a value");
    values_[name] = argv[++i];
  }
}

bool ArgParser::has(const std::string& name) const {
  consumed_.insert(name);
  return flags_.count(name) > 0 || values_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name) const {
  consumed_.insert(name);
  const auto it = values_.find(name);
  FGCS_REQUIRE_MSG(it != values_.end(), "missing required option --" + name);
  return it->second;
}

std::string ArgParser::get_or(const std::string& name,
                              std::string fallback) const {
  consumed_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(fallback) : it->second;
}

namespace {
std::int64_t to_int(const std::string& name, const std::string& text) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  FGCS_REQUIRE_MSG(end != nullptr && *end == '\0' && !text.empty(),
                   "option --" + name + " expects an integer, got '" + text + "'");
  return value;
}

double to_double(const std::string& name, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  FGCS_REQUIRE_MSG(end != nullptr && *end == '\0' && !text.empty(),
                   "option --" + name + " expects a number, got '" + text + "'");
  return value;
}
}  // namespace

std::int64_t ArgParser::get_int(const std::string& name) const {
  return to_int(name, get(name));
}

std::int64_t ArgParser::get_int_or(const std::string& name,
                                   std::int64_t fallback) const {
  consumed_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : to_int(name, it->second);
}

double ArgParser::get_double(const std::string& name) const {
  return to_double(name, get(name));
}

double ArgParser::get_double_or(const std::string& name, double fallback) const {
  consumed_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : to_double(name, it->second);
}

void ArgParser::check_all_consumed() const {
  for (const auto& [name, value] : values_)
    FGCS_REQUIRE_MSG(consumed_.count(name) > 0, "unknown option --" + name);
  for (const auto& name : flags_)
    FGCS_REQUIRE_MSG(consumed_.count(name) > 0, "unknown option --" + name);
}

std::int64_t parse_time_of_day(const std::string& text) {
  int hours = 0, minutes = 0, seconds = 0;
  const int fields =
      std::sscanf(text.c_str(), "%d:%d:%d", &hours, &minutes, &seconds);
  FGCS_REQUIRE_MSG(fields >= 2, "expected HH:MM or HH:MM:SS, got '" + text + "'");
  FGCS_REQUIRE_MSG(hours >= 0 && hours < 24 && minutes >= 0 && minutes < 60 &&
                       seconds >= 0 && seconds < 60,
                   "time of day out of range: '" + text + "'");
  return hours * kSecondsPerHour + minutes * kSecondsPerMinute + seconds;
}

}  // namespace fgcs
