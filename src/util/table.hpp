// Aligned ASCII tables + CSV export for the benchmark harness.
//
// Every bench binary prints the same rows/series the paper's figure or table
// reports; Table gives them a uniform, diff-friendly rendering and an
// optional CSV sidecar for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fgcs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);
  static std::string pct(double fraction, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule and space-padded columns.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& os) const;

  /// Writes the CSV to `path`, creating/truncating the file.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used between bench sub-tables.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace fgcs
