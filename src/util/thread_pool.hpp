// Persistent work-stealing thread pool — the execution substrate under
// parallel_for and every fan-out in the serving stack.
//
// The original parallel_for created and joined fresh std::threads on every
// call, so the hottest serving path (PredictionService::predict_batch, probed
// once per job placement) paid thread spawn/teardown per batch, and static
// chunking stalled whole chunks behind one slow index. ThreadPool fixes both:
// workers are spawned once (lazily, on first parallel work) and live for the
// pool's lifetime, and index ranges are claimed in small dynamic chunks so a
// cache miss on one index only delays its chunk, not a fixed 1/Nth of the
// range.
//
// Structure: one deque of tasks per worker, each guarded by its own mutex.
// submit() pushes to the calling worker's own deque (when called from inside
// the pool) or round-robins across workers; an idle worker first drains its
// own deque (LIFO, for locality), then steals the oldest task from a sibling
// (FIFO, for fairness). Sleeping workers park on a condition variable and are
// woken per submission. All shared state is guarded by mutexes or atomics —
// the pool is TSan-clean by construction, and the TSan CI job runs its tests.
//
// for_each_index (the engine behind parallel_for) lets the *calling* thread
// participate: the caller claims and runs chunks alongside the pool's
// workers, which is what makes nested parallel loops deadlock-free — a worker
// whose task runs an inner loop drains that loop itself even when every other
// worker is busy. The first exception thrown by the body is captured, the
// remaining chunks are abandoned, and the exception is rethrown on the caller
// after in-flight chunks finish — the same contract the spawn-per-call
// implementation had.
//
// Sizing: a default-constructed pool targets hardware_concurrency workers.
// The process-wide default_pool() additionally honors two environment knobs,
// read once at first use: FGCS_THREADS=N pins the worker count exactly
// (useful to force parallelism on single-core CI boxes, or to pin it down),
// and FGCS_MAX_THREADS=N caps the auto-detected count. Workers are only ever
// started when a call actually goes parallel; purely serial programs stay
// single-threaded.
//
// Observability: PoolStats snapshots tasks submitted/executed, steals, the
// queue-depth high-water mark, and cumulative worker busy time; utilization()
// relates busy time to wall time since the workers started. The snapshot is
// wired into ServiceStats so serving binaries can report it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/metrics.hpp"

namespace fgcs {

/// Monotonic pool counters; snapshot via ThreadPool::stats().
struct PoolStats {
  unsigned workers = 0;             ///< worker threads the pool targets
  bool started = false;             ///< workers actually spawned yet?
  std::uint64_t tasks_submitted = 0;///< tasks enqueued (submit + loop helpers)
  std::uint64_t tasks_executed = 0; ///< tasks a worker finished running
  std::uint64_t steals = 0;         ///< tasks taken from a sibling's deque
  std::uint64_t parallel_fors = 0;  ///< for_each_index calls that went wide
  std::uint64_t queue_depth_high_water = 0;  ///< max tasks queued at once
  double busy_seconds = 0.0;        ///< cumulative worker time spent in tasks
  double wall_seconds = 0.0;        ///< wall time since the workers started

  /// Fraction of worker capacity spent running tasks since start; 0 when the
  /// workers have not started.
  double utilization() const;
};

class ThreadPool {
 public:
  /// `workers == 0` targets hardware_concurrency (min 1). Workers are not
  /// spawned until the first task or parallel loop needs them.
  explicit ThreadPool(unsigned workers = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads this pool targets (spawned lazily).
  unsigned worker_count() const { return worker_target_; }

  /// Enqueues `fn` and returns a future for its result; exceptions thrown by
  /// `fn` surface on future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// Runs body(i) for i in [0, count) across the pool, the calling thread
  /// included; returns when every index has run. `max_concurrency` caps how
  /// many threads work on the range (0 = all workers); 1 runs the serial
  /// loop inline in index order. Safe to call from inside a pool task
  /// (nested loops cannot deadlock: the caller works the range itself).
  /// The first exception from `body` is rethrown after the range settles.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& body,
                      unsigned max_concurrency = 0);

  PoolStats stats() const;

  /// Reports this pool's counters into `registry` under the `pool.*` names
  /// (DESIGN.md §8) via callback attachments — the worker hot path is
  /// untouched; values are read only at render time. Idempotent; the
  /// attachments detach when the pool is destroyed. default_pool() calls
  /// this on the global registry automatically.
  void attach_metrics(MetricsRegistry& registry);

  /// The process-wide pool parallel_for runs on. Created on first use, sized
  /// by hardware_concurrency clamped by FGCS_THREADS / FGCS_MAX_THREADS, and
  /// shut down cleanly at static destruction.
  static ThreadPool& default_pool();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  void ensure_started();
  void worker_main(std::size_t index);
  /// Pops from the worker's own deque, stealing from siblings when empty.
  std::function<void()> take_task(std::size_t index);

  unsigned worker_target_;
  std::unique_ptr<Worker[]> queues_;
  std::vector<std::thread> threads_;

  std::mutex start_mutex_;
  std::atomic<bool> started_{false};
  std::chrono::steady_clock::time_point start_time_{};

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool shutdown_ = false;          // guarded by wake_mutex_
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> round_robin_{0};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> parallel_fors_{0};
  std::atomic<std::uint64_t> high_water_{0};
  std::atomic<std::uint64_t> busy_nanos_{0};

  std::mutex metrics_mutex_;
  std::vector<MetricsAttachment> metrics_attachments_;  // guarded by above
};

}  // namespace fgcs
