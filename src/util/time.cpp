#include "util/time.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace fgcs {

const char* to_string(DayType type) {
  return type == DayType::kWeekday ? "weekday" : "weekend";
}

Calendar::Calendar(int epoch_day_of_week) : epoch_day_of_week_(epoch_day_of_week) {
  FGCS_REQUIRE_MSG(epoch_day_of_week >= 0 && epoch_day_of_week <= 6,
                   "day of week must be 0 (Mon) .. 6 (Sun)");
}

int Calendar::day_of_week(std::int64_t day) const {
  const std::int64_t dow = (day + epoch_day_of_week_) % 7;
  return static_cast<int>(dow >= 0 ? dow : dow + 7);
}

DayType Calendar::day_type(std::int64_t day) const {
  return day_of_week(day) >= 5 ? DayType::kWeekend : DayType::kWeekday;
}

std::string format_time_of_day(SimTime second_of_day) {
  FGCS_REQUIRE(second_of_day >= 0 && second_of_day < kSecondsPerDay);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02lld:%02lld:%02lld",
                static_cast<long long>(second_of_day / kSecondsPerHour),
                static_cast<long long>((second_of_day / kSecondsPerMinute) % 60),
                static_cast<long long>(second_of_day % 60));
  return buf;
}

std::string format_sim_time(SimTime t) {
  std::string out = "d";
  out += std::to_string(Calendar::day_index(t));
  out += ' ';
  out += format_time_of_day(Calendar::second_of_day(t));
  return out;
}

}  // namespace fgcs
