// ARMA(p,q) model fitted with the Hannan–Rissanen two-stage procedure:
// a long autoregression supplies residual estimates, then the AR and MA
// coefficients come from one least-squares regression on lagged values and
// lagged residuals.
//
//   x_t − μ = Σ a_i (x_{t−i} − μ) + ε_t + Σ θ_j ε_{t−j}
#pragma once

#include <cstddef>
#include <vector>

#include "timeseries/model.hpp"

namespace fgcs {

class ArmaModel : public TimeSeriesModel {
 public:
  ArmaModel(std::size_t ar_order, std::size_t ma_order);

  std::string name() const override;
  void fit(std::span<const double> series) override;
  std::vector<double> forecast(std::size_t horizon) const override;

  std::size_t ar_order() const { return ar_order_; }
  std::size_t ma_order() const { return ma_order_; }
  const std::vector<double>& ar_coefficients() const { return ar_coefficients_; }
  const std::vector<double>& ma_coefficients() const { return ma_coefficients_; }
  double mean() const { return mean_; }

 private:
  std::size_t ar_order_;
  std::size_t ma_order_;
  std::vector<double> ar_coefficients_;
  std::vector<double> ma_coefficients_;
  std::vector<double> tail_values_;     // last p centered observations, oldest first
  std::vector<double> tail_residuals_;  // last q residual estimates, oldest first
  double mean_ = 0.0;
  bool fitted_ = false;
  bool degenerate_ = false;
};

}  // namespace fgcs
