// Autoregressive model AR(p), fitted by Yule–Walker equations solved with
// the Levinson–Durbin recursion (util/matrix.hpp).
//
//   x_t − μ = Σ_{i=1..p} a_i (x_{t−i} − μ) + ε_t
//
// Multi-step forecasts iterate the recursion, substituting earlier forecasts
// for unobserved values — the "multiple-step-ahead" scheme whose error growth
// with lookahead the paper calls out in §7.2.1.
#pragma once

#include <cstddef>
#include <vector>

#include "timeseries/model.hpp"

namespace fgcs {

class ArModel : public TimeSeriesModel {
 public:
  explicit ArModel(std::size_t order);

  std::string name() const override;
  void fit(std::span<const double> series) override;
  std::vector<double> forecast(std::size_t horizon) const override;

  std::size_t order() const { return order_; }
  /// Fitted coefficients a_1..a_p (empty before fit()).
  const std::vector<double>& coefficients() const { return coefficients_; }
  double mean() const { return mean_; }

 private:
  std::size_t order_;
  std::vector<double> coefficients_;
  std::vector<double> tail_;  // last `order_` observations, oldest first
  double mean_ = 0.0;
  bool fitted_ = false;
  bool degenerate_ = false;  // constant input: forecast the constant
};

}  // namespace fgcs
