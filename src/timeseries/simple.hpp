// The two trivial reference models from paper Table 1:
//   BM(p)  — forecast is the mean over the previous N values (N ≤ p),
//   LAST   — forecast is the last measured value.
#pragma once

#include <cstddef>
#include <vector>

#include "timeseries/model.hpp"

namespace fgcs {

class BmModel : public TimeSeriesModel {
 public:
  explicit BmModel(std::size_t window);

  std::string name() const override;
  void fit(std::span<const double> series) override;
  std::vector<double> forecast(std::size_t horizon) const override;

  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  double forecast_value_ = 0.0;
  bool fitted_ = false;
};

class LastModel : public TimeSeriesModel {
 public:
  std::string name() const override;
  void fit(std::span<const double> series) override;
  std::vector<double> forecast(std::size_t horizon) const override;

 private:
  double last_value_ = 0.0;
  bool fitted_ = false;
};

}  // namespace fgcs
