#include "timeseries/ma.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace fgcs {

std::vector<double> innovations_ma_coefficients(std::span<const double> gamma,
                                                std::size_t q) {
  FGCS_REQUIRE(q >= 1);
  FGCS_REQUIRE_MSG(gamma.size() >= q + 1, "need autocovariances up to lag q");
  if (gamma[0] <= 1e-12) return std::vector<double>(q, 0.0);

  // Brockwell & Davis innovations recursion. θ_{m,1..q} converges to the MA
  // coefficients as m grows, so we iterate through every available lag
  // (callers pass extra lags beyond q for accuracy); γ(k) beyond the provided
  // range is treated as 0, which is exact for an MA(q) process.
  const std::size_t m = gamma.size() - 1;
  auto gamma_at = [&](std::size_t k) {
    return k < gamma.size() ? gamma[k] : 0.0;
  };
  // theta[n][j] holds θ_{n,j} for j = 1..n; v[n] the innovation variances.
  std::vector<std::vector<double>> theta(m + 1);
  std::vector<double> v(m + 1, 0.0);
  v[0] = gamma[0];
  for (std::size_t n = 1; n <= m; ++n) {
    theta[n].assign(n + 1, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      double acc = gamma_at(n - k);
      for (std::size_t j = 0; j < k; ++j)
        acc -= theta[k][k - j] * theta[n][n - j] * v[j];
      theta[n][n - k] = v[k] > 1e-14 ? acc / v[k] : 0.0;
    }
    double var = gamma[0];
    for (std::size_t j = 0; j < n; ++j)
      var -= theta[n][n - j] * theta[n][n - j] * v[j];
    v[n] = std::max(var, 1e-14);
  }
  std::vector<double> out(q, 0.0);
  for (std::size_t j = 1; j <= q && j <= m; ++j) out[j - 1] = theta[m][j];
  return out;
}

MaModel::MaModel(std::size_t order) : order_(order) {
  FGCS_REQUIRE_MSG(order >= 1, "MA order must be at least 1");
}

std::string MaModel::name() const {
  return "MA(" + std::to_string(order_) + ")";
}

void MaModel::fit(std::span<const double> series) {
  FGCS_REQUIRE_MSG(series.size() > order_ + 1,
                   "series too short for the MA order");
  mean_ = fgcs::mean(series);
  // Extra lags sharpen the innovations estimate (θ_{m,·} → θ as m grows).
  const std::size_t extra_lags =
      std::min(order_ * 3 + 17, series.size() / 4 + order_);
  const std::vector<double> gamma = autocovariance(series, extra_lags);
  coefficients_ = innovations_ma_coefficients(gamma, order_);

  // Filter residuals through the fitted model: ε_t = x_t − μ − Σ θ_j ε_{t−j}.
  std::vector<double> residuals(series.size(), 0.0);
  for (std::size_t t = 0; t < series.size(); ++t) {
    double acc = series[t] - mean_;
    for (std::size_t j = 1; j <= order_ && j <= t; ++j)
      acc -= coefficients_[j - 1] * residuals[t - j];
    residuals[t] = acc;
  }
  recent_residuals_.assign(
      residuals.end() - static_cast<std::ptrdiff_t>(
                            std::min(order_, residuals.size())),
      residuals.end());
  fitted_ = true;
}

std::vector<double> MaModel::forecast(std::size_t horizon) const {
  FGCS_REQUIRE_MSG(fitted_, "forecast() before fit()");
  std::vector<double> out(horizon, mean_);
  // For h ≤ q the forecast still sees training residuals; beyond q it is μ.
  const std::size_t r = recent_residuals_.size();
  for (std::size_t h = 1; h <= std::min(horizon, order_); ++h) {
    double acc = 0.0;
    // ε_{t+h−j} is known for j ≥ h (future residuals forecast as 0).
    for (std::size_t j = h; j <= order_; ++j) {
      const std::size_t lag_back = j - h;  // 0 = most recent residual
      if (lag_back < r)
        acc += coefficients_[j - 1] * recent_residuals_[r - 1 - lag_back];
    }
    out[h - 1] = mean_ + acc;
  }
  return out;
}

}  // namespace fgcs
