#include "timeseries/tr_predictor.hpp"

#include <algorithm>

#include "core/states.hpp"
#include "util/error.hpp"

namespace fgcs {

std::vector<double> load_series(std::span<const ResourceSample> samples,
                                const Thresholds& thresholds) {
  std::vector<double> out(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const ResourceSample& s = samples[i];
    const bool failed_resource =
        !s.up() || s.free_mem_mb < thresholds.guest_mem_mb;
    out[i] = failed_resource ? 1.0 : s.load();
  }
  return out;
}

TimeWindow preceding_window(const TimeWindow& window, std::int64_t day,
                            std::int64_t& anchor_day) {
  validate(window);
  SimTime start = window.start_of_day - window.length;
  anchor_day = day;
  if (start < 0) {
    start += kSecondsPerDay;
    anchor_day = day - 1;
  }
  return TimeWindow{.start_of_day = start, .length = window.length};
}

TsTrResult predict_tr_time_series(const MachineTrace& trace,
                                  std::span<const std::int64_t> test_days,
                                  const TimeWindow& window,
                                  TimeSeriesModel& model,
                                  const StateClassifier& classifier) {
  validate(window);
  TsTrResult result;
  const std::size_t steps = window.steps(trace.sampling_period());

  for (const std::int64_t day : test_days) {
    if (!trace.window_in_range(day, window)) continue;

    // Same eligibility rule as the empirical TR: the day must start in an
    // available state.
    const std::vector<State> observed =
        classifier.classify_window(trace, day, window);
    if (observed.empty() || is_failure(observed.front())) continue;

    std::int64_t fit_day = 0;
    const TimeWindow fit_window = preceding_window(window, day, fit_day);
    if (!trace.window_in_range(fit_day, fit_window)) continue;

    ++result.eligible_days;

    const std::vector<ResourceSample> fit_samples =
        trace.window_samples(fit_day, fit_window);
    model.fit(load_series(fit_samples, classifier.thresholds()));
    const std::vector<double> forecast = model.forecast(steps);

    // Re-materialize the forecast as samples so the state classifier (with
    // its transient rule) applies unchanged.
    std::vector<ResourceSample> predicted(steps);
    for (std::size_t i = 0; i < steps; ++i) {
      predicted[i].host_load_pct = pack_load_pct(std::clamp(forecast[i], 0.0, 1.0));
      predicted[i].free_mem_mb = 65535;
      predicted[i].set_up(true);
    }
    const std::vector<State> states = classifier.classify(predicted);
    const bool survives =
        std::none_of(states.begin(), states.end(),
                     [](State s) { return is_failure(s); });
    if (survives) ++result.predicted_surviving;
  }

  if (result.eligible_days > 0)
    result.tr = static_cast<double>(result.predicted_surviving) /
                static_cast<double>(result.eligible_days);
  return result;
}

}  // namespace fgcs
