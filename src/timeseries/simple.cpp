#include "timeseries/simple.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace fgcs {

BmModel::BmModel(std::size_t window) : window_(window) {
  FGCS_REQUIRE_MSG(window >= 1, "BM window must be at least 1");
}

std::string BmModel::name() const {
  return "BM(" + std::to_string(window_) + ")";
}

void BmModel::fit(std::span<const double> series) {
  FGCS_REQUIRE_MSG(!series.empty(), "cannot fit BM on an empty series");
  const std::size_t n = std::min(window_, series.size());
  forecast_value_ =
      fgcs::mean(series.subspan(series.size() - n, n));
  fitted_ = true;
}

std::vector<double> BmModel::forecast(std::size_t horizon) const {
  FGCS_REQUIRE_MSG(fitted_, "forecast() before fit()");
  return std::vector<double>(horizon, forecast_value_);
}

std::string LastModel::name() const { return "LAST"; }

void LastModel::fit(std::span<const double> series) {
  FGCS_REQUIRE_MSG(!series.empty(), "cannot fit LAST on an empty series");
  last_value_ = series.back();
  fitted_ = true;
}

std::vector<double> LastModel::forecast(std::size_t horizon) const {
  FGCS_REQUIRE_MSG(fitted_, "forecast() before fit()");
  return std::vector<double>(horizon, last_value_);
}

}  // namespace fgcs
