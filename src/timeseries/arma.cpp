#include "timeseries/arma.hpp"

#include <algorithm>

#include "timeseries/ar.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"

namespace fgcs {

ArmaModel::ArmaModel(std::size_t ar_order, std::size_t ma_order)
    : ar_order_(ar_order), ma_order_(ma_order) {
  FGCS_REQUIRE_MSG(ar_order >= 1 && ma_order >= 1,
                   "ARMA orders must be at least 1");
}

std::string ArmaModel::name() const {
  return "ARMA(" + std::to_string(ar_order_) + "," + std::to_string(ma_order_) + ")";
}

void ArmaModel::fit(std::span<const double> series) {
  const std::size_t long_order =
      std::max<std::size_t>(20, ar_order_ + ma_order_ + 4);
  FGCS_REQUIRE_MSG(series.size() > long_order + ar_order_ + ma_order_ + 2,
                   "series too short for Hannan-Rissanen fitting");
  mean_ = fgcs::mean(series);

  const std::size_t n = series.size();
  std::vector<double> centered(n);
  for (std::size_t t = 0; t < n; ++t) centered[t] = series[t] - mean_;

  degenerate_ = fgcs::variance(series) <= 1e-12;
  if (!degenerate_) {
    // Stage 1: long AR for residual estimates.
    ArModel long_ar(long_order);
    long_ar.fit(series);
    std::vector<double> residuals(n, 0.0);
    const auto& phi = long_ar.coefficients();
    for (std::size_t t = long_order; t < n; ++t) {
      double acc = centered[t];
      for (std::size_t i = 1; i <= long_order; ++i)
        acc -= phi[i - 1] * centered[t - i];
      residuals[t] = acc;
    }

    // Stage 2: regress x_t on p lagged values and q lagged residuals.
    const std::size_t start = long_order + std::max(ar_order_, ma_order_);
    const std::size_t rows = n - start;
    const std::size_t cols = ar_order_ + ma_order_;
    if (rows >= cols + 2) {
      Matrix design(rows, cols);
      std::vector<double> target(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t t = start + r;
        target[r] = centered[t];
        for (std::size_t i = 1; i <= ar_order_; ++i)
          design(r, i - 1) = centered[t - i];
        for (std::size_t j = 1; j <= ma_order_; ++j)
          design(r, ar_order_ + j - 1) = residuals[t - j];
      }
      try {
        const std::vector<double> beta = least_squares(design, target);
        ar_coefficients_.assign(beta.begin(),
                                beta.begin() + static_cast<std::ptrdiff_t>(ar_order_));
        ma_coefficients_.assign(beta.begin() + static_cast<std::ptrdiff_t>(ar_order_),
                                beta.end());
      } catch (const DataError&) {
        degenerate_ = true;
      }
    } else {
      degenerate_ = true;
    }

    if (!degenerate_) {
      // Refresh residuals under the fitted ARMA model so the forecast seeds
      // match the model that will consume them.
      std::vector<double> eps(n, 0.0);
      for (std::size_t t = 0; t < n; ++t) {
        double acc = centered[t];
        for (std::size_t i = 1; i <= ar_order_ && i <= t; ++i)
          acc -= ar_coefficients_[i - 1] * centered[t - i];
        for (std::size_t j = 1; j <= ma_order_ && j <= t; ++j)
          acc -= ma_coefficients_[j - 1] * eps[t - j];
        eps[t] = acc;
      }
      tail_residuals_.assign(
          eps.end() - static_cast<std::ptrdiff_t>(std::min(ma_order_, n)),
          eps.end());
    }
  }

  if (degenerate_) {
    ar_coefficients_.assign(ar_order_, 0.0);
    ma_coefficients_.assign(ma_order_, 0.0);
    tail_residuals_.assign(ma_order_, 0.0);
  }
  tail_values_.assign(
      centered.end() - static_cast<std::ptrdiff_t>(std::min(ar_order_, n)),
      centered.end());
  fitted_ = true;
}

std::vector<double> ArmaModel::forecast(std::size_t horizon) const {
  FGCS_REQUIRE_MSG(fitted_, "forecast() before fit()");
  std::vector<double> out;
  out.reserve(horizon);
  if (degenerate_) {
    out.assign(horizon, mean_);
    return out;
  }
  std::vector<double> values = tail_values_;       // centered, oldest first
  std::vector<double> residuals = tail_residuals_; // oldest first
  for (std::size_t h = 1; h <= horizon; ++h) {
    double acc = 0.0;
    for (std::size_t i = 1; i <= ar_order_ && i <= values.size(); ++i)
      acc += ar_coefficients_[i - 1] * values[values.size() - i];
    // Future residuals forecast as zero; only training residuals contribute,
    // and they age out after ma_order_ steps.
    for (std::size_t j = 1; j <= ma_order_; ++j) {
      if (j < h) continue;  // ε_{t+h−j} with h−j > 0 is a future residual
      const std::size_t lag_back = j - h;
      if (lag_back < residuals.size())
        acc += ma_coefficients_[j - 1] *
               residuals[residuals.size() - 1 - lag_back];
    }
    values.push_back(acc);
    out.push_back(acc + mean_);
  }
  return out;
}

}  // namespace fgcs
