// Historical-frequency baseline (not in the paper's comparison, added as an
// ablation): predict TR as the plain per-day survival frequency of the same
// clock-time window over the training days. This is the natural descendant
// of the long-term-averaging predictors the paper cites as related work
// (ref [19]); it ignores the dynamic structure the SMP models (initial state,
// holding times), which is exactly what the comparison isolates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/classifier.hpp"
#include "trace/machine_trace.hpp"
#include "trace/window.hpp"

namespace fgcs {

struct FrequencyBaselineResult {
  std::optional<double> tr;     // survival frequency; empty without data
  std::size_t days_used = 0;    // eligible training days
};

FrequencyBaselineResult predict_tr_frequency(
    const MachineTrace& trace, std::span<const std::int64_t> training_days,
    const TimeWindow& window, const StateClassifier& classifier);

}  // namespace fgcs
