// Linear time-series models (paper Table 1), the reference predictors the
// SMP method is compared against in Fig. 7. All models fit a scalar series
// (host load fractions) and produce multi-step-ahead forecasts.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fgcs {

class TimeSeriesModel {
 public:
  virtual ~TimeSeriesModel() = default;

  /// Model label as in the paper, e.g. "AR(8)".
  virtual std::string name() const = 0;

  /// Fits the model to `series`; replaces any previous fit.
  /// Requires series.size() to exceed the model order.
  virtual void fit(std::span<const double> series) = 0;

  /// Forecasts the next `horizon` values after the end of the fitted series.
  virtual std::vector<double> forecast(std::size_t horizon) const = 0;
};

/// Builds one of the paper's models by name: "AR(p)", "BM(p)", "MA(q)",
/// "ARMA(p,q)", "LAST". Throws PreconditionError for an unknown spec.
std::unique_ptr<TimeSeriesModel> make_time_series_model(const std::string& spec);

}  // namespace fgcs
