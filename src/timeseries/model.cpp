#include "timeseries/model.hpp"

#include <cctype>

#include "timeseries/ar.hpp"
#include "timeseries/arma.hpp"
#include "timeseries/ma.hpp"
#include "timeseries/simple.hpp"
#include "util/error.hpp"

namespace fgcs {

namespace {

/// Parses "NAME", "NAME(p)" or "NAME(p,q)" into name + numeric args.
struct ParsedSpec {
  std::string head;
  std::vector<std::size_t> args;
};

ParsedSpec parse_spec(const std::string& spec) {
  ParsedSpec out;
  std::size_t i = 0;
  while (i < spec.size() && spec[i] != '(') out.head += spec[i++];
  if (i < spec.size()) {
    FGCS_REQUIRE_MSG(spec.back() == ')', "malformed model spec: " + spec);
    ++i;  // past '('
    std::size_t value = 0;
    bool have_digit = false;
    for (; i < spec.size(); ++i) {
      const char ch = spec[i];
      if (std::isdigit(static_cast<unsigned char>(ch))) {
        value = value * 10 + static_cast<std::size_t>(ch - '0');
        have_digit = true;
      } else if (ch == ',' || ch == ')') {
        FGCS_REQUIRE_MSG(have_digit, "malformed model spec: " + spec);
        out.args.push_back(value);
        value = 0;
        have_digit = false;
      } else if (ch != ' ') {
        FGCS_REQUIRE_MSG(false, "malformed model spec: " + spec);
      }
    }
  }
  return out;
}

}  // namespace

std::unique_ptr<TimeSeriesModel> make_time_series_model(const std::string& spec) {
  const ParsedSpec parsed = parse_spec(spec);
  if (parsed.head == "AR" && parsed.args.size() == 1)
    return std::make_unique<ArModel>(parsed.args[0]);
  if (parsed.head == "MA" && parsed.args.size() == 1)
    return std::make_unique<MaModel>(parsed.args[0]);
  if (parsed.head == "ARMA" && parsed.args.size() == 2)
    return std::make_unique<ArmaModel>(parsed.args[0], parsed.args[1]);
  if (parsed.head == "BM" && parsed.args.size() == 1)
    return std::make_unique<BmModel>(parsed.args[0]);
  if (parsed.head == "LAST" && parsed.args.empty())
    return std::make_unique<LastModel>();
  FGCS_REQUIRE_MSG(false, "unknown time series model spec: " + spec);
  return nullptr;  // unreachable
}

}  // namespace fgcs
