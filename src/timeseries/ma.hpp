// Moving-average model MA(q), fitted with the innovations algorithm
// (Brockwell & Davis §5.3) on sample autocovariances.
//
//   x_t = μ + ε_t + θ_1 ε_{t−1} + … + θ_q ε_{t−q}
//
// h-step forecasts use the filtered residuals of the training series for
// h ≤ q and collapse to the mean beyond the model order — the signature
// short-memory behaviour visible in Fig. 7 for long windows.
#pragma once

#include <cstddef>
#include <vector>

#include "timeseries/model.hpp"

namespace fgcs {

class MaModel : public TimeSeriesModel {
 public:
  explicit MaModel(std::size_t order);

  std::string name() const override;
  void fit(std::span<const double> series) override;
  std::vector<double> forecast(std::size_t horizon) const override;

  std::size_t order() const { return order_; }
  /// Fitted coefficients θ_1..θ_q (empty before fit()).
  const std::vector<double>& coefficients() const { return coefficients_; }
  double mean() const { return mean_; }

 private:
  std::size_t order_;
  std::vector<double> coefficients_;
  std::vector<double> recent_residuals_;  // last q residuals, oldest first
  double mean_ = 0.0;
  bool fitted_ = false;
};

/// Innovations-algorithm estimate of MA(q) coefficients from autocovariances
/// γ(0..q). Exposed for direct testing. Returns θ_1..θ_q.
std::vector<double> innovations_ma_coefficients(std::span<const double> gamma,
                                                std::size_t q);

}  // namespace fgcs
