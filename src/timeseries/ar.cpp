#include "timeseries/ar.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"

namespace fgcs {

ArModel::ArModel(std::size_t order) : order_(order) {
  FGCS_REQUIRE_MSG(order >= 1, "AR order must be at least 1");
}

std::string ArModel::name() const {
  return "AR(" + std::to_string(order_) + ")";
}

void ArModel::fit(std::span<const double> series) {
  FGCS_REQUIRE_MSG(series.size() > order_ + 1,
                   "series too short for the AR order");
  mean_ = fgcs::mean(series);
  tail_.assign(series.end() - static_cast<std::ptrdiff_t>(order_), series.end());

  const std::vector<double> gamma = autocovariance(series, order_);
  degenerate_ = gamma[0] <= 1e-12;
  if (degenerate_) {
    coefficients_.assign(order_, 0.0);
    fitted_ = true;
    return;
  }
  // Yule–Walker: Toeplitz(γ0..γ_{p-1}) · a = (γ1..γp).
  const std::span<const double> r(gamma.data(), order_);
  const std::span<const double> rhs(gamma.data() + 1, order_);
  try {
    coefficients_ = solve_toeplitz(r, rhs);
  } catch (const DataError&) {
    // Near-singular autocovariance (e.g. almost-constant series): fall back
    // to the mean forecast rather than failing the whole evaluation.
    coefficients_.assign(order_, 0.0);
    degenerate_ = true;
  }
  fitted_ = true;
}

std::vector<double> ArModel::forecast(std::size_t horizon) const {
  FGCS_REQUIRE_MSG(fitted_, "forecast() before fit()");
  std::vector<double> out;
  out.reserve(horizon);
  if (degenerate_) {
    out.assign(horizon, mean_);
    return out;
  }
  // Centered history, most recent last; grows with each forecast step.
  std::vector<double> history;
  history.reserve(order_ + horizon);
  for (const double x : tail_) history.push_back(x - mean_);
  for (std::size_t step = 0; step < horizon; ++step) {
    double acc = 0.0;
    for (std::size_t i = 0; i < order_; ++i)
      acc += coefficients_[i] * history[history.size() - 1 - i];
    history.push_back(acc);
    out.push_back(acc + mean_);
  }
  return out;
}

}  // namespace fgcs
