// Temporal-reliability prediction with linear time-series models
// (paper §6.2): the reference scheme the SMP predictor is compared against.
//
// For each test day the model is fitted on the host-load series of the window
// *immediately preceding* the target window (same length), then forecasts one
// value per discretization tick across the target window. The forecast is
// classified into availability states; the day is predicted to survive iff no
// failure state appears. TR_ts is the surviving fraction over eligible test
// days — directly comparable to the empirical TR of core/empirical.hpp.
//
// Machine downtime and memory thrash are folded into the scalar input series
// as full load (1.0): a linear model sees them as saturated-CPU periods,
// which is the only faithful single-series encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/classifier.hpp"
#include "timeseries/model.hpp"
#include "trace/machine_trace.hpp"
#include "trace/window.hpp"

namespace fgcs {

/// The scalar series a time-series model consumes: host load, with downtime
/// and thrash encoded as 1.0.
std::vector<double> load_series(std::span<const ResourceSample> samples,
                                const Thresholds& thresholds);

/// The window of identical length immediately preceding `window`. Anchored on
/// `day − 1` when it crosses the previous midnight; `anchor_day` receives the
/// day the returned window starts on.
TimeWindow preceding_window(const TimeWindow& window, std::int64_t day,
                            std::int64_t& anchor_day);

struct TsTrResult {
  std::size_t eligible_days = 0;       // test days usable for evaluation
  std::size_t predicted_surviving = 0; // days the model predicts to survive
  std::optional<double> tr;            // predicted_surviving / eligible_days
};

/// Runs the §6.2 scheme for `model` over the given test days.
TsTrResult predict_tr_time_series(const MachineTrace& trace,
                                  std::span<const std::int64_t> test_days,
                                  const TimeWindow& window,
                                  TimeSeriesModel& model,
                                  const StateClassifier& classifier);

}  // namespace fgcs
