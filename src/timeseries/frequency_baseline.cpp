#include "timeseries/frequency_baseline.hpp"

#include "core/empirical.hpp"

namespace fgcs {

FrequencyBaselineResult predict_tr_frequency(
    const MachineTrace& trace, std::span<const std::int64_t> training_days,
    const TimeWindow& window, const StateClassifier& classifier) {
  const EmpiricalTr result =
      empirical_tr(trace, training_days, window, classifier);
  return FrequencyBaselineResult{.tr = result.tr,
                                 .days_used = result.eligible_days};
}

}  // namespace fgcs
