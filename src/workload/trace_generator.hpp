// Synthetic host-usage trace generation — the substitute for the paper's
// 3-month Purdue lab traces (see DESIGN.md §2).
//
// Per day, the generator superimposes:
//   * interactive sessions  — Poisson arrivals (rate ∝ diurnal activity),
//     exponential durations, each adding a constant CPU intensity and a
//     memory footprint;
//   * high-load episodes    — compile jobs / remote X starts: short spikes,
//     a configurable fraction below the 1-minute transient limit (these do
//     not count as failures) and the rest long enough to be S3 occurrences;
//   * AR(1) measurement noise;
//   * memory surges         — large allocations that push free memory below
//     a guest working set (S4 occurrences);
//   * revocations           — console users rebooting the machine (S5),
//     placed ∝ activity, with a downtime duration.
//
// Day-to-day realism: a lognormal day-level multiplier, plus an optional
// linear semester drift (activity grows toward finals), which is what makes
// very large training sets stale (the paper's Fig. 6 sweet spot).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/machine_trace.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workload/profile.hpp"

namespace fgcs {

struct WorkloadParams {
  DiurnalProfile profile = DiurnalProfile::student_lab();

  // CPU load composition.
  double base_load = 0.03;             // system daemons
  double session_rate_per_hour = 3.0;  // at activity 1.0
  double session_mean_minutes = 22.0;
  double session_intensity_lo = 0.03;
  double session_intensity_hi = 0.12;
  double ar_noise_sigma = 0.010;       // AR(1) measurement noise
  double ar_noise_coeff = 0.9;

  // Isolated load spikes (remote X starts, system jobs). Most are transient
  // (shorter than the 1-minute limit — the guest is merely suspended); the
  // rest are isolated S3 occurrences.
  double spike_rate_per_hour = 0.30;   // at activity 1.0
  double spike_transient_frac = 0.80;  // shorter than the 1-min limit
  double spike_short_min_s = 12.0;
  double spike_short_max_s = 54.0;
  double spike_long_min_s = 90.0;
  double spike_long_max_s = 500.0;
  double spike_intensity_lo = 0.55;
  double spike_intensity_hi = 0.95;

  // Trouble episodes: real unavailability clusters — a user compiling in a
  // loop, a lab session hammering the machine — several S3 occurrences close
  // together, sometimes with a reboot or a memory surge. Clustering is what
  // lets a machine log ~5 occurrences/day (paper §6.1) while most multi-hour
  // windows stay failure-free.
  //
  // Episodes mostly recur at machine-specific *anchor* times (the same user,
  // the same class schedule): this is the paper's central premise that "the
  // daily patterns of host workloads are comparable to those in the most
  // recent days", and it is what makes same-clock-time training windows
  // informative. A small background rate adds irregular episodes on top.
  double episode_background_rate_per_day = 0.18;  // ∝ activity & day level
  int anchor_count_min = 3;            // habitual weekday trouble times
  int anchor_count_max = 3;
  int weekend_anchor_count_min = 1;
  int weekend_anchor_count_max = 2;
  double anchor_strength_lo = 0.25;    // per-day firing probability
  double anchor_strength_hi = 0.38;
  double anchor_jitter_minutes_lo = 10.0;
  double anchor_jitter_minutes_hi = 45.0;
  double episode_min_s = 1200.0;
  double episode_max_s = 4200.0;
  int episode_failures_min = 3;        // long spikes per episode
  int episode_failures_max = 7;
  double episode_reboot_prob = 0.15;
  double episode_surge_prob = 0.12;

  // Memory.
  double mem_total_mb = 512.0;
  double mem_base_used_mb = 150.0;
  double mem_per_session_mb = 26.0;
  double mem_surge_rate_per_day = 0.25; // isolated surges (more in episodes)
  double mem_surge_extra_mb = 320.0;
  double mem_surge_min_s = 120.0;
  double mem_surge_max_s = 1500.0;

  // Revocations (reboots by console users).
  double reboot_rate_per_day = 0.30; // isolated reboots (more in episodes)
  double reboot_down_min_s = 150.0;
  double reboot_down_max_s = 900.0;

  // Day-to-day variation.
  double day_level_sigma = 0.13;  // lognormal multiplier on all rates
  double drift_per_day = 0.0;     // relative activity drift (Fig. 6 staleness)

  SimTime sampling_period = 6;  // paper: one sample every 6 s
};

/// A machine's habitual trouble time (see WorkloadParams episode comment).
struct EpisodeAnchor {
  double hour = 12.0;          // centre of the habitual episode
  double strength = 0.5;       // probability it fires on a given day
  double jitter_minutes = 30;  // day-to-day placement jitter (std dev)
};

/// Per-machine stable character, sampled once per machine: the anchors that
/// make its unavailability pattern repeat across same-type days.
struct MachinePersona {
  std::vector<EpisodeAnchor> weekday_anchors;
  std::vector<EpisodeAnchor> weekend_anchors;

  static MachinePersona sample(const WorkloadParams& params, Rng& rng);
};

class TraceGenerator {
 public:
  TraceGenerator(WorkloadParams params, std::uint64_t seed);

  const WorkloadParams& params() const { return params_; }

  /// Generates `days` days for one machine. `epoch_day_of_week` anchors the
  /// calendar (0 = Monday). Deterministic in (seed, machine_id, days).
  MachineTrace generate(const std::string& machine_id, int days,
                        int epoch_day_of_week = 0);

  /// One day of samples — exposed for tests and incremental simulation.
  std::vector<ResourceSample> generate_day(DayType type, std::int64_t day_index,
                                           const MachinePersona& persona,
                                           Rng& day_rng) const;

 private:
  WorkloadParams params_;
  Rng rng_;
};

/// Fleet convenience: `count` machines with ids "<prefix>NN" and independent
/// seeds derived from `seed`.
std::vector<MachineTrace> generate_fleet(const WorkloadParams& params,
                                         std::uint64_t seed, int count,
                                         int days,
                                         const std::string& prefix = "host",
                                         int epoch_day_of_week = 0);

}  // namespace fgcs
