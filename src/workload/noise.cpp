#include "workload/noise.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fgcs {

MachineTrace inject_unavailability(const MachineTrace& trace, std::int64_t day,
                                   int count, const NoiseParams& params,
                                   Rng& rng) {
  FGCS_REQUIRE(day >= 0 && day < trace.day_count());
  FGCS_REQUIRE(count >= 0);
  FGCS_REQUIRE(params.min_hold > 0 && params.min_hold <= params.max_hold);

  MachineTrace out(trace.machine_id(), trace.calendar(),
                   trace.sampling_period(), trace.total_mem_mb());
  const TimeWindow whole_day{.start_of_day = 0, .length = kSecondsPerDay};
  const SimTime period = trace.sampling_period();

  for (std::int64_t d = 0; d + 1 <= trace.day_count(); ++d) {
    std::vector<ResourceSample> samples = trace.window_samples(d, whole_day);
    if (d == day) {
      for (int occurrence = 0; occurrence < count; ++occurrence) {
        const SimTime start =
            params.around + rng.uniform_int(-params.spread, params.spread);
        const SimTime hold = rng.uniform_int(params.min_hold, params.max_hold);
        const auto first = std::clamp<std::int64_t>(
            start / period, 0, static_cast<std::int64_t>(samples.size()) - 1);
        const auto last = std::clamp<std::int64_t>(
            (start + hold) / period, 0,
            static_cast<std::int64_t>(samples.size()) - 1);
        for (std::int64_t i = first; i <= last; ++i)
          samples[static_cast<std::size_t>(i)].host_load_pct = 100;
      }
    }
    out.append_day(std::move(samples));
  }
  return out;
}

}  // namespace fgcs
