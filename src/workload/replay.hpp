// HostSignal adapters: feed a SimulatedMachine either from a recorded /
// generated MachineTrace (deterministic replay) or straight from a
// TraceGenerator stream.
#pragma once

#include <memory>

#include "sim/machine.hpp"
#include "trace/machine_trace.hpp"

namespace fgcs {

/// Replays an existing trace as the host-side signal. The trace outlives the
/// signal (non-owning); ticks beyond the recorded range throw.
///
/// Convention: a tick at time t reports the sampling period *ending* at t
/// (machines are stepped at t = period, 2·period, …), so a full day of ticks
/// ending at t = 86400 maps exactly onto one recorded day.
class TraceReplaySignal final : public HostSignal {
 public:
  explicit TraceReplaySignal(const MachineTrace& trace) : trace_(trace) {}

  Tick tick(SimTime t) override {
    const ResourceSample& s = trace_.at_time(t > 0 ? t - 1 : 0);
    return Tick{.host_load = s.load(),
                .free_mem_mb = static_cast<double>(s.free_mem_mb),
                .up = s.up()};
  }

 private:
  const MachineTrace& trace_;
};

/// Convenience: a machine whose host activity replays `trace`.
std::unique_ptr<SimulatedMachine> make_replay_machine(
    const MachineTrace& trace, const Thresholds& thresholds);

}  // namespace fgcs
