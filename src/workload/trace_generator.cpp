#include "workload/trace_generator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace fgcs {

TraceGenerator::TraceGenerator(WorkloadParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  FGCS_REQUIRE(params.sampling_period > 0 &&
               kSecondsPerDay % params.sampling_period == 0);
  FGCS_REQUIRE(params.mem_total_mb > params.mem_base_used_mb);
  FGCS_REQUIRE(params.spike_transient_frac >= 0 &&
               params.spike_transient_frac <= 1);
}

MachinePersona MachinePersona::sample(const WorkloadParams& params, Rng& rng) {
  MachinePersona persona;
  auto draw_anchors = [&](DayType type, int lo, int hi) {
    std::vector<EpisodeAnchor> anchors;
    const std::int64_t count = rng.uniform_int(lo, hi);
    for (std::int64_t a = 0; a < count; ++a) {
      EpisodeAnchor anchor;
      // Habitual times land where the lab is active.
      double hour = rng.uniform(0.0, 24.0);
      for (int attempt = 0; attempt < 24; ++attempt) {
        hour = rng.uniform(0.0, 24.0);
        if (rng.uniform() < params.profile.activity(type, hour)) break;
      }
      anchor.hour = hour;
      anchor.strength =
          rng.uniform(params.anchor_strength_lo, params.anchor_strength_hi);
      anchor.jitter_minutes = rng.uniform(params.anchor_jitter_minutes_lo,
                                          params.anchor_jitter_minutes_hi);
      anchors.push_back(anchor);
    }
    return anchors;
  };
  persona.weekday_anchors = draw_anchors(
      DayType::kWeekday, params.anchor_count_min, params.anchor_count_max);
  persona.weekend_anchors =
      draw_anchors(DayType::kWeekend, params.weekend_anchor_count_min,
                   params.weekend_anchor_count_max);
  return persona;
}

namespace {

/// Adds `value` to the ticks overlapped by [start_s, end_s), weighted by the
/// overlap fraction — the monitor reports the *average* usage over each
/// sampling period, so a burst shorter than a period contributes
/// proportionally (this is what keeps sub-minute spikes transient even in
/// coarsely sampled logs).
void add_interval(std::vector<double>& series, double start_s, double end_s,
                  double value, SimTime period) {
  const auto n = static_cast<std::ptrdiff_t>(series.size());
  const double p = static_cast<double>(period);
  auto a = static_cast<std::ptrdiff_t>(std::floor(start_s / p));
  auto b = static_cast<std::ptrdiff_t>(std::ceil(end_s / p));
  a = std::clamp<std::ptrdiff_t>(a, 0, n);
  b = std::clamp<std::ptrdiff_t>(b, 0, n);
  for (std::ptrdiff_t i = a; i < b; ++i) {
    const double tick_start = static_cast<double>(i) * p;
    const double overlap = std::min(end_s, tick_start + p) -
                           std::max(start_s, tick_start);
    if (overlap > 0) series[i] += value * overlap / p;
  }
}

}  // namespace

std::vector<ResourceSample> TraceGenerator::generate_day(
    DayType type, std::int64_t day_index, const MachinePersona& persona,
    Rng& day_rng) const {
  const SimTime period = params_.sampling_period;
  const std::size_t ticks = static_cast<std::size_t>(kSecondsPerDay / period);

  // Day-level multiplier: lognormal variation plus the semester drift.
  const double drift =
      std::max(0.05, 1.0 + params_.drift_per_day *
                               (static_cast<double>(day_index) - 45.0));
  const double day_level =
      std::exp(day_rng.normal(0.0, params_.day_level_sigma)) * drift;

  std::vector<double> load(ticks, params_.base_load);
  std::vector<double> session_mem(ticks, 0.0);
  std::vector<double> surge_mem(ticks, 0.0);
  std::vector<bool> down(ticks, false);

  // --- interactive sessions -------------------------------------------------
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    const double act =
        params_.profile.activity(type, hour + 0.5) * day_level;
    const std::int64_t arrivals =
        day_rng.poisson(params_.session_rate_per_hour * act);
    for (std::int64_t s = 0; s < arrivals; ++s) {
      const double start = (hour + day_rng.uniform()) * kSecondsPerHour;
      const double duration =
          day_rng.exponential(params_.session_mean_minutes * 60.0);
      const double intensity = day_rng.uniform(params_.session_intensity_lo,
                                               params_.session_intensity_hi);
      add_interval(load, start, start + duration, intensity, period);
      add_interval(session_mem, start, start + duration,
                   params_.mem_per_session_mb, period);
    }
  }

  // --- high-load episodes -----------------------------------------------
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    const double act =
        params_.profile.activity(type, hour + 0.5) * day_level;
    const std::int64_t spikes =
        day_rng.poisson(params_.spike_rate_per_hour * act);
    for (std::int64_t s = 0; s < spikes; ++s) {
      const double start = (hour + day_rng.uniform()) * kSecondsPerHour;
      const bool transient = day_rng.chance(params_.spike_transient_frac);
      const double duration =
          transient
              ? day_rng.uniform(params_.spike_short_min_s, params_.spike_short_max_s)
              : day_rng.uniform(params_.spike_long_min_s, params_.spike_long_max_s);
      const double intensity = day_rng.uniform(params_.spike_intensity_lo,
                                               params_.spike_intensity_hi);
      add_interval(load, start, start + duration, intensity, period);
    }
  }

  // --- trouble episodes ---------------------------------------------------
  auto mark_down = [&](double start_s, double duration_s) {
    const auto a = static_cast<std::ptrdiff_t>(std::max(0.0, start_s) / period);
    const auto b = static_cast<std::ptrdiff_t>(
        std::min(start_s + duration_s, static_cast<double>(kSecondsPerDay - 1)) /
        period);
    for (std::ptrdiff_t i = a; i <= std::min<std::ptrdiff_t>(b, ticks - 1); ++i)
      down[static_cast<std::size_t>(i)] = true;
  };
  auto activity_hour = [&](DayType t) {
    // Place events ∝ activity by rejection sampling on the hour.
    double hour = day_rng.uniform(0.0, 24.0);
    for (int attempt = 0; attempt < 16; ++attempt) {
      hour = day_rng.uniform(0.0, 24.0);
      if (day_rng.uniform() < params_.profile.activity(t, hour)) break;
    }
    return hour;
  };
  {
    // Anchored episodes (habitual) plus an irregular background.
    std::vector<double> starts;
    const auto& anchors = type == DayType::kWeekday ? persona.weekday_anchors
                                                    : persona.weekend_anchors;
    for (const EpisodeAnchor& anchor : anchors) {
      if (!day_rng.chance(std::min(1.0, anchor.strength * day_level))) continue;
      const double jitter_h =
          day_rng.normal(0.0, anchor.jitter_minutes / 60.0);
      double hour = anchor.hour + jitter_h;
      while (hour < 0.0) hour += 24.0;
      while (hour >= 24.0) hour -= 24.0;
      starts.push_back(hour * kSecondsPerHour);
    }
    const std::int64_t background =
        day_rng.poisson(params_.episode_background_rate_per_day * day_level);
    for (std::int64_t e = 0; e < background; ++e)
      starts.push_back(activity_hour(type) * kSecondsPerHour);

    for (const double ep_start : starts) {
      const double ep_len =
          day_rng.uniform(params_.episode_min_s, params_.episode_max_s);
      const std::int64_t failures = day_rng.uniform_int(
          params_.episode_failures_min, params_.episode_failures_max);
      for (std::int64_t f = 0; f < failures; ++f) {
        const double start = ep_start + day_rng.uniform(0.0, ep_len);
        const double duration =
            day_rng.uniform(params_.spike_long_min_s, params_.spike_long_max_s);
        const double intensity = day_rng.uniform(params_.spike_intensity_lo,
                                                 params_.spike_intensity_hi);
        add_interval(load, start, start + duration, intensity, period);
      }
      if (day_rng.chance(params_.episode_reboot_prob)) {
        const double start = ep_start + day_rng.uniform(0.0, ep_len);
        mark_down(start, day_rng.uniform(params_.reboot_down_min_s,
                                         params_.reboot_down_max_s));
      }
      if (day_rng.chance(params_.episode_surge_prob)) {
        const double start = ep_start + day_rng.uniform(0.0, ep_len);
        const double duration =
            day_rng.uniform(params_.mem_surge_min_s, params_.mem_surge_max_s);
        add_interval(surge_mem, start, start + duration,
                     params_.mem_surge_extra_mb, period);
      }
    }
  }

  // --- memory surges ----------------------------------------------------
  {
    // Expected surges per day, split over hours ∝ activity.
    for (int hour = 0; hour < kHoursPerDay; ++hour) {
      const double act =
          params_.profile.activity(type, hour + 0.5) * day_level;
      const std::int64_t surges = day_rng.poisson(
          params_.mem_surge_rate_per_day * act / 10.0);  // Σact ≈ 10 for the lab
      for (std::int64_t s = 0; s < surges; ++s) {
        const double start = (hour + day_rng.uniform()) * kSecondsPerHour;
        const double duration =
            day_rng.uniform(params_.mem_surge_min_s, params_.mem_surge_max_s);
        add_interval(surge_mem, start, start + duration,
                     params_.mem_surge_extra_mb, period);
      }
    }
  }

  // --- isolated revocations -----------------------------------------------
  {
    const std::int64_t reboots =
        day_rng.poisson(params_.reboot_rate_per_day * day_level);
    for (std::int64_t r = 0; r < reboots; ++r) {
      const double start = activity_hour(type) * kSecondsPerHour;
      mark_down(start, day_rng.uniform(params_.reboot_down_min_s,
                                       params_.reboot_down_max_s));
    }
  }

  // --- assemble with AR(1) noise ----------------------------------------
  std::vector<ResourceSample> samples(ticks);
  double noise = 0.0;
  for (std::size_t i = 0; i < ticks; ++i) {
    noise = params_.ar_noise_coeff * noise +
            day_rng.normal(0.0, params_.ar_noise_sigma);
    const double total_load = std::clamp(load[i] + noise, 0.0, 1.0);
    const double used_mem =
        params_.mem_base_used_mb + session_mem[i] + surge_mem[i];
    const double free_mem =
        std::max(4.0, params_.mem_total_mb - used_mem);

    samples[i].host_load_pct = pack_load_pct(total_load);
    samples[i].free_mem_mb = pack_mem_mb(free_mem);
    samples[i].set_up(!down[i]);
  }
  return samples;
}

MachineTrace TraceGenerator::generate(const std::string& machine_id, int days,
                                      int epoch_day_of_week) {
  FGCS_REQUIRE(days > 0);
  const Calendar calendar(epoch_day_of_week);
  MachineTrace trace(machine_id, calendar, params_.sampling_period,
                     static_cast<int>(params_.mem_total_mb));

  // Machine-specific stream so fleets are independent but reproducible.
  Rng machine_rng = rng_;
  for (const char ch : machine_id)
    machine_rng = machine_rng.fork(static_cast<std::uint64_t>(ch) + 0x100);

  const MachinePersona persona = MachinePersona::sample(params_, machine_rng);
  for (int day = 0; day < days; ++day) {
    Rng day_rng = machine_rng.fork(static_cast<std::uint64_t>(day) + 1);
    trace.append_day(
        generate_day(calendar.day_type(day), day, persona, day_rng));
  }
  return trace;
}

std::vector<MachineTrace> generate_fleet(const WorkloadParams& params,
                                         std::uint64_t seed, int count,
                                         int days, const std::string& prefix,
                                         int epoch_day_of_week) {
  FGCS_REQUIRE(count > 0);
  // Machines are generated in parallel; each has an independent seed stream,
  // so the result is identical to the serial order regardless of scheduling.
  std::vector<std::optional<MachineTrace>> slots(static_cast<std::size_t>(count));
  parallel_for(slots.size(), [&](std::size_t m) {
    TraceGenerator generator(params, seed + static_cast<std::uint64_t>(m) * 977);
    std::string id =
        prefix + (m < 10 ? "0" : "") + std::to_string(m);
    slots[m].emplace(generator.generate(id, days, epoch_day_of_week));
  });
  std::vector<MachineTrace> fleet;
  fleet.reserve(slots.size());
  for (auto& slot : slots) fleet.push_back(std::move(*slot));
  return fleet;
}

}  // namespace fgcs
