// Workload characterization.
//
// The paper's method rests on one empirical claim (§4.2, citing [19]): host
// load patterns within a clock-time window are comparable across recent
// same-type days. These statistics make the claim measurable — on the
// synthetic traces (validating the substitution) and on any real log a user
// brings:
//
//  * hourly load profile        — mean load per hour-of-day per day type;
//  * day-to-day pattern
//    correlation               — Pearson correlation of consecutive
//                                 same-type days' hourly profiles (the
//                                 repeatability the estimator exploits);
//  * availability-by-hour      — fraction of samples in an available state.
#pragma once

#include <array>
#include <cstdint>

#include "core/classifier.hpp"
#include "trace/machine_trace.hpp"
#include "util/time.hpp"

namespace fgcs {

struct HourlyProfile {
  /// Mean host load per hour of day (up samples only).
  std::array<double, kHoursPerDay> mean_load{};
  /// Fraction of samples classified available per hour of day.
  std::array<double, kHoursPerDay> availability{};
  std::size_t days = 0;
};

/// Aggregates over all days of `type`.
HourlyProfile hourly_profile(const MachineTrace& trace, DayType type,
                             const StateClassifier& classifier);

/// Pearson correlation between two same-length series; 0 if degenerate.
double pearson(std::span<const double> a, std::span<const double> b);

struct PatternRepeatability {
  /// Mean Pearson correlation between the hourly load profiles of
  /// consecutive same-type days.
  double consecutive_day_correlation = 0.0;
  /// Mean correlation between days `lag` same-type days apart — decay over
  /// the lag shows how quickly patterns go stale (the Fig. 6 mechanism).
  double week_apart_correlation = 0.0;
  std::size_t day_pairs = 0;
};

PatternRepeatability measure_repeatability(const MachineTrace& trace,
                                           DayType type);

}  // namespace fgcs
