#include "workload/preemption.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace fgcs {

PreemptionParams PreemptionParams::from_class(const TransientVmClass& vm_class) {
  PreemptionParams params;
  params.hazard_shape = vm_class.hazard_shape;
  params.hazard_scale_hours = vm_class.hazard_scale_hours;
  params.max_lifetime_hours = vm_class.max_lifetime_hours;
  return params;
}

PreemptionTraceGenerator::PreemptionTraceGenerator(PreemptionParams params,
                                                   std::uint64_t seed)
    : params_(params), seed_(seed) {
  FGCS_REQUIRE(params.sampling_period > 0 &&
               kSecondsPerDay % params.sampling_period == 0);
  FGCS_REQUIRE(params.hazard_shape > 0 && params.hazard_scale_hours > 0);
  FGCS_REQUIRE(params.max_lifetime_hours > 0);
  FGCS_REQUIRE(params.restart_min_s > 0 &&
               params.restart_max_s >= params.restart_min_s);
  FGCS_REQUIRE(params.burst_down_min_s > 0 &&
               params.burst_down_max_s >= params.burst_down_min_s);
  FGCS_REQUIRE(params.burst_groups >= 1);
  FGCS_REQUIRE(params.burst_rate_per_day >= 0);
  FGCS_REQUIRE(params.mem_total_mb > params.mem_base_used_mb);
}

std::vector<BurstEvent> preemption_burst_schedule(const PreemptionParams& params,
                                                  std::uint64_t seed, int days) {
  FGCS_REQUIRE(days > 0);
  // Drawn from the fleet seed alone — never from per-machine streams — so
  // every machine observes the identical spike times. Fork id 0xb0 cannot
  // collide with the per-machine id-character forks (those use ch + 0x100).
  Rng root(seed);
  Rng burst_rng = root.fork(0xb0);
  const std::int64_t count =
      burst_rng.poisson(params.burst_rate_per_day * static_cast<double>(days));
  std::vector<BurstEvent> events;
  events.reserve(static_cast<std::size_t>(count));
  const double horizon =
      static_cast<double>(days) * static_cast<double>(kSecondsPerDay);
  for (std::int64_t i = 0; i < count; ++i) {
    BurstEvent event;
    event.time_s = burst_rng.uniform(0.0, horizon);
    event.group = static_cast<int>(
        burst_rng.uniform_int(0, params.burst_groups - 1));
    events.push_back(event);
  }
  std::sort(events.begin(), events.end(), [](const BurstEvent& a,
                                             const BurstEvent& b) {
    return a.time_s != b.time_s ? a.time_s < b.time_s : a.group < b.group;
  });
  return events;
}

namespace {

/// Average-over-period interval accumulation, same monitor semantics as the
/// lab generator: a burst shorter than a sampling period contributes its
/// overlap fraction.
void add_interval(std::vector<double>& series, double start_s, double end_s,
                  double value, SimTime period) {
  const auto n = static_cast<std::ptrdiff_t>(series.size());
  const double p = static_cast<double>(period);
  auto a = static_cast<std::ptrdiff_t>(std::floor(start_s / p));
  auto b = static_cast<std::ptrdiff_t>(std::ceil(end_s / p));
  a = std::clamp<std::ptrdiff_t>(a, 0, n);
  b = std::clamp<std::ptrdiff_t>(b, 0, n);
  for (std::ptrdiff_t i = a; i < b; ++i) {
    const double tick_start = static_cast<double>(i) * p;
    const double overlap =
        std::min(end_s, tick_start + p) - std::max(start_s, tick_start);
    if (overlap > 0) series[i] += value * overlap / p;
  }
}

}  // namespace

MachineTrace PreemptionTraceGenerator::generate(const std::string& machine_id,
                                                int group, int days,
                                                int epoch_day_of_week) const {
  FGCS_REQUIRE(days > 0);
  FGCS_REQUIRE(group >= 0 && group < params_.burst_groups);

  const SimTime period = params_.sampling_period;
  const std::size_t ticks_per_day =
      static_cast<std::size_t>(kSecondsPerDay / period);
  const std::size_t total_ticks = ticks_per_day * static_cast<std::size_t>(days);
  const double horizon =
      static_cast<double>(days) * static_cast<double>(kSecondsPerDay);

  const std::vector<BurstEvent> bursts =
      preemption_burst_schedule(params_, seed_, days);

  // Machine-specific streams, same fork scheme as TraceGenerator: the spell
  // stream is consumed across the whole horizon, the load stream re-forks
  // per day, so neither perturbs the other.
  Rng machine_rng(seed_);
  for (const char ch : machine_id)
    machine_rng = machine_rng.fork(static_cast<std::uint64_t>(ch) + 0x100);
  Rng spell_rng = machine_rng.fork(1);
  Rng load_root = machine_rng.fork(2);

  // --- revocation timeline (continuous, then quantized to ticks) ----------
  std::vector<bool> down(total_ticks, false);
  auto mark_down = [&](double start_s, double end_s) {
    // Any positive overlap marks the tick down: the monitor reports the
    // machine unreachable for the whole period it vanished in, which is
    // what keeps the max-lifetime cutoff visible even at coarse sampling.
    const double p = static_cast<double>(period);
    auto a = static_cast<std::ptrdiff_t>(std::floor(start_s / p));
    auto b = static_cast<std::ptrdiff_t>(std::ceil(end_s / p));
    a = std::clamp<std::ptrdiff_t>(a, 0, static_cast<std::ptrdiff_t>(total_ticks));
    b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(total_ticks));
    for (std::ptrdiff_t i = a; i < b; ++i) down[static_cast<std::size_t>(i)] = true;
  };

  const double scale_s = params_.hazard_scale_hours * kSecondsPerHour;
  const double max_life_s = params_.max_lifetime_hours * kSecondsPerHour;
  double t = 0.0;
  std::size_t cursor = 0;  // bursts are time-sorted; spells only move forward
  while (t < horizon) {
    // Weibull(k, λ) lifetime by inverse CDF, truncated at the hard cutoff.
    const double u = spell_rng.uniform();
    const double weibull =
        scale_s * std::pow(-std::log1p(-u), 1.0 / params_.hazard_shape);
    double revoke_at = t + std::min(weibull, max_life_s);
    // A price spike hitting this machine's group mid-spell revokes earlier.
    while (cursor < bursts.size() && bursts[cursor].time_s <= t) ++cursor;
    bool from_burst = false;
    for (std::size_t b = cursor;
         b < bursts.size() && bursts[b].time_s < revoke_at; ++b) {
      if (bursts[b].group == group) {
        revoke_at = bursts[b].time_s;
        from_burst = true;
        break;
      }
    }
    if (revoke_at >= horizon) break;  // final spell censored by trace end
    const double outage =
        from_burst
            ? spell_rng.uniform(params_.burst_down_min_s, params_.burst_down_max_s)
            : spell_rng.uniform(params_.restart_min_s, params_.restart_max_s);
    mark_down(revoke_at, revoke_at + outage);
    t = revoke_at + outage;
  }

  // --- colocated-tenant load + assembly, day by day -----------------------
  const Calendar calendar(epoch_day_of_week);
  MachineTrace trace(machine_id, calendar, period,
                     static_cast<int>(params_.mem_total_mb));
  for (int day = 0; day < days; ++day) {
    Rng day_rng = load_root.fork(static_cast<std::uint64_t>(day) + 1);
    std::vector<double> load(ticks_per_day, params_.base_load);
    std::vector<double> busy_mem(ticks_per_day, 0.0);
    for (int hour = 0; hour < kHoursPerDay; ++hour) {
      // Flat arrival rate: cloud hosts have no diurnal lab profile.
      const std::int64_t episodes = day_rng.poisson(params_.busy_rate_per_hour);
      for (std::int64_t e = 0; e < episodes; ++e) {
        const double start = (hour + day_rng.uniform()) * kSecondsPerHour;
        const double duration =
            day_rng.exponential(params_.busy_mean_minutes * 60.0);
        const double intensity = day_rng.uniform(params_.busy_intensity_lo,
                                                 params_.busy_intensity_hi);
        add_interval(load, start, start + duration, intensity, period);
        add_interval(busy_mem, start, start + duration,
                     params_.mem_busy_extra_mb, period);
      }
    }
    std::vector<ResourceSample> samples(ticks_per_day);
    double noise = 0.0;
    const std::size_t day_base = static_cast<std::size_t>(day) * ticks_per_day;
    for (std::size_t i = 0; i < ticks_per_day; ++i) {
      noise = params_.ar_noise_coeff * noise +
              day_rng.normal(0.0, params_.ar_noise_sigma);
      const double total_load = std::clamp(load[i] + noise, 0.0, 1.0);
      const double free_mem = std::max(
          4.0, params_.mem_total_mb - params_.mem_base_used_mb - busy_mem[i]);
      samples[i].host_load_pct = pack_load_pct(total_load);
      samples[i].free_mem_mb = pack_mem_mb(free_mem);
      samples[i].set_up(!down[day_base + i]);
    }
    trace.append_day(std::move(samples));
  }
  return trace;
}

std::vector<MachineTrace> generate_preemption_fleet(
    const PreemptionParams& params, std::uint64_t seed, int count, int days,
    const std::string& prefix, int epoch_day_of_week) {
  FGCS_REQUIRE(count > 0);
  // Machines are generated in parallel; each id forks an independent stream
  // off the SHARED fleet seed (unlike generate_fleet's per-machine seeds),
  // because every machine must derive the identical burst schedule — a
  // price spike has to hit all of a group's machines at the same instant.
  const PreemptionTraceGenerator generator(params, seed);
  std::vector<std::optional<MachineTrace>> slots(
      static_cast<std::size_t>(count));
  parallel_for(slots.size(), [&](std::size_t m) {
    const std::string id = prefix + (m < 10 ? "0" : "") + std::to_string(m);
    const int group = static_cast<int>(m) % params.burst_groups;
    slots[m].emplace(generator.generate(id, group, days, epoch_day_of_week));
  });
  std::vector<MachineTrace> fleet;
  fleet.reserve(slots.size());
  for (auto& slot : slots) fleet.push_back(std::move(*slot));
  return fleet;
}

}  // namespace fgcs
