#include "workload/characterize.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace fgcs {

namespace {

/// Hourly mean-load vector for one day (all samples; downtime counts as 0
/// load, which is what a pattern comparison should see).
std::array<double, kHoursPerDay> day_hourly_load(const MachineTrace& trace,
                                                 std::int64_t day) {
  std::array<double, kHoursPerDay> out{};
  const std::size_t per_hour = trace.samples_per_day() / kHoursPerDay;
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    double acc = 0.0;
    for (std::size_t i = 0; i < per_hour; ++i)
      acc += trace.at(day, hour * per_hour + i).load();
    out[hour] = acc / static_cast<double>(per_hour);
  }
  return out;
}

}  // namespace

HourlyProfile hourly_profile(const MachineTrace& trace, DayType type,
                             const StateClassifier& classifier) {
  HourlyProfile profile;
  const std::vector<std::int64_t> days =
      trace.days_of_type(type, 0, trace.day_count());
  profile.days = days.size();
  if (days.empty()) return profile;

  std::array<double, kHoursPerDay> load_acc{};
  std::array<std::size_t, kHoursPerDay> load_n{};
  std::array<std::size_t, kHoursPerDay> avail_acc{};
  std::array<std::size_t, kHoursPerDay> avail_n{};

  const std::size_t per_hour = trace.samples_per_day() / kHoursPerDay;
  for (const std::int64_t day : days) {
    const TimeWindow whole{.start_of_day = 0, .length = kSecondsPerDay};
    const std::vector<State> states = classifier.classify_window(trace, day, whole);
    for (int hour = 0; hour < kHoursPerDay; ++hour) {
      for (std::size_t i = 0; i < per_hour; ++i) {
        const std::size_t index = hour * per_hour + i;
        const ResourceSample& s = trace.at(day, index);
        if (s.up()) {
          load_acc[hour] += s.load();
          ++load_n[hour];
        }
        ++avail_n[hour];
        if (is_available(states[index])) ++avail_acc[hour];
      }
    }
  }
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    profile.mean_load[hour] =
        load_n[hour] == 0 ? 0.0
                          : load_acc[hour] / static_cast<double>(load_n[hour]);
    profile.availability[hour] =
        avail_n[hour] == 0
            ? 1.0
            : static_cast<double>(avail_acc[hour]) /
                  static_cast<double>(avail_n[hour]);
  }
  return profile;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  FGCS_REQUIRE(a.size() == b.size());
  FGCS_REQUIRE(a.size() >= 2);
  const double ma = mean(a);
  const double mb = mean(b);
  double saa = 0.0, sbb = 0.0, sab = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
    sab += (a[i] - ma) * (b[i] - mb);
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

PatternRepeatability measure_repeatability(const MachineTrace& trace,
                                           DayType type) {
  PatternRepeatability result;
  const std::vector<std::int64_t> days =
      trace.days_of_type(type, 0, trace.day_count());
  if (days.size() < 2) return result;

  std::vector<std::array<double, kHoursPerDay>> profiles;
  profiles.reserve(days.size());
  for (const std::int64_t day : days)
    profiles.push_back(day_hourly_load(trace, day));

  RunningStats consecutive, week_apart;
  for (std::size_t i = 0; i + 1 < profiles.size(); ++i) {
    consecutive.add(pearson(profiles[i], profiles[i + 1]));
    ++result.day_pairs;
  }
  // "A week apart" in same-type-day index space: 5 weekdays or 2 weekend days.
  const std::size_t week = type == DayType::kWeekday ? 5 : 2;
  for (std::size_t i = 0; i + week < profiles.size(); ++i)
    week_apart.add(pearson(profiles[i], profiles[i + week]));

  result.consecutive_day_correlation = consecutive.mean();
  result.week_apart_correlation = week_apart.empty() ? 0.0 : week_apart.mean();
  return result;
}

}  // namespace fgcs
