#include "workload/replay.hpp"

namespace fgcs {

std::unique_ptr<SimulatedMachine> make_replay_machine(
    const MachineTrace& trace, const Thresholds& thresholds) {
  return std::make_unique<SimulatedMachine>(
      trace.machine_id(), trace.total_mem_mb(), thresholds,
      trace.sampling_period(), std::make_unique<TraceReplaySignal>(trace));
}

}  // namespace fgcs
