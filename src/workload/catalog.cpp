#include "workload/catalog.hpp"

#include "workload/preemption.hpp"

namespace fgcs {

const std::vector<GuestApplication>& spec_guest_catalog() {
  static const std::vector<GuestApplication> catalog = {
      {"gzip", 29},   {"crafty", 31},  {"eon", 38},     {"bzip2", 46},
      {"vortex", 72}, {"twolf", 74},   {"parser", 79},  {"vpr", 95},
      {"gap", 103},   {"perlbmk", 110}, {"mesa", 124},  {"gcc", 155},
      {"ammp", 172},  {"mcf", 190},    {"swim", 193},
  };
  return catalog;
}

const std::vector<InteractiveWorkload>& musbus_host_catalog() {
  static const std::vector<InteractiveWorkload> catalog = {
      {"edit-small", 0.08, 53, 25.0},
      {"utils-small", 0.14, 61, 30.0},
      {"edit-medium", 0.21, 78, 35.0},
      {"compile-small", 0.29, 96, 45.0},
      {"utils-medium", 0.36, 118, 40.0},
      {"edit-large", 0.44, 141, 35.0},
      {"compile-medium", 0.52, 167, 50.0},
      {"compile-large", 0.61, 192, 55.0},
      {"compile-xlarge", 0.67, 213, 60.0},
  };
  return catalog;
}

const std::vector<TransientVmClass>& transient_vm_catalog() {
  // Hazard envelopes follow the transient-VM modeling literature
  // (Kadupitiya et al.): cheap classes preempt early and often (small
  // Weibull scale), expensive classes approach the provider's max-lifetime
  // cutoff before the hazard bites. All shapes are k > 1 — the hazard grows
  // with uptime, unlike the roughly-flat lab workloads.
  static const std::vector<TransientVmClass> catalog = {
      {"spot-burst", 1.6, 3.0, 6.0, 0.25},
      {"spot-standard", 2.2, 10.0, 24.0, 0.50},
      {"preemptible-24h", 3.0, 18.0, 24.0, 0.75},
      {"spot-durable", 2.5, 36.0, 48.0, 1.25},
  };
  return catalog;
}

}  // namespace fgcs
