#include "workload/profile.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fgcs {

double DiurnalProfile::activity(DayType type, double hour) const {
  FGCS_REQUIRE(hour >= 0.0 && hour < 24.0 + 1e-9);
  const auto& levels = type == DayType::kWeekday ? weekday : weekend;
  const double shifted = hour - 0.5;  // samples are hour midpoints
  const double base = std::floor(shifted);
  const double frac = shifted - base;
  const int h0 = (static_cast<int>(base) + kHoursPerDay) % kHoursPerDay;
  const int h1 = (h0 + 1) % kHoursPerDay;
  return levels[h0] * (1.0 - frac) + levels[h1] * frac;
}

DiurnalProfile DiurnalProfile::student_lab() {
  DiurnalProfile p;
  // Hour-midpoint activity levels for a university lab: quiet overnight, a
  // morning ramp, busy afternoon, evening peak (assignments), late fall-off.
  p.weekday = {0.10, 0.06, 0.04, 0.03, 0.03, 0.04,   // 00–05
               0.06, 0.12, 0.25, 0.45, 0.60, 0.70,   // 06–11
               0.72, 0.75, 0.80, 0.85, 0.85, 0.80,   // 12–17
               0.78, 0.82, 0.85, 0.70, 0.45, 0.22};  // 18–23
  p.weekend = {0.08, 0.05, 0.04, 0.03, 0.02, 0.02,
               0.03, 0.05, 0.08, 0.15, 0.25, 0.35,
               0.42, 0.48, 0.50, 0.50, 0.48, 0.45,
               0.42, 0.40, 0.38, 0.30, 0.20, 0.12};
  return p;
}

DiurnalProfile DiurnalProfile::enterprise_desktop() {
  DiurnalProfile p;
  p.weekday = {0.02, 0.02, 0.02, 0.02, 0.02, 0.03,
               0.06, 0.20, 0.55, 0.85, 0.90, 0.88,
               0.70, 0.85, 0.90, 0.90, 0.85, 0.60,
               0.30, 0.12, 0.06, 0.04, 0.03, 0.02};
  p.weekend = {0.02, 0.02, 0.01, 0.01, 0.01, 0.01,
               0.02, 0.03, 0.05, 0.08, 0.10, 0.10,
               0.10, 0.10, 0.10, 0.08, 0.08, 0.06,
               0.05, 0.04, 0.03, 0.03, 0.02, 0.02};
  return p;
}

}  // namespace fgcs
