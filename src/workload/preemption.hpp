// Temporally-constrained transient-VM preemption traces.
//
// The lab workloads (trace_generator.hpp) model volunteer desktops: the
// revocation hazard is driven by diurnal user activity and is roughly flat
// in *uptime*. Transient cloud VMs (spot / preemptible instances, per
// Kadupitiya et al., "Modeling The Temporally Constrained Preemptions of
// Transient Cloud VMs") are structurally different in two ways this
// generator reproduces:
//
//   1. The revocation hazard *grows* with instance uptime — modeled as a
//      Weibull lifetime with shape k > 1 — and is truncated by a hard
//      provider-imposed max-lifetime cutoff (e.g. GCE preemptible VMs are
//      revoked at 24 h without exception). No up-spell ever outlives the
//      cutoff; this is the adversarial case for the paper's S5 holding-time
//      model, whose student-lab training data never shows it.
//
//   2. Revocations are *correlated*: a spot-price spike (or capacity
//      reclaim) revokes many VMs of the same instance class at once. The
//      fleet-level burst schedule is drawn from the fleet seed alone, so
//      every machine in a burst's group goes down at the identical moment
//      regardless of per-machine randomness.
//
// Output is a standard MachineTrace (trace/machine_trace.hpp): up/down
// flags carry the preemption structure, host load carries modest
// colocated-tenant activity. The entire existing pipeline — classifier,
// estimator, curves solver, service, net, chaos — consumes these traces
// unchanged; only the hazard shape the estimator must learn is new.
//
// Determinism contract: generate() is a pure function of (params, seed,
// machine_id, group, days, epoch) — byte-identical traces per seed, and
// generate_preemption_fleet() is bit-identical to the serial loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/machine_trace.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace fgcs {

/// A provider instance class in the transient-VM catalog: hazard envelope
/// plus the per-hour price the replication planner trades against TR.
struct TransientVmClass {
  std::string name;
  double hazard_shape = 2.0;        ///< Weibull k (> 1: hazard grows w/ uptime)
  double hazard_scale_hours = 10.0; ///< Weibull scale λ, in hours
  double max_lifetime_hours = 24.0; ///< hard provider cutoff
  double hourly_cost = 1.0;         ///< relative price (planner cost unit)
};

/// The transient-VM instance catalog, ordered by increasing stability (and
/// price): heavily-preempted cheap classes first, near-on-demand last.
const std::vector<TransientVmClass>& transient_vm_catalog();

struct PreemptionParams {
  // --- revocation hazard (uptime clock, per machine) ----------------------
  /// Weibull shape k. k > 1 makes the hazard increase with uptime; the
  /// paper's lab traces correspond to k ≈ 1 (memoryless-ish).
  double hazard_shape = 2.2;
  /// Weibull scale λ, hours of uptime.
  double hazard_scale_hours = 10.0;
  /// Hard cutoff: a VM that survives this long is revoked unconditionally.
  double max_lifetime_hours = 24.0;
  /// Re-acquisition delay after an ordinary (hazard/cutoff) revocation:
  /// deprovision, wait out the market, boot a replacement. Uniform draw.
  double restart_min_s = 180.0;
  double restart_max_s = 1200.0;

  // --- price-driven revocation bursts (wall clock, fleet-wide) ------------
  /// Poisson rate of fleet-wide price spikes, per day. Each spike revokes
  /// every up machine in ONE correlated group (instance class / zone).
  double burst_rate_per_day = 0.25;
  /// Number of correlated groups machines are assigned to (round-robin in
  /// generate_preemption_fleet). Must be >= 1.
  int burst_groups = 4;
  /// Outage length after a burst revocation: the market stays hot for a
  /// while, so re-acquisition is slower than an ordinary restart.
  double burst_down_min_s = 300.0;
  double burst_down_max_s = 1800.0;

  // --- colocated-tenant host activity (guest-visible load) ----------------
  /// Cloud hosts show flat background load, not a diurnal lab profile.
  double base_load = 0.05;
  double busy_rate_per_hour = 0.6;    ///< Poisson rate of busy episodes
  double busy_mean_minutes = 8.0;     ///< exponential episode length
  double busy_intensity_lo = 0.15;
  double busy_intensity_hi = 0.60;
  double ar_noise_coeff = 0.9;        ///< AR(1) measurement noise
  double ar_noise_sigma = 0.008;

  // --- memory -------------------------------------------------------------
  double mem_total_mb = 2048.0;
  double mem_base_used_mb = 400.0;
  double mem_busy_extra_mb = 180.0;   ///< extra used during busy episodes

  /// Cloud monitors typically report at coarser grain than the lab's 6 s;
  /// must divide a day.
  SimTime sampling_period = 60;

  /// Params for one catalog instance class (other fields keep defaults).
  static PreemptionParams from_class(const TransientVmClass& vm_class);
};

/// One fleet-wide price spike: every machine of `group` that is up at
/// `time_s` (seconds from trace start) is revoked at exactly that instant.
struct BurstEvent {
  double time_s = 0.0;
  int group = 0;
};

/// The burst schedule over `days`, drawn from `seed` alone (no per-machine
/// state), sorted by time. Exposed so tests can pin which ticks a burst
/// must hit.
std::vector<BurstEvent> preemption_burst_schedule(const PreemptionParams& params,
                                                  std::uint64_t seed, int days);

class PreemptionTraceGenerator {
 public:
  PreemptionTraceGenerator(PreemptionParams params, std::uint64_t seed);

  const PreemptionParams& params() const { return params_; }

  /// Generates `days` days for one machine in correlated-revocation group
  /// `group` (in [0, params.burst_groups)). Pure: byte-identical per
  /// (params, seed, machine_id, group, days, epoch).
  MachineTrace generate(const std::string& machine_id, int group, int days,
                        int epoch_day_of_week = 0) const;

 private:
  PreemptionParams params_;
  std::uint64_t seed_;
};

/// A fleet of `count` machines "vm00".."vmNN" (ids via `prefix`), group
/// assigned round-robin (machine m → m % burst_groups). All machines share
/// the fleet seed (per-machine independence comes from id-character forks),
/// so they observe the identical burst schedule; machines generate in
/// parallel with a bit-identical-to-serial result.
std::vector<MachineTrace> generate_preemption_fleet(
    const PreemptionParams& params, std::uint64_t seed, int count, int days,
    const std::string& prefix = "vm", int epoch_day_of_week = 0);

}  // namespace fgcs
