// Noise injection for the robustness experiment (paper §7.3, Fig. 8).
//
// One "instance of noise" is one artificial unavailability occurrence
// inserted into a training-day log around a given time of day (the paper
// uses 8:00, when real unavailability is rare), with a holding time drawn
// uniformly from [60, 1800] seconds.
#pragma once

#include <cstdint>

#include "trace/machine_trace.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace fgcs {

struct NoiseParams {
  /// Centre of the injection region (paper: 8:00 am).
  SimTime around = 8 * kSecondsPerHour;
  /// Injected occurrences land uniformly within ± this radius of `around`.
  SimTime spread = kSecondsPerHour / 2;
  SimTime min_hold = 60;
  SimTime max_hold = 1800;
};

/// Returns a copy of `trace` with `count` unavailability occurrences
/// (saturated-CPU runs, i.e. S3-style failures) inserted into day `day`.
/// Occurrences are separated by at least one available sample so each counts
/// as a distinct occurrence.
MachineTrace inject_unavailability(const MachineTrace& trace, std::int64_t day,
                                   int count, const NoiseParams& params,
                                   Rng& rng);

}  // namespace fgcs
