// Diurnal activity profiles.
//
// The paper's testbed is a Purdue student computer lab: activity ramps up
// mid-morning, peaks in the afternoon/evening, and falls off at night, with
// lighter weekends. The profile gives the *relative* activity level per hour;
// the workload generator scales all stochastic rates (sessions, load spikes,
// reboots, memory surges) by it, which is what makes same-clock-time windows
// on recent same-type days statistically comparable — the property the SMP
// estimator relies on (paper §4.2).
#pragma once

#include <array>

#include "util/time.hpp"

namespace fgcs {

struct DiurnalProfile {
  std::array<double, kHoursPerDay> weekday{};
  std::array<double, kHoursPerDay> weekend{};

  /// Activity at a fractional hour (piecewise-linear, wrapping at midnight).
  double activity(DayType type, double hour) const;

  /// Activity at an absolute second of day.
  double activity_at(DayType type, SimTime second_of_day) const {
    return activity(type, static_cast<double>(second_of_day) / kSecondsPerHour);
  }

  /// Student computer lab (the paper's testbed).
  static DiurnalProfile student_lab();

  /// Enterprise desktops: sharp 9-to-5 weekday pattern, near-idle weekends
  /// (the paper's §8 proposed future testbed; extension bench A4).
  static DiurnalProfile enterprise_desktop();
};

}  // namespace fgcs
