// Workload catalogs for the §3.2.2 CPU+memory contention study.
//
// The paper used SPEC CPU2000 applications as guests (CPU-bound, working sets
// 29–193 MB) and the Musbus interactive Unix benchmark to synthesize host
// workloads (simulated editing, command-line utilities, compiler invocations;
// 8–67 % CPU, 53–213 MB memory). Neither suite is redistributable, so these
// catalogs carry the published resource envelopes under the original names.
#pragma once

#include <string>
#include <vector>

namespace fgcs {

/// A CPU-bound guest application (SPEC CPU2000-like).
struct GuestApplication {
  std::string name;
  int working_set_mb = 64;
};

/// The guest catalog: working sets spanning the paper's 29–193 MB range.
const std::vector<GuestApplication>& spec_guest_catalog();

/// A Musbus-like interactive host workload.
struct InteractiveWorkload {
  std::string name;
  double cpu_duty = 0.3;   // 8–67 % in the paper
  int mem_mb = 100;        // 53–213 MB in the paper
  double burst_ms = 40.0;  // editing/compiling burst granularity
};

/// The host catalog, ordered by increasing resource usage (larger files being
/// edited/compiled, per the paper's methodology).
const std::vector<InteractiveWorkload>& musbus_host_catalog();

// The transient-VM instance-class catalog (preemption hazard envelopes plus
// the hourly prices the replication planner trades against TR) is declared
// next to its generator: transient_vm_catalog() in workload/preemption.hpp.

}  // namespace fgcs
