// Public prediction API: temporal reliability of a machine over a future
// time window, per the paper's SMP method.
//
// Typical use:
//
//   fgcs::AvailabilityPredictor predictor;          // default config
//   fgcs::PredictionRequest request{
//       .target_day = today,
//       .window = {.start_of_day = 9 * fgcs::kSecondsPerHour,
//                  .length = 2 * fgcs::kSecondsPerHour}};
//   fgcs::Prediction p = predictor.predict(trace, request);
//   // p.temporal_reliability in [0,1]
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "core/curve_cache.hpp"
#include "core/estimator.hpp"
#include "core/sparse_solver.hpp"
#include "core/states.hpp"
#include "trace/machine_trace.hpp"
#include "trace/window.hpp"

namespace fgcs {

/// Solves TR(init, n_steps) through an absorption-curve table, growing the
/// table if the horizon is beyond what it covers. This is the warm hot path
/// of the serving stack: when the curves already reach n_steps the call is an
/// O(1) table read, bit-identical to SparseTrSolver::solve on the same model.
SparseTrSolver::Result solve_from_curves(AbsorptionCurves& curves, State init,
                                         std::size_t n_steps);

struct PredictionRequest {
  /// Day index the window starts on; training data comes from earlier days.
  std::int64_t target_day = 0;
  TimeWindow window{};
  /// Observed state at submission time. Defaults to the majority initial
  /// state across the training days.
  std::optional<State> initial_state;
};

struct Prediction {
  double temporal_reliability = 1.0;
  State initial_state = State::kS1;
  /// Absorption probabilities into S3 (CPU), S4 (memory), S5 (revocation).
  std::array<double, 3> p_absorb{0.0, 0.0, 0.0};
  std::size_t training_days_used = 0;
  std::size_t steps = 0;
  /// Wall-clock cost split, for the Fig. 4 overhead experiment.
  double estimate_seconds = 0.0;
  double solve_seconds = 0.0;
};

class AvailabilityPredictor {
 public:
  explicit AvailabilityPredictor(EstimatorConfig config = {});

  const SmpEstimator& estimator() const { return estimator_; }

  /// Predicts TR for the request. The window must lie within [0, 24h] of the
  /// target day (midnight wrap handled); the target day may equal
  /// trace.day_count() (i.e. "tomorrow" relative to the recorded history).
  Prediction predict(const MachineTrace& trace,
                     const PredictionRequest& request) const;

 private:
  SmpEstimator estimator_;
};

}  // namespace fgcs
