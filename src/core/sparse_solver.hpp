// Production temporal-reliability solver exploiting the FGCS sparsity
// (paper §5.3, Eq. 3 and Fig. 3).
//
// In the five-state model only S1 and S2 have outgoing transitions, so Q and
// H(m) carry just 8 non-zero (i→k) pairs and only six interval transition
// probabilities are ever needed: P_{i,j}(m) for i ∈ {S1,S2}, j ∈ {S3,S4,S5}.
// The recursion is
//
//   P_1,j(n) = Σ_{l=1}^{n-1} [ H_1,2(l)·Q_1(2)·P_2,j(n−l) + H_1,j(l)·Q_1(j) ]
//              + H_1,j(n)·Q_1(j)
//   P_2,j(n) = symmetric with 1 ↔ 2
//
// and TR(W) = 1 − Σ_{j=3..5} P_init,j(T/d). Cost is O((T/d)²), matching the
// superlinear curve of the paper's Fig. 4.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/semi_markov.hpp"
#include "core/solver_scratch.hpp"
#include "core/states.hpp"

namespace fgcs {

class SparseTrSolver {
 public:
  /// The model must use the FGCS state layout (5 states, S3..S5 absorbing,
  /// no transitions out of failure states); throws PreconditionError if not.
  explicit SparseTrSolver(const SmpModel& model);

  struct Result {
    /// Temporal reliability: Pr(no failure state entered within the window).
    double temporal_reliability = 1.0;
    /// Absorption probabilities into S3, S4, S5 respectively.
    std::array<double, 3> p_absorb{0.0, 0.0, 0.0};
  };

  /// Solves for a window of `n_steps` discretization ticks starting in
  /// `init` (must be S1 or S2). Only the requested row's series is
  /// materialized; when the model never crosses into (or back out of) the
  /// other transient state, that row's dead recursion is skipped outright.
  /// An optional SolverScratch recycles the work buffers across calls
  /// (bit-identical results either way).
  Result solve(State init, std::size_t n_steps,
               SolverScratch* scratch = nullptr) const;

  /// The six series P_{i,j}(m), m = 0..n_steps, for validation and plotting.
  /// Index: [i][j-2] with i in {0,1}; each inner vector has n_steps+1 entries.
  using Series = std::array<std::array<std::vector<double>, 3>, 2>;
  Series solve_series(std::size_t n_steps) const;

 private:
  const SmpModel& model_;
};

}  // namespace fgcs
