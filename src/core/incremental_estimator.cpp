#include "core/incremental_estimator.hpp"

#include <utility>

#include "util/error.hpp"

namespace fgcs {

IncrementalEstimator::IncrementalEstimator(EstimatorConfig config,
                                           TimeWindow window, DayType day_type,
                                           SimTime sampling_period)
    : estimator_(config),
      window_(window),
      day_type_(day_type),
      period_(sampling_period),
      classifier_(config.thresholds, sampling_period),
      counts_(window.steps(sampling_period)) {
  validate(window_);
}

void IncrementalEstimator::count_if_eligible(const MachineTrace& trace,
                                             std::int64_t index,
                                             std::int64_t day_id) {
  if (index < 0 || index >= trace.day_count()) return;
  if (trace.day_type(index) != day_type_) return;
  if (!trace.window_in_range(index, window_)) return;
  FGCS_REQUIRE_MSG(days_.empty() || day_id > days_.back().day_id,
                   "days must be appended in ascending order");
  CountedDay day{.day_id = day_id,
                 .states = classifier_.classify_window(trace, index, window_)};
  counts_.accumulate(day.states);
  days_.push_back(std::move(day));
  // Sliding training budget: from-scratch selection keeps the most recent N
  // eligible days, so once an (N+1)-th lands the oldest falls out of every
  // future estimate and its sojourns come straight back out of the counts.
  const std::size_t budget = estimator_.config().training_days;
  while (budget > 0 && days_.size() > budget) {
    counts_.remove(days_.front().states);
    days_.pop_front();
  }
}

void IncrementalEstimator::on_day_appended(const MachineTrace& trace,
                                           std::int64_t first_day_id) {
  FGCS_REQUIRE(trace.sampling_period() == period_);
  FGCS_REQUIRE(trace.day_count() >= 1);
  const std::int64_t newest = trace.day_count() - 1;
  // A midnight-wrapping window needs the *next* day recorded, so appending
  // day d completes day d-1's window, not day d's own.
  const std::int64_t eligible = window_.wraps_midnight() ? newest - 1 : newest;
  count_if_eligible(trace, eligible, first_day_id + eligible);
}

void IncrementalEstimator::on_day_retired(std::int64_t day_id) {
  // Only the counted front can retire: the trace drops days oldest-first,
  // and anything below the front either was never eligible or already slid
  // out of the training budget — both no-ops for the maintained counts.
  if (days_.empty() || days_.front().day_id != day_id) return;
  counts_.remove(days_.front().states);
  days_.pop_front();
}

void IncrementalEstimator::rebuild(const MachineTrace& trace,
                                   std::int64_t first_day_id) {
  FGCS_REQUIRE(trace.sampling_period() == period_);
  counts_ = TransitionCounts(window_.steps(period_));
  days_.clear();
  for (std::int64_t index = 0; index < trace.day_count(); ++index)
    count_if_eligible(trace, index, first_day_id + index);
}

State IncrementalEstimator::majority_initial_state() const {
  // Same rule (and tie-break) as SmpEstimator::majority_initial_state over
  // the same selected days, read from the cached classifications.
  std::size_t s1 = 0, s2 = 0;
  for (const CountedDay& day : days_) {
    if (day.states.empty()) continue;
    if (day.states.front() == State::kS1) ++s1;
    if (day.states.front() == State::kS2) ++s2;
  }
  return s2 > s1 ? State::kS2 : State::kS1;
}

std::vector<std::int64_t> IncrementalEstimator::counted_day_ids() const {
  std::vector<std::int64_t> ids;
  ids.reserve(days_.size());
  for (const CountedDay& day : days_) ids.push_back(day.day_id);
  return ids;
}

}  // namespace fgcs
