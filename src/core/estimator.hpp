// Q/H estimation from history logs (paper §4.2).
//
// For a prediction window W on a target day, the statistics come from the
// state sequences inside the *same clock-time window* on the most recent N
// days of the same type (weekday/weekend) — the paper's key observation is
// that daily host-load patterns repeat across recent same-type days.
//
// Sojourn counting with right-censoring: a sojourn still in progress when the
// window ends contributes to the exit-opportunity denominator but to no
// transition, so Σ_k Q_i(k) ≤ 1 and the missing mass means "survived past the
// horizon" — which the absorption solvers interpret exactly as survival.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/classifier.hpp"
#include "core/semi_markov.hpp"
#include "core/states.hpp"
#include "core/thresholds.hpp"
#include "trace/machine_trace.hpp"
#include "trace/window.hpp"

namespace fgcs {

struct EstimatorConfig {
  /// Number of most recent same-type days used for statistics (paper's N).
  /// 0 means "all available history".
  std::size_t training_days = 10;
  /// Laplace pseudo-count added to every feasible transition; 0 (default)
  /// reproduces the paper's plain empirical statistics. Ablation A3.
  double laplace_alpha = 0.0;
  Thresholds thresholds{};
};

/// Sojourn statistics for the two transient states. The `from` dimension is
/// {S1, S2}; destinations cover all five states (self-destination unused).
class TransitionCounts {
 public:
  explicit TransitionCounts(std::size_t horizon);

  std::size_t horizon() const { return horizon_; }

  /// Scans one classified window and adds its sojourns.
  void accumulate(std::span<const State> states);

  /// Exact inverse of accumulate(): scans the same classified window and
  /// subtracts its sojourns. Counts are integers, so add-then-remove
  /// restores them bit-for-bit — the primitive the incremental estimator's
  /// sliding window is built on. Removing a window that was never
  /// accumulated is a precondition violation (counts would underflow).
  void remove(std::span<const State> states);

  /// Completed sojourns in `from` of exactly `hold` ticks ending in `to`.
  std::uint32_t count(State from, State to, std::size_t hold) const;

  /// Completed sojourns from → to of any length.
  std::uint32_t exits(State from, State to) const;

  /// Sojourns in `from` cut short by the window end.
  std::uint32_t censored(State from) const;

  /// All sojourns that started in `from` (completed + censored).
  std::uint32_t entries(State from) const;

 private:
  std::size_t slot(std::size_t from, std::size_t to, std::size_t hold) const {
    return (from * kStateCount + to) * horizon_ + (hold - 1);
  }

  /// Shared ±1 sojourn scan behind accumulate()/remove(): one code path, so
  /// the two directions cannot drift apart.
  void scan(std::span<const State> states, bool add);

  std::size_t horizon_;
  std::vector<std::uint32_t> counts_;          // 2·5·horizon
  std::array<std::uint32_t, 2> censored_{};    // per transient state
};

class SmpEstimator {
 public:
  explicit SmpEstimator(EstimatorConfig config = {});

  const EstimatorConfig& config() const { return config_; }

  /// The training days the paper's rule selects for (target_day, window):
  /// most recent N days of target_day's type, strictly before it, whose
  /// window data is recorded.
  std::vector<std::int64_t> training_days_for(const MachineTrace& trace,
                                              std::int64_t target_day,
                                              const TimeWindow& window) const;

  /// Out-param variant for hot paths: fills `out` (cleared first, capacity
  /// reused) with the same days the returning overload produces. Lets a
  /// per-worker buffer absorb the allocation across thousands of probes.
  void training_days_for(const MachineTrace& trace, std::int64_t target_day,
                         const TimeWindow& window,
                         std::vector<std::int64_t>& out) const;

  /// Counts sojourn statistics over explicit training days.
  TransitionCounts count_transitions(const MachineTrace& trace,
                                     std::span<const std::int64_t> days,
                                     const TimeWindow& window) const;

  /// Normalizes counts into a (possibly defective) SMP model.
  SmpModel build_model(const TransitionCounts& counts) const;

  /// One-call estimation for (target_day, window) per the paper's rule.
  SmpModel estimate(const MachineTrace& trace, std::int64_t target_day,
                    const TimeWindow& window) const;

  /// Most frequent available state at the window start across training days
  /// (S1 when there is no data or a tie). Used as the default S_init.
  State majority_initial_state(const MachineTrace& trace,
                               std::span<const std::int64_t> days,
                               const TimeWindow& window) const;

 private:
  EstimatorConfig config_;
};

}  // namespace fgcs
