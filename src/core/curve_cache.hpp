// Precomputed absorption curves: the Eq. 3 solve as a data structure.
//
// For one (Q, H) model, the six cumulative absorption series
// P_{i,j}(1..T_max) (i ∈ {S1,S2}, j ∈ {S3,S4,S5}) determine EVERY temporal
// reliability the model can produce: TR(W) for a window of n ≤ T_max steps
// is a three-entry table read plus a subtraction. An AbsorptionCurves object
// runs the O(T²) recursion once, then answers any (initial state, horizon)
// in O(1) — the structure the serving stack caches next to each memoized
// model so warm queries never re-enter the solver (DESIGN.md §5).
//
// Layout: the six series are interleaved in one flat SoA array, 8 lanes per
// tick — [P₁,₃ P₁,₄ P₁,₅ pad P₂,₃ P₂,₄ P₂,₅ pad] — so the recursion's
// convolution inner loop touches two contiguous 32-byte groups per lag and
// autovectorizes; each series keeps its own accumulator, so per-series
// summation order — and therefore every bit of the result — is identical to
// SparseTrSolver::solve on the same model and horizon.
//
// Crossover policy: a fresh build at T_max ≥ config.fft_crossover uses
// FastTrSolver's O(n log² n) renewal path (agrees with the recursion to
// ~1e-10, not bit-exact — the default crossover sits far above every window
// the paper's 24-hour grids can produce). extend_to() always CONTINUES the
// direct recursion, growing T_max geometrically and leaving the existing
// prefix bit-for-bit untouched.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/semi_markov.hpp"
#include "core/sparse_solver.hpp"
#include "core/states.hpp"

namespace fgcs {

struct CurveConfig {
  /// Fresh builds at or above this many steps go through the FFT renewal
  /// solver; below it (every realistic window) the direct recursion runs and
  /// results are bit-identical to SparseTrSolver.
  std::size_t fft_crossover = 32768;
};

class AbsorptionCurves {
 public:
  /// Validates the model once (5-state FGCS layout, probability axioms,
  /// absorbing failure states — the checks SparseTrSolver's constructor ran
  /// per solve) and computes the curves up to `t_max` steps. The model is
  /// only read during construction; no reference is retained.
  explicit AbsorptionCurves(const SmpModel& model, std::size_t t_max,
                            CurveConfig config = {});

  /// Largest horizon currently tabulated.
  std::size_t t_max() const { return t_max_; }

  /// O(1): the SparseTrSolver::solve(init, n_steps) result, bit-identical
  /// when the table was built by the direct recursion. Requires
  /// n_steps ≤ t_max() and an available `init`.
  SparseTrSolver::Result result_at(State init, std::size_t n_steps) const;

  /// Grows the table to cover at least `n_steps` (geometric doubling, so a
  /// ramp of ever-longer windows costs amortized O(1) rebuilds) by
  /// continuing the recursion in place: entries ≤ the old t_max() are
  /// preserved bit-for-bit. No-op when already covered.
  void extend_to(std::size_t n_steps);

  /// Raw curve read P_{init,j}(m) for tests (j = failure index 0..2).
  double probability(State init, std::size_t failure_index,
                     std::size_t m) const;

  /// Ticks advanced by the direct recursion so far — the work metric tests
  /// use to pin "one build serves both initial states" (a build to T costs T
  /// ticks; the two SparseTrSolver::solve calls it replaces cost 2·T).
  std::size_t recursion_ticks() const { return recursion_ticks_; }

 private:
  static constexpr std::size_t kLanes = 8;  // [P1,3 P1,4 P1,5 _ P2,3 P2,4 P2,5 _]

  void compute_rows(std::size_t from_m, std::size_t to_m);

  std::size_t t_max_ = 0;
  std::size_t recursion_ticks_ = 0;
  /// Interleaved weighted direct-absorption pmfs, same 8-lane layout as p_,
  /// stored over their full support only (wd_limit_ rows).
  std::vector<double> wd_;
  std::size_t wd_limit_ = 0;
  /// Cross-transition kernels a12/a21 (lag-indexed, semi_markov.hpp
  /// convention), stored over their full support so extension never needs
  /// the model again.
  std::vector<double> a12_;
  std::vector<double> a21_;
  std::size_t kernel_limit_ = 0;
  /// Running per-lane cumulative direct absorption at t_max_, carried so
  /// extend_to() resumes the recursion mid-stream.
  std::array<double, kLanes> cum_{};
  /// The curves: lane L of row m is p_[m * kLanes + L].
  std::vector<double> p_;
};

}  // namespace fgcs
