// The five-state resource availability model (paper Fig. 1).
//
//   S1  full availability — guest runs at default priority
//   S2  availability at lowest priority — host load between Th1 and Th2
//   S3  CPU unavailability (UEC) — host load steadily above Th2
//   S4  memory thrashing (UEC) — not enough free memory for the guest
//   S5  machine unavailability (URR) — revocation or system failure
//
// S3, S4 and S5 are unrecoverable for a guest job: once entered, the guest
// has been killed or migrated off, so the prediction problem is the
// first-passage probability into {S3, S4, S5}.
#pragma once

#include <array>
#include <cstdint>

namespace fgcs {

enum class State : std::uint8_t {
  kS1 = 0,  // full availability
  kS2 = 1,  // availability at lowest guest priority
  kS3 = 2,  // CPU unavailability (UEC)
  kS4 = 3,  // memory thrashing (UEC)
  kS5 = 4,  // machine unavailability (URR)
};

inline constexpr std::size_t kStateCount = 5;

/// The absorbing failure states, in solver order.
inline constexpr std::array<State, 3> kFailureStates = {State::kS3, State::kS4,
                                                        State::kS5};

constexpr std::size_t index_of(State s) { return static_cast<std::size_t>(s); }

constexpr State state_from_index(std::size_t i) { return static_cast<State>(i); }

constexpr bool is_failure(State s) { return index_of(s) >= index_of(State::kS3); }

constexpr bool is_available(State s) { return !is_failure(s); }

constexpr const char* to_string(State s) {
  switch (s) {
    case State::kS1: return "S1";
    case State::kS2: return "S2";
    case State::kS3: return "S3";
    case State::kS4: return "S4";
    case State::kS5: return "S5";
  }
  return "?";
}

}  // namespace fgcs
