#include "core/estimator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fgcs {

TransitionCounts::TransitionCounts(std::size_t horizon)
    : horizon_(horizon), counts_(2 * kStateCount * horizon, 0) {
  FGCS_REQUIRE(horizon >= 1);
}

void TransitionCounts::accumulate(std::span<const State> states) {
  scan(states, /*add=*/true);
}

void TransitionCounts::remove(std::span<const State> states) {
  scan(states, /*add=*/false);
}

void TransitionCounts::scan(std::span<const State> states, bool add) {
  FGCS_REQUIRE_MSG(states.size() <= horizon_ + 1,
                   "state sequence longer than the counting horizon");
  std::size_t i = 0;
  const std::size_t n = states.size();
  const auto apply = [add](std::uint32_t& count) {
    if (add) {
      ++count;
    } else {
      FGCS_REQUIRE_MSG(count > 0,
                       "removing a window that was never accumulated");
      --count;
    }
  };
  while (i < n) {
    const State s = states[i];
    // The model's failure states are absorbing: for a guest, the window ends
    // at its first failure. Anything the host does afterwards (recovering,
    // failing again) is invisible to first-passage estimation — counting it
    // would inflate the survivor mass and bias TR upward.
    if (is_failure(s)) break;
    std::size_t j = i;
    while (j < n && states[j] == s) ++j;
    const std::size_t from = index_of(s);
    const std::size_t hold = j - i;
    if (j < n) {
      apply(counts_[slot(from, index_of(states[j]), std::min(hold, horizon_))]);
    } else {
      apply(censored_[from]);
    }
    i = j;
  }
}

std::uint32_t TransitionCounts::count(State from, State to, std::size_t hold) const {
  FGCS_REQUIRE(is_available(from));
  FGCS_REQUIRE(hold >= 1 && hold <= horizon_);
  return counts_[slot(index_of(from), index_of(to), hold)];
}

std::uint32_t TransitionCounts::exits(State from, State to) const {
  FGCS_REQUIRE(is_available(from));
  std::uint32_t total = 0;
  for (std::size_t hold = 1; hold <= horizon_; ++hold)
    total += counts_[slot(index_of(from), index_of(to), hold)];
  return total;
}

std::uint32_t TransitionCounts::censored(State from) const {
  FGCS_REQUIRE(is_available(from));
  return censored_[index_of(from)];
}

std::uint32_t TransitionCounts::entries(State from) const {
  FGCS_REQUIRE(is_available(from));
  std::uint32_t total = censored(from);
  for (std::size_t to = 0; to < kStateCount; ++to)
    total += exits(from, state_from_index(to));
  return total;
}

// ---------------------------------------------------------------------------

SmpEstimator::SmpEstimator(EstimatorConfig config) : config_(config) {
  validate(config_.thresholds);
  FGCS_REQUIRE(config_.laplace_alpha >= 0.0);
}

std::vector<std::int64_t> SmpEstimator::training_days_for(
    const MachineTrace& trace, std::int64_t target_day,
    const TimeWindow& window) const {
  std::vector<std::int64_t> days;
  training_days_for(trace, target_day, window, days);
  return days;
}

void SmpEstimator::training_days_for(const MachineTrace& trace,
                                     std::int64_t target_day,
                                     const TimeWindow& window,
                                     std::vector<std::int64_t>& out) const {
  validate(window);
  out.clear();
  const DayType type = trace.day_type(target_day);
  const std::size_t n =
      config_.training_days == 0
          ? static_cast<std::size_t>(std::max<std::int64_t>(trace.day_count(), 0))
          : config_.training_days;
  // Walk backwards so we can skip days whose window data is incomplete
  // (e.g. a midnight-wrapping window on the last recorded day).
  for (std::int64_t d = target_day - 1; d >= 0 && out.size() < n; --d) {
    if (trace.day_type(d) != type) continue;
    if (!trace.window_in_range(d, window)) continue;
    out.push_back(d);
  }
  std::reverse(out.begin(), out.end());
}

TransitionCounts SmpEstimator::count_transitions(
    const MachineTrace& trace, std::span<const std::int64_t> days,
    const TimeWindow& window) const {
  validate(window);
  const StateClassifier classifier(config_.thresholds, trace.sampling_period());
  TransitionCounts counts(window.steps(trace.sampling_period()));
  for (const std::int64_t day : days) {
    const std::vector<State> states = classifier.classify_window(trace, day, window);
    counts.accumulate(states);
  }
  return counts;
}

SmpModel SmpEstimator::build_model(const TransitionCounts& counts) const {
  SmpModel model(kStateCount, counts.horizon());
  const double alpha = config_.laplace_alpha;

  for (const State from : {State::kS1, State::kS2}) {
    const std::size_t i = index_of(from);
    const double entries = static_cast<double>(counts.entries(from));
    // Feasible destinations: every other state (4 of them).
    const double denom = entries + 4.0 * alpha;
    if (denom <= 0.0) continue;  // no data: leave the row defective

    for (std::size_t k = 0; k < kStateCount; ++k) {
      if (k == i) continue;
      const State to = state_from_index(k);
      const double exits = static_cast<double>(counts.exits(from, to));
      const double q = (exits + alpha) / denom;
      if (q <= 0.0) continue;
      model.set_q(i, k, q);

      std::vector<double> pmf(counts.horizon(), 0.0);
      if (exits > 0.0) {
        for (std::size_t hold = 1; hold <= counts.horizon(); ++hold)
          pmf[hold - 1] =
              static_cast<double>(counts.count(from, to, hold)) / exits;
      } else {
        // Pure pseudo-count transition: uniform holding time.
        const double u = 1.0 / static_cast<double>(counts.horizon());
        std::fill(pmf.begin(), pmf.end(), u);
      }
      model.set_h_pmf(i, k, std::move(pmf));
    }
  }
  model.validate();
  return model;
}

SmpModel SmpEstimator::estimate(const MachineTrace& trace,
                                std::int64_t target_day,
                                const TimeWindow& window) const {
  const std::vector<std::int64_t> days =
      training_days_for(trace, target_day, window);
  return build_model(count_transitions(trace, days, window));
}

State SmpEstimator::majority_initial_state(const MachineTrace& trace,
                                           std::span<const std::int64_t> days,
                                           const TimeWindow& window) const {
  const StateClassifier classifier(config_.thresholds, trace.sampling_period());
  std::size_t s1 = 0, s2 = 0;
  for (const std::int64_t day : days) {
    const std::vector<State> states = classifier.classify_window(trace, day, window);
    if (states.empty()) continue;
    if (states.front() == State::kS1) ++s1;
    if (states.front() == State::kS2) ++s2;
  }
  return s2 > s1 ? State::kS2 : State::kS1;
}

}  // namespace fgcs
