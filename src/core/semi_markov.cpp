#include "core/semi_markov.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace fgcs {

namespace {
constexpr double kProbEps = 1e-9;

std::atomic<std::uint64_t> g_validate_calls{0};
}

SmpModel::SmpModel(std::size_t n_states, std::size_t horizon)
    : n_states_(n_states),
      horizon_(horizon),
      q_(n_states * n_states, 0.0),
      h_(n_states * n_states) {
  FGCS_REQUIRE(n_states >= 2);
  FGCS_REQUIRE(horizon >= 1);
}

double SmpModel::q(std::size_t from, std::size_t to) const {
  FGCS_REQUIRE(from < n_states_ && to < n_states_);
  return q_[pair_index(from, to)];
}

void SmpModel::set_q(std::size_t from, std::size_t to, double probability) {
  FGCS_REQUIRE(from < n_states_ && to < n_states_);
  FGCS_REQUIRE_MSG(probability >= 0.0 && probability <= 1.0 + kProbEps,
                   "transition probability out of range");
  FGCS_REQUIRE_MSG(from != to, "SMP embedded chain has no self-transitions");
  q_[pair_index(from, to)] = probability;
}

double SmpModel::h(std::size_t from, std::size_t to, std::size_t l) const {
  FGCS_REQUIRE(from < n_states_ && to < n_states_);
  FGCS_REQUIRE_MSG(l >= 1 && l <= horizon_, "holding time out of range");
  const auto& pmf = h_[pair_index(from, to)];
  return l - 1 < pmf.size() ? pmf[l - 1] : 0.0;
}

void SmpModel::set_h_pmf(std::size_t from, std::size_t to,
                         std::vector<double> pmf) {
  FGCS_REQUIRE(from < n_states_ && to < n_states_);
  FGCS_REQUIRE_MSG(pmf.size() <= horizon_, "pmf longer than the horizon");
  double total = 0.0;
  for (double p : pmf) {
    FGCS_REQUIRE_MSG(p >= 0.0, "pmf entries must be non-negative");
    total += p;
  }
  FGCS_REQUIRE_MSG(total <= 1.0 + kProbEps, "pmf mass exceeds 1");
  h_[pair_index(from, to)] = std::move(pmf);
}

std::span<const double> SmpModel::h_pmf(std::size_t from, std::size_t to) const {
  FGCS_REQUIRE(from < n_states_ && to < n_states_);
  return h_[pair_index(from, to)];
}

double SmpModel::exit_mass(std::size_t from) const {
  FGCS_REQUIRE(from < n_states_);
  double total = 0.0;
  for (std::size_t to = 0; to < n_states_; ++to) total += q_[pair_index(from, to)];
  return total;
}

double SmpModel::survival(std::size_t from, std::size_t l) const {
  FGCS_REQUIRE(from < n_states_);
  double exited = 0.0;
  for (std::size_t to = 0; to < n_states_; ++to) {
    const double q_ik = q_[pair_index(from, to)];
    if (q_ik == 0.0) continue;
    const auto& pmf = h_[pair_index(from, to)];
    const std::size_t limit = std::min(l, pmf.size());
    double mass = 0.0;
    for (std::size_t m = 0; m < limit; ++m) mass += pmf[m];
    exited += q_ik * mass;
  }
  return std::max(0.0, 1.0 - exited);
}

void SmpModel::validate() const {
  g_validate_calls.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t from = 0; from < n_states_; ++from) {
    const double row = exit_mass(from);
    FGCS_REQUIRE_MSG(row <= 1.0 + kProbEps, "Q row mass exceeds 1");
    for (std::size_t to = 0; to < n_states_; ++to) {
      const double q_ik = q_[pair_index(from, to)];
      const auto& pmf = h_[pair_index(from, to)];
      const double mass = std::accumulate(pmf.begin(), pmf.end(), 0.0);
      FGCS_REQUIRE_MSG(mass <= 1.0 + kProbEps, "H pmf mass exceeds 1");
      // A used transition must have a holding-time distribution.
      FGCS_REQUIRE_MSG(q_ik == 0.0 || mass > 0.0,
                       "transition with positive Q but empty H pmf");
    }
  }
}

bool SmpModel::sample_step(std::size_t from, Rng& rng, Step& out) const {
  FGCS_REQUIRE(from < n_states_);
  double u = rng.uniform();
  std::size_t next = n_states_;
  for (std::size_t to = 0; to < n_states_; ++to) {
    const double q_ik = q_[pair_index(from, to)];
    if (u < q_ik) {
      next = to;
      break;
    }
    u -= q_ik;
  }
  if (next == n_states_) return false;  // censored mass: never leaves
  const auto& pmf = h_[pair_index(from, next)];
  const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  if (total <= 0.0) return false;
  double v = rng.uniform() * total;
  for (std::size_t l = 0; l < pmf.size(); ++l) {
    if (v < pmf[l]) {
      out.hold = l + 1;
      out.next = next;
      return true;
    }
    v -= pmf[l];
  }
  out.hold = pmf.size();
  out.next = next;
  return true;
}

// ---------------------------------------------------------------------------

DenseSmpSolver::DenseSmpSolver(const SmpModel& model) : model_(model) {
  model.validate();
}

std::vector<double> DenseSmpSolver::first_passage(std::size_t init,
                                                  std::size_t n_steps) const {
  const std::size_t s = model_.n_states();
  FGCS_REQUIRE(init < s);
  // f[j][m][i] = Pr(first passage from i to j within m ticks).
  // Computed per target j; target treated as absorbing.
  std::vector<double> result(s, 0.0);
  for (std::size_t j = 0; j < s; ++j) {
    if (j == init) {
      result[j] = 1.0;  // already there on entry
      continue;
    }
    // f[m*s + i]
    std::vector<double> f((n_steps + 1) * s, 0.0);
    for (std::size_t m = 0; m <= n_steps; ++m) f[m * s + j] = 1.0;
    for (std::size_t m = 1; m <= n_steps; ++m) {
      for (std::size_t i = 0; i < s; ++i) {
        if (i == j) continue;
        double acc = 0.0;
        for (std::size_t k = 0; k < s; ++k) {
          const double q_ik = model_.q(i, k);
          if (q_ik == 0.0) continue;
          const auto pmf = model_.h_pmf(i, k);
          const std::size_t l_max = std::min(m, pmf.size());
          double inner = 0.0;
          for (std::size_t l = 1; l <= l_max; ++l)
            inner += pmf[l - 1] * f[(m - l) * s + k];
          acc += q_ik * inner;
        }
        f[m * s + i] = acc;
      }
    }
    result[j] = f[n_steps * s + init];
  }
  return result;
}

std::vector<double> DenseSmpSolver::interval_transition(std::size_t n_steps) const {
  const std::size_t s = model_.n_states();
  // p[m] is the flat s×s matrix P(m); P(0) = I.
  std::vector<std::vector<double>> p(n_steps + 1, std::vector<double>(s * s, 0.0));
  for (std::size_t i = 0; i < s; ++i) p[0][i * s + i] = 1.0;
  for (std::size_t m = 1; m <= n_steps; ++m) {
    for (std::size_t i = 0; i < s; ++i) {
      // Survival term: still holding in i after m ticks.
      p[m][i * s + i] = model_.survival(i, m);
      for (std::size_t k = 0; k < s; ++k) {
        const double q_ik = model_.q(i, k);
        if (q_ik == 0.0) continue;
        const auto pmf = model_.h_pmf(i, k);
        const std::size_t l_max = std::min(m, pmf.size());
        for (std::size_t l = 1; l <= l_max; ++l) {
          const double weight = q_ik * pmf[l - 1];
          if (weight == 0.0) continue;
          const auto& prev = p[m - l];
          for (std::size_t j = 0; j < s; ++j)
            p[m][i * s + j] += weight * prev[k * s + j];
        }
      }
    }
  }
  return p[n_steps];
}

double monte_carlo_reliability(const SmpModel& model, std::size_t init,
                               std::size_t n_steps,
                               std::span<const bool> failure,
                               std::size_t n_trajectories, Rng& rng) {
  FGCS_REQUIRE(failure.size() == model.n_states());
  FGCS_REQUIRE(n_trajectories > 0);
  if (failure[init]) return 0.0;
  std::size_t survived = 0;
  for (std::size_t t = 0; t < n_trajectories; ++t) {
    std::size_t state = init;
    std::size_t tick = 0;
    for (;;) {
      SmpModel::Step step;
      if (!model.sample_step(state, rng, step)) {
        ++survived;  // censored: never leaves the current (available) state
        break;
      }
      tick += step.hold;
      if (tick > n_steps) {
        ++survived;  // next transition lands beyond the window
        break;
      }
      if (failure[step.next]) break;
      state = step.next;
    }
  }
  return static_cast<double>(survived) / static_cast<double>(n_trajectories);
}

std::vector<double> weighted_holding_pmf(const SmpModel& model,
                                         std::size_t from, std::size_t to,
                                         std::size_t n) {
  std::vector<double> a(n + 1, 0.0);
  const double q = model.q(from, to);
  if (q == 0.0) return a;
  const auto pmf = model.h_pmf(from, to);
  const std::size_t limit = std::min(n, pmf.size());
  for (std::size_t l = 1; l <= limit; ++l) a[l] = q * pmf[l - 1];
  return a;
}

std::uint64_t smp_validate_calls() {
  return g_validate_calls.load(std::memory_order_relaxed);
}

}  // namespace fgcs
