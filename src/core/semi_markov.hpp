// Discrete-time semi-Markov process model (paper §4).
//
// An SMP is the tuple (S, Q, H): Q_i(k) is the probability that a process
// which entered state i next transitions to k, and H_{i,k}(l) is the
// probability that it holds in i for exactly l ticks before that transition.
//
// Both distributions may be *defective*: Σ_k Q_i(k) < 1 means "with the
// remaining probability, the process never left i within the observation
// horizon" (right-censored sojourns, see SmpEstimator). The solvers treat
// missing mass as survival, which is exactly the semantics the temporal-
// reliability computation needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/states.hpp"
#include "util/rng.hpp"

namespace fgcs {

class SmpModel {
 public:
  /// `horizon` bounds the holding-time support: H_{i,k}(l) for l in 1..horizon.
  SmpModel(std::size_t n_states, std::size_t horizon);

  std::size_t n_states() const { return n_states_; }
  std::size_t horizon() const { return horizon_; }

  double q(std::size_t from, std::size_t to) const;
  void set_q(std::size_t from, std::size_t to, double probability);

  /// Holding-time pmf value H_{from,to}(l); l in 1..horizon.
  double h(std::size_t from, std::size_t to, std::size_t l) const;

  /// Installs the pmf for (from,to); `pmf[l-1]` is H(l). The vector may be
  /// shorter than the horizon (zero-padded) but not longer, and must sum
  /// to at most 1 (+ eps).
  void set_h_pmf(std::size_t from, std::size_t to, std::vector<double> pmf);

  std::span<const double> h_pmf(std::size_t from, std::size_t to) const;

  /// Σ_k Q_i(k) — at most 1; the deficit is censored (survivor) mass.
  double exit_mass(std::size_t from) const;

  /// Pr(hold in `from` for more than `l` ticks), counting censored mass as
  /// never leaving: W_i(l) = 1 − Σ_k Q_i(k)·Σ_{m≤l} H_{i,k}(m).
  double survival(std::size_t from, std::size_t l) const;

  /// Throws PreconditionError if any row/pmf violates probability axioms.
  void validate() const;

  /// Draws one trajectory step: given the current state, samples (hold, next).
  /// Returns false if the process stays in `from` forever (censored mass hit).
  struct Step {
    std::size_t hold = 0;
    std::size_t next = 0;
  };
  bool sample_step(std::size_t from, Rng& rng, Step& out) const;

 private:
  std::size_t pair_index(std::size_t from, std::size_t to) const {
    return from * n_states_ + to;
  }

  std::size_t n_states_;
  std::size_t horizon_;
  std::vector<double> q_;                     // n_states² entries
  std::vector<std::vector<double>> h_;        // pmf per (from,to)
};

/// Generic dense solver: the textbook interval-transition recursion over all
/// state pairs. O(S²·n²) — used for validating the sparse production solver
/// and for experimenting with alternative state spaces.
class DenseSmpSolver {
 public:
  explicit DenseSmpSolver(const SmpModel& model);

  /// First-passage probabilities F_{init,j}(n) = Pr(reach j within n ticks |
  /// entered init at tick 0), for every j, treating each target j as
  /// absorbing. This is the paper's Eq. 2 specialization used for TR.
  /// Requires the actual absorbing states to have no outgoing transitions.
  std::vector<double> first_passage(std::size_t init, std::size_t n_steps) const;

  /// Full interval transition probabilities P_{i,j}(n) including the
  /// "still holding in i" survival term; rows sum to 1 for non-defective
  /// models. Returned as a flat n_states×n_states row-major matrix.
  std::vector<double> interval_transition(std::size_t n_steps) const;

 private:
  const SmpModel& model_;
};

/// Monte-Carlo estimate of Pr(no failure state entered within n ticks),
/// used as ground truth in tests. `failure` flags absorbing failure states.
double monte_carlo_reliability(const SmpModel& model, std::size_t init,
                               std::size_t n_steps,
                               std::span<const bool> failure,
                               std::size_t n_trajectories, Rng& rng);

/// The weighted holding-time pmf a(l) = Q_{from,to}·H_{from,to}(l) every TR
/// solver convolves with, in the ONE canonical indexing convention shared by
/// sparse_solver, fast_solver and curve_cache:
///
///   lag-indexed — a[l] is the lag-l weight, a[0] == 0 (strict causality),
///   and the vector has n + 1 entries (lags 0..n), zero-padded past the
///   pmf's support.
///
/// Historically the two solvers carried private copies with *different*
/// conventions (lag l at a[l-1] vs a[l]) — an off-by-one trap this helper
/// retires; tests/core/sparse_solver_test.cpp pins the convention.
std::vector<double> weighted_holding_pmf(const SmpModel& model,
                                         std::size_t from, std::size_t to,
                                         std::size_t n);

/// Process-wide count of SmpModel::validate() runs (relaxed atomic).
/// Test instrumentation: the serving hot path must validate a model once
/// when it enters the cache, never per solve — tests pin that by diffing
/// this counter around warm queries.
std::uint64_t smp_validate_calls();

}  // namespace fgcs
