// FFT-accelerated temporal-reliability solver (our extension; the paper's
// production path is the O(n²) recursion in sparse_solver.hpp).
//
// Eliminating P₂ from the Eq. 3 pair gives a discrete renewal equation for
// each absorption series:
//
//   P₁,j = B₁,j + K ⊛ P₁,j        with  B₁,j = D₁,j + A₁₂ ⊛ D₂,j
//                                        K    = A₁₂ ⊛ A₂₁
//
// where D are the cumulative direct-absorption terms, A the weighted
// holding-time pmfs between S1 and S2, and ⊛ linear convolution (all kernels
// vanish at lag 0, so the system is strictly causal). B and K cost two FFT
// convolutions; the renewal equation is solved by divide-and-conquer
// ("online") FFT convolution in O(n log² n) against the recursion's O(n²).
//
// Measured reality (bench_abl_sparse_solver): the complex-FFT constant is
// large enough that the cache-friendly O(n²) recursion stays faster up to
// and including the paper's largest window (n = 6000 at 10 h / 6 s ticks);
// the FFT path wins beyond n ≈ 3·10⁴ — e.g. multi-day windows or sub-second
// sampling. Results agree with SparseTrSolver to ~1e-10 (property-tested).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/semi_markov.hpp"
#include "core/sparse_solver.hpp"
#include "core/states.hpp"

namespace fgcs {

/// Solves x = b + k ⊛ x for x[0..n) where (k ⊛ x)[m] = Σ_{l≤m} k[l]·x[m−l].
/// Requires k[0] == 0 (strict causality). Exposed for direct testing.
std::vector<double> solve_renewal(std::span<const double> b,
                                  std::span<const double> kernel);

/// Drop-in FFT-based counterpart of SparseTrSolver.
class FastTrSolver {
 public:
  explicit FastTrSolver(const SmpModel& model);

  SparseTrSolver::Result solve(State init, std::size_t n_steps) const;
  SparseTrSolver::Series solve_series(std::size_t n_steps) const;

 private:
  const SmpModel& model_;
};

}  // namespace fgcs
