#include "core/curve_cache.hpp"

#include <algorithm>

#include "core/fast_solver.hpp"
#include "util/error.hpp"

namespace fgcs {

namespace {

constexpr std::size_t kS1 = index_of(State::kS1);
constexpr std::size_t kS2 = index_of(State::kS2);

}  // namespace

AbsorptionCurves::AbsorptionCurves(const SmpModel& model, std::size_t t_max,
                                   CurveConfig config) {
  FGCS_REQUIRE_MSG(model.n_states() == kStateCount,
                   "AbsorptionCurves requires the 5-state FGCS model");
  model.validate();
  for (const State failure : kFailureStates)
    for (std::size_t to = 0; to < kStateCount; ++to)
      FGCS_REQUIRE_MSG(model.q(index_of(failure), to) == 0.0,
                       "failure states must be absorbing");

  // Cross-transition kernels over their full support, padded to a common
  // length so the inner loop has one bound. Stored once: extension re-reads
  // these, never the model.
  a12_ = weighted_holding_pmf(model, kS1, kS2, model.h_pmf(kS1, kS2).size());
  a21_ = weighted_holding_pmf(model, kS2, kS1, model.h_pmf(kS2, kS1).size());
  kernel_limit_ = std::max(a12_.size(), a21_.size()) - 1;
  a12_.resize(kernel_limit_ + 1, 0.0);
  a21_.resize(kernel_limit_ + 1, 0.0);

  // The six weighted direct-absorption pmfs, interleaved into the same
  // 8-lane layout as the curves so the cumulative update is one strided row
  // read per tick.
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    const std::size_t j = index_of(kFailureStates[jj]);
    wd_limit_ = std::max({wd_limit_, model.h_pmf(kS1, j).size(),
                          model.h_pmf(kS2, j).size()});
  }
  wd_.assign((wd_limit_ + 1) * kLanes, 0.0);
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    const std::size_t j = index_of(kFailureStates[jj]);
    for (std::size_t row = 0; row < 2; ++row) {
      const double q = model.q(row == 0 ? kS1 : kS2, j);
      if (q == 0.0) continue;
      const auto pmf = model.h_pmf(row == 0 ? kS1 : kS2, j);
      for (std::size_t l = 1; l <= pmf.size(); ++l)
        wd_[l * kLanes + 4 * row + jj] = q * pmf[l - 1];
    }
  }

  p_.assign(kLanes, 0.0);  // row 0: nothing absorbed in zero ticks
  if (t_max > 0 && t_max >= config.fft_crossover) {
    // Large fresh build: one O(n log² n) FFT pass instead of O(n²) ticks.
    const SparseTrSolver::Series series =
        FastTrSolver(model).solve_series(t_max);
    p_.assign((t_max + 1) * kLanes, 0.0);
    for (std::size_t m = 0; m <= t_max; ++m)
      for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
        p_[m * kLanes + jj] = series[0][jj][m];
        p_[m * kLanes + 4 + jj] = series[1][jj][m];
      }
    // Seed the running cumulative sums so extend_to() can resume the direct
    // recursion from t_max.
    for (std::size_t m = 1; m <= std::min(t_max, wd_limit_); ++m)
      for (std::size_t lane = 0; lane < kLanes; ++lane)
        cum_[lane] += wd_[m * kLanes + lane];
    t_max_ = t_max;
  } else {
    extend_to(t_max);
  }
}

void AbsorptionCurves::compute_rows(std::size_t from_m, std::size_t to_m) {
  const double* a12 = a12_.data();
  const double* a21 = a21_.data();
  for (std::size_t m = from_m; m <= to_m; ++m) {
    if (m <= wd_limit_) {
      const double* wd = &wd_[m * kLanes];
      for (std::size_t lane = 0; lane < kLanes; ++lane) cum_[lane] += wd[lane];
    }
    // One accumulator per series: per-series summation order matches
    // SparseTrSolver's scalar recursion exactly (l ascending), so every
    // produced double is bit-identical; lags past the kernel support only
    // ever add exact zeros and are skipped.
    double acc[kLanes] = {};
    const std::size_t l_hi = std::min(m - 1, kernel_limit_);
    for (std::size_t l = 1; l <= l_hi; ++l) {
      const double k12 = a12[l];
      const double k21 = a21[l];
      const double* prev = &p_[(m - l) * kLanes];
      for (std::size_t jj = 0; jj < 3; ++jj) acc[jj] += k12 * prev[4 + jj];
      for (std::size_t jj = 0; jj < 3; ++jj) acc[4 + jj] += k21 * prev[jj];
    }
    double* row = &p_[m * kLanes];
    for (std::size_t lane = 0; lane < kLanes; ++lane)
      row[lane] = cum_[lane] + acc[lane];
  }
  recursion_ticks_ += to_m - from_m + 1;
}

void AbsorptionCurves::extend_to(std::size_t n_steps) {
  if (n_steps <= t_max_) return;
  const std::size_t target = std::max(n_steps, t_max_ * 2);
  p_.resize((target + 1) * kLanes, 0.0);
  compute_rows(t_max_ + 1, target);
  t_max_ = target;
}

SparseTrSolver::Result AbsorptionCurves::result_at(State init,
                                                   std::size_t n_steps) const {
  FGCS_REQUIRE_MSG(is_available(init),
                   "temporal reliability is defined for available initial states");
  FGCS_REQUIRE_MSG(n_steps <= t_max_,
                   "window beyond the tabulated horizon; extend_to() first");
  const double* row = &p_[n_steps * kLanes + 4 * index_of(init)];
  SparseTrSolver::Result result;
  double absorbed = 0.0;
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    result.p_absorb[jj] = row[jj];
    absorbed += result.p_absorb[jj];
  }
  result.temporal_reliability = std::clamp(1.0 - absorbed, 0.0, 1.0);
  return result;
}

double AbsorptionCurves::probability(State init, std::size_t failure_index,
                                     std::size_t m) const {
  FGCS_REQUIRE(is_available(init) && failure_index < 3 && m <= t_max_);
  return p_[m * kLanes + 4 * index_of(init) + failure_index];
}

}  // namespace fgcs
