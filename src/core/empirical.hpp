// Empirical temporal reliability and evaluation metrics (paper §7.2).
//
// The evaluation splits a trace into training and test days; the SMP
// parameters come from the training days and the prediction is compared
// against the *empirical* TR — the fraction of test days (starting in an
// available state) on which the machine never entered a failure state within
// the window. Relative error = |TR_pred − TR_emp| / TR_emp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/classifier.hpp"
#include "core/states.hpp"
#include "trace/machine_trace.hpp"
#include "trace/window.hpp"

namespace fgcs {

/// True if the state sequence starts available and never enters a failure
/// state.
bool survives_window(std::span<const State> states);

struct EmpiricalTr {
  std::size_t eligible_days = 0;   // test days starting in S1/S2
  std::size_t surviving_days = 0;  // of those, days with no failure in-window
  /// surviving/eligible; empty when there are no eligible days.
  std::optional<double> tr;
};

EmpiricalTr empirical_tr(const MachineTrace& trace,
                         std::span<const std::int64_t> days,
                         const TimeWindow& window,
                         const StateClassifier& classifier);

/// |predicted − empirical| / empirical. Requires empirical > 0 (the paper
/// discards/acknowledges degenerate windows where TR→0).
double relative_error(double predicted, double empirical);

/// Whole-trace unavailability occurrence statistics (paper §6.1 reports
/// 405–453 occurrences per machine over 3 months). An occurrence is a
/// maximal run of one failure state in the day-concatenated classification.
struct UnavailabilityStats {
  std::size_t cpu_contention = 0;   // S3 runs (UEC)
  std::size_t memory_thrash = 0;    // S4 runs (UEC)
  std::size_t revocation = 0;       // S5 runs (URR)
  std::size_t total() const { return cpu_contention + memory_thrash + revocation; }
};

UnavailabilityStats count_unavailability(const MachineTrace& trace,
                                         const StateClassifier& classifier);

}  // namespace fgcs
