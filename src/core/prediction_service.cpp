#include "core/prediction_service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/sparse_solver.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"
#include "util/trace_span.hpp"

namespace fgcs {

namespace {

State resolve_initial(const PredictionRequest& request, State majority) {
  const State init = request.initial_state.value_or(majority);
  FGCS_REQUIRE_MSG(is_available(init), "initial state must be S1 or S2");
  return init;
}

}  // namespace

std::size_t PredictionService::KeyHash::operator()(const Key& key) const {
  std::size_t h = std::hash<std::string>{}(key.machine_id);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::size_t>(key.generation));
  mix(static_cast<std::size_t>(key.day_type));
  mix(static_cast<std::size_t>(key.window_start));
  mix(static_cast<std::size_t>(key.window_length));
  return h;
}

PredictionService::PredictionService(ServiceConfig config)
    : config_(config),
      estimator_(config.estimator),
      shard_count_(std::max<std::size_t>(1, config.shards)),
      shards_(std::make_unique<Shard[]>(shard_count_)) {
  FGCS_REQUIRE_MSG(config.capacity_per_shard >= 1,
                   "cache capacity must be at least one entry per shard");
  MetricsRegistry& registry = MetricsRegistry::global();
  metrics_attachments_.push_back(
      registry.attach("service.lookups.total", lookups_));
  metrics_attachments_.push_back(registry.attach("service.hits.total", hits_));
  metrics_attachments_.push_back(
      registry.attach("service.partial_hits.total", partial_hits_));
  metrics_attachments_.push_back(
      registry.attach("service.misses.total", misses_));
  metrics_attachments_.push_back(
      registry.attach("service.evictions.total", evictions_));
  metrics_attachments_.push_back(
      registry.attach("service.invalidations.total", invalidations_));
  metrics_attachments_.push_back(
      registry.attach("service.stale_drops.total", stale_drops_));
  metrics_attachments_.push_back(
      registry.attach("service.batches.total", batches_));
  metrics_attachments_.push_back(
      registry.attach("service.batch_requests.total", batch_requests_));
  metrics_attachments_.push_back(
      registry.attach("service.max_batch", max_batch_));
  metrics_attachments_.push_back(
      registry.attach("service.estimate.seconds", estimate_hist_));
  metrics_attachments_.push_back(
      registry.attach("service.solve.seconds", solve_hist_));
  metrics_attachments_.push_back(
      registry.attach("service.batch.seconds", batch_hist_));
}

PredictionService::Shard& PredictionService::shard_for(const Key& key) const {
  return shards_[KeyHash{}(key) % shard_count_];
}

std::uint64_t PredictionService::generation_of(
    const std::string& machine_id) const {
  const std::lock_guard<std::mutex> lock(generation_mutex_);
  const auto it = generations_.find(machine_id);
  return it == generations_.end() ? 0 : it->second;
}

Prediction PredictionService::predict(const MachineTrace& trace,
                                      const PredictionRequest& request) {
  validate(request.window);
  FGCS_REQUIRE_MSG(request.target_day >= 0 &&
                       request.target_day <= trace.day_count(),
                   "target day beyond recorded history + 1");
  lookups_.add();

  if (Failpoints::enabled()) {
    // Chaos hooks, evaluated only while something is armed: hard estimation
    // failure, injected estimation latency, and a forced invalidation racing
    // the lookup (the staleness worst case the generation counter + per-hit
    // day revalidation must absorb without ever serving a stale Prediction).
    if (FGCS_FAILPOINT("service.estimate.fail"))
      throw DataError("injected: prediction service estimation failure");
    const double delay = FGCS_FAILPOINT_LATENCY("service.estimate.slow");
    if (delay > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    if (FGCS_FAILPOINT("service.cache.invalidate"))
      invalidate(trace.machine_id());
  }

  const Key key{trace.machine_id(), generation_of(trace.machine_id()),
                trace.day_type(request.target_day),
                request.window.start_of_day, request.window.length};
  // The training-day rule is cheap (a day-index scan) and is re-run on every
  // lookup: a cached model is reused only when it was estimated from exactly
  // the days the rule selects now, so staleness can never change a result.
  // The day list lands in a per-worker buffer — a fleet probe of thousands
  // of machines allocates it once per worker, not once per request.
  static thread_local std::vector<std::int64_t> days;
  estimator_.training_days_for(trace, request.target_day, request.window, days);
  const std::size_t steps = request.window.steps(trace.sampling_period());
  Shard& shard = shard_for(key);

  std::shared_ptr<const SmpModel> model;
  std::shared_ptr<const AbsorptionCurves> curves;
  State majority = State::kS1;
  double estimate_seconds = 0.0;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      Entry& entry = it->second->second;
      if (entry.training_days == days) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        const State init = resolve_initial(request, entry.majority_initial);
        if (entry.solved[index_of(init)]) {
          hits_.add();
          return *entry.solved[index_of(init)];
        }
        model = entry.model;
        curves = entry.curves;
        majority = entry.majority_initial;
        estimate_seconds = entry.estimate_seconds;
      } else {
        stale_drops_.add();
        shard.lru.erase(it->second);
        shard.index.erase(it);
      }
    }
  }

  const bool model_was_cached = model != nullptr;
  if (!model_was_cached) {
    TraceSpan span("service.estimate", &estimate_hist_);
    const TransitionCounts counts =
        estimator_.count_transitions(trace, days, request.window);
    model = std::make_shared<const SmpModel>(estimator_.build_model(counts));
    majority = estimator_.majority_initial_state(trace, days, request.window);
    estimate_seconds = span.finish();
  }

  Prediction prediction;
  prediction.steps = steps;
  prediction.training_days_used = days.size();
  prediction.initial_state = resolve_initial(request, majority);
  prediction.estimate_seconds = estimate_seconds;

  TraceSpan solve_span("service.solve", &solve_hist_);
  if (curves == nullptr || steps > curves->t_max()) {
    // Cache miss: run the Eq. 3 recursion once, tabulating both initial
    // states up to the window horizon (validation happens here, in the
    // curves constructor — the only validate() on the entry's lifetime).
    // The t_max guard is defense in depth: the key pins window_length, so a
    // cached table always covers the horizon that keyed it.
    curves = std::make_shared<const AbsorptionCurves>(*model, steps);
  }
  const SparseTrSolver::Result result =
      curves->result_at(prediction.initial_state, steps);
  prediction.solve_seconds = solve_span.finish();
  prediction.temporal_reliability = result.temporal_reliability;
  prediction.p_absorb = result.p_absorb;
  (model_was_cached ? partial_hits_ : misses_).add();

  // Chaos hook for the invalidate-vs-insert race below: forces an
  // invalidation to land exactly between the compute phase and the insert
  // lock, the window the generation re-check must close.
  if (FGCS_FAILPOINT("service.insert.race")) invalidate(trace.machine_id());

  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    // An invalidate() that landed after our generation read has already
    // swept this machine; inserting now would file the entry under a dead
    // generation key — unreachable by every future lookup, crowding the LRU
    // until capacity eviction. Skip the insert; the computed result is
    // still correct (training days were revalidated), just not cacheable.
    if (generation_of(trace.machine_id()) != key.generation) {
      stale_drops_.add();
      return prediction;
    }
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // A concurrent predict raced us here; keep the existing entry when it
      // is still valid, otherwise replace it with what we just computed.
      Entry& entry = it->second->second;
      if (entry.training_days == days) {
        auto& slot = entry.solved[index_of(prediction.initial_state)];
        if (!slot) slot = prediction;
        if (!entry.curves) entry.curves = curves;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return prediction;
      }
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    Entry entry;
    entry.training_days = days;
    entry.model = model;
    entry.curves = curves;
    entry.majority_initial = majority;
    entry.estimate_seconds = estimate_seconds;
    entry.solved[index_of(prediction.initial_state)] = prediction;
    shard.lru.emplace_front(key, std::move(entry));
    shard.index[key] = shard.lru.begin();
    while (shard.index.size() > config_.capacity_per_shard) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_.add();
    }
  }
  return prediction;
}

std::vector<Prediction> PredictionService::predict_batch(
    std::span<const BatchRequest> requests) {
  TraceSpan span("service.batch", &batch_hist_);
  batches_.add();
  batch_requests_.add(requests.size());
  max_batch_.update_max(static_cast<double>(requests.size()));
  for (const BatchRequest& request : requests)
    FGCS_REQUIRE_MSG(request.trace != nullptr,
                     "batch request carries a null trace");

  std::vector<Prediction> predictions(requests.size());
  parallel_for(
      requests.size(),
      [&](std::size_t i) {
        predictions[i] = predict(*requests[i].trace, requests[i].request);
      },
      config_.max_threads);
  return predictions;
}

std::vector<std::optional<Prediction>> PredictionService::try_predict_batch(
    std::span<const BatchRequest> requests) {
  TraceSpan span("service.batch", &batch_hist_);
  batches_.add();
  batch_requests_.add(requests.size());
  max_batch_.update_max(static_cast<double>(requests.size()));
  for (const BatchRequest& request : requests)
    FGCS_REQUIRE_MSG(request.trace != nullptr,
                     "batch request carries a null trace");

  std::vector<std::optional<Prediction>> predictions(requests.size());
  parallel_for(
      requests.size(),
      [&](std::size_t i) {
        try {
          predictions[i] = predict(*requests[i].trace, requests[i].request);
        } catch (const DataError&) {
          // This machine stays nullopt; the rest of the batch proceeds.
        }
      },
      config_.max_threads);
  return predictions;
}

void PredictionService::invalidate(const std::string& machine_id) {
  {
    const std::lock_guard<std::mutex> lock(generation_mutex_);
    ++generations_[machine_id];
  }
  invalidations_.add();
  // The generation bump already makes the old keys unreachable; also drop
  // the machine's entries so dead models do not crowd the LRU.
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->first.machine_id == machine_id) {
        shard.index.erase(it->first);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::uint64_t PredictionService::history_generation(
    const std::string& machine_id) const {
  return generation_of(machine_id);
}

std::size_t PredictionService::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total += shards_[s].index.size();
  }
  return total;
}

void PredictionService::clear() {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mutex);
    shards_[s].lru.clear();
    shards_[s].index.clear();
  }
}

ServiceStats PredictionService::stats() const {
  ServiceStats stats;
  stats.lookups = lookups_.value();
  stats.hits = hits_.value();
  stats.partial_hits = partial_hits_.value();
  stats.misses = misses_.value();
  stats.evictions = evictions_.value();
  stats.invalidations = invalidations_.value();
  stats.stale_drops = stale_drops_.value();
  stats.batches = batches_.value();
  stats.batch_requests = batch_requests_.value();
  stats.max_batch = static_cast<std::uint64_t>(max_batch_.value());
  stats.estimate_seconds = estimate_hist_.sum();
  stats.solve_seconds = solve_hist_.sum();
  stats.pool = ThreadPool::default_pool().stats();
  return stats;
}

}  // namespace fgcs
