#include "core/classifier.hpp"

#include "util/error.hpp"

namespace fgcs {

StateClassifier::StateClassifier(Thresholds thresholds, SimTime sampling_period)
    : thresholds_(thresholds), sampling_period_(sampling_period) {
  validate(thresholds_);
  FGCS_REQUIRE(sampling_period > 0);
  transient_ticks_ =
      static_cast<std::size_t>(thresholds_.transient_limit / sampling_period);
}

State StateClassifier::classify_sample(const ResourceSample& sample) const {
  if (!sample.up()) return State::kS5;
  if (sample.free_mem_mb < thresholds_.guest_mem_mb) return State::kS4;
  const double load = sample.load();
  if (load > thresholds_.th2) return State::kS3;
  if (load >= thresholds_.th1) return State::kS2;
  return State::kS1;
}

std::vector<State> StateClassifier::classify(
    std::span<const ResourceSample> samples) const {
  std::vector<State> states(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i)
    states[i] = classify_sample(samples[i]);

  // Transient rule: relabel S3 runs shorter than the transient limit with the
  // neighbouring available state. Prefer the state just before the spike
  // (the guest was suspended and resumes into the same situation); fall back
  // to the state right after the run for spikes at the start of the series,
  // and to S2 when no available neighbour exists.
  std::size_t i = 0;
  while (i < states.size()) {
    if (states[i] != State::kS3) {
      ++i;
      continue;
    }
    std::size_t run_end = i;
    while (run_end < states.size() && states[run_end] == State::kS3) ++run_end;
    const std::size_t run_len = run_end - i;
    if (run_len < transient_ticks_) {
      State replacement = State::kS2;
      if (i > 0 && is_available(states[i - 1])) {
        replacement = states[i - 1];
      } else if (run_end < states.size() && is_available(states[run_end])) {
        replacement = states[run_end];
      }
      for (std::size_t k = i; k < run_end; ++k) states[k] = replacement;
    }
    i = run_end;
  }
  return states;
}

std::vector<State> StateClassifier::classify_window(const MachineTrace& trace,
                                                    std::int64_t day,
                                                    const TimeWindow& window) const {
  FGCS_REQUIRE_MSG(trace.sampling_period() == sampling_period_,
                   "classifier and trace sampling periods differ");
  const std::vector<ResourceSample> samples = trace.window_samples(day, window);
  return classify(samples);
}

}  // namespace fgcs
