// Incrementally-maintained (Q, H) estimation over a sliding day window.
//
// SmpEstimator::estimate() re-classifies and re-counts every training day on
// every call — O(history). A streaming ingest path closes one day at a time,
// so almost all of that work repeats verbatim. IncrementalEstimator keeps
// the TransitionCounts for one (window, day-type) pair current by *adding*
// the newest eligible day's sojourns and *subtracting* the retired oldest
// day's — O(changed-day) per mutation. Because the counts are integers,
// addition and subtraction are exact, and build_model() over the maintained
// counts is bit-identical (every double) to a from-scratch estimate over
// the same training days. tests/core/incremental_estimator_test.cpp holds
// the class to that equality after every mutation of 1000+ fuzzed
// add/retire/append sequences — the PR's primary differential gate.
//
// Day identity is *absolute*: days are named by a monotonically increasing
// id (the TraceStore's day counter), decoupled from trace indices, which
// shift every time the sliding window retires a front day. Classified
// window states are cached per counted day so subtraction at retire time
// does not need the (possibly already retired) samples.
//
// Equivalence contract: after feeding every appended day through
// on_day_appended() (in order) and every retired day through
// on_day_retired() (front first), model() equals
//
//   SmpEstimator(config).estimate(trace, target, window)
//
// bit-for-bit, for any target day of the matching type placed just past the
// end of the trace — provided the trace still contains every day this
// estimator counts (retention at least the training-day budget).
//
// Not thread-safe; callers serialize mutations (the ingest path closes one
// day at a time per machine under the TraceStore's machine lock).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/classifier.hpp"
#include "core/estimator.hpp"
#include "core/semi_markov.hpp"
#include "core/states.hpp"
#include "trace/machine_trace.hpp"
#include "trace/window.hpp"
#include "util/time.hpp"

namespace fgcs {

class IncrementalEstimator {
 public:
  /// Pins the estimation parameters for this estimator's lifetime: the
  /// clock-time window, the day type it trains on, and the trace's sampling
  /// period (the counting horizon is window.steps(period), same as the
  /// from-scratch path).
  IncrementalEstimator(EstimatorConfig config, TimeWindow window,
                       DayType day_type, SimTime sampling_period);

  const TimeWindow& window() const { return window_; }
  DayType day_type() const { return day_type_; }
  SimTime sampling_period() const { return period_; }
  const EstimatorConfig& config() const { return estimator_.config(); }

  /// Notifies that `trace` just gained its last recorded day.
  /// `first_day_id` is the absolute id of trace day 0 (a store that has
  /// retired R front days passes R). At most one day becomes eligible per
  /// call — the appended day itself, or, for a midnight-wrapping window,
  /// the day before it (whose wrap data just completed) — and only if its
  /// type matches; the work is O(window steps), independent of history.
  void on_day_appended(const MachineTrace& trace, std::int64_t first_day_id);

  /// Notifies that absolute day `day_id` was retired from the front of the
  /// trace. Subtracts its cached sojourns if it is currently counted; a
  /// retire below the counted range (day never eligible, or already slid
  /// out of the training budget) is a no-op.
  void on_day_retired(std::int64_t day_id);

  /// Drops all state and re-counts from the trace — the O(history) resync
  /// used at adoption time (seeding from a pre-existing trace) and as the
  /// recovery path if a caller lost track of mutations.
  void rebuild(const MachineTrace& trace, std::int64_t first_day_id);

  /// The (possibly defective) SMP model over the currently counted days;
  /// bit-identical to the from-scratch estimate (see the header comment).
  SmpModel model() const { return estimator_.build_model(counts_); }

  /// Majority available state at the window start over the counted days,
  /// same tie-breaking as SmpEstimator::majority_initial_state.
  State majority_initial_state() const;

  const TransitionCounts& counts() const { return counts_; }
  std::size_t counted_days() const { return days_.size(); }
  /// Absolute ids of the counted days, oldest first.
  std::vector<std::int64_t> counted_day_ids() const;

 private:
  struct CountedDay {
    std::int64_t day_id = 0;        ///< absolute id
    std::vector<State> states;      ///< cached classified window sequence
  };

  /// Classifies and counts trace day `index` (absolute id `day_id`) if it
  /// is window-eligible and of the right type; trims the front when the
  /// training budget overflows.
  void count_if_eligible(const MachineTrace& trace, std::int64_t index,
                         std::int64_t day_id);

  SmpEstimator estimator_;
  TimeWindow window_;
  DayType day_type_;
  SimTime period_;
  StateClassifier classifier_;
  TransitionCounts counts_;
  std::deque<CountedDay> days_;  ///< ascending by day_id
};

}  // namespace fgcs
