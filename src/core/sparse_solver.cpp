#include "core/sparse_solver.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fgcs {

namespace {

constexpr std::size_t kS1 = index_of(State::kS1);
constexpr std::size_t kS2 = index_of(State::kS2);

/// Shared-convention kernel (semi_markov.hpp): lag l at a[l], a[0] == 0.
void fill_weighted_pmf(const SmpModel& model, std::size_t from, std::size_t to,
                       std::size_t n, std::vector<double>& a) {
  a.assign(n + 1, 0.0);
  const double q = model.q(from, to);
  if (q == 0.0) return;
  const auto pmf = model.h_pmf(from, to);
  const std::size_t limit = std::min(n, pmf.size());
  for (std::size_t l = 1; l <= limit; ++l) a[l] = q * pmf[l - 1];
}

bool all_zero(const std::vector<double>& a) {
  return std::all_of(a.begin(), a.end(), [](double v) { return v == 0.0; });
}

}  // namespace

SparseTrSolver::SparseTrSolver(const SmpModel& model) : model_(model) {
  FGCS_REQUIRE_MSG(model.n_states() == kStateCount,
                   "SparseTrSolver requires the 5-state FGCS model");
  model.validate();
  for (const State failure : kFailureStates)
    for (std::size_t to = 0; to < kStateCount; ++to)
      FGCS_REQUIRE_MSG(model.q(index_of(failure), to) == 0.0,
                       "failure states must be absorbing");
}

SparseTrSolver::Series SparseTrSolver::solve_series(std::size_t n_steps) const {
  const std::size_t n = n_steps;
  // Cross transitions between the two transient states (lag-indexed).
  const std::vector<double> a12 = weighted_holding_pmf(model_, kS1, kS2, n);
  const std::vector<double> a21 = weighted_holding_pmf(model_, kS2, kS1, n);

  Series series;
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    const std::size_t j = index_of(kFailureStates[jj]);
    const std::vector<double> d1 = weighted_holding_pmf(model_, kS1, j, n);
    const std::vector<double> d2 = weighted_holding_pmf(model_, kS2, j, n);

    std::vector<double>& p1 = series[0][jj];
    std::vector<double>& p2 = series[1][jj];
    p1.assign(n + 1, 0.0);
    p2.assign(n + 1, 0.0);

    double cum_d1 = 0.0;  // Σ_{l≤m} Q_1(j)·H_1,j(l): direct absorption by m
    double cum_d2 = 0.0;
    for (std::size_t m = 1; m <= n; ++m) {
      cum_d1 += d1[m];
      cum_d2 += d2[m];
      double conv1 = 0.0;  // Σ_{l<m} a12[l]·P_2,j(m−l)
      double conv2 = 0.0;
      for (std::size_t l = 1; l < m; ++l) {
        conv1 += a12[l] * p2[m - l];
        conv2 += a21[l] * p1[m - l];
      }
      p1[m] = cum_d1 + conv1;
      p2[m] = cum_d2 + conv2;
    }
  }
  return series;
}

SparseTrSolver::Result SparseTrSolver::solve(State init, std::size_t n_steps,
                                             SolverScratch* scratch) const {
  FGCS_REQUIRE_MSG(is_available(init),
                   "temporal reliability is defined for available initial states");
  const std::size_t n = n_steps;
  SolverScratch local;
  SolverScratch& s = scratch != nullptr ? *scratch : local;

  const std::size_t row = index_of(init);
  // Kernel INTO the read row (read → other) and back (other → read). When the
  // read row never crosses over, the other row's recursion is dead weight:
  // its values would only ever be multiplied by zeros.
  std::vector<double>& k_out = s.buffer(0);
  std::vector<double>& k_back = s.buffer(1);
  fill_weighted_pmf(model_, row == 0 ? kS1 : kS2, row == 0 ? kS2 : kS1, n,
                    k_out);
  fill_weighted_pmf(model_, row == 0 ? kS2 : kS1, row == 0 ? kS1 : kS2, n,
                    k_back);
  const bool need_other = !all_zero(k_out);
  const bool other_convolves = need_other && !all_zero(k_back);

  std::vector<double>& d_read = s.buffer(2);
  std::vector<double>& d_other = s.buffer(3);
  std::vector<double>& p_read = s.buffer(4);
  std::vector<double>& p_other = s.buffer(5);

  Result result;
  double absorbed = 0.0;
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    const std::size_t j = index_of(kFailureStates[jj]);
    fill_weighted_pmf(model_, row == 0 ? kS1 : kS2, j, n, d_read);
    if (need_other) fill_weighted_pmf(model_, row == 0 ? kS2 : kS1, j, n, d_other);
    p_read.assign(n + 1, 0.0);
    if (need_other) p_other.assign(n + 1, 0.0);

    double cum_read = 0.0;
    double cum_other = 0.0;
    for (std::size_t m = 1; m <= n; ++m) {
      cum_read += d_read[m];
      double conv_read = 0.0;
      if (need_other) {
        cum_other += d_other[m];
        double conv_other = 0.0;
        for (std::size_t l = 1; l < m; ++l) {
          conv_read += k_out[l] * p_other[m - l];
          if (other_convolves) conv_other += k_back[l] * p_read[m - l];
        }
        p_other[m] = cum_other + conv_other;
      }
      p_read[m] = cum_read + conv_read;
    }
    result.p_absorb[jj] = p_read[n];
    absorbed += result.p_absorb[jj];
  }
  result.temporal_reliability = std::clamp(1.0 - absorbed, 0.0, 1.0);
  return result;
}

}  // namespace fgcs
