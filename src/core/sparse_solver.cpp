#include "core/sparse_solver.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fgcs {

namespace {

constexpr std::size_t kS1 = index_of(State::kS1);
constexpr std::size_t kS2 = index_of(State::kS2);

/// Weighted pmf a[l] = Q_i(k)·H_{i,k}(l), padded to n entries (index l-1).
std::vector<double> weighted_pmf(const SmpModel& model, std::size_t from,
                                 std::size_t to, std::size_t n) {
  std::vector<double> a(n, 0.0);
  const double q = model.q(from, to);
  if (q == 0.0) return a;
  const auto pmf = model.h_pmf(from, to);
  const std::size_t limit = std::min(n, pmf.size());
  for (std::size_t l = 0; l < limit; ++l) a[l] = q * pmf[l];
  return a;
}

}  // namespace

SparseTrSolver::SparseTrSolver(const SmpModel& model) : model_(model) {
  FGCS_REQUIRE_MSG(model.n_states() == kStateCount,
                   "SparseTrSolver requires the 5-state FGCS model");
  model.validate();
  for (const State failure : kFailureStates)
    for (std::size_t to = 0; to < kStateCount; ++to)
      FGCS_REQUIRE_MSG(model.q(index_of(failure), to) == 0.0,
                       "failure states must be absorbing");
}

SparseTrSolver::Series SparseTrSolver::solve_series(std::size_t n_steps) const {
  const std::size_t n = n_steps;
  // Cross transitions between the two transient states.
  const std::vector<double> a12 = weighted_pmf(model_, kS1, kS2, n);
  const std::vector<double> a21 = weighted_pmf(model_, kS2, kS1, n);

  Series series;
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    const std::size_t j = index_of(kFailureStates[jj]);
    const std::vector<double> d1 = weighted_pmf(model_, kS1, j, n);
    const std::vector<double> d2 = weighted_pmf(model_, kS2, j, n);

    std::vector<double>& p1 = series[0][jj];
    std::vector<double>& p2 = series[1][jj];
    p1.assign(n + 1, 0.0);
    p2.assign(n + 1, 0.0);

    double cum_d1 = 0.0;  // Σ_{l≤m} Q_1(j)·H_1,j(l): direct absorption by m
    double cum_d2 = 0.0;
    for (std::size_t m = 1; m <= n; ++m) {
      cum_d1 += d1[m - 1];
      cum_d2 += d2[m - 1];
      double conv1 = 0.0;  // Σ_{l<m} a12[l]·P_2,j(m−l)
      double conv2 = 0.0;
      for (std::size_t l = 1; l < m; ++l) {
        conv1 += a12[l - 1] * p2[m - l];
        conv2 += a21[l - 1] * p1[m - l];
      }
      p1[m] = cum_d1 + conv1;
      p2[m] = cum_d2 + conv2;
    }
  }
  return series;
}

SparseTrSolver::Result SparseTrSolver::solve(State init,
                                             std::size_t n_steps) const {
  FGCS_REQUIRE_MSG(is_available(init),
                   "temporal reliability is defined for available initial states");
  const Series series = solve_series(n_steps);
  const std::size_t row = index_of(init);

  Result result;
  double absorbed = 0.0;
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    result.p_absorb[jj] = series[row][jj][n_steps];
    absorbed += result.p_absorb[jj];
  }
  result.temporal_reliability = std::clamp(1.0 - absorbed, 0.0, 1.0);
  return result;
}

}  // namespace fgcs
