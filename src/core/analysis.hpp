// Derived quantities on top of the SMP model and the TR evaluation:
//
//  * mean time to failure (MTTF) — the expectation of the first-passage time
//    into {S3, S4, S5}, bounded by a horizon (sojourns that outlive the
//    horizon contribute the full horizon). A scheduler can size jobs by it.
//  * failure-mode split — which failure state will most likely end a guest.
//  * TR confidence intervals — a Wilson interval on the empirical TR
//    (it is a binomial proportion over eligible test days), used by the
//    evaluation harness to separate model error from sampling noise.
#pragma once

#include <array>
#include <cstddef>

#include "core/semi_markov.hpp"
#include "core/sparse_solver.hpp"
#include "core/states.hpp"

namespace fgcs {

struct FailureAnalysis {
  /// E[min(first failure time, horizon)] in ticks.
  double mean_ticks_to_failure = 0.0;
  /// Pr(no failure within the horizon).
  double survival_at_horizon = 1.0;
  /// Absorption split at the horizon (S3, S4, S5); sums to 1 − survival.
  std::array<double, 3> failure_mode{0.0, 0.0, 0.0};
  /// Most probable failure mode at the horizon, or nullopt-like: S1 means
  /// "survival dominates every failure mode".
  State dominant_outcome = State::kS1;
};

/// Runs the sparse solver across 1..horizon and integrates the first-passage
/// distribution. `model` must use the 5-state FGCS layout.
FailureAnalysis analyze_failure(const SmpModel& model, State init,
                                std::size_t horizon);

struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 1.0;
  bool contains(double value) const { return value >= lower && value <= upper; }
};

/// Wilson score interval for a binomial proportion (`successes` of `trials`)
/// at the given z (default 1.96 ≈ 95%). Requires trials ≥ 1.
ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double z = 1.96);

}  // namespace fgcs
