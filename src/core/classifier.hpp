// Maps monitored resource samples to the five-state availability model.
//
// Classification rules (paper §3.3):
//   * machine down                          → S5
//   * free memory < guest working set      → S4
//   * load steadily > Th2                  → S3
//   * Th1 ≤ load ≤ Th2                     → S2
//   * load < Th1                           → S1
// with the transient rule: a maximal run of load > Th2 shorter than the
// transient limit (1 min) does not leave S1/S2 — it is relabeled with the
// surrounding available state, because in that situation the guest is merely
// suspended and later resumed (paper's definition of S1/S2).
#pragma once

#include <span>
#include <vector>

#include "core/states.hpp"
#include "core/thresholds.hpp"
#include "trace/machine_trace.hpp"
#include "trace/sample.hpp"

namespace fgcs {

class StateClassifier {
 public:
  /// `sampling_period` is needed to convert the transient limit into ticks.
  StateClassifier(Thresholds thresholds, SimTime sampling_period);

  const Thresholds& thresholds() const { return thresholds_; }
  SimTime sampling_period() const { return sampling_period_; }

  /// Raw per-sample category, before the transient rule.
  State classify_sample(const ResourceSample& sample) const;

  /// Full classification of a sample sequence, applying the transient rule.
  std::vector<State> classify(std::span<const ResourceSample> samples) const;

  /// Convenience: classify a clock-time window of a machine trace.
  std::vector<State> classify_window(const MachineTrace& trace,
                                     std::int64_t day,
                                     const TimeWindow& window) const;

 private:
  Thresholds thresholds_;
  SimTime sampling_period_;
  std::size_t transient_ticks_;
};

}  // namespace fgcs
