// Fleet-scale prediction front-end: request batching plus memoized Q/H
// estimation (the "serve many clients" layer above AvailabilityPredictor).
//
// A scheduler placing one job probes every machine in the fleet with the
// same time window, and probes again minutes later with a nearly identical
// one; the estimated SMP model for a (machine, day-type, window) triple is
// the same each time. PredictionService exploits that: predictions fan out
// over the parallel_for thread pool, and estimated (Q, H) models — plus the
// model's precomputed AbsorptionCurves table and the solved Prediction per
// initial state — live in a sharded LRU cache. A warm query never re-enters
// the Eq. 3 recursion: any TR the cached model can produce is an O(1) read
// off the curves (curve_cache.hpp), so the only per-solve work the service
// ever does is the one table build on a cache miss.
//
// Cache key and staleness: entries are keyed by (machine_id, day_type,
// window_start, window_length, history_generation). The generation is a
// monotone counter bumped by invalidate(machine_id) whenever the machine's
// trace gains new days — traces are append-only, so a counter is a complete
// staleness signal and costs O(1) where content hashing would cost
// O(samples). As defense in depth every lookup re-runs the cheap
// training-day rule and drops the entry if the selected days changed, so a
// missed invalidate() can never yield a wrong Prediction (DESIGN.md §6).
//
// Thread-safety contract: all public methods may be called concurrently.
// Traces passed in must outlive the call and must not be mutated during it
// (append new days between batches, then invalidate()). A cache hit returns
// the stored Prediction verbatim — bit-identical to the cold call that
// populated it, including its recorded estimate/solve timings.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/curve_cache.hpp"
#include "core/estimator.hpp"
#include "core/predictor.hpp"
#include "core/semi_markov.hpp"
#include "core/states.hpp"
#include "trace/machine_trace.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace fgcs {

struct ServiceConfig {
  EstimatorConfig estimator{};
  /// Cache shards; more shards = less lock contention under large batches.
  std::size_t shards = 16;
  /// LRU capacity per shard, in memoized (machine, window) models.
  std::size_t capacity_per_shard = 512;
  /// Concurrency cap for predict_batch on the persistent thread pool
  /// (0 = the pool's full worker count; 1 = serial). No threads are spawned
  /// per batch either way — the cap bounds how many pool workers join in.
  unsigned max_threads = 0;
};

/// One element of a predict_batch call. The trace must outlive the call.
struct BatchRequest {
  const MachineTrace* trace = nullptr;
  PredictionRequest request{};
};

/// Monotonic observability counters; snapshot via PredictionService::stats().
/// Invariant: lookups == hits + partial_hits + misses.
///
/// This is a thin view over the service's metrics instruments — the same
/// values every instance also reports into MetricsRegistry::global() under
/// the `service.*` names (DESIGN.md §8), where multiple instances sum.
struct ServiceStats {
  std::uint64_t lookups = 0;        ///< predict() calls (incl. batched ones)
  std::uint64_t hits = 0;           ///< fully cached Prediction returned
  std::uint64_t partial_hits = 0;   ///< model + curves reused, O(1) table read
  std::uint64_t misses = 0;         ///< estimated and solved from scratch
  std::uint64_t evictions = 0;      ///< LRU capacity evictions
  std::uint64_t invalidations = 0;  ///< invalidate() calls
  std::uint64_t stale_drops = 0;    ///< entries dropped by day revalidation
  std::uint64_t batches = 0;        ///< predict_batch() calls
  std::uint64_t batch_requests = 0; ///< requests across all batches
  std::uint64_t max_batch = 0;      ///< largest batch seen
  double estimate_seconds = 0.0;    ///< total wall time in Q/H estimation
  double solve_seconds = 0.0;       ///< total wall time in the Eq. 3 solver
  /// Snapshot of the process-wide thread pool batch fan-out runs on (shared
  /// with every other parallel_for user in the process, e.g. fleet
  /// generation — it observes the substrate, not this service alone).
  PoolStats pool{};
};

class PredictionService {
 public:
  explicit PredictionService(ServiceConfig config = {});

  const SmpEstimator& estimator() const { return estimator_; }
  const ServiceConfig& config() const { return config_; }

  /// Single prediction through the cache. Semantically identical to
  /// AvailabilityPredictor::predict with the same EstimatorConfig; a warm
  /// call returns the cold call's Prediction bit-for-bit.
  Prediction predict(const MachineTrace& trace,
                     const PredictionRequest& request);

  /// Batch fan-out over the thread pool; results align with `requests`.
  /// Every request must carry a non-null trace.
  std::vector<Prediction> predict_batch(std::span<const BatchRequest> requests);

  /// Per-request-fallible batch: same fan-out, but a request whose
  /// estimation fails (DataError — thin history, failpoint outage) yields
  /// nullopt instead of aborting the whole batch. The fleet-probe primitive
  /// for schedulers that skip unpredictable machines rather than re-probing
  /// serially.
  std::vector<std::optional<Prediction>> try_predict_batch(
      std::span<const BatchRequest> requests);

  /// Declares that `machine_id`'s trace gained new days: bumps the machine's
  /// history generation (making its old cache keys unreachable) and drops its
  /// cached entries. Other machines' entries are untouched.
  void invalidate(const std::string& machine_id);

  /// Current history generation for a machine (0 until first invalidate()).
  std::uint64_t history_generation(const std::string& machine_id) const;

  /// Memoized (machine, window) models currently cached, across all shards.
  std::size_t size() const;

  /// Drops every cache entry (generations are preserved).
  void clear();

  ServiceStats stats() const;

 private:
  struct Key {
    std::string machine_id;
    std::uint64_t generation = 0;
    DayType day_type = DayType::kWeekday;
    SimTime window_start = 0;
    SimTime window_length = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  /// A memoized estimation for one (machine, day-type, window, generation):
  /// the model, its precomputed absorption curves (validated and solved ONCE,
  /// when the model entered the cache — warm lookups never construct a
  /// solver or re-run SmpModel::validate), the training days that produced
  /// it (revalidated on every hit), and the solved Prediction per transient
  /// initial state.
  struct Entry {
    std::vector<std::int64_t> training_days;
    std::shared_ptr<const SmpModel> model;
    std::shared_ptr<const AbsorptionCurves> curves;
    State majority_initial = State::kS1;
    double estimate_seconds = 0.0;
    std::array<std::optional<Prediction>, 2> solved;  // by index_of(init)
  };

  struct Shard {
    std::mutex mutex;
    /// Front = most recently used; index points into the list.
    std::list<std::pair<Key, Entry>> lru;
    std::unordered_map<Key, std::list<std::pair<Key, Entry>>::iterator,
                       KeyHash> index;
  };

  Shard& shard_for(const Key& key) const;
  std::uint64_t generation_of(const std::string& machine_id) const;

  ServiceConfig config_;
  SmpEstimator estimator_;
  std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;

  mutable std::mutex generation_mutex_;
  std::unordered_map<std::string, std::uint64_t> generations_;

  // Per-instance instruments: the single storage behind both ServiceStats
  // (exact per-service snapshots, unpolluted by other instances) and the
  // global `service.*` exposition (attachments below fold them in by name).
  // The hot hit path therefore still costs exactly two relaxed atomic adds.
  Counter lookups_;
  Counter hits_;
  Counter partial_hits_;
  Counter misses_;
  Counter evictions_;
  Counter invalidations_;
  Counter stale_drops_;
  Counter batches_;
  Counter batch_requests_;
  Gauge max_batch_;
  Histogram estimate_hist_{Histogram::default_latency_bounds()};
  Histogram solve_hist_{Histogram::default_latency_bounds()};
  Histogram batch_hist_{Histogram::default_latency_bounds()};
  // Declared last: detaches from the global registry before the instruments
  // above are destroyed.
  std::vector<MetricsAttachment> metrics_attachments_;
};

}  // namespace fgcs
