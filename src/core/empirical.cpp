#include "core/empirical.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fgcs {

bool survives_window(std::span<const State> states) {
  if (states.empty() || is_failure(states.front())) return false;
  for (const State s : states)
    if (is_failure(s)) return false;
  return true;
}

EmpiricalTr empirical_tr(const MachineTrace& trace,
                         std::span<const std::int64_t> days,
                         const TimeWindow& window,
                         const StateClassifier& classifier) {
  EmpiricalTr result;
  for (const std::int64_t day : days) {
    if (!trace.window_in_range(day, window)) continue;
    const std::vector<State> states =
        classifier.classify_window(trace, day, window);
    if (states.empty() || is_failure(states.front())) continue;
    ++result.eligible_days;
    if (survives_window(states)) ++result.surviving_days;
  }
  if (result.eligible_days > 0)
    result.tr = static_cast<double>(result.surviving_days) /
                static_cast<double>(result.eligible_days);
  return result;
}

double relative_error(double predicted, double empirical) {
  FGCS_REQUIRE_MSG(empirical > 0.0,
                   "relative error undefined for zero empirical TR");
  return std::abs(predicted - empirical) / empirical;
}

UnavailabilityStats count_unavailability(const MachineTrace& trace,
                                         const StateClassifier& classifier) {
  // Classify the full trace day by day and count maximal same-state failure
  // runs across day boundaries.
  UnavailabilityStats stats;
  State previous = State::kS1;
  bool have_previous = false;
  for (std::int64_t day = 0; day < trace.day_count(); ++day) {
    const TimeWindow whole_day{.start_of_day = 0, .length = kSecondsPerDay};
    const std::vector<State> states =
        classifier.classify_window(trace, day, whole_day);
    for (const State s : states) {
      const bool new_run = !have_previous || s != previous;
      if (is_failure(s) && new_run) {
        switch (s) {
          case State::kS3: ++stats.cpu_contention; break;
          case State::kS4: ++stats.memory_thrash; break;
          case State::kS5: ++stats.revocation; break;
          default: break;
        }
      }
      previous = s;
      have_previous = true;
    }
  }
  return stats;
}

}  // namespace fgcs
