#include "core/predictor.hpp"

#include <chrono>

#include "util/error.hpp"

namespace fgcs {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

AvailabilityPredictor::AvailabilityPredictor(EstimatorConfig config)
    : estimator_(config) {}

Prediction AvailabilityPredictor::predict(const MachineTrace& trace,
                                          const PredictionRequest& request) const {
  validate(request.window);
  FGCS_REQUIRE_MSG(request.target_day >= 0 &&
                       request.target_day <= trace.day_count(),
                   "target day beyond recorded history + 1");

  Prediction prediction;
  prediction.steps = request.window.steps(trace.sampling_period());

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::int64_t> days =
      estimator_.training_days_for(trace, request.target_day, request.window);
  const TransitionCounts counts =
      estimator_.count_transitions(trace, days, request.window);
  const SmpModel model = estimator_.build_model(counts);
  prediction.training_days_used = days.size();
  prediction.initial_state =
      request.initial_state.value_or(
          estimator_.majority_initial_state(trace, days, request.window));
  FGCS_REQUIRE_MSG(is_available(prediction.initial_state),
                   "initial state must be S1 or S2");
  prediction.estimate_seconds = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  const SparseTrSolver solver(model);
  const SparseTrSolver::Result result =
      solver.solve(prediction.initial_state, prediction.steps);
  prediction.solve_seconds = seconds_since(t1);

  prediction.temporal_reliability = result.temporal_reliability;
  prediction.p_absorb = result.p_absorb;
  return prediction;
}

}  // namespace fgcs
