#include "core/predictor.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace fgcs {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

enum class SolverChoice { kSparse, kCurves };

/// FGCS_SOLVER selects the per-call solve path: "sparse" (default) runs the
/// direct recursion, "curves" builds an AbsorptionCurves table and reads it —
/// the CI golden leg uses the latter to prove the two are bit-identical.
SolverChoice solver_choice() {
  const char* env = std::getenv("FGCS_SOLVER");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "sparse") == 0)
    return SolverChoice::kSparse;
  if (std::strcmp(env, "curves") == 0) return SolverChoice::kCurves;
  FGCS_REQUIRE_MSG(false, "FGCS_SOLVER must be 'sparse' or 'curves'");
  return SolverChoice::kSparse;
}

}  // namespace

SparseTrSolver::Result solve_from_curves(AbsorptionCurves& curves, State init,
                                         std::size_t n_steps) {
  curves.extend_to(n_steps);
  return curves.result_at(init, n_steps);
}

AvailabilityPredictor::AvailabilityPredictor(EstimatorConfig config)
    : estimator_(config) {}

Prediction AvailabilityPredictor::predict(const MachineTrace& trace,
                                          const PredictionRequest& request) const {
  validate(request.window);
  FGCS_REQUIRE_MSG(request.target_day >= 0 &&
                       request.target_day <= trace.day_count(),
                   "target day beyond recorded history + 1");

  Prediction prediction;
  prediction.steps = request.window.steps(trace.sampling_period());

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::int64_t> days =
      estimator_.training_days_for(trace, request.target_day, request.window);
  const TransitionCounts counts =
      estimator_.count_transitions(trace, days, request.window);
  const SmpModel model = estimator_.build_model(counts);
  prediction.training_days_used = days.size();
  prediction.initial_state =
      request.initial_state.value_or(
          estimator_.majority_initial_state(trace, days, request.window));
  FGCS_REQUIRE_MSG(is_available(prediction.initial_state),
                   "initial state must be S1 or S2");
  prediction.estimate_seconds = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  SparseTrSolver::Result result;
  if (solver_choice() == SolverChoice::kCurves) {
    AbsorptionCurves curves(model, prediction.steps);
    result = curves.result_at(prediction.initial_state, prediction.steps);
  } else {
    static thread_local SolverScratch scratch;
    const SparseTrSolver solver(model);
    result = solver.solve(prediction.initial_state, prediction.steps, &scratch);
  }
  prediction.solve_seconds = seconds_since(t1);

  prediction.temporal_reliability = result.temporal_reliability;
  prediction.p_absorb = result.p_absorb;
  return prediction;
}

}  // namespace fgcs
