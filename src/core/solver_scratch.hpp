// Reusable per-worker scratch for the Eq. 3 solvers.
//
// A single SparseTrSolver::solve allocates ~10 step-sized vectors and frees
// them on return; a batched fleet probe repeats that per request, and the
// allocator churn is visible as noise in bench timings. A SolverScratch
// keeps those buffers alive between calls (capacity is retained, contents
// are re-zeroed), so a worker thread that solves thousands of requests in a
// batch allocates only on its first, largest call.
//
// Not thread-safe: use one instance per worker (the batching layers keep a
// thread_local). Values produced with and without scratch are bit-identical
// — `zeroed()` hands back exactly the all-zero vector a fresh allocation
// would.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace fgcs {

class SolverScratch {
 public:
  /// Distinct buffers a single solve may hold live at once.
  static constexpr std::size_t kSlots = 12;

  /// Slot `slot` reset to `n` zeros, reusing its previous capacity.
  std::vector<double>& zeroed(std::size_t slot, std::size_t n) {
    std::vector<double>& b = buffers_[slot];
    b.assign(n, 0.0);
    return b;
  }

  /// Raw slot access; contents are whatever the previous user left — callers
  /// must assign() before reading.
  std::vector<double>& buffer(std::size_t slot) { return buffers_[slot]; }

 private:
  std::array<std::vector<double>, kSlots> buffers_;
};

}  // namespace fgcs
