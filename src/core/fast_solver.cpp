#include "core/fast_solver.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/fft.hpp"

namespace fgcs {

namespace {

constexpr std::size_t kBaseBlock = 512;

/// Divide-and-conquer pass: x[lo..hi) receives all in-range contributions
/// k[l]·x[m−l] with m−l ∈ [lo, hi). Contributions from indices < lo must
/// already have been added by enclosing calls.
void renewal_recurse(std::vector<double>& x, std::span<const double> k,
                     std::size_t lo, std::size_t hi) {
  if (hi - lo <= kBaseBlock) {
    for (std::size_t m = lo; m < hi; ++m) {
      const std::size_t l_max = std::min(m - lo, k.size() - 1);
      for (std::size_t l = 1; l <= l_max; ++l) x[m] += k[l] * x[m - l];
    }
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  renewal_recurse(x, k, lo, mid);
  // Push the finalized left half onto the right half with one convolution.
  const std::span<const double> left(x.data() + lo, mid - lo);
  const std::size_t k_span = std::min(k.size(), hi - lo);
  const std::vector<double> cross =
      convolve(left, std::span<const double>(k.data(), k_span));
  for (std::size_t m = mid; m < hi; ++m) {
    const std::size_t t = m - lo;
    if (t < cross.size()) x[m] += cross[t];
  }
  renewal_recurse(x, k, mid, hi);
}

/// Truncating convolution helper: (a ⊛ b)[0..n].
std::vector<double> convolve_trunc(std::span<const double> a,
                                   std::span<const double> b, std::size_t n) {
  std::vector<double> c = convolve(a, b);
  c.resize(n + 1, 0.0);
  return c;
}

}  // namespace

std::vector<double> solve_renewal(std::span<const double> b,
                                  std::span<const double> kernel) {
  FGCS_REQUIRE(!b.empty());
  FGCS_REQUIRE_MSG(kernel.empty() || kernel[0] == 0.0,
                   "renewal kernel must vanish at lag 0");
  std::vector<double> x(b.begin(), b.end());
  if (kernel.size() <= 1) return x;  // no feedback at all
  renewal_recurse(x, kernel, 0, x.size());
  return x;
}

FastTrSolver::FastTrSolver(const SmpModel& model) : model_(model) {
  FGCS_REQUIRE_MSG(model.n_states() == kStateCount,
                   "FastTrSolver requires the 5-state FGCS model");
  model.validate();
  for (const State failure : kFailureStates)
    for (std::size_t to = 0; to < kStateCount; ++to)
      FGCS_REQUIRE_MSG(model.q(index_of(failure), to) == 0.0,
                       "failure states must be absorbing");
}

SparseTrSolver::Series FastTrSolver::solve_series(std::size_t n_steps) const {
  const std::size_t n = n_steps;
  const std::size_t s1 = index_of(State::kS1);
  const std::size_t s2 = index_of(State::kS2);
  const std::vector<double> a12 = weighted_holding_pmf(model_, s1, s2, n);
  const std::vector<double> a21 = weighted_holding_pmf(model_, s2, s1, n);
  std::vector<double> kernel = convolve_trunc(a12, a21, n);
  // Both factors vanish at lag 0, so lags 0 and 1 of the product are exactly
  // zero analytically; scrub the FFT round-off to keep strict causality.
  kernel[0] = 0.0;
  if (kernel.size() > 1) kernel[1] = 0.0;

  SparseTrSolver::Series series;
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    const std::size_t j = index_of(kFailureStates[jj]);
    const std::vector<double> d1 = weighted_holding_pmf(model_, s1, j, n);
    const std::vector<double> d2 = weighted_holding_pmf(model_, s2, j, n);

    // Cumulative direct-absorption terms.
    std::vector<double> d1c(n + 1, 0.0), d2c(n + 1, 0.0);
    for (std::size_t m = 1; m <= n; ++m) {
      d1c[m] = d1c[m - 1] + d1[m];
      d2c[m] = d2c[m - 1] + d2[m];
    }

    // P1 = (D1c + A12 ⊛ D2c) + K ⊛ P1,  P2 = D2c + A21 ⊛ P1.
    std::vector<double> b1 = convolve_trunc(a12, d2c, n);
    for (std::size_t m = 0; m <= n; ++m) b1[m] += d1c[m];
    std::vector<double> p1 = solve_renewal(b1, kernel);

    std::vector<double> p2 = convolve_trunc(a21, p1, n);
    for (std::size_t m = 0; m <= n; ++m) p2[m] += d2c[m];

    series[0][jj] = std::move(p1);
    series[1][jj] = std::move(p2);
  }
  return series;
}

SparseTrSolver::Result FastTrSolver::solve(State init,
                                           std::size_t n_steps) const {
  FGCS_REQUIRE_MSG(is_available(init),
                   "temporal reliability is defined for available initial states");
  const SparseTrSolver::Series series = solve_series(n_steps);
  const std::size_t row = index_of(init);
  SparseTrSolver::Result result;
  double absorbed = 0.0;
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    result.p_absorb[jj] = series[row][jj][n_steps];
    absorbed += result.p_absorb[jj];
  }
  result.temporal_reliability = std::clamp(1.0 - absorbed, 0.0, 1.0);
  return result;
}

}  // namespace fgcs
