// Threshold configuration mapping observable host resource usage to the
// five-state model.
//
// Th1 and Th2 come from the paper's offline contention study (§3.2): on the
// Linux testbed a default-priority guest causes noticeable (>5 %) host
// slowdown once host load exceeds Th1 = 20 %, and even a reniced guest does
// once host load exceeds Th2 = 60 %. Load excursions above Th2 shorter than
// one minute are transient (the guest is briefly suspended, not killed) and
// do not leave S1/S2. `bench_sec32_contention` re-derives both thresholds
// from the simulated contention study.
#pragma once

#include "util/error.hpp"
#include "util/time.hpp"

namespace fgcs {

struct Thresholds {
  /// Host load above which the guest must run at lowest priority (fraction).
  double th1 = 0.20;
  /// Host load above which any guest must be terminated (fraction).
  double th2 = 0.60;
  /// Spikes above th2 shorter than this stay in S1/S2 (paper: 1 minute).
  SimTime transient_limit = 60;
  /// Assumed guest working-set size: free memory below this is S4 (thrash).
  int guest_mem_mb = 100;
  /// Host slowdown considered "noticeable" in the contention study.
  double noticeable_slowdown = 0.05;
};

inline void validate(const Thresholds& t) {
  FGCS_REQUIRE_MSG(t.th1 > 0.0 && t.th1 < t.th2 && t.th2 <= 1.0,
                   "need 0 < th1 < th2 <= 1");
  FGCS_REQUIRE(t.transient_limit >= 0);
  FGCS_REQUIRE(t.guest_mem_mb > 0);
  FGCS_REQUIRE(t.noticeable_slowdown > 0.0 && t.noticeable_slowdown < 1.0);
}

}  // namespace fgcs
