#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fgcs {

FailureAnalysis analyze_failure(const SmpModel& model, State init,
                                std::size_t horizon) {
  FGCS_REQUIRE(horizon >= 1);
  const SparseTrSolver solver(model);
  const SparseTrSolver::Series series = solver.solve_series(horizon);
  const std::size_t row = index_of(init);
  FGCS_REQUIRE_MSG(row < 2, "initial state must be S1 or S2");

  FailureAnalysis analysis;
  // F(m) = Pr(failed by m) = Σ_j P_init,j(m);  E[min(T_fail, horizon)]
  // = Σ_{m=0}^{horizon-1} (1 − F(m)) by the tail-sum formula.
  double mean = 0.0;
  for (std::size_t m = 0; m < horizon; ++m) {
    double failed = 0.0;
    for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj)
      failed += series[row][jj][m];
    mean += std::max(0.0, 1.0 - failed);
  }
  analysis.mean_ticks_to_failure = mean;

  double total_failed = 0.0;
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    analysis.failure_mode[jj] = series[row][jj][horizon];
    total_failed += analysis.failure_mode[jj];
  }
  analysis.survival_at_horizon = std::clamp(1.0 - total_failed, 0.0, 1.0);

  analysis.dominant_outcome = State::kS1;  // survival
  double best = analysis.survival_at_horizon;
  for (std::size_t jj = 0; jj < kFailureStates.size(); ++jj) {
    if (analysis.failure_mode[jj] > best) {
      best = analysis.failure_mode[jj];
      analysis.dominant_outcome = kFailureStates[jj];
    }
  }
  return analysis;
}

ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double z) {
  FGCS_REQUIRE(trials >= 1);
  FGCS_REQUIRE(successes <= trials);
  FGCS_REQUIRE(z > 0);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  ConfidenceInterval ci;
  ci.lower = std::max(0.0, (centre - margin) / denom);
  ci.upper = std::min(1.0, (centre + margin) / denom);
  return ci;
}

}  // namespace fgcs
