#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TableTest, RejectsWrongRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table t({"k", "v"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"quote\"inside", "x"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("k,v\n"), std::string::npos);
  EXPECT_NE(out.find("plain,\"has,comma\"\n"), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\",x\n"), std::string::npos);
}

TEST(TableTest, NumAndPctFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.8651, 1), "86.5%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(TableTest, RowCountTracksAdds) {
  Table t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, BannerFormat) {
  std::ostringstream os;
  print_banner(os, "Fig 5");
  EXPECT_EQ(os.str(), "\n== Fig 5 ==\n");
}

}  // namespace
}  // namespace fgcs
