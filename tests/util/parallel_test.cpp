#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fgcs {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for(kCount, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kCount; ++i)
    EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelForTest, ZeroCountIsNoOp) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadMatchesSerial) {
  std::vector<std::size_t> order;
  parallel_for(8, [&](std::size_t i) { order.push_back(i); },
               /*max_threads=*/1);
  // Exactly the serial order when restricted to one thread.
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  auto compute = [](unsigned threads) {
    std::vector<double> out(257, 0.0);
    parallel_for(out.size(),
                 [&](std::size_t i) {
                   out[i] = static_cast<double>(i) * 1.5 + 1.0;
                 },
                 threads);
    return out;
  };
  const auto serial = compute(1);
  for (const unsigned threads : {2u, 3u, 8u}) EXPECT_EQ(compute(threads), serial);
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelForTest, MoreThreadsThanWorkIsFine) {
  std::vector<std::atomic<int>> visits(3);
  parallel_for(3, [&](std::size_t i) { ++visits[i]; }, 16);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

}  // namespace
}  // namespace fgcs
