// Property tests for the observability instruments (DESIGN.md §8):
//
//  - Histogram: count() == Σ bucket counts in *every* snapshot, including
//    ones racing concurrent observes (the invariant holds by construction —
//    there is no separate total that could drift).
//  - Counter: values are exact and monotone under concurrent hammering.
//  - render_text(): parseable Prometheus text format, byte-stable ordering,
//    owned instruments and attachments merged by name.
//
// Tests use local MetricsRegistry instances so the process-global registry
// (which accumulates across every test in this binary) stays out of the
// assertions.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(MetricsCounterTest, AddValueReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsCounterTest, MonotoneAndExactUnderConcurrentHammering) {
  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 20000;
  std::atomic<bool> done{false};
  bool monotone = true;
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const std::uint64_t v = counter.value();
      if (v < last) monotone = false;
      last = v;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  for (std::thread& thread : writers) thread.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsGaugeTest, SetAddUpdateMax) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.update_max(1.0);  // smaller: no change
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.update_max(7.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricsGaugeTest, ConcurrentAddSumsExactly) {
  // Small-integer increments are exact in doubles, so the CAS loop must
  // account for every single one.
  Gauge gauge;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&gauge] {
      for (int i = 0; i < kAddsPerThread; ++i) gauge.add(1.0);
    });
  for (std::thread& thread : writers) thread.join();
  EXPECT_DOUBLE_EQ(gauge.value(), double(kThreads) * kAddsPerThread);
}

TEST(MetricsGaugeTest, ConcurrentUpdateMaxKeepsGlobalMax) {
  Gauge gauge;
  constexpr int kThreads = 4;
  constexpr int kSteps = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&gauge, t] {
      for (int i = 0; i < kSteps; ++i)
        gauge.update_max(double(t) * kSteps + i);
    });
  for (std::thread& thread : writers) thread.join();
  EXPECT_DOUBLE_EQ(gauge.value(), double(kThreads - 1) * kSteps + (kSteps - 1));
}

TEST(MetricsHistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), PreconditionError);
  EXPECT_THROW(Histogram({1.0, 1.0}), PreconditionError);
  EXPECT_THROW(Histogram({2.0, 1.0}), PreconditionError);
}

TEST(MetricsHistogramTest, LeBucketSemantics) {
  // Prometheus `le`: a value lands in the first bucket whose bound is >= it;
  // values above every bound land in the implicit +Inf overflow bucket.
  Histogram hist({1.0, 2.0, 4.0});
  hist.observe(0.5);  // bucket 0
  hist.observe(1.0);  // bucket 0 (le is inclusive)
  hist.observe(1.5);  // bucket 1
  hist.observe(4.0);  // bucket 2
  hist.observe(9.0);  // overflow
  ASSERT_EQ(hist.bucket_count(), 4u);
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(2), 1u);
  EXPECT_EQ(hist.bucket(3), 1u);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 16.0);
  EXPECT_THROW(hist.bucket(4), PreconditionError);
}

TEST(MetricsHistogramTest, CountEqualsBucketSumEvenWhileRacingObserves) {
  // The load-bearing invariant: every snapshot satisfies count == Σ buckets,
  // even one taken mid-hammering, because the count *is* the bucket sum.
  Histogram hist({0.25, 0.5, 0.75});
  constexpr int kThreads = 4;
  constexpr int kObservesPerThread = 5000;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const Histogram::Snapshot snap = hist.snapshot();
      std::uint64_t total = 0;
      for (const std::uint64_t b : snap.buckets) total += b;
      if (snap.count != total) violations.fetch_add(1);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&hist, t] {
      for (int i = 0; i < kObservesPerThread; ++i)
        hist.observe(double((t + i) % 10) / 10.0);
    });
  for (std::thread& thread : writers) thread.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kObservesPerThread);
}

TEST(MetricsHistogramTest, ResetZeroesEverything) {
  Histogram hist({1.0});
  hist.observe(0.5);
  hist.observe(2.0);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
  for (std::size_t i = 0; i < hist.bucket_count(); ++i)
    EXPECT_EQ(hist.bucket(i), 0u);
}

TEST(MetricsHistogramTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<double> bounds = Histogram::default_latency_bounds();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LT(bounds[i - 1], bounds[i]);
  // Micro to multi-second coverage for wall-time metrics.
  EXPECT_LE(bounds.front(), 1e-6);
  EXPECT_GE(bounds.back(), 10.0);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.total");
  Counter& b = registry.counter("x.total");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.gauge("x.depth");
  Gauge& g2 = registry.gauge("x.depth");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry.latency_histogram("x.seconds");
  // Later bounds are ignored: the first creation wins.
  Histogram& h2 = registry.histogram("x.seconds", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds(), Histogram::default_latency_bounds());
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("strict.total");
  EXPECT_THROW(registry.gauge("strict.total"), PreconditionError);
  EXPECT_THROW(registry.latency_histogram("strict.total"), PreconditionError);
  registry.gauge("strict.depth");
  EXPECT_THROW(registry.counter("strict.depth"), PreconditionError);
}

TEST(MetricsRegistryTest, ValueHelpersDefaultToZeroWhenAbsent) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("no.such.metric"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("no.such.metric"), 0.0);
}

TEST(MetricsRegistryTest, AttachmentsSumWithOwnedAndDetachOnDrop) {
  MetricsRegistry registry;
  registry.counter("dual.total").add(2);
  Counter external;
  external.add(5);
  {
    const MetricsAttachment attachment =
        registry.attach("dual.total", external);
    EXPECT_EQ(registry.counter_value("dual.total"), 7u);
  }
  // Attachment dropped: only the owned instrument remains.
  EXPECT_EQ(registry.counter_value("dual.total"), 2u);
}

TEST(MetricsRegistryTest, AttachmentMoveTransfersOwnership) {
  MetricsRegistry registry;
  Counter external;
  external.add(3);
  MetricsAttachment first = registry.attach("moved.total", external);
  MetricsAttachment second = std::move(first);
  EXPECT_EQ(registry.counter_value("moved.total"), 3u);
  second.detach();
  EXPECT_EQ(registry.counter_value("moved.total"), 0u);
  second.detach();  // idempotent
}

TEST(MetricsRegistryTest, AttachmentKindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("clash.total");
  Gauge gauge;
  EXPECT_THROW((void)registry.attach("clash.total", gauge), PreconditionError);
  Counter counter;
  const MetricsAttachment ok = registry.attach("clash.other", counter);
  EXPECT_THROW((void)registry.attach("clash.other", gauge), PreconditionError);
}

TEST(MetricsRegistryTest, CallbackAttachmentsReportDerivedValues) {
  MetricsRegistry registry;
  double backing = 1.5;
  const MetricsAttachment attachment = registry.attach_callback(
      "derived.depth", MetricsRegistry::Kind::kGauge, [&] { return backing; });
  EXPECT_DOUBLE_EQ(registry.gauge_value("derived.depth"), 1.5);
  backing = 9.0;  // callbacks are read at query time, not attach time
  EXPECT_DOUBLE_EQ(registry.gauge_value("derived.depth"), 9.0);
  EXPECT_THROW((void)registry.attach_callback("derived.hist",
                                              MetricsRegistry::Kind::kHistogram,
                                              [] { return 0.0; }),
               PreconditionError);
}

TEST(MetricsRegistryTest, ResetZeroesOwnedButNotAttachments) {
  MetricsRegistry registry;
  registry.counter("mix.total").add(4);
  Counter external;
  external.add(6);
  const MetricsAttachment attachment = registry.attach("mix.total", external);
  registry.reset();
  // Owned value dropped to 0; the external owner's value is its own business.
  EXPECT_EQ(registry.counter_value("mix.total"), 6u);
  EXPECT_EQ(external.value(), 6u);
}

TEST(MetricsRegistryTest, NamesAreSortedAndUnique) {
  MetricsRegistry registry;
  registry.counter("b.total");
  registry.gauge("a.depth");
  Counter external;
  const MetricsAttachment attachment = registry.attach("b.total", external);
  const std::vector<std::string> names = registry.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a.depth");
  EXPECT_EQ(names[1], "b.total");
}

/// Minimal Prometheus text-format parser: every line is either a
/// `# TYPE <name> <kind>` comment or `name[{le="bound"}] value` with a
/// numeric value that strtod consumes completely.
void expect_parseable_exposition(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(stream, line)) {
    ++lines;
    ASSERT_FALSE(line.empty()) << "blank line " << lines;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line);
      std::string hash, type, name, kind;
      fields >> hash >> type >> name >> kind;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    std::size_t i = 0;
    const auto name_char = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
             c == ':';
    };
    while (i < name.size() && name_char(name[i])) ++i;
    EXPECT_GT(i, 0u) << line;
    if (i < name.size()) {  // histogram bucket label
      EXPECT_EQ(name.compare(i, 5, "{le=\""), 0) << line;
      EXPECT_EQ(name.back(), '}') << line;
    }
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);  // accepts "+Inf" too
    EXPECT_NE(end, value.c_str()) << line;
    EXPECT_EQ(*end, '\0') << line;
  }
  EXPECT_GT(lines, 0u);
}

TEST(MetricsRenderTest, ExpositionIsParseableAndStableOrdered) {
  MetricsRegistry registry;
  // Registered deliberately out of alphabetical order.
  registry.gauge("zeta.depth").set(3.25);
  registry.counter("service.lookups.total").add(17);
  registry.latency_histogram("alpha.seconds").observe(0.002);

  const std::string first = registry.render_text();
  expect_parseable_exposition(first);
  // Byte-stable: a second render with unchanged values is identical.
  EXPECT_EQ(registry.render_text(), first);
  // Lexicographic metric order, independent of registration order.
  const std::size_t alpha = first.find("fgcs_alpha_seconds");
  const std::size_t service = first.find("fgcs_service_lookups_total");
  const std::size_t zeta = first.find("fgcs_zeta_depth");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(service, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, service);
  EXPECT_LT(service, zeta);
  // Dots sanitize to underscores under the fgcs_ prefix.
  EXPECT_NE(first.find("fgcs_service_lookups_total 17\n"), std::string::npos);
}

TEST(MetricsRenderTest, HistogramRendersCumulativeBucketsSumAndCount) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("solve.seconds", {1.0, 2.0});
  hist.observe(0.5);
  hist.observe(1.5);
  hist.observe(7.0);
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("# TYPE fgcs_solve_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("fgcs_solve_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("fgcs_solve_seconds_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fgcs_solve_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("fgcs_solve_seconds_sum 9\n"), std::string::npos);
  EXPECT_NE(text.find("fgcs_solve_seconds_count 3\n"), std::string::npos);
}

TEST(MetricsRenderTest, AttachedHistogramsMergeBucketwise) {
  MetricsRegistry registry;
  registry.histogram("merge.seconds", {1.0}).observe(0.5);
  Histogram external({1.0});
  external.observe(0.25);
  external.observe(5.0);
  const MetricsAttachment attachment =
      registry.attach("merge.seconds", external);
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("fgcs_merge_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fgcs_merge_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("fgcs_merge_seconds_count 3\n"), std::string::npos);
}

TEST(MetricsRenderTest, MergedHistogramsMustShareBounds) {
  MetricsRegistry registry;
  registry.histogram("clash.seconds", {1.0});
  Histogram external({2.0});
  const MetricsAttachment attachment =
      registry.attach("clash.seconds", external);
  EXPECT_THROW((void)registry.render_text(), PreconditionError);
}

TEST(MetricsRegistryTest, GlobalRegistryIsASingleton) {
  MetricsRegistry& a = MetricsRegistry::global();
  MetricsRegistry& b = MetricsRegistry::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace fgcs
