#include "util/time.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(CalendarTest, DayIndexOfNonNegativeTimes) {
  EXPECT_EQ(Calendar::day_index(0), 0);
  EXPECT_EQ(Calendar::day_index(1), 0);
  EXPECT_EQ(Calendar::day_index(kSecondsPerDay - 1), 0);
  EXPECT_EQ(Calendar::day_index(kSecondsPerDay), 1);
  EXPECT_EQ(Calendar::day_index(10 * kSecondsPerDay + 5), 10);
}

TEST(CalendarTest, DayIndexOfNegativeTimes) {
  EXPECT_EQ(Calendar::day_index(-1), -1);
  EXPECT_EQ(Calendar::day_index(-kSecondsPerDay), -1);
  EXPECT_EQ(Calendar::day_index(-kSecondsPerDay - 1), -2);
}

TEST(CalendarTest, SecondOfDayWrapsCorrectly) {
  EXPECT_EQ(Calendar::second_of_day(0), 0);
  EXPECT_EQ(Calendar::second_of_day(kSecondsPerDay + 42), 42);
  EXPECT_EQ(Calendar::second_of_day(-1), kSecondsPerDay - 1);
}

TEST(CalendarTest, MondayEpochWeekendsOnDays5And6) {
  const Calendar cal(0);  // day 0 = Monday
  EXPECT_EQ(cal.day_type(0), DayType::kWeekday);
  EXPECT_EQ(cal.day_type(4), DayType::kWeekday);
  EXPECT_EQ(cal.day_type(5), DayType::kWeekend);
  EXPECT_EQ(cal.day_type(6), DayType::kWeekend);
  EXPECT_EQ(cal.day_type(7), DayType::kWeekday);
}

TEST(CalendarTest, EpochDayOfWeekShiftsTheWeek) {
  const Calendar cal(6);  // day 0 = Sunday
  EXPECT_EQ(cal.day_type(0), DayType::kWeekend);
  EXPECT_EQ(cal.day_type(1), DayType::kWeekday);
  EXPECT_EQ(cal.day_type(6), DayType::kWeekend);
}

TEST(CalendarTest, DayOfWeekHandlesNegativeDays) {
  const Calendar cal(0);
  EXPECT_EQ(cal.day_of_week(-1), 6);  // the day before Monday is Sunday
  EXPECT_EQ(cal.day_of_week(-7), 0);
}

TEST(CalendarTest, RejectsBadEpochDayOfWeek) {
  EXPECT_THROW(Calendar(7), PreconditionError);
  EXPECT_THROW(Calendar(-1), PreconditionError);
}

TEST(TimeFormatTest, FormatsTimeOfDay) {
  EXPECT_EQ(format_time_of_day(0), "00:00:00");
  EXPECT_EQ(format_time_of_day(8 * kSecondsPerHour + 5 * 60 + 9), "08:05:09");
  EXPECT_EQ(format_time_of_day(kSecondsPerDay - 1), "23:59:59");
}

TEST(TimeFormatTest, RejectsOutOfRangeSecondOfDay) {
  EXPECT_THROW(format_time_of_day(kSecondsPerDay), PreconditionError);
  EXPECT_THROW(format_time_of_day(-1), PreconditionError);
}

TEST(TimeFormatTest, FormatsAbsoluteSimTime) {
  EXPECT_EQ(format_sim_time(0), "d0 00:00:00");
  EXPECT_EQ(format_sim_time(3 * kSecondsPerDay + kSecondsPerHour), "d3 01:00:00");
}

TEST(DayTypeTest, ToString) {
  EXPECT_STREQ(to_string(DayType::kWeekday), "weekday");
  EXPECT_STREQ(to_string(DayType::kWeekend), "weekend");
}

}  // namespace
}  // namespace fgcs
