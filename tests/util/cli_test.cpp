#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/time.hpp"

namespace fgcs {
namespace {

ArgParser parse(std::initializer_list<const char*> argv,
                std::set<std::string> flags = {}) {
  std::vector<const char*> args(argv);
  return ArgParser(static_cast<int>(args.size()), args.data(), std::move(flags));
}

TEST(ArgParserTest, SpaceAndEqualsForms) {
  const ArgParser args = parse({"prog", "--name", "alpha", "--count=3"});
  EXPECT_EQ(args.get("name"), "alpha");
  EXPECT_EQ(args.get_int("count"), 3);
}

TEST(ArgParserTest, FlagsTakeNoValue) {
  const ArgParser args =
      parse({"prog", "--verbose", "--out", "x"}, {"verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_EQ(args.get("out"), "x");
}

TEST(ArgParserTest, PositionalArguments) {
  const ArgParser args = parse({"prog", "first", "--k", "v", "second"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(ArgParserTest, DefaultsAndMissing) {
  const ArgParser args = parse({"prog"});
  EXPECT_EQ(args.get_or("name", "fallback"), "fallback");
  EXPECT_EQ(args.get_int_or("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double_or("x", 1.5), 1.5);
  EXPECT_THROW(args.get("name"), PreconditionError);
}

TEST(ArgParserTest, NumericValidation) {
  const ArgParser args = parse({"prog", "--n", "12x", "--x", "3.5"});
  EXPECT_THROW(args.get_int("n"), PreconditionError);
  EXPECT_DOUBLE_EQ(args.get_double("x"), 3.5);
}

TEST(ArgParserTest, ValueOptionAtEndWithoutValueThrows) {
  std::vector<const char*> argv{"prog", "--dangling"};
  EXPECT_THROW(ArgParser(2, argv.data()), PreconditionError);
}

TEST(ArgParserTest, UnknownOptionDetection) {
  const ArgParser args = parse({"prog", "--known", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int("known"), 1);
  EXPECT_THROW(args.check_all_consumed(), PreconditionError);
}

TEST(ArgParserTest, AllConsumedPasses) {
  const ArgParser args = parse({"prog", "--a", "1"}, {});
  EXPECT_EQ(args.get_int("a"), 1);
  EXPECT_NO_THROW(args.check_all_consumed());
}

TEST(ParseTimeOfDayTest, Formats) {
  EXPECT_EQ(parse_time_of_day("08:30"), 8 * kSecondsPerHour + 1800);
  EXPECT_EQ(parse_time_of_day("23:59:59"), kSecondsPerDay - 1);
  EXPECT_EQ(parse_time_of_day("00:00"), 0);
}

TEST(ParseTimeOfDayTest, RejectsBadInput) {
  EXPECT_THROW(parse_time_of_day("24:00"), PreconditionError);
  EXPECT_THROW(parse_time_of_day("12:60"), PreconditionError);
  EXPECT_THROW(parse_time_of_day("noon"), PreconditionError);
  EXPECT_THROW(parse_time_of_day("7"), PreconditionError);
}

}  // namespace
}  // namespace fgcs
