#include "util/fft.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

TEST(FftTest, ForwardInverseRoundTrip) {
  Rng rng(1);
  std::vector<std::complex<double>> a(64);
  for (auto& x : a) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto original = a;
  fft_inplace(a, false);
  fft_inplace(a, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), original[i].real(), 1e-12) << i;
    EXPECT_NEAR(a[i].imag(), original[i].imag(), 1e-12) << i;
  }
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> a(8, 0.0);
  a[0] = 1.0;
  fft_inplace(a, false);
  for (const auto& x : a) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> a(6);
  EXPECT_THROW(fft_inplace(a, false), PreconditionError);
  std::vector<std::complex<double>> empty;
  EXPECT_THROW(fft_inplace(empty, false), PreconditionError);
}

TEST(NextPow2Test, Values) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_THROW(next_pow2(0), PreconditionError);
}

TEST(ConvolveTest, SmallKnownCase) {
  // (1 + 2x)(3 + 4x) = 3 + 10x + 8x².
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, 4.0};
  const std::vector<double> c = convolve(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 3.0, 1e-12);
  EXPECT_NEAR(c[1], 10.0, 1e-12);
  EXPECT_NEAR(c[2], 8.0, 1e-12);
}

class ConvolveRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ConvolveRandomTest, FftMatchesDirectSum) {
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  // Sizes straddling the FFT crossover.
  const std::size_t na = 16 + static_cast<std::size_t>(GetParam()) * 37;
  const std::size_t nb = 8 + static_cast<std::size_t>(GetParam()) * 53;
  std::vector<double> a(na), b(nb);
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);

  const std::vector<double> fast = convolve(a, b);
  ASSERT_EQ(fast.size(), na + nb - 1);
  for (std::size_t k = 0; k < fast.size(); ++k) {
    double direct = 0.0;
    for (std::size_t i = 0; i < na; ++i)
      if (k >= i && k - i < nb) direct += a[i] * b[k - i];
    EXPECT_NEAR(fast[k], direct, 1e-9) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvolveRandomTest, ::testing::Range(0, 8));

TEST(ConvolveTest, RejectsEmptyInput) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(convolve({}, a), PreconditionError);
  EXPECT_THROW(convolve(a, {}), PreconditionError);
}

}  // namespace
}  // namespace fgcs
