#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fgcs {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 30);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double acc = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSinglePoint) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(2, 1), PreconditionError);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double acc = 0.0, acc2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    acc += x;
    acc2 += x * x;
  }
  const double mean = acc / kN;
  const double var = acc2 / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  double acc = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) acc += rng.exponential(2.5);
  EXPECT_NEAR(acc / kN, 2.5, 0.05);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(23);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
}

TEST(RngTest, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(29);
  for (const double mean : {0.3, 4.0, 120.0}) {
    double acc = 0.0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i)
      acc += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(acc / kN, mean, mean * 0.05 + 0.02) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(5);
  const auto first = rng();
  rng.reseed(5);
  EXPECT_EQ(rng(), first);
}

}  // namespace
}  // namespace fgcs
