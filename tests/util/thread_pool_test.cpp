#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/parallel.hpp"

namespace fgcs {
namespace {

TEST(ThreadPoolTest, WorkerCountRespectsConstructorArg) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  ThreadPool autodetect(0);
  EXPECT_GE(autodetect.worker_count(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  std::future<int> result = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> result =
      pool.submit([]() -> void { throw std::runtime_error("submit boom"); });
  EXPECT_THROW(result.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyQueuedSubmitsAllExecute) {
  ThreadPool pool(2);
  constexpr int kTasks = 500;
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t)
    futures.push_back(pool.submit([&ran] { ++ran; }));
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, OversubscribedRangeVisitsEveryIndexOnce) {
  // Far more indices than workers: chunk claiming + stealing must still
  // cover the range exactly once.
  ThreadPool pool(2);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> visits(kCount);
  pool.for_each_index(kCount, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kCount; ++i)
    ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, SerialCapRunsInOrderOnCaller) {
  ThreadPool pool(4);
  std::vector<std::size_t> order;
  pool.for_each_index(8, [&](std::size_t i) { order.push_back(i); },
                      /*max_concurrency=*/1);
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.for_each_index(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedForEachDoesNotDeadlock) {
  // Every outer chunk starts a full inner loop on the same (tiny) pool.
  // The caller of each loop participates in its own range, so progress never
  // depends on a free worker — this must finish even though the two workers
  // are all occupied by outer chunks while the inner loops run.
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kInner = 8;
  std::atomic<int> total{0};
  pool.for_each_index(
      kOuter,
      [&](std::size_t) {
        pool.for_each_index(kInner, [&](std::size_t) { ++total; }, 4);
      },
      4);
  EXPECT_EQ(total.load(), static_cast<int>(kOuter * kInner));
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  std::atomic<int> total{0};
  parallel_for(4, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { ++total; }, 4);
  }, 4);
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, ForEachPropagatesFirstException) {
  ThreadPool pool(4);
  try {
    pool.for_each_index(64, [](std::size_t i) {
      if (i == 13) throw std::runtime_error("pool boom");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "pool boom");
  }
}

TEST(ThreadPoolTest, ExceptionParityWithSpawnPath) {
  // The retired spawn-per-call path and the pool-backed parallel_for keep
  // the same contract: the (single) thrown exception surfaces at the call
  // site with its message intact.
  const auto throwing_body = [](std::size_t i) {
    if (i == 7) throw std::runtime_error("parity boom");
  };
  std::string spawn_message, pool_message;
  try {
    spawn_parallel_for(32, throwing_body, 4);
  } catch (const std::runtime_error& error) {
    spawn_message = error.what();
  }
  try {
    parallel_for(32, throwing_body, 4);
  } catch (const std::runtime_error& error) {
    pool_message = error.what();
  }
  EXPECT_EQ(spawn_message, "parity boom");
  EXPECT_EQ(pool_message, spawn_message);
}

TEST(ThreadPoolTest, DefaultPoolIsAProcessSingleton) {
  ThreadPool& a = ThreadPool::default_pool();
  ThreadPool& b = ThreadPool::default_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.worker_count(), 1u);
}

TEST(ThreadPoolTest, StatsReflectActivity) {
  ThreadPool pool(2);
  const PoolStats before = pool.stats();
  EXPECT_EQ(before.workers, 2u);
  EXPECT_FALSE(before.started);  // lazily started: no work yet
  EXPECT_EQ(before.tasks_submitted, 0u);

  std::atomic<int> ran{0};
  pool.for_each_index(256, [&](std::size_t) { ++ran; });
  pool.submit([] {}).get();

  const PoolStats after = pool.stats();
  EXPECT_TRUE(after.started);
  EXPECT_EQ(after.parallel_fors, 1u);
  EXPECT_GE(after.tasks_submitted, 1u);
  EXPECT_LE(after.tasks_executed, after.tasks_submitted);
  EXPECT_GE(after.queue_depth_high_water, 1u);
  EXPECT_GE(after.utilization(), 0.0);
  EXPECT_LE(after.utilization(), 1.0);
}

// Stress: many back-to-back loops and submits racing on one small pool.
// Primarily a TSan target (CI runs this suite under -fsanitize=thread); the
// assertions also catch lost or double-run indices under contention.
TEST(ThreadPoolTest, StressManySmallLoopsAndSubmits) {
  ThreadPool pool(4);
  constexpr int kRounds = 200;
  constexpr std::size_t kCount = 64;
  std::atomic<long> sum{0};
  for (int round = 0; round < kRounds; ++round) {
    pool.for_each_index(kCount, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i) + 1, std::memory_order_relaxed);
    });
    pool.submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); }).get();
  }
  const long per_loop = static_cast<long>(kCount * (kCount + 1) / 2);
  EXPECT_EQ(sum.load(), kRounds * (per_loop + 1));
}

}  // namespace
}  // namespace fgcs
