#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_THROW(s.min(), PreconditionError);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  Rng rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 2.0);
}

TEST(PercentileTest, RejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 0.5), PreconditionError);
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, 1.5), PreconditionError);
}

TEST(SummaryTest, MatchesComponents) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(AutocovarianceTest, WhiteNoiseDecorrelates) {
  Rng rng(3);
  std::vector<double> x(20000);
  for (double& v : x) v = rng.normal(0.0, 1.0);
  const std::vector<double> gamma = autocovariance(x, 3);
  EXPECT_NEAR(gamma[0], 1.0, 0.05);
  EXPECT_NEAR(gamma[1], 0.0, 0.03);
  EXPECT_NEAR(gamma[2], 0.0, 0.03);
}

TEST(AutocovarianceTest, Ar1StructureRecovered) {
  // x_t = 0.8 x_{t-1} + ε: autocorrelation at lag k is 0.8^k.
  Rng rng(5);
  std::vector<double> x(50000);
  double prev = 0.0;
  for (double& v : x) {
    prev = 0.8 * prev + rng.normal(0.0, 1.0);
    v = prev;
  }
  const std::vector<double> rho = autocorrelation(x, 3);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
  EXPECT_NEAR(rho[1], 0.8, 0.03);
  EXPECT_NEAR(rho[2], 0.64, 0.04);
  EXPECT_NEAR(rho[3], 0.512, 0.05);
}

TEST(AutocovarianceTest, ConstantSeriesIsAllZero) {
  const std::vector<double> x(100, 2.5);
  const std::vector<double> rho = autocorrelation(x, 2);
  for (const double r : rho) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(AutocovarianceTest, RejectsTooShortSeries) {
  const std::vector<double> x{1.0, 2.0};
  EXPECT_THROW(autocovariance(x, 2), PreconditionError);
}

TEST(FitLineTest, RecoversExactLine) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, DegenerateXGivesMeanIntercept) {
  const std::vector<double> x{2.0, 2.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  const LinearFit fit = fit_line(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

}  // namespace
}  // namespace fgcs
