// RAII tracing spans and the JSONL trace log (DESIGN.md §8): spans feed
// their histogram exactly once, finish() is idempotent and returns the same
// elapsed time the histogram saw, and an opened TraceLog writes one complete
// JSON event per line.
#include "util/trace_span.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace fgcs {
namespace {

Histogram make_latency_histogram() {
  return Histogram(Histogram::default_latency_bounds());
}

TEST(TraceSpanTest, FeedsHistogramOnScopeExit) {
  Histogram hist = make_latency_histogram();
  {
    const TraceSpan span("test.span.scope", &hist);
  }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GE(hist.sum(), 0.0);
}

TEST(TraceSpanTest, FinishIsIdempotentAndReturnsElapsed) {
  Histogram hist = make_latency_histogram();
  TraceSpan span("test.span.finish", &hist);
  const double first = span.finish();
  const double second = span.finish();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(first, second);            // first call wins, value is frozen
  EXPECT_EQ(span.elapsed_seconds(), first);
  EXPECT_EQ(hist.count(), 1u);         // one observation despite two finishes
  EXPECT_DOUBLE_EQ(hist.sum(), first); // the histogram saw that exact value
}

TEST(TraceSpanTest, DestructorAfterExplicitFinishDoesNotDoubleCount) {
  Histogram hist = make_latency_histogram();
  {
    TraceSpan span("test.span.double", &hist);
    (void)span.finish();
  }
  EXPECT_EQ(hist.count(), 1u);
}

TEST(TraceSpanTest, ElapsedSecondsIsMonotoneWhileRunning) {
  const TraceSpan span("test.span.monotone");
  const double a = span.elapsed_seconds();
  const double b = span.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TraceSpanTest, NullHistogramIsFine) {
  TraceSpan span("test.span.nullhist");
  EXPECT_GE(span.finish(), 0.0);
}

TEST(TraceSpanTest, SpanMacroObservesGlobalLatencyHistogram) {
  // FGCS_SPAN("x") records into the global registry's `x.seconds` histogram.
  // The global registry accumulates across this whole binary, so assert on
  // the delta, not the absolute count.
  Histogram& hist =
      MetricsRegistry::global().latency_histogram("test.span.macro.seconds");
  const std::uint64_t before = hist.count();
  {
    FGCS_SPAN("test.span.macro");
  }
  EXPECT_EQ(hist.count(), before + 1);
}

TEST(TraceLogTest, DisabledByDefaultWithoutEnvVar) {
  // The test harness never sets FGCS_TRACE_FILE, so the lazily-created
  // instance must come up disabled (spans then skip emit() entirely).
  EXPECT_FALSE(TraceLog::instance().enabled());
}

TEST(TraceLogTest, OpenEmitCloseWritesOneJsonEventPerLine) {
  const std::string path = ::testing::TempDir() + "fgcs_trace_span_test.jsonl";
  TraceLog::instance().open(path);
  EXPECT_TRUE(TraceLog::instance().enabled());
  {
    const TraceSpan span("test.trace.one");
  }
  TraceSpan two("test.trace.two");
  (void)two.finish();
  TraceLog::instance().close();
  EXPECT_FALSE(TraceLog::instance().enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"name\":\"test.trace.one\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"test.trace.two\""), std::string::npos);
  for (const std::string& event : lines) {
    EXPECT_EQ(event.front(), '{') << event;
    EXPECT_EQ(event.back(), '}') << event;
    EXPECT_NE(event.find("\"ts\":"), std::string::npos) << event;
    EXPECT_NE(event.find("\"dur\":"), std::string::npos) << event;
    EXPECT_NE(event.find("\"tid\":"), std::string::npos) << event;
  }
}

TEST(TraceLogTest, SpansAfterCloseAppendNothing) {
  const std::string path = ::testing::TempDir() + "fgcs_trace_span_closed.jsonl";
  TraceLog::instance().open(path);
  {
    const TraceSpan span("test.trace.before");
  }
  TraceLog::instance().close();
  {
    const TraceSpan span("test.trace.after");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1u);
}

TEST(TraceLogTest, OpenOnUnwritablePathThrows) {
  EXPECT_THROW(
      TraceLog::instance().open("/nonexistent-fgcs-dir/trace.jsonl"),
      DataError);
  // A failed open must not leave tracing half-enabled.
  EXPECT_FALSE(TraceLog::instance().enabled());
}

}  // namespace
}  // namespace fgcs
