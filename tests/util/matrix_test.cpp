#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

TEST(MatrixTest, IdentityAndMultiply) {
  const Matrix id = Matrix::identity(3);
  Matrix a(3, 3);
  int v = 1;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  const Matrix prod = a * id;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Matrix t = a.transposed();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const Matrix tt = t.transposed();
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt(r, c), a(r, c));
}

TEST(MatrixTest, MatVecProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  const std::vector<double> x{1.0, -1.0};
  const std::vector<double> y = a * x;
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(LuSolveTest, SolvesKnownSystem) {
  Matrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(0, 2) = 1;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 2;
  a(2, 0) = 1; a(2, 1) = 0; a(2, 2) = 0;
  const std::vector<double> x = lu_solve(a, {4, 5, 6});
  EXPECT_NEAR(x[0], 6.0, 1e-12);
  EXPECT_NEAR(x[1], 15.0, 1e-12);
  EXPECT_NEAR(x[2], -23.0, 1e-12);
}

TEST(LuSolveTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const std::vector<double> x = lu_solve(a, {3.0, 7.0});
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(LuSolveTest, ThrowsOnSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(lu_solve(a, {1.0, 2.0}), DataError);
}

TEST(ToeplitzTest, MatchesLuOnKnownSystem) {
  const std::vector<double> r{4.0, 2.0, 1.0};
  const std::vector<double> rhs{1.0, 2.0, 3.0};
  Matrix t(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      t(i, j) = r[static_cast<std::size_t>(std::abs(static_cast<int>(i) -
                                                    static_cast<int>(j)))];
  const std::vector<double> expected = lu_solve(t, rhs);
  const std::vector<double> actual = solve_toeplitz(r, rhs);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(actual[i], expected[i], 1e-10) << "i=" << i;
}

class ToeplitzRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ToeplitzRandomTest, MatchesDenseLuSolver) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam() % 10);
  // Diagonally dominant symmetric Toeplitz: well-conditioned by construction.
  std::vector<double> r(n);
  r[0] = 10.0 + rng.uniform();
  for (std::size_t i = 1; i < n; ++i)
    r[i] = rng.uniform(-1.0, 1.0) * (1.0 / static_cast<double>(i + 1));
  std::vector<double> rhs(n);
  for (double& v : rhs) v = rng.uniform(-5.0, 5.0);

  Matrix t(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      t(i, j) = r[static_cast<std::size_t>(
          std::abs(static_cast<int>(i) - static_cast<int>(j)))];

  const std::vector<double> expected = lu_solve(t, rhs);
  const std::vector<double> actual = solve_toeplitz(r, rhs);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(actual[i], expected[i], 1e-8) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ToeplitzRandomTest, ::testing::Range(1, 25));

TEST(ToeplitzTest, RejectsZeroLeadingElement) {
  EXPECT_THROW(solve_toeplitz(std::vector<double>{0.0, 1.0},
                              std::vector<double>{1.0, 1.0}),
               DataError);
}

TEST(LeastSquaresTest, RecoversExactCoefficients) {
  // y = 2 x0 - 3 x1, overdetermined and noise-free.
  Rng rng(9);
  Matrix a(20, 2);
  std::vector<double> b(20);
  for (std::size_t i = 0; i < 20; ++i) {
    a(i, 0) = rng.uniform(-1, 1);
    a(i, 1) = rng.uniform(-1, 1);
    b[i] = 2.0 * a(i, 0) - 3.0 * a(i, 1);
  }
  const std::vector<double> beta = least_squares(a, b);
  EXPECT_NEAR(beta[0], 2.0, 1e-6);
  EXPECT_NEAR(beta[1], -3.0, 1e-6);
}

TEST(LeastSquaresTest, RejectsUnderdetermined) {
  Matrix a(1, 2);
  std::vector<double> b{1.0};
  EXPECT_THROW(least_squares(a, b), PreconditionError);
}

}  // namespace
}  // namespace fgcs
