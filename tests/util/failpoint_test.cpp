// Unit tests for the failpoint registry: trigger semantics, spec parsing,
// stats invariants, and the disabled-by-default contract.
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace fgcs {
namespace {

/// Every test starts and ends with a clean global registry so armed points
/// can never leak into unrelated tests in this binary.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::instance().reset(); }
  void TearDown() override { Failpoints::instance().reset(); }
};

TEST_F(FailpointTest, DisabledByDefault) {
  EXPECT_FALSE(Failpoints::enabled());
  EXPECT_FALSE(FGCS_FAILPOINT("some.point"));
  EXPECT_EQ(FGCS_FAILPOINT_LATENCY("some.point"), 0.0);
  // The short-circuit means unarmed evaluations are not even recorded.
  EXPECT_TRUE(Failpoints::instance().stats().points.empty());
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  Failpoints::instance().arm("p.once", {.trigger = FailpointSpec::Trigger::kOnce});
  EXPECT_TRUE(Failpoints::enabled());
  EXPECT_TRUE(FGCS_FAILPOINT("p.once"));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(FGCS_FAILPOINT("p.once"));
  const FailpointStats stats = Failpoints::instance().stats();
  const FailpointCounters* point = stats.find("p.once");
  ASSERT_NE(point, nullptr);
  EXPECT_EQ(point->evaluations, 11u);
  EXPECT_EQ(point->fires, 1u);
  EXPECT_EQ(stats.fired_sequence, std::vector<std::string>{"p.once"});
}

TEST_F(FailpointTest, EveryNthFiresOnMultiples) {
  Failpoints::instance().arm(
      "p.every", {.trigger = FailpointSpec::Trigger::kEveryNth, .n = 3});
  std::vector<int> fired;
  for (int i = 1; i <= 10; ++i)
    if (FGCS_FAILPOINT("p.every")) fired.push_back(i);
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9}));
}

TEST_F(FailpointTest, AlwaysAndOffTriggers) {
  Failpoints::instance().arm("p.on", {.trigger = FailpointSpec::Trigger::kAlways});
  Failpoints::instance().arm("p.off", {.trigger = FailpointSpec::Trigger::kOff});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(FGCS_FAILPOINT("p.on"));
    EXPECT_FALSE(FGCS_FAILPOINT("p.off"));
  }
  const FailpointStats stats = Failpoints::instance().stats();
  EXPECT_EQ(stats.find("p.off")->evaluations, 5u);
  EXPECT_EQ(stats.find("p.off")->fires, 0u);
  EXPECT_EQ(stats.total_fires(), 5u);
}

TEST_F(FailpointTest, ProbabilityIsSeededAndReproducible) {
  const FailpointSpec spec{.trigger = FailpointSpec::Trigger::kProbability,
                           .probability = 0.3,
                           .seed = 1234};
  auto run = [&spec] {
    Failpoints::instance().reset();
    Failpoints::instance().arm("p.prob", spec);
    std::vector<bool> fires;
    for (int i = 0; i < 500; ++i) fires.push_back(FGCS_FAILPOINT("p.prob"));
    return fires;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  const std::size_t count =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  // ~Binomial(500, 0.3); a deterministic draw well inside [100, 200].
  EXPECT_GT(count, 100u);
  EXPECT_LT(count, 200u);
}

TEST_F(FailpointTest, DisarmStopsFiringButKeepsCounters) {
  Failpoints::instance().arm("p", {.trigger = FailpointSpec::Trigger::kAlways});
  EXPECT_TRUE(FGCS_FAILPOINT("p"));
  EXPECT_TRUE(Failpoints::instance().disarm("p"));
  EXPECT_FALSE(Failpoints::instance().disarm("p"));
  EXPECT_FALSE(Failpoints::enabled());
  EXPECT_FALSE(FGCS_FAILPOINT("p"));  // short-circuits on enabled()
  const FailpointStats stats = Failpoints::instance().stats();
  const FailpointCounters* point = stats.find("p");
  ASSERT_NE(point, nullptr);
  EXPECT_FALSE(point->armed);
  EXPECT_EQ(point->fires, 1u);
}

TEST_F(FailpointTest, FireLatencyReturnsPayloadOnlyWhenFired) {
  Failpoints::instance().arm("p.slow",
                             {.trigger = FailpointSpec::Trigger::kEveryNth,
                              .n = 2,
                              .latency_seconds = 0.25});
  EXPECT_EQ(FGCS_FAILPOINT_LATENCY("p.slow"), 0.0);
  EXPECT_EQ(FGCS_FAILPOINT_LATENCY("p.slow"), 0.25);
  EXPECT_EQ(FGCS_FAILPOINT_LATENCY("p.slow"), 0.0);
}

TEST_F(FailpointTest, ParsesTriggerSpecs) {
  EXPECT_EQ(parse_failpoint_mode("once").trigger, FailpointSpec::Trigger::kOnce);
  EXPECT_EQ(parse_failpoint_mode("always").trigger,
            FailpointSpec::Trigger::kAlways);
  EXPECT_EQ(parse_failpoint_mode("off").trigger, FailpointSpec::Trigger::kOff);

  const FailpointSpec every = parse_failpoint_mode("every:4");
  EXPECT_EQ(every.trigger, FailpointSpec::Trigger::kEveryNth);
  EXPECT_EQ(every.n, 4u);

  const FailpointSpec prob = parse_failpoint_mode("prob:0.25:99");
  EXPECT_EQ(prob.trigger, FailpointSpec::Trigger::kProbability);
  EXPECT_DOUBLE_EQ(prob.probability, 0.25);
  EXPECT_EQ(prob.seed, 99u);

  const FailpointSpec slow = parse_failpoint_mode("always,latency=0.5");
  EXPECT_DOUBLE_EQ(slow.latency_seconds, 0.5);
}

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_failpoint_mode("sometimes"), DataError);
  EXPECT_THROW(parse_failpoint_mode("every:0"), DataError);
  EXPECT_THROW(parse_failpoint_mode("every:x"), DataError);
  EXPECT_THROW(parse_failpoint_mode("prob:1.5"), DataError);
  EXPECT_THROW(parse_failpoint_mode("prob"), DataError);
  EXPECT_THROW(parse_failpoint_mode("always,latency=-1"), DataError);
  EXPECT_THROW(parse_failpoint_mode("always,turbo=1"), DataError);
  EXPECT_THROW(Failpoints::instance().arm_from_spec("noequals"), DataError);
  EXPECT_THROW(Failpoints::instance().arm_from_spec("Bad Name=once"),
               DataError);
}

TEST_F(FailpointTest, ArmFromSpecArmsEveryClause) {
  Failpoints::instance().arm_from_spec(
      "a.b=once;c.d=every:2;e.f=prob:0.5:7,latency=0.1;");
  const FailpointStats stats = Failpoints::instance().stats();
  ASSERT_EQ(stats.points.size(), 3u);
  EXPECT_TRUE(stats.find("a.b")->armed);
  EXPECT_TRUE(stats.find("c.d")->armed);
  EXPECT_TRUE(stats.find("e.f")->armed);
}

TEST_F(FailpointTest, RearmResetsTriggerState) {
  Failpoints::instance().arm("p", {.trigger = FailpointSpec::Trigger::kOnce});
  EXPECT_TRUE(FGCS_FAILPOINT("p"));
  EXPECT_FALSE(FGCS_FAILPOINT("p"));
  // A re-armed `once` point starts its cycle fresh; lifetime counters keep
  // accumulating across armings.
  Failpoints::instance().arm("p", {.trigger = FailpointSpec::Trigger::kOnce});
  EXPECT_TRUE(FGCS_FAILPOINT("p"));
  EXPECT_FALSE(FGCS_FAILPOINT("p"));
  EXPECT_EQ(Failpoints::instance().stats().find("p")->fires, 2u);
}

TEST_F(FailpointTest, StatsInvariants) {
  Failpoints::instance().arm_from_spec("x.y=every:2;z.w=always");
  for (int i = 0; i < 7; ++i) {
    FGCS_FAILPOINT("x.y");
    FGCS_FAILPOINT("z.w");
  }
  const FailpointStats stats = Failpoints::instance().stats();
  for (const FailpointCounters& point : stats.points)
    EXPECT_LE(point.fires, point.evaluations) << point.name;
  // Points are reported sorted by name.
  EXPECT_EQ(stats.points[0].name, "x.y");
  EXPECT_EQ(stats.points[1].name, "z.w");
  EXPECT_EQ(stats.total_fires(), 3u + 7u);
}

}  // namespace
}  // namespace fgcs
