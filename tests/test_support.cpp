#include "test_support.hpp"

#include <string>

namespace fgcs::test {

ResourceSample sample(int load_pct) { return sample(load_pct, 400, true); }

ResourceSample sample(int load_pct, int free_mem_mb, bool up) {
  ResourceSample s;
  s.host_load_pct = static_cast<std::uint8_t>(load_pct);
  s.free_mem_mb = static_cast<std::uint16_t>(free_mem_mb);
  s.set_up(up);
  return s;
}

std::vector<ResourceSample> constant_day(SimTime period, int load_pct) {
  return std::vector<ResourceSample>(
      static_cast<std::size_t>(kSecondsPerDay / period), sample(load_pct));
}

MachineTrace constant_trace(int days, int load_pct, SimTime period,
                            int total_mem_mb, int epoch_dow) {
  MachineTrace trace("test", Calendar(epoch_dow), period, total_mem_mb);
  for (int d = 0; d < days; ++d) trace.append_day(constant_day(period, load_pct));
  return trace;
}

Thresholds test_thresholds() {
  Thresholds t;
  t.th1 = 0.20;
  t.th2 = 0.60;
  t.transient_limit = 60;
  t.guest_mem_mb = 100;
  return t;
}

SmpModel random_fgcs_model(std::size_t horizon, Rng& rng,
                           bool allow_defective) {
  SmpModel model(kStateCount, horizon);
  for (std::size_t from : {0u, 1u}) {
    // Random exit distribution over the 4 feasible destinations.
    std::vector<std::size_t> destinations;
    for (std::size_t to = 0; to < kStateCount; ++to)
      if (to != from) destinations.push_back(to);
    std::vector<double> weights(destinations.size());
    double total = 0.0;
    for (double& w : weights) {
      w = rng.uniform(0.05, 1.0);
      total += w;
    }
    const double keep = allow_defective ? rng.uniform(0.5, 1.0) : 1.0;
    for (std::size_t d = 0; d < destinations.size(); ++d) {
      const double q = keep * weights[d] / total;
      model.set_q(from, destinations[d], q);
      // Random pmf over a random support within the horizon.
      const std::size_t support =
          1 + static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(horizon) - 1));
      std::vector<double> pmf(support);
      double mass = 0.0;
      for (double& p : pmf) {
        p = rng.uniform(0.0, 1.0);
        mass += p;
      }
      for (double& p : pmf) p /= mass;
      model.set_h_pmf(from, destinations[d], std::move(pmf));
    }
  }
  model.validate();
  return model;
}

}  // namespace fgcs::test
