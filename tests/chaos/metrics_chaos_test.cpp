// Chaos ↔ observability integration: injected faults must be *visible*. Every
// failpoint fire increments the global `failpoint.fires.total` counter plus a
// per-point `failpoint.fire.<name>` counter, and the subsystem metrics a
// fault drives (e.g. service invalidations) must agree with the subsystem's
// own stats snapshot. The global registry accumulates across this whole
// binary, so every assertion here is on deltas.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "chaos_support.hpp"
#include "core/prediction_service.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"

namespace fgcs {
namespace {

using test::ChaosTest;
using test::flaky_trace;

class MetricsChaosTest : public ChaosTest {};

TEST_F(MetricsChaosTest, FailpointFiresSurfaceAsCounters) {
  MetricsRegistry& registry = MetricsRegistry::global();
  const std::uint64_t total_before =
      registry.counter_value("failpoint.fires.total");
  const std::uint64_t point_before =
      registry.counter_value("failpoint.fire.chaos.metrics.point");

  Failpoints::instance().arm_from_spec("chaos.metrics.point=every:3");
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    if (FGCS_FAILPOINT("chaos.metrics.point")) ++fired;
  EXPECT_EQ(fired, 3);  // evaluations 3, 6, 9

  const FailpointStats stats = Failpoints::instance().stats();
  const FailpointCounters* point = stats.find("chaos.metrics.point");
  ASSERT_NE(point, nullptr);
  EXPECT_EQ(point->fires, 3u);
  // The metrics layer saw exactly what the failpoint registry recorded.
  EXPECT_EQ(registry.counter_value("failpoint.fires.total") - total_before,
            3u);
  EXPECT_EQ(
      registry.counter_value("failpoint.fire.chaos.metrics.point") -
          point_before,
      3u);
}

TEST_F(MetricsChaosTest, UnfiredPointsLeaveCountersUntouched) {
  MetricsRegistry& registry = MetricsRegistry::global();
  const std::uint64_t total_before =
      registry.counter_value("failpoint.fires.total");
  Failpoints::instance().arm_from_spec("chaos.metrics.silent=off");
  for (int i = 0; i < 5; ++i) (void)FGCS_FAILPOINT("chaos.metrics.silent");
  EXPECT_EQ(registry.counter_value("failpoint.fires.total"), total_before);
  EXPECT_EQ(registry.counter_value("failpoint.fire.chaos.metrics.silent"), 0u);
}

TEST_F(MetricsChaosTest, ServiceInvalidationMetricsMatchServiceStats) {
  // Drive the service through injected cache invalidations and check the
  // exposition-facing counters (fed by the service's attached instruments)
  // against its own ServiceStats snapshot.
  Failpoints::instance().arm_from_spec("service.cache.invalidate=every:3");
  MetricsRegistry& registry = MetricsRegistry::global();
  const std::uint64_t lookups_before =
      registry.counter_value("service.lookups.total");
  const std::uint64_t invalidations_before =
      registry.counter_value("service.invalidations.total");

  const MachineTrace trace = flaky_trace("m0", 8);
  PredictionService service;
  for (int round = 0; round < 12; ++round) {
    const PredictionRequest request{
        .target_day = 7,
        .window = {.start_of_day = (9 + round % 3) * kSecondsPerHour,
                   .length = kSecondsPerHour}};
    (void)service.predict(trace, request);
  }

  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.invalidations, 0u);
  // Query while the service is alive: its attachments fold into the totals.
  EXPECT_EQ(registry.counter_value("service.lookups.total") - lookups_before,
            stats.lookups);
  EXPECT_EQ(registry.counter_value("service.invalidations.total") -
                invalidations_before,
            stats.invalidations);
  // And the failpoint that caused the churn is itself accounted for.
  EXPECT_EQ(
      registry.counter_value("failpoint.fire.service.cache.invalidate"),
      Failpoints::instance().stats().find("service.cache.invalidate")->fires);
}

TEST_F(MetricsChaosTest, RenderTextIsWellFormedWithFailpointsArmed) {
  Failpoints::instance().arm_from_spec("chaos.metrics.render=always");
  (void)FGCS_FAILPOINT("chaos.metrics.render");
  const std::string text = MetricsRegistry::global().render_text();
  EXPECT_NE(text.find("# TYPE fgcs_failpoint_fires_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("fgcs_failpoint_fire_chaos_metrics_render 1\n"),
            std::string::npos);
  // Stable: rendering twice with no activity in between is byte-identical.
  EXPECT_EQ(MetricsRegistry::global().render_text(), text);
}

}  // namespace
}  // namespace fgcs
