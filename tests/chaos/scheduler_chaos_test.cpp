// Chaos suite: the client scheduler under injected revocation, contention,
// registry churn, and estimation outages. Every scenario is seed-driven and
// asserts its exact failpoint activity via FailpointStats, so a regression in
// either the degraded paths or the determinism contract fails loudly.
#include "ishare/scheduler.hpp"

#include <gtest/gtest.h>

#include "chaos_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::ChaosTest;
using test::steady_trace;

struct ScenarioResult {
  JobOutcome outcome;
  FailpointStats stats;
};

class SchedulerChaosTest : public ChaosTest {};

/// 30 %-per-attempt revocation: p per minute tick such that a ~2 h attempt is
/// revoked with probability ≈ 1 − 0.997^120 ≈ 0.30.
constexpr const char* kRevocationSpec =
    "gateway.execute.revoke=prob:0.003:45";

ScenarioResult run_revocation_scenario() {
  Failpoints::instance().reset();
  Failpoints::instance().arm_from_spec(kRevocationSpec);

  const MachineTrace trace = steady_trace("m0", 8);
  Gateway gateway(trace, test::test_thresholds());
  Registry registry;
  registry.publish(gateway);

  SchedulerConfig config;
  config.retry_delay = 120;
  config.backoff_factor = 2.0;
  config.max_retry_delay = 1800;
  const JobScheduler scheduler(registry, config);

  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 2 * 3600, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + kSecondsPerHour;
  CheckpointConfig checkpoint;
  checkpoint.fixed_interval = 1800;
  checkpoint.cost_seconds = 30;
  ScenarioResult result;
  result.outcome = scheduler.run_job(job, submit, submit + 20 * kSecondsPerHour,
                                     CheckpointMode::kFixed, checkpoint);
  result.stats = Failpoints::instance().stats();
  return result;
}

TEST_F(SchedulerChaosTest, CompletesUnderThirtyPercentRevocation) {
  const ScenarioResult result = run_revocation_scenario();
  EXPECT_TRUE(result.outcome.completed);
  const FailpointCounters* revoke =
      result.stats.find("gateway.execute.revoke");
  ASSERT_NE(revoke, nullptr);
  EXPECT_GT(revoke->evaluations, 0u);
  // The seed is chosen so the scenario actually exercises the retry path.
  EXPECT_GT(revoke->fires, 0u);
  EXPECT_EQ(result.outcome.failures,
            static_cast<int>(revoke->fires));
  EXPECT_EQ(result.outcome.attempts, static_cast<int>(revoke->fires) + 1);
}

TEST_F(SchedulerChaosTest, RevocationScenarioIsBitReproducible) {
  const ScenarioResult first = run_revocation_scenario();
  const ScenarioResult second = run_revocation_scenario();
  EXPECT_EQ(first.stats, second.stats);
  EXPECT_EQ(first.outcome.completed, second.outcome.completed);
  EXPECT_EQ(first.outcome.attempts, second.outcome.attempts);
  EXPECT_EQ(first.outcome.failures, second.outcome.failures);
  EXPECT_EQ(first.outcome.finish_time, second.outcome.finish_time);
  EXPECT_EQ(first.outcome.machines_used, second.outcome.machines_used);
}

TEST_F(SchedulerChaosTest, CompletesUnderInjectedContention) {
  Failpoints::instance().arm_from_spec(
      "gateway.execute.contention=prob:0.004:6");
  const MachineTrace trace = steady_trace("m0", 8);
  Gateway gateway(trace, test::test_thresholds());
  Registry registry;
  registry.publish(gateway);
  SchedulerConfig config;
  config.backoff_factor = 2.0;
  const JobScheduler scheduler(registry, config);

  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3600, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + kSecondsPerHour;
  const JobOutcome outcome =
      scheduler.run_job(job, submit, submit + 20 * kSecondsPerHour);
  EXPECT_TRUE(outcome.completed);
  const FailpointStats stats = Failpoints::instance().stats();
  EXPECT_GT(stats.find("gateway.execute.contention")->fires, 0u);
}

TEST_F(SchedulerChaosTest, CompletesUnderRegistryChurn) {
  // Half of all enumeration entries vanish, so many selection rounds see a
  // partial (sometimes empty) fleet; the scheduler must keep retrying.
  Failpoints::instance().arm_from_spec("registry.enumerate.drop=prob:0.5:55");
  const MachineTrace a = steady_trace("a", 8);
  const MachineTrace b = steady_trace("b", 8);
  Gateway ga(a, test::test_thresholds());
  Gateway gb(b, test::test_thresholds());
  Registry registry;
  registry.publish(ga);
  registry.publish(gb);
  const JobScheduler scheduler(registry);

  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3600, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const JobOutcome outcome =
      scheduler.run_job(job, submit, submit + 12 * kSecondsPerHour);
  EXPECT_TRUE(outcome.completed);
  EXPECT_GT(Failpoints::instance().stats().find("registry.enumerate.drop")
                ->fires,
            0u);
}

TEST_F(SchedulerChaosTest, StaleLookupReturnsNullWithoutCrashing) {
  Failpoints::instance().arm_from_spec("registry.lookup.stale=once");
  const MachineTrace trace = steady_trace("m0", 8);
  Gateway gateway(trace, test::test_thresholds());
  Registry registry;
  registry.publish(gateway);
  EXPECT_EQ(registry.lookup("m0"), nullptr);  // injected staleness
  EXPECT_EQ(registry.lookup("m0"), &gateway);
}

TEST_F(SchedulerChaosTest, SelectSkipsMachineWhosePredictionFails) {
  // Gateways are probed in machine-id order; `once` kills the first probe, so
  // selection must degrade to the second machine instead of throwing.
  Failpoints::instance().arm_from_spec("state_manager.predict.fail=once");
  const MachineTrace a = steady_trace("a", 8);
  const MachineTrace b = steady_trace("b", 8);
  Gateway ga(a, test::test_thresholds());
  Gateway gb(b, test::test_thresholds());
  Registry registry;
  registry.publish(ga);
  registry.publish(gb);
  const JobScheduler scheduler(registry);

  const SimTime now = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  Gateway* choice = scheduler.select_machine(now, kSecondsPerHour);
  EXPECT_EQ(choice, &gb);
  // With the `once` trigger consumed, the next probe sees the whole fleet.
  EXPECT_EQ(scheduler.select_machine(now, kSecondsPerHour), &ga);
}

TEST_F(SchedulerChaosTest, BatchedSelectFallsBackToSerialOnServiceFailure) {
  Failpoints::instance().arm_from_spec("service.estimate.fail=once");
  const MachineTrace a = steady_trace("a", 8);
  const MachineTrace b = steady_trace("b", 8);
  const auto service = std::make_shared<PredictionService>();
  Gateway ga(a, test::test_thresholds(), EstimatorConfig{}, service);
  Gateway gb(b, test::test_thresholds(), EstimatorConfig{}, service);
  Registry registry;
  registry.publish(ga);
  registry.publish(gb);
  const JobScheduler scheduler(registry, SchedulerConfig{}, service);

  const SimTime now = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  Gateway* choice = scheduler.select_machine(now, kSecondsPerHour);
  ASSERT_NE(choice, nullptr);
  // The injected batch failure was absorbed; the fallback still picked the
  // deterministic best (ties resolve to the lowest machine id).
  EXPECT_EQ(choice, &ga);
  EXPECT_GT(Failpoints::instance().stats().find("service.estimate.fail")->fires,
            0u);
}

TEST_F(SchedulerChaosTest, TotalEstimationOutageGivesUpAtDeadline) {
  Failpoints::instance().arm_from_spec("state_manager.predict.fail=always");
  const MachineTrace trace = steady_trace("m0", 8);
  Gateway gateway(trace, test::test_thresholds());
  Registry registry;
  registry.publish(gateway);
  SchedulerConfig config;
  config.backoff_factor = 2.0;  // bound the number of idle retry rounds
  const JobScheduler scheduler(registry, config);

  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 600, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay;
  const JobOutcome outcome =
      scheduler.run_job(job, submit, submit + 6 * kSecondsPerHour);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.attempts, 0);
  EXPECT_EQ(outcome.finish_time, submit + 6 * kSecondsPerHour);
}

}  // namespace
}  // namespace fgcs
