// Chaos suite: replicated execution under churn — injected revocation and
// outright replica loss. The headline scenario shows the redundancy actually
// buying something: under churn, k replicas complete a job that a single
// no-retry placement loses.
#include "ishare/replication.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chaos_support.hpp"
#include "core/prediction_service.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::ChaosTest;
using test::steady_trace;

class ReplicationChaosTest : public ChaosTest {};

/// Aggressive churn: each running replica is revoked with ~1.8 %/minute, so
/// a one-hour attempt survives with probability ≈ 0.982^60 ≈ 1/3.
constexpr const char* kChurnSpec = "gateway.execute.revoke=prob:0.018:1";

struct Fleet {
  std::vector<MachineTrace> traces;
  std::vector<Gateway> gateways;
  Registry registry;

  explicit Fleet(int machines) {
    for (int m = 0; m < machines; ++m) {
      std::string id = "m";
      id += std::to_string(m);
      traces.push_back(steady_trace(id, 8));
    }
    gateways.reserve(traces.size());
    for (const MachineTrace& trace : traces)
      gateways.emplace_back(trace, test::test_thresholds());
    for (Gateway& gateway : gateways) registry.publish(gateway);
  }
};

TEST_F(ReplicationChaosTest, ReplicationBeatsSinglePlacementUnderChurn) {
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3600, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const SimTime give_up = submit + 6 * kSecondsPerHour;
  Fleet fleet(3);

  // Single placement, no retries: redundancy is the only failure response.
  Failpoints::instance().reset();
  Failpoints::instance().arm_from_spec(kChurnSpec);
  SchedulerConfig single_config;
  single_config.max_attempts = 1;
  const JobScheduler single(fleet.registry, single_config);
  const JobOutcome single_outcome = single.run_job(job, submit, give_up);

  // Same churn stream, replicated 3 ways.
  Failpoints::instance().reset();
  Failpoints::instance().arm_from_spec(kChurnSpec);
  const ReplicatingScheduler replicated(fleet.registry, 3);
  const ReplicatedOutcome replicated_outcome =
      replicated.run_job(job, submit, give_up);

  // The seed is chosen so the single placement is revoked; at this churn
  // rate at least one of three replicas survives and completes. (A failed
  // single run "finishes" at its revocation time, so response times are not
  // comparable across the two outcomes — the job simply never ran to
  // completion without redundancy.)
  EXPECT_FALSE(single_outcome.completed);
  ASSERT_TRUE(replicated_outcome.completed);
  EXPECT_GT(replicated_outcome.replicas_failed, 0);
  EXPECT_LT(replicated_outcome.finish_time, give_up);
  // The cost side of the trade: redundancy burns extra CPU.
  EXPECT_GT(replicated_outcome.total_cpu_spent, 0.0);
}

TEST_F(ReplicationChaosTest, ChurnScenarioIsBitReproducible) {
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3600, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  Fleet fleet(3);

  auto run = [&] {
    Failpoints::instance().reset();
    Failpoints::instance().arm_from_spec(kChurnSpec);
    const ReplicatingScheduler scheduler(fleet.registry, 3);
    return std::make_pair(
        scheduler.run_job(job, submit, submit + 6 * kSecondsPerHour),
        Failpoints::instance().stats());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.second, second.second);
  EXPECT_EQ(first.first.completed, second.first.completed);
  EXPECT_EQ(first.first.finish_time, second.first.finish_time);
  EXPECT_EQ(first.first.winning_machine, second.first.winning_machine);
  EXPECT_EQ(first.first.replicas_failed, second.first.replicas_failed);
  EXPECT_EQ(first.first.total_cpu_spent, second.first.total_cpu_spent);
}

TEST_F(ReplicationChaosTest, SurvivesInjectedReplicaLoss) {
  Failpoints::instance().arm_from_spec("replication.replica.lost=once");
  Fleet fleet(2);
  const ReplicatingScheduler scheduler(fleet.registry, 2);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 1800, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ReplicatedOutcome outcome =
      scheduler.run_job(job, submit, submit + 12 * kSecondsPerHour);

  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.replicas_started, 2);
  EXPECT_EQ(outcome.replicas_failed, 1);
  // The first-ranked replica was the one lost; the survivor won.
  EXPECT_EQ(Failpoints::instance().stats().find("replication.replica.lost")
                ->fires,
            1u);
}

TEST_F(ReplicationChaosTest, RankingSkipsUnpredictableMachines) {
  // The first probe (lowest machine id) fails; placement must continue with
  // the remaining machines instead of propagating the estimation error.
  Failpoints::instance().arm_from_spec("state_manager.predict.fail=once");
  Fleet fleet(2);
  const ReplicatingScheduler scheduler(fleet.registry, 2);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 900, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ReplicatedOutcome outcome =
      scheduler.run_job(job, submit, submit + 12 * kSecondsPerHour);

  ASSERT_TRUE(outcome.completed);
  // Only the predictable machine was ranked, so only one replica started.
  EXPECT_EQ(outcome.replicas_started, 1);
  EXPECT_EQ(outcome.winning_machine, "m1");
}

TEST_F(ReplicationChaosTest, AllReplicasLostReportsFailure) {
  Failpoints::instance().arm_from_spec("replication.replica.lost=always");
  Fleet fleet(2);
  const ReplicatingScheduler scheduler(fleet.registry, 2);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 900, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const SimTime give_up = submit + 2 * kSecondsPerHour;
  const ReplicatedOutcome outcome = scheduler.run_job(job, submit, give_up);

  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.replicas_failed, 2);
  EXPECT_EQ(outcome.finish_time, give_up);
  EXPECT_EQ(outcome.total_cpu_spent, 0.0);
}

/// Fleet probed through a shared PredictionService pinned to one worker, so
/// the batched fleet probe evaluates failpoints in machine-id order and the
/// storm attribution below is deterministic.
struct PlannedFleet {
  std::vector<MachineTrace> traces;
  std::vector<Gateway> gateways;
  Registry registry;
  std::shared_ptr<PredictionService> service;

  explicit PlannedFleet(int machines) {
    ServiceConfig config;
    config.max_threads = 1;
    service = std::make_shared<PredictionService>(config);
    for (int m = 0; m < machines; ++m) {
      std::string id = "m";
      id += std::to_string(m);
      traces.push_back(steady_trace(id, 8));
    }
    gateways.reserve(traces.size());
    for (const MachineTrace& trace : traces)
      gateways.emplace_back(trace, test::test_thresholds(), EstimatorConfig{},
                            service);
    for (Gateway& gateway : gateways) registry.publish(gateway);
  }
};

/// The planner's churn storm: ~30 % of planned replicas vanish at launch and
/// every 3rd fleet probe fails to estimate (same shape as the fgcs_chaos
/// planner scenario, compressed for test speed).
constexpr const char* kPlannerStormSpec =
    "replication.replica.lost=prob:0.3:1;service.estimate.fail=every:3";

TEST_F(ReplicationChaosTest, PlannerMeetsTargetOrDegradesUnderStorm) {
  PlannedFleet fleet(4);
  PlannerConfig planner;
  planner.target_availability = 0.95;
  planner.max_replicas = 3;
  planner.fallback_replicas = 2;

  Failpoints::instance().reset();
  Failpoints::instance().arm_from_spec(kPlannerStormSpec);
  const ReplicatingScheduler scheduler(fleet.registry, planner,
                                       SchedulerConfig{}, fleet.service);
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  for (int j = 0; j < 4; ++j) {
    const GuestJobSpec job{.job_id = "j" + std::to_string(j),
                           .cpu_seconds = 1800,
                           .mem_mb = 64};
    const ReplicatedOutcome outcome =
        scheduler.run_job(job, submit, submit + 6 * kSecondsPerHour);
    ASSERT_TRUE(outcome.plan.has_value()) << "job " << j;
    const ReplicationPlan& plan = *outcome.plan;
    // Failed probes shrink the candidate pool, never the contract: a
    // feasible plan really meets A; an infeasible one is flagged as a
    // fallback with its shortfall reported, not silently downgraded.
    if (plan.feasible)
      EXPECT_GE(plan.achieved_availability, plan.target_availability)
          << "job " << j;
    else
      EXPECT_TRUE(plan.fallback) << "job " << j;
    EXPECT_EQ(static_cast<std::size_t>(outcome.replicas_started),
              plan.replicas.size())
        << "job " << j;
  }
  // 4 jobs x 4 probes = 16 evaluations; every:3 fires on 3,6,9,12,15.
  EXPECT_EQ(
      Failpoints::instance().stats().find("service.estimate.fail")->fires, 5u);
}

TEST_F(ReplicationChaosTest, PlannerStormIsBitReproducible) {
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 1800, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  PlannerConfig planner;
  planner.target_availability = 0.95;
  planner.max_replicas = 3;
  planner.fallback_replicas = 2;

  auto run = [&] {
    PlannedFleet fleet(4);  // fresh service: identical cold-cache sequence
    Failpoints::instance().reset();
    Failpoints::instance().arm_from_spec(kPlannerStormSpec);
    const ReplicatingScheduler scheduler(fleet.registry, planner,
                                         SchedulerConfig{}, fleet.service);
    std::vector<ReplicatedOutcome> outcomes;
    for (int j = 0; j < 3; ++j)
      outcomes.push_back(
          scheduler.run_job(job, submit, submit + 6 * kSecondsPerHour));
    return std::make_pair(std::move(outcomes),
                          Failpoints::instance().stats());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.second, second.second);  // exact failpoint activity
  ASSERT_EQ(first.first.size(), second.first.size());
  for (std::size_t j = 0; j < first.first.size(); ++j) {
    const ReplicatedOutcome& a = first.first[j];
    const ReplicatedOutcome& b = second.first[j];
    EXPECT_EQ(a.completed, b.completed) << j;
    EXPECT_EQ(a.winning_machine, b.winning_machine) << j;
    EXPECT_EQ(a.replicas_started, b.replicas_started) << j;
    EXPECT_EQ(a.replicas_failed, b.replicas_failed) << j;
    ASSERT_TRUE(a.plan.has_value() && b.plan.has_value()) << j;
    EXPECT_EQ(a.plan->feasible, b.plan->feasible) << j;
    EXPECT_EQ(a.plan->achieved_availability, b.plan->achieved_availability)
        << j;
    ASSERT_EQ(a.plan->replicas.size(), b.plan->replicas.size()) << j;
    for (std::size_t r = 0; r < a.plan->replicas.size(); ++r)
      EXPECT_EQ(a.plan->replicas[r].machine_id, b.plan->replicas[r].machine_id)
          << j << "/" << r;
  }
}

TEST_F(ReplicationChaosTest, AllProbeFailuresYieldReportedEmptyFallback) {
  // Every estimation fails: zero candidates reach the planner. The degraded
  // mode must be explicit — an infeasible fallback plan with no replicas and
  // a failed outcome — never a silent empty launch.
  Failpoints::instance().arm_from_spec("service.estimate.fail=always");
  PlannedFleet fleet(3);
  PlannerConfig planner;
  planner.target_availability = 0.9;
  const ReplicatingScheduler scheduler(fleet.registry, planner,
                                       SchedulerConfig{}, fleet.service);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 900, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const SimTime give_up = submit + 2 * kSecondsPerHour;
  const ReplicatedOutcome outcome = scheduler.run_job(job, submit, give_up);

  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.replicas_started, 0);
  EXPECT_EQ(outcome.finish_time, give_up);
  ASSERT_TRUE(outcome.plan.has_value());
  EXPECT_FALSE(outcome.plan->feasible);
  EXPECT_TRUE(outcome.plan->fallback);
  EXPECT_TRUE(outcome.plan->replicas.empty());
  EXPECT_EQ(outcome.plan->achieved_availability, 0.0);
}

TEST_F(ReplicationChaosTest, BatchedAndSerialProbesAgreeWhenHealthy) {
  // Nothing armed: the batched fleet probe through the shared service must
  // plan exactly like the serial per-gateway path it replaced.
  PlannedFleet fleet(4);
  PlannerConfig planner;
  planner.target_availability = 0.95;
  planner.max_replicas = 3;
  planner.fallback_replicas = 2;
  const ReplicatingScheduler batched(fleet.registry, planner,
                                     SchedulerConfig{}, fleet.service);
  const ReplicatingScheduler serial(fleet.registry, planner, SchedulerConfig{},
                                    nullptr);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 1800, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ReplicatedOutcome a =
      batched.run_job(job, submit, submit + 6 * kSecondsPerHour);
  const ReplicatedOutcome b =
      serial.run_job(job, submit, submit + 6 * kSecondsPerHour);
  ASSERT_TRUE(a.plan.has_value() && b.plan.has_value());
  EXPECT_EQ(a.plan->feasible, b.plan->feasible);
  EXPECT_EQ(a.plan->achieved_availability, b.plan->achieved_availability);
  EXPECT_EQ(a.plan->total_cost, b.plan->total_cost);
  ASSERT_EQ(a.plan->replicas.size(), b.plan->replicas.size());
  for (std::size_t r = 0; r < a.plan->replicas.size(); ++r)
    EXPECT_EQ(a.plan->replicas[r].machine_id, b.plan->replicas[r].machine_id);
}

}  // namespace
}  // namespace fgcs
