// Chaos suite: replicated execution under churn — injected revocation and
// outright replica loss. The headline scenario shows the redundancy actually
// buying something: under churn, k replicas complete a job that a single
// no-retry placement loses.
#include "ishare/replication.hpp"

#include <gtest/gtest.h>

#include "chaos_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::ChaosTest;
using test::steady_trace;

class ReplicationChaosTest : public ChaosTest {};

/// Aggressive churn: each running replica is revoked with ~1.8 %/minute, so
/// a one-hour attempt survives with probability ≈ 0.982^60 ≈ 1/3.
constexpr const char* kChurnSpec = "gateway.execute.revoke=prob:0.018:1";

struct Fleet {
  std::vector<MachineTrace> traces;
  std::vector<Gateway> gateways;
  Registry registry;

  explicit Fleet(int machines) {
    for (int m = 0; m < machines; ++m) {
      std::string id = "m";
      id += std::to_string(m);
      traces.push_back(steady_trace(id, 8));
    }
    gateways.reserve(traces.size());
    for (const MachineTrace& trace : traces)
      gateways.emplace_back(trace, test::test_thresholds());
    for (Gateway& gateway : gateways) registry.publish(gateway);
  }
};

TEST_F(ReplicationChaosTest, ReplicationBeatsSinglePlacementUnderChurn) {
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3600, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const SimTime give_up = submit + 6 * kSecondsPerHour;
  Fleet fleet(3);

  // Single placement, no retries: redundancy is the only failure response.
  Failpoints::instance().reset();
  Failpoints::instance().arm_from_spec(kChurnSpec);
  SchedulerConfig single_config;
  single_config.max_attempts = 1;
  const JobScheduler single(fleet.registry, single_config);
  const JobOutcome single_outcome = single.run_job(job, submit, give_up);

  // Same churn stream, replicated 3 ways.
  Failpoints::instance().reset();
  Failpoints::instance().arm_from_spec(kChurnSpec);
  const ReplicatingScheduler replicated(fleet.registry, 3);
  const ReplicatedOutcome replicated_outcome =
      replicated.run_job(job, submit, give_up);

  // The seed is chosen so the single placement is revoked; at this churn
  // rate at least one of three replicas survives and completes. (A failed
  // single run "finishes" at its revocation time, so response times are not
  // comparable across the two outcomes — the job simply never ran to
  // completion without redundancy.)
  EXPECT_FALSE(single_outcome.completed);
  ASSERT_TRUE(replicated_outcome.completed);
  EXPECT_GT(replicated_outcome.replicas_failed, 0);
  EXPECT_LT(replicated_outcome.finish_time, give_up);
  // The cost side of the trade: redundancy burns extra CPU.
  EXPECT_GT(replicated_outcome.total_cpu_spent, 0.0);
}

TEST_F(ReplicationChaosTest, ChurnScenarioIsBitReproducible) {
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3600, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  Fleet fleet(3);

  auto run = [&] {
    Failpoints::instance().reset();
    Failpoints::instance().arm_from_spec(kChurnSpec);
    const ReplicatingScheduler scheduler(fleet.registry, 3);
    return std::make_pair(
        scheduler.run_job(job, submit, submit + 6 * kSecondsPerHour),
        Failpoints::instance().stats());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.second, second.second);
  EXPECT_EQ(first.first.completed, second.first.completed);
  EXPECT_EQ(first.first.finish_time, second.first.finish_time);
  EXPECT_EQ(first.first.winning_machine, second.first.winning_machine);
  EXPECT_EQ(first.first.replicas_failed, second.first.replicas_failed);
  EXPECT_EQ(first.first.total_cpu_spent, second.first.total_cpu_spent);
}

TEST_F(ReplicationChaosTest, SurvivesInjectedReplicaLoss) {
  Failpoints::instance().arm_from_spec("replication.replica.lost=once");
  Fleet fleet(2);
  const ReplicatingScheduler scheduler(fleet.registry, 2);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 1800, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ReplicatedOutcome outcome =
      scheduler.run_job(job, submit, submit + 12 * kSecondsPerHour);

  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.replicas_started, 2);
  EXPECT_EQ(outcome.replicas_failed, 1);
  // The first-ranked replica was the one lost; the survivor won.
  EXPECT_EQ(Failpoints::instance().stats().find("replication.replica.lost")
                ->fires,
            1u);
}

TEST_F(ReplicationChaosTest, RankingSkipsUnpredictableMachines) {
  // The first probe (lowest machine id) fails; placement must continue with
  // the remaining machines instead of propagating the estimation error.
  Failpoints::instance().arm_from_spec("state_manager.predict.fail=once");
  Fleet fleet(2);
  const ReplicatingScheduler scheduler(fleet.registry, 2);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 900, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ReplicatedOutcome outcome =
      scheduler.run_job(job, submit, submit + 12 * kSecondsPerHour);

  ASSERT_TRUE(outcome.completed);
  // Only the predictable machine was ranked, so only one replica started.
  EXPECT_EQ(outcome.replicas_started, 1);
  EXPECT_EQ(outcome.winning_machine, "m1");
}

TEST_F(ReplicationChaosTest, AllReplicasLostReportsFailure) {
  Failpoints::instance().arm_from_spec("replication.replica.lost=always");
  Fleet fleet(2);
  const ReplicatingScheduler scheduler(fleet.registry, 2);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 900, .mem_mb = 64};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const SimTime give_up = submit + 2 * kSecondsPerHour;
  const ReplicatedOutcome outcome = scheduler.run_job(job, submit, give_up);

  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.replicas_failed, 2);
  EXPECT_EQ(outcome.finish_time, give_up);
  EXPECT_EQ(outcome.total_cpu_spent, 0.0);
}

}  // namespace
}  // namespace fgcs
