// Gossip storm battery (DESIGN.md §11): seed-pinned churn and partition
// storms against a GossipMesh with the gossip.drop / gossip.delay
// failpoints mangling the anti-entropy traffic. The invariants:
//
//   * Convergence — every phase of the storm (bootstrap, partition + heal,
//     crash + restart, leave) re-converges all running nodes to one
//     membership digest AND one ring digest within a bounded round count,
//     no matter what the storm dropped or delayed.
//   * Determinism — the identical storm (same mesh seed, same failpoint
//     spec) replays to the identical convergence rounds, digests, and
//     FailpointStats, twice in a row. This is the contract the committed
//     chaos_replay.cmake gossip legs pin end-to-end through fgcs_chaos.
#include "ishare/gossip.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chaos_support.hpp"
#include "util/failpoint.hpp"

namespace fgcs {
namespace {

using test::ChaosTest;

class GossipChaosTest : public ChaosTest {};

std::string storm_spec(std::uint64_t seed) {
  return "gossip.drop=prob:0.25:" + std::to_string(seed) +
         ";gossip.delay=every:5";
}

/// Everything a storm pins: per-phase convergence rounds, the final
/// digests, and the failpoint counters.
struct StormReport {
  std::vector<int> phase_rounds;
  std::uint64_t member_digest = 0;
  std::uint64_t ring_digest = 0;
  FailpointStats failpoints;

  friend bool operator==(const StormReport&, const StormReport&) = default;
};

/// The full churn script: bootstrap, asymmetric partition + heal, crash
/// until declared dead + restart, graceful leave. Arms its own failpoints
/// and leaves a clean registry.
StormReport run_storm(std::uint64_t seed) {
  Failpoints::instance().reset();
  Failpoints::instance().arm_from_spec(storm_spec(seed));

  GossipConfig config;
  config.seed = seed;
  GossipMesh mesh(config);
  for (const char* id : {"n0", "n1", "n2"}) mesh.add_node(id);
  mesh.connect_all();

  StormReport report;
  report.phase_rounds.push_back(mesh.run_until_converged(64));

  mesh.partition({{"n0"}, {"n1", "n2"}});
  for (int r = 0; r < 8; ++r) mesh.run_round();
  mesh.heal();
  report.phase_rounds.push_back(mesh.run_until_converged(256));

  mesh.stop("n1");
  for (int r = 0; r < 24; ++r) mesh.run_round();
  mesh.restart("n1");
  report.phase_rounds.push_back(mesh.run_until_converged(256));

  mesh.agent("n2").leave();
  report.phase_rounds.push_back(mesh.run_until_converged(256));

  if (mesh.converged()) {
    report.member_digest = mesh.digest();
    report.ring_digest = mesh.agent("n0").ring().digest();
  }
  report.failpoints = Failpoints::instance().stats();
  Failpoints::instance().reset();
  return report;
}

TEST_F(GossipChaosTest, StormConvergesEveryPhaseWithinBound) {
  const StormReport report = run_storm(20060619);
  ASSERT_EQ(report.phase_rounds.size(), 4u);
  for (std::size_t phase = 0; phase < report.phase_rounds.size(); ++phase)
    EXPECT_GE(report.phase_rounds[phase], 0)
        << "phase " << phase << " never converged under the storm";
  EXPECT_NE(report.member_digest, 0u);
  // The storm actually fired: drops and delays both happened.
  EXPECT_GT(report.failpoints.total_fires(), 0u) << "storm spec armed nothing";
  ASSERT_NE(report.failpoints.find("gossip.drop"), nullptr);
  EXPECT_GT(report.failpoints.find("gossip.drop")->fires, 0u);
  ASSERT_NE(report.failpoints.find("gossip.delay"), nullptr);
  EXPECT_GT(report.failpoints.find("gossip.delay")->fires, 0u);
}

TEST_F(GossipChaosTest, IdenticalStormReplaysToIdenticalReport) {
  const StormReport first = run_storm(7);
  const StormReport second = run_storm(7);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.failpoints, second.failpoints)
      << "failpoint evaluation schedule drifted between identical storms";
}

TEST_F(GossipChaosTest, DistinctSeedsStillConverge) {
  // Convergence must be a property of the protocol, not of one lucky
  // message schedule.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const StormReport report = run_storm(seed);
    for (std::size_t phase = 0; phase < report.phase_rounds.size(); ++phase)
      EXPECT_GE(report.phase_rounds[phase], 0)
          << "seed " << seed << " phase " << phase << " did not converge";
  }
}

TEST_F(GossipChaosTest, ConvergedNodesServeTheSameRingUnderFire) {
  // Routing equivalence after a lossy storm: every surviving node must
  // route every key identically (same owner), not just hash-equal —
  // digest equality is the mechanism, this is the meaning.
  Failpoints::instance().arm_from_spec(storm_spec(99));
  GossipConfig config;
  config.seed = 99;
  GossipMesh mesh(config);
  for (const char* id : {"n0", "n1", "n2"}) mesh.add_node(id);
  mesh.connect_all();
  mesh.partition({{"n0", "n1"}, {"n2"}});
  for (int r = 0; r < 8; ++r) mesh.run_round();
  mesh.heal();
  ASSERT_GE(mesh.run_until_converged(256), 0);

  const HashRing reference = mesh.agent("n0").ring();
  for (const char* id : {"n1", "n2"}) {
    const HashRing ring = mesh.agent(id).ring();
    ASSERT_EQ(ring.digest(), reference.digest());
    for (int key = 0; key < 200; ++key) {
      const std::string machine = "machine-" + std::to_string(key);
      EXPECT_EQ(ring.owner(machine)->node_id,
                reference.owner(machine)->node_id)
          << id << " routes " << machine << " differently";
    }
  }
}

}  // namespace
}  // namespace fgcs
