// Shared fixture for the chaos suite: every test runs with a clean global
// failpoint registry and leaves one behind, so armed points can never leak
// between tests (or into a tier-1 run of the same ctest invocation).
#pragma once

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/failpoint.hpp"

namespace fgcs::test {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::instance().reset(); }
  void TearDown() override { Failpoints::instance().reset(); }
};

/// A trace of `days` constant-load days (plenty of memory, machine up).
inline MachineTrace steady_trace(const std::string& id, int days,
                                 int load_pct = 10) {
  MachineTrace trace(id, Calendar(0), 60, 512);
  for (int d = 0; d < days; ++d) trace.append_day(constant_day(60, load_pct));
  return trace;
}

/// A trace whose host overloads 10:00–12:00 every day (guest dies as S3).
inline MachineTrace flaky_trace(const std::string& id, int days,
                                int base_load_pct = 10) {
  MachineTrace trace(id, Calendar(0), 60, 512);
  for (int d = 0; d < days; ++d) {
    auto day = constant_day(60, base_load_pct);
    for (std::size_t i = 10 * 60; i < 12 * 60; ++i) day[i] = sample(95);
    trace.append_day(std::move(day));
  }
  return trace;
}

}  // namespace fgcs::test
