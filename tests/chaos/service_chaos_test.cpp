// Chaos suite: the prediction service under forced cache invalidation,
// injected estimation failures, and latency injection. The load-bearing
// invariant is staleness: no matter how invalidation races with lookups, a
// served Prediction is always bit-identical to a fresh unbatched
// AvailabilityPredictor run on the same history.
#include "core/prediction_service.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "chaos_support.hpp"
#include "core/predictor.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace fgcs {
namespace {

using test::ChaosTest;
using test::steady_trace;

class ServiceChaosTest : public ChaosTest {};

PredictionRequest request_at(SimTime start_of_day, SimTime length,
                             std::int64_t target_day = 7) {
  return PredictionRequest{
      .target_day = target_day,
      .window = {.start_of_day = start_of_day, .length = length}};
}

/// Bitwise Prediction comparison — the service's hit-path contract is
/// bit-identity with the cold path, not approximate equality. Timing fields
/// are excluded: they record wall-clock cost, not the predicted value.
void expect_same_prediction(const Prediction& got, const Prediction& want) {
  EXPECT_EQ(std::memcmp(&got.temporal_reliability, &want.temporal_reliability,
                        sizeof(double)),
            0);
  EXPECT_EQ(got.initial_state, want.initial_state);
  EXPECT_EQ(std::memcmp(got.p_absorb.data(), want.p_absorb.data(),
                        sizeof(got.p_absorb)),
            0);
  EXPECT_EQ(got.training_days_used, want.training_days_used);
  EXPECT_EQ(got.steps, want.steps);
}

TEST_F(ServiceChaosTest, ForcedInvalidationNeverServesStale) {
  // Every 3rd lookup forcibly invalidates the machine's cache generation
  // right after the lookup is counted — a worst-case churn of the staleness
  // machinery. Each result must still equal the uncached predictor's.
  Failpoints::instance().arm_from_spec("service.cache.invalidate=every:3");
  const MachineTrace trace = test::flaky_trace("m0", 8);
  PredictionService service;
  const AvailabilityPredictor reference;

  for (int round = 0; round < 20; ++round) {
    const PredictionRequest request =
        request_at((9 + round % 4) * kSecondsPerHour, 2 * kSecondsPerHour);
    const Prediction got = service.predict(trace, request);
    const Prediction want = reference.predict(trace, request);
    expect_same_prediction(got, want);
  }
  const FailpointStats stats = Failpoints::instance().stats();
  const FailpointCounters* point = stats.find("service.cache.invalidate");
  ASSERT_NE(point, nullptr);
  EXPECT_GT(point->fires, 0u);
  EXPECT_GT(service.stats().invalidations, 0u);
}

TEST_F(ServiceChaosTest, ConcurrentPredictsUnderInvalidationStayCorrect) {
  // Hammer one machine from several threads while injected invalidations
  // keep wiping its generation mid-flight. Entries may be dropped and
  // re-estimated, but a wrong (stale) answer is never acceptable.
  Failpoints::instance().arm_from_spec("service.cache.invalidate=every:5");
  const MachineTrace trace = test::flaky_trace("m0", 8);
  PredictionService service;
  const AvailabilityPredictor reference;

  constexpr int kWindows = 4;
  std::array<Prediction, kWindows> want;
  for (int w = 0; w < kWindows; ++w)
    want[static_cast<std::size_t>(w)] =
        reference.predict(trace, request_at((9 + w) * kSecondsPerHour,
                                            2 * kSecondsPerHour));

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  std::array<std::atomic<int>, kThreads> mismatches{};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int w = (t + round) % kWindows;
        const Prediction got = service.predict(
            trace, request_at((9 + w) * kSecondsPerHour, 2 * kSecondsPerHour));
        if (std::memcmp(&got.temporal_reliability,
                        &want[static_cast<std::size_t>(w)]
                             .temporal_reliability,
                        sizeof(double)) != 0)
          mismatches[static_cast<std::size_t>(t)].fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)].load(), 0) << t;
  EXPECT_GT(Failpoints::instance().stats().find("service.cache.invalidate")
                ->fires,
            0u);
}

TEST_F(ServiceChaosTest, InvalidationRacingInsertSkipsDeadEntry) {
  // Forces an invalidate() to land exactly between predict()'s compute phase
  // and its insert lock. The generation re-check must skip the insert — the
  // entry would be filed under a dead generation key, unreachable by every
  // future lookup — and count the skip as a stale drop. The returned
  // prediction itself is still correct.
  Failpoints::instance().arm_from_spec("service.insert.race=once");
  const MachineTrace trace = steady_trace("m0", 8);
  PredictionService service;
  const PredictionRequest request =
      request_at(9 * kSecondsPerHour, kSecondsPerHour);

  const Prediction got = service.predict(trace, request);
  expect_same_prediction(got,
                         AvailabilityPredictor().predict(trace, request));
  EXPECT_EQ(service.size(), 0u);  // insert skipped, not misfiled
  EXPECT_GE(service.stats().stale_drops, 1u);
  EXPECT_EQ(service.stats().invalidations, 1u);

  // Trigger spent: the next predict caches normally, then hits.
  service.predict(trace, request);
  EXPECT_EQ(service.size(), 1u);
  expect_same_prediction(service.predict(trace, request), got);
  EXPECT_EQ(service.stats().hits, 1u);
}

TEST_F(ServiceChaosTest, InjectedEstimationFailureThrowsThenRecovers) {
  Failpoints::instance().arm_from_spec("service.estimate.fail=once");
  const MachineTrace trace = steady_trace("m0", 8);
  PredictionService service;
  const PredictionRequest request =
      request_at(9 * kSecondsPerHour, kSecondsPerHour);

  EXPECT_THROW(service.predict(trace, request), DataError);
  // The failure consumed the `once` trigger; the service is healthy again
  // and agrees with the uncached predictor.
  const Prediction got = service.predict(trace, request);
  expect_same_prediction(got,
                         AvailabilityPredictor().predict(trace, request));
}

TEST_F(ServiceChaosTest, BatchSurfacesInjectedFailureAsDataError) {
  Failpoints::instance().arm_from_spec("service.estimate.fail=once");
  const MachineTrace a = steady_trace("a", 8);
  const MachineTrace b = steady_trace("b", 8);
  PredictionService service;
  const std::vector<BatchRequest> batch{
      {.trace = &a, .request = request_at(9 * kSecondsPerHour, 600)},
      {.trace = &b, .request = request_at(9 * kSecondsPerHour, 600)}};
  EXPECT_THROW(service.predict_batch(batch), DataError);
  // A later batch succeeds once the trigger is spent.
  EXPECT_EQ(service.predict_batch(batch).size(), 2u);
}

TEST_F(ServiceChaosTest, LatencyInjectionDelaysButDoesNotCorrupt) {
  // 1 ms injected stall on every 2nd lookup: results must be unchanged.
  Failpoints::instance().arm_from_spec(
      "service.estimate.slow=every:2,latency=0.001");
  const MachineTrace trace = steady_trace("m0", 8);
  PredictionService service;
  const AvailabilityPredictor reference;
  const PredictionRequest request =
      request_at(9 * kSecondsPerHour, kSecondsPerHour);

  for (int i = 0; i < 4; ++i)
    expect_same_prediction(service.predict(trace, request),
                           reference.predict(trace, request));
  EXPECT_EQ(
      Failpoints::instance().stats().find("service.estimate.slow")->fires, 2u);
}

TEST_F(ServiceChaosTest, InvalidationStormIsDeterministic) {
  // Same spec + same single-threaded call sequence → identical stats and
  // identical service counters, run after run.
  const MachineTrace trace = test::flaky_trace("m0", 8);
  auto run = [&trace] {
    Failpoints::instance().reset();
    Failpoints::instance().arm_from_spec(
        "service.cache.invalidate=prob:0.4:2024");
    PredictionService service;
    double sum = 0.0;
    for (int round = 0; round < 30; ++round)
      sum += service
                 .predict(trace, request_at((8 + round % 6) * kSecondsPerHour,
                                            kSecondsPerHour))
                 .temporal_reliability;
    return std::make_tuple(sum, Failpoints::instance().stats(),
                           service.stats().invalidations);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(std::get<0>(first), std::get<0>(second));
  EXPECT_EQ(std::get<1>(first), std::get<1>(second));
  EXPECT_EQ(std::get<2>(first), std::get<2>(second));
  EXPECT_GT(std::get<2>(first), 0u);
}

}  // namespace
}  // namespace fgcs
