// Chaos suite for the streaming ingest path: seed-pinned ingest.append.drop /
// ingest.rollup.fail storms (plus the transport storm underneath) against a
// real loopback ingest server. The invariants: the client's idempotent
// whole-frame retries must converge, the server's rolled-up history must end
// byte-equal to the source trace, the cache generation must equal the days
// closed (no double-bumps from retried closes), served predictions over the
// streamed history stay bit-identical — and identical storms replay to
// identical FailpointStats.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "chaos_support.hpp"
#include "core/prediction_service.hpp"
#include "core/predictor.hpp"
#include "net/client.hpp"
#include "trace/trace_store.hpp"

namespace fgcs {
namespace {

using test::ChaosTest;

class IngestChaosTest : public ChaosTest {
 protected:
  /// Starts a loopback *ingest* server (no preloaded traces). Call after
  /// arming failpoints — drops and rollup failures are consulted live.
  void start(int machines = 3, int days = 6, unsigned reactors = 1,
             std::int64_t retention = 0) {
    for (int m = 0; m < machines; ++m)
      fleet_.push_back(
          m % 2 == 0
              ? test::flaky_trace("m" + std::to_string(m), days)
              : test::steady_trace("m" + std::to_string(m), days));
    service_ = std::make_shared<PredictionService>();
    net::ServerConfig config;
    config.ingest = true;
    config.ingest_retention_days = retention;
    config.reactors = reactors;
    config.force_accept_handoff = reactors > 1;
    server_ = std::make_unique<net::PredictionServer>(config, service_);
    server_->start();

    net::ClientConfig client_config;
    client_config.port = server_->port();
    client_config.max_attempts = 16;
    client_config.backoff.retry_delay = 2;       // ms
    client_config.backoff.backoff_factor = 1.0;  // exact, jitter-free pacing
    client_config.backoff.max_retry_delay = 50;
    client_ = std::make_unique<net::PredictionClient>(client_config);
  }

  void TearDown() override {
    client_.reset();
    if (server_) server_->stop();
    ChaosTest::TearDown();
  }

  /// Streams a whole trace in `batch`-sample frames through whatever storm
  /// is armed, relying on the client's idempotent retry loop.
  net::WireAppendAck stream(const MachineTrace& trace, std::size_t batch) {
    net::WireAppendRequest request;
    request.machine_id = trace.machine_id();
    request.epoch_day_of_week =
        static_cast<std::uint8_t>(trace.calendar().epoch_day_of_week());
    request.sampling_period = trace.sampling_period();
    request.total_mem_mb = static_cast<std::uint32_t>(trace.total_mem_mb());
    const std::size_t per_day = trace.samples_per_day();
    const std::uint64_t total =
        static_cast<std::uint64_t>(trace.day_count()) * per_day;
    net::WireAppendAck totals;
    std::uint64_t index = 0;
    while (index < total) {
      const std::uint64_t count = std::min<std::uint64_t>(batch, total - index);
      request.first_sample_index = index;
      request.samples.clear();
      for (std::uint64_t i = index; i < index + count; ++i)
        request.samples.push_back(
            trace.at(static_cast<std::int64_t>(i / per_day), i % per_day));
      const net::WireAppendAck ack = client_->append_samples(request);
      totals.accepted += ack.accepted;
      totals.duplicates += ack.duplicates;
      totals.days_closed += ack.days_closed;
      totals.days_retired += ack.days_retired;
      totals.next_index = ack.next_index;
      totals.generation = ack.generation;
      index = ack.next_index;
    }
    return totals;
  }

  /// The streamed history must be byte-equal to the source trace.
  void expect_history_identical(const MachineTrace& trace) {
    const std::shared_ptr<const MachineTrace> snap =
        server_->store()->snapshot(trace.machine_id());
    ASSERT_NE(snap, nullptr) << trace.machine_id();
    ASSERT_EQ(snap->day_count(), trace.day_count()) << trace.machine_id();
    const std::size_t per_day = trace.samples_per_day();
    for (std::int64_t d = 0; d < trace.day_count(); ++d)
      for (std::size_t i = 0; i < per_day; ++i)
        ASSERT_TRUE(snap->at(d, i) == trace.at(d, i))
            << trace.machine_id() << " day " << d << " sample " << i;
  }

  std::vector<MachineTrace> fleet_;
  std::shared_ptr<PredictionService> service_;
  std::unique_ptr<net::PredictionServer> server_;
  std::unique_ptr<net::PredictionClient> client_;
};

TEST_F(IngestChaosTest, AppendDropStormRetriesToIdenticalHistory) {
  // A third of the append frames are rejected (retryable, connection kept)
  // before the server even decodes them. The idempotent retry must land
  // every sample exactly once — no duplicates in the rollup, generation ==
  // days closed.
  Failpoints::instance().arm_from_spec("ingest.append.drop=prob:0.33:20060619");
  start();
  for (const MachineTrace& trace : fleet_) {
    const net::WireAppendAck totals =
        stream(trace, trace.samples_per_day() / 2 + 7);
    EXPECT_EQ(totals.accepted,
              static_cast<std::uint64_t>(trace.day_count()) *
                  trace.samples_per_day());
    EXPECT_EQ(totals.duplicates, 0u);  // drops reject whole frames pre-append
    EXPECT_EQ(totals.generation,
              static_cast<std::uint64_t>(trace.day_count()));
    expect_history_identical(trace);
  }
  EXPECT_GT(Failpoints::instance().stats().find("ingest.append.drop")->fires,
            0u);
  EXPECT_GT(client_->stats().retries, 0u);
  server_->stop();
  EXPECT_GT(server_->stats().errors, 0u);
  EXPECT_EQ(server_->stats().append_duplicates, 0u);
}

TEST_F(IngestChaosTest, RollupFailuresNeverWedgeOrDoubleCountADay) {
  // Every third day-close throws RollupError mid-append. The client retries
  // the whole frame: already-buffered samples dedup, the pending close is
  // re-attempted, and each day still closes exactly once (generation would
  // drift otherwise).
  Failpoints::instance().arm_from_spec("ingest.rollup.fail=every:3");
  start();
  for (const MachineTrace& trace : fleet_) {
    const net::WireAppendAck totals = stream(trace, trace.samples_per_day());
    EXPECT_EQ(totals.generation,
              static_cast<std::uint64_t>(trace.day_count()))
        << trace.machine_id();
    EXPECT_GT(totals.duplicates, 0u);  // the retried frames dedup
    expect_history_identical(trace);
    EXPECT_EQ(service_->history_generation(trace.machine_id()),
              static_cast<std::uint64_t>(trace.day_count()));
  }
  EXPECT_GT(Failpoints::instance().stats().find("ingest.rollup.fail")->fires,
            0u);
  EXPECT_GT(client_->stats().retries, 0u);
}

TEST_F(IngestChaosTest, CombinedStormUnderRetentionStillServesExactly) {
  // Drops + rollup failures + frame corruption, against a 4-day sliding
  // window. After the storm the server holds exactly the last 4 days and
  // serves predictions on them bit-identically to the local stack.
  Failpoints::instance().arm_from_spec(
      "ingest.append.drop=prob:0.25:77;ingest.rollup.fail=every:4;"
      "net.frame.corrupt=prob:0.1:77");
  start(/*machines=*/2, /*days=*/6, /*reactors=*/1, /*retention=*/4);
  for (const MachineTrace& trace : fleet_) {
    const net::WireAppendAck totals =
        stream(trace, trace.samples_per_day() + 13);
    EXPECT_EQ(totals.days_retired, 2u) << trace.machine_id();
    const MachineTrace sliced = trace.slice(2, trace.day_count());
    const std::shared_ptr<const MachineTrace> snap =
        server_->store()->snapshot(trace.machine_id());
    ASSERT_NE(snap, nullptr);
    ASSERT_EQ(snap->day_count(), 4);
    for (std::int64_t d = 0; d < 4; ++d)
      for (std::size_t i = 0; i < trace.samples_per_day(); ++i)
        ASSERT_TRUE(snap->at(d, i) == sliced.at(d, i));

    const net::WireRequestItem item{
        .machine_key = trace.machine_id(),
        .request = {.target_day = 4,
                    .window = {.start_of_day = 9 * kSecondsPerHour,
                               .length = 2 * kSecondsPerHour}}};
    const Prediction served = client_->predict(item);
    const Prediction want = AvailabilityPredictor().predict(sliced, item.request);
    EXPECT_EQ(std::memcmp(&served.temporal_reliability,
                          &want.temporal_reliability, sizeof(double)),
              0)
        << trace.machine_id();
  }
}

TEST_F(IngestChaosTest, MultiReactorStormKeepsPerReactorAccounting) {
  // The same storm against a sharded 4-reactor ingest server: the global
  // snapshot must still equal the sum of the per-reactor splits (ingest
  // counters ride the serving reactor's inbox, never the store), and the
  // histories must still converge byte-identically.
  Failpoints::instance().arm_from_spec(
      "ingest.append.drop=prob:0.3:31337;net.accept.drop=every:4");
  start(/*machines=*/3, /*days=*/5, /*reactors=*/4);
  for (const MachineTrace& trace : fleet_) {
    stream(trace, trace.samples_per_day() * 2 + 5);
    expect_history_identical(trace);
  }
  server_->stop();
  const net::ServerStats total = server_->stats();
  net::ServerStats summed;
  for (const net::ServerStats& reactor : server_->reactor_stats())
    summed += reactor;
  EXPECT_EQ(summed.appends, total.appends);
  EXPECT_EQ(summed.append_samples, total.append_samples);
  EXPECT_EQ(summed.append_duplicates, total.append_duplicates);
  EXPECT_EQ(summed.days_closed, total.days_closed);
  EXPECT_EQ(summed.days_retired, total.days_retired);
  EXPECT_EQ(total.days_closed, 3u * 5u);
  EXPECT_EQ(total.append_samples,
            3u * 5u * fleet_.front().samples_per_day());
}

TEST_F(IngestChaosTest, IdenticalStormsReplayToIdenticalStats) {
  // The replay contract behind `fgcs_chaos --scenario ingest`: same spec,
  // same stream → equal FailpointStats and equal ack bookkeeping, run after
  // run. Both injection sites are per-frame/per-close, never per syscall.
  using Totals = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                            std::uint64_t>;
  const auto run = [this]() -> Totals {
    Failpoints::instance().reset();
    Failpoints::instance().arm_from_spec(
        "ingest.append.drop=prob:0.4:9;ingest.rollup.fail=every:5");
    fleet_.clear();
    start(/*machines=*/2, /*days=*/4);
    net::WireAppendAck totals;
    for (const MachineTrace& trace : fleet_) {
      const net::WireAppendAck one = stream(trace, 500);
      totals.accepted += one.accepted;
      totals.duplicates += one.duplicates;
      totals.days_closed += one.days_closed;
    }
    const FailpointStats stats = Failpoints::instance().stats();
    const std::uint64_t fires = stats.total_fires();
    TearDown();
    return {totals.accepted, totals.duplicates, totals.days_closed, fires};
  };
  const Totals first = run();
  const Totals second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(std::get<3>(first), 0u);
}

}  // namespace
}  // namespace fgcs
