// Chaos suite for the network path: seed-pinned failpoint storms against a
// real loopback PredictionServer. The invariants are the differential gate's,
// under fire: whatever net.frame.corrupt / net.read.short / net.write.stall /
// net.accept.drop do to the transport, the client's retry loop must converge
// and every delivered Prediction must be bit-identical to the in-process
// predictor. And because every injection site is evaluated at a deterministic
// point (per accepted connection, per frame — never per read()/write()), an
// identical storm replays to identical FailpointStats.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <tuple>
#include <vector>

#include "chaos_support.hpp"
#include "core/prediction_service.hpp"
#include "core/predictor.hpp"
#include "net/client.hpp"

namespace fgcs {
namespace {

using test::ChaosTest;

class NetChaosTest : public ChaosTest {
 protected:
  /// Starts a loopback server over fresh traces. Call *after* arming
  /// failpoints: net.accept.drop and friends are consulted live.
  void start(int machines = 3, int days = 8) {
    for (int m = 0; m < machines; ++m)
      fleet_.push_back(m % 2 == 0
                           ? test::flaky_trace("m" + std::to_string(m), days)
                           : test::steady_trace("m" + std::to_string(m), days));
    server_ = std::make_unique<net::PredictionServer>(
        net::ServerConfig{}, std::make_shared<PredictionService>());
    for (const MachineTrace& trace : fleet_) server_->add_trace(trace);
    server_->start();

    net::ClientConfig config;
    config.port = server_->port();
    config.max_attempts = 12;
    config.backoff.retry_delay = 2;       // ms
    config.backoff.backoff_factor = 1.0;  // exact, jitter-free pacing
    config.backoff.max_retry_delay = 50;
    client_ = std::make_unique<net::PredictionClient>(config);
  }

  void TearDown() override {
    client_.reset();
    if (server_) server_->stop();
    ChaosTest::TearDown();
  }

  net::WireRequestItem item_for(int machine, int start_hour,
                                int hours = 2) const {
    return net::WireRequestItem{
        .machine_key = fleet_[static_cast<std::size_t>(machine)].machine_id(),
        .request = {
            .target_day = fleet_.front().day_count(),
            .window = {.start_of_day = start_hour * kSecondsPerHour,
                       .length = hours * kSecondsPerHour}}};
  }

  /// Drives `rounds` single-item requests through the storm and checks each
  /// against the uncached predictor, bitwise.
  void expect_bit_identical_rounds(int rounds) {
    const AvailabilityPredictor reference;
    for (int round = 0; round < rounds; ++round) {
      const int machine = round % static_cast<int>(fleet_.size());
      const net::WireRequestItem item = item_for(machine, 8 + round % 12);
      const Prediction served = client_->predict(item);
      const Prediction want = reference.predict(
          fleet_[static_cast<std::size_t>(machine)], item.request);
      EXPECT_EQ(std::memcmp(&served.temporal_reliability,
                            &want.temporal_reliability, sizeof(double)),
                0)
          << "round " << round;
      EXPECT_EQ(std::memcmp(served.p_absorb.data(), want.p_absorb.data(),
                            sizeof(served.p_absorb)),
                0)
          << "round " << round;
      EXPECT_EQ(served.initial_state, want.initial_state) << "round " << round;
      EXPECT_EQ(served.steps, want.steps) << "round " << round;
    }
  }

  std::vector<MachineTrace> fleet_;
  std::unique_ptr<net::PredictionServer> server_;
  std::unique_ptr<net::PredictionClient> client_;
};

TEST_F(NetChaosTest, FrameCorruptionStormRetriesToBitIdenticalCompletion) {
  // Half the frames the server handles are corrupted before processing; the
  // client sees checksum desyncs, reconnects, and must still deliver exact
  // answers for every round.
  Failpoints::instance().arm_from_spec("net.frame.corrupt=prob:0.5:424242");
  start();
  expect_bit_identical_rounds(24);

  EXPECT_GT(Failpoints::instance().stats().find("net.frame.corrupt")->fires,
            0u);
  EXPECT_GT(client_->stats().retries, 0u);
  EXPECT_EQ(client_->stats().batches, 24u);
  server_->stop();  // join, so the snapshot below is exact
  EXPECT_GT(server_->stats().errors, 0u);
  EXPECT_EQ(server_->stats().predictions, 24u);
}

TEST_F(NetChaosTest, ShortReadsAndStalledWritesOnlySlowTheBytesDown) {
  // Every connection trickles: reads capped to 3 bytes, writes to 16. No
  // frame is ever damaged, so no retry is allowed either — the transport is
  // slow, not wrong.
  Failpoints::instance().arm_from_spec(
      "net.read.short=every:1;net.write.stall=every:1");
  start();
  expect_bit_identical_rounds(6);

  EXPECT_GT(Failpoints::instance().stats().find("net.read.short")->fires, 0u);
  EXPECT_GT(Failpoints::instance().stats().find("net.write.stall")->fires, 0u);
  EXPECT_EQ(client_->stats().retries, 0u);
  server_->stop();
  EXPECT_EQ(server_->stats().errors, 0u);
}

TEST_F(NetChaosTest, AcceptDropStormForcesReconnectsNotWrongAnswers) {
  // Every other accepted connection is closed on the spot; the client's next
  // write or read fails and the whole idempotent batch is resent. Dropping
  // the client socket between rounds forces a fresh accept per round, so the
  // every:2 trigger actually cycles.
  Failpoints::instance().arm_from_spec("net.accept.drop=every:2");
  start();
  const AvailabilityPredictor reference;
  for (int round = 0; round < 8; ++round) {
    client_->close();
    const int machine = round % static_cast<int>(fleet_.size());
    const net::WireRequestItem item = item_for(machine, 8 + round);
    const Prediction served = client_->predict(item);
    const Prediction want = reference.predict(
        fleet_[static_cast<std::size_t>(machine)], item.request);
    EXPECT_EQ(std::memcmp(&served.temporal_reliability,
                          &want.temporal_reliability, sizeof(double)),
              0)
        << "round " << round;
  }

  server_->stop();
  EXPECT_GT(server_->stats().dropped, 0u);
  EXPECT_GT(client_->stats().reconnects, 1u);
  EXPECT_GT(client_->stats().retries, 0u);
}

TEST_F(NetChaosTest, CombinedStormReplaysToIdenticalFailpointStats) {
  // The net scenario's replay contract, in-process: same spec, same request
  // sequence → byte-identical results *and* equal FailpointStats, run after
  // run. This is what makes `fgcs_chaos --scenario net` replayable.
  const auto storm = [] {
    Failpoints::instance().reset();
    Failpoints::instance().arm_from_spec(
        "net.frame.corrupt=prob:0.4:99;net.read.short=every:2;"
        "net.write.stall=every:2;net.accept.drop=every:3");

    const std::vector<MachineTrace> fleet{test::flaky_trace("m0", 8),
                                          test::steady_trace("m1", 8)};
    net::PredictionServer server(net::ServerConfig{},
                                 std::make_shared<PredictionService>());
    for (const MachineTrace& trace : fleet) server.add_trace(trace);
    server.start();

    net::ClientConfig config;
    config.port = server.port();
    config.max_attempts = 12;
    config.backoff.retry_delay = 1;
    config.backoff.backoff_factor = 1.0;
    net::PredictionClient client(config);

    std::uint64_t tr_bits = 0;  // order-sensitive fold of every result
    for (int round = 0; round < 12; ++round) {
      const net::WireRequestItem item{
          .machine_key = fleet[static_cast<std::size_t>(round % 2)]
                             .machine_id(),
          .request = {.target_day = 8,
                      .window = {.start_of_day =
                                     (8 + round % 10) * kSecondsPerHour,
                                 .length = kSecondsPerHour}}};
      double tr = client.predict(item).temporal_reliability;
      std::uint64_t bits = 0;
      std::memcpy(&bits, &tr, sizeof(bits));
      tr_bits = tr_bits * 1099511628211ull + bits;
    }
    server.stop();  // join before snapshotting anything
    return std::make_tuple(tr_bits, Failpoints::instance().stats(),
                           client.stats().attempts, client.stats().retries,
                           server.stats().accepted, server.stats().dropped,
                           server.stats().frames, server.stats().errors);
  };

  const auto first = storm();
  const auto second = storm();
  EXPECT_EQ(first, second);
  EXPECT_GT(std::get<3>(first), 0u);  // the storm actually forced retries
}

TEST_F(NetChaosTest, FourReactorStormReplaysToIdenticalPerReactorStats) {
  // The multi-reactor replay contract: the same storm against a *4-reactor*
  // server must replay byte-identically too — including the per-reactor
  // counter split. force_accept_handoff pins connection placement to
  // deterministic round-robin, and every failpoint is evaluated per accept
  // (accepting thread) or per frame (owning reactor, arrival order), so a
  // sequential driver produces one global evaluation order regardless of
  // how many reactors race underneath.
  const auto storm = [] {
    Failpoints::instance().reset();
    Failpoints::instance().arm_from_spec(
        "net.frame.corrupt=prob:0.4:77;net.read.short=every:2;"
        "net.write.stall=every:2;net.accept.drop=every:3");

    const std::vector<MachineTrace> fleet{test::flaky_trace("m0", 8),
                                          test::steady_trace("m1", 8)};
    net::ServerConfig server_config;
    server_config.reactors = 4;
    server_config.force_accept_handoff = true;
    net::PredictionServer server(server_config,
                                 std::make_shared<PredictionService>());
    for (const MachineTrace& trace : fleet) server.add_trace(trace);
    server.start();

    net::ClientConfig config;
    config.port = server.port();
    config.max_attempts = 12;
    config.backoff.retry_delay = 1;
    config.backoff.backoff_factor = 1.0;
    net::PredictionClient client(config);

    std::uint64_t tr_bits = 0;
    for (int round = 0; round < 12; ++round) {
      // Reconnect every few rounds so the storm exercises hand-off
      // placement, not just one long-lived connection on reactor 0.
      if (round % 3 == 0) client.close();
      const net::WireRequestItem item{
          .machine_key = fleet[static_cast<std::size_t>(round % 2)]
                             .machine_id(),
          .request = {.target_day = 8,
                      .window = {.start_of_day =
                                     (8 + round % 10) * kSecondsPerHour,
                                 .length = kSecondsPerHour}}};
      double tr = client.predict(item).temporal_reliability;
      std::uint64_t bits = 0;
      std::memcpy(&bits, &tr, sizeof(bits));
      tr_bits = tr_bits * 1099511628211ull + bits;
    }
    server.stop();
    return std::make_tuple(tr_bits, Failpoints::instance().stats(),
                           client.stats().attempts, client.stats().retries,
                           server.reactor_stats());
  };

  const auto first = storm();
  const auto second = storm();
  EXPECT_EQ(first, second);
  EXPECT_GT(std::get<3>(first), 0u);  // the storm bit, both runs survived it
  // The split is real: hand-off spread serviced frames beyond reactor 0.
  const std::vector<net::ServerStats>& shards = std::get<4>(first);
  ASSERT_EQ(shards.size(), 4u);
  std::size_t reactors_with_frames = 0;
  for (const net::ServerStats& shard : shards)
    reactors_with_frames += shard.frames > 0;
  EXPECT_GE(reactors_with_frames, 2u);
}

}  // namespace
}  // namespace fgcs
