#include "core/fast_solver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(RenewalSolverTest, NoKernelIsIdentity) {
  const std::vector<double> b{1.0, 2.0, 3.0};
  const std::vector<double> x = solve_renewal(b, {});
  EXPECT_EQ(x, b);
}

TEST(RenewalSolverTest, GeometricGrowthFromUnitDelayKernel) {
  // x = b + k ⊛ x with k = [0, 1]: x[m] = b[m] + x[m−1] → prefix sums of b…
  // no: x[m] = b[m] + x[m-1] gives cumulative sums only when the kernel stops
  // there. With b = [1,0,0,0]: x = [1,1,1,1].
  const std::vector<double> b{1.0, 0.0, 0.0, 0.0};
  const std::vector<double> k{0.0, 1.0};
  const std::vector<double> x = solve_renewal(b, k);
  for (const double v : x) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(RenewalSolverTest, FibonacciKernel) {
  // k = [0, 1, 1], b = impulse: x satisfies x[m] = x[m−1] + x[m−2].
  std::vector<double> b(10, 0.0);
  b[0] = 1.0;
  const std::vector<double> k{0.0, 1.0, 1.0};
  const std::vector<double> x = solve_renewal(b, k);
  const std::vector<double> fib{1, 1, 2, 3, 5, 8, 13, 21, 34, 55};
  for (std::size_t i = 0; i < fib.size(); ++i)
    EXPECT_NEAR(x[i], fib[i], 1e-9) << i;
}

TEST(RenewalSolverTest, MatchesDirectSolveOnRandomInput) {
  Rng rng(5);
  const std::size_t n = 700;  // crosses several D&C levels
  std::vector<double> b(n), k(n, 0.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  for (std::size_t l = 1; l < n; ++l) k[l] = rng.uniform(-0.02, 0.02);

  const std::vector<double> fast = solve_renewal(b, k);
  // Direct triangular solve.
  std::vector<double> direct = b;
  for (std::size_t m = 0; m < n; ++m)
    for (std::size_t l = 1; l <= m; ++l) direct[m] += k[l] * direct[m - l];
  for (std::size_t m = 0; m < n; ++m)
    EXPECT_NEAR(fast[m], direct[m], 1e-9) << m;
}

TEST(RenewalSolverTest, RejectsEmptyInput) {
  const std::vector<double> empty;
  EXPECT_THROW(solve_renewal(empty, empty), PreconditionError);
}

TEST(RenewalSolverTest, ZeroLagOnlyKernelIsIdentity) {
  // A kernel of just the (mandatory zero) lag-0 tap contributes nothing.
  const std::vector<double> b{3.0, -1.0, 2.0};
  const std::vector<double> k{0.0};
  EXPECT_EQ(solve_renewal(b, k), b);
}

TEST(RenewalSolverTest, SingleElementInputIgnoresLongerKernel) {
  // x[0] has no earlier terms to feed back, whatever the kernel length.
  const std::vector<double> b{2.5};
  const std::vector<double> k{0.0, 9.9, -3.0};
  const std::vector<double> x = solve_renewal(b, k);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 2.5);
}

TEST(RenewalSolverTest, KernelLongerThanInputMatchesDirectSolve) {
  Rng rng(11);
  const std::size_t n = 6;
  std::vector<double> b(n), k(n + 10, 0.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  for (std::size_t l = 1; l < k.size(); ++l) k[l] = rng.uniform(-0.1, 0.1);
  const std::vector<double> fast = solve_renewal(b, k);
  std::vector<double> direct = b;
  for (std::size_t m = 0; m < n; ++m)
    for (std::size_t l = 1; l <= m; ++l) direct[m] += k[l] * direct[m - l];
  for (std::size_t m = 0; m < n; ++m)
    EXPECT_NEAR(fast[m], direct[m], 1e-12) << m;
}

TEST(RenewalSolverTest, CrossesTwoRecursionLevels) {
  // n > 2·512 exercises two divide-and-conquer splits and the FFT cross-term
  // push on both halves.
  Rng rng(17);
  const std::size_t n = 1100;
  std::vector<double> b(n), k(n, 0.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  for (std::size_t l = 1; l < n; ++l) k[l] = rng.uniform(-0.01, 0.01);
  const std::vector<double> fast = solve_renewal(b, k);
  std::vector<double> direct = b;
  for (std::size_t m = 0; m < n; ++m)
    for (std::size_t l = 1; l <= m; ++l) direct[m] += k[l] * direct[m - l];
  for (std::size_t m = 0; m < n; ++m)
    EXPECT_NEAR(fast[m], direct[m], 1e-9) << m;
}

TEST(RenewalSolverTest, RejectsNonCausalKernel) {
  const std::vector<double> b{1.0};
  const std::vector<double> k{0.5};
  EXPECT_THROW(solve_renewal(b, k), PreconditionError);
}

TEST(FastTrSolverTest, RequiresFgcsLayout) {
  SmpModel model(3, 4);
  EXPECT_THROW(FastTrSolver{model}, PreconditionError);
}

TEST(FastTrSolverTest, ZeroStepsIsPerfectlyReliable) {
  // A zero-length window absorbs nothing: TR = 1 from either transient state.
  Rng rng(23);
  const SmpModel model = test::random_fgcs_model(12, rng);
  const FastTrSolver fast(model);
  for (const State init : {State::kS1, State::kS2}) {
    const SparseTrSolver::Result result = fast.solve(init, 0);
    EXPECT_DOUBLE_EQ(result.temporal_reliability, 1.0);
    for (const double p : result.p_absorb) EXPECT_DOUBLE_EQ(p, 0.0);
  }
}

TEST(FastTrSolverTest, RejectsUnavailableInitialState) {
  Rng rng(29);
  const SmpModel model = test::random_fgcs_model(8, rng);
  const FastTrSolver fast(model);
  EXPECT_THROW(fast.solve(State::kS3, 4), PreconditionError);
  EXPECT_THROW(fast.solve(State::kS5, 4), PreconditionError);
}

class FastVsSparseTest : public ::testing::TestWithParam<int> {};

TEST_P(FastVsSparseTest, IdenticalSeries) {
  Rng rng(static_cast<std::uint64_t>(700 + GetParam()));
  const SmpModel model = test::random_fgcs_model(
      12, rng, /*allow_defective=*/GetParam() % 2 == 0);
  const std::size_t n = 16 + static_cast<std::size_t>(GetParam()) * 23;

  const SparseTrSolver sparse(model);
  const FastTrSolver fast(model);
  const auto s_series = sparse.solve_series(n);
  const auto f_series = fast.solve_series(n);
  for (std::size_t row = 0; row < 2; ++row)
    for (std::size_t jj = 0; jj < 3; ++jj)
      for (std::size_t m = 0; m <= n; ++m)
        ASSERT_NEAR(f_series[row][jj][m], s_series[row][jj][m], 1e-10)
            << "row=" << row << " j=" << jj << " m=" << m;

  for (const State init : {State::kS1, State::kS2}) {
    const auto a = sparse.solve(init, n);
    const auto b = fast.solve(init, n);
    EXPECT_NEAR(a.temporal_reliability, b.temporal_reliability, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FastVsSparseTest, ::testing::Range(0, 12));

TEST(FastTrSolverTest, LargeWindowAgreesWithSparse) {
  // One realistic-size check (1 h at 6 s = 600 ticks).
  Rng rng(99);
  const SmpModel model = test::random_fgcs_model(40, rng);
  const SparseTrSolver sparse(model);
  const FastTrSolver fast(model);
  const double a = sparse.solve(State::kS1, 600).temporal_reliability;
  const double b = fast.solve(State::kS1, 600).temporal_reliability;
  EXPECT_NEAR(a, b, 1e-9);
}

}  // namespace
}  // namespace fgcs
