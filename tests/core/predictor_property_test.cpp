// Property sweeps over randomly generated traces: invariants the predictor
// must satisfy regardless of workload.
#include <gtest/gtest.h>

#include "core/predictor.hpp"
#include "test_support.hpp"
#include "workload/trace_generator.hpp"

namespace fgcs {
namespace {

WorkloadParams fast_params() {
  WorkloadParams params;
  params.sampling_period = 60;
  return params;
}

class PredictorPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  MachineTrace make_trace() {
    TraceGenerator generator(fast_params(),
                             3000 + static_cast<std::uint64_t>(GetParam()));
    return generator.generate("prop", 21);
  }
};

TEST_P(PredictorPropertyTest, TrAlwaysInUnitInterval) {
  const MachineTrace trace = make_trace();
  const AvailabilityPredictor predictor;
  for (const SimTime start_hr : {0, 7, 13, 22}) {
    for (const SimTime len_hr : {1, 5, 10}) {
      const Prediction p = predictor.predict(
          trace, {.target_day = 20,
                  .window = {.start_of_day = start_hr * kSecondsPerHour,
                             .length = len_hr * kSecondsPerHour}});
      EXPECT_GE(p.temporal_reliability, 0.0);
      EXPECT_LE(p.temporal_reliability, 1.0);
      double absorbed = 0.0;
      for (const double a : p.p_absorb) {
        EXPECT_GE(a, -1e-12);
        absorbed += a;
      }
      EXPECT_NEAR(p.temporal_reliability + absorbed, 1.0, 1e-9);
    }
  }
}

TEST_P(PredictorPropertyTest, TrFromSameModelDecreasesWithSteps) {
  // For a FIXED estimated model, absorption can only grow with the horizon.
  const MachineTrace trace = make_trace();
  const SmpEstimator estimator;
  const TimeWindow window{.start_of_day = 10 * kSecondsPerHour,
                          .length = 8 * kSecondsPerHour};
  const SmpModel model = estimator.estimate(trace, 20, window);
  const SparseTrSolver solver(model);
  double previous = 1.0;
  for (std::size_t steps = 10; steps <= 480; steps += 47) {
    const double tr = solver.solve(State::kS1, steps).temporal_reliability;
    EXPECT_LE(tr, previous + 1e-12) << steps;
    previous = tr;
  }
}

TEST_P(PredictorPropertyTest, SlicePreservesPredictions) {
  // Predicting on a slice that still contains all the training days must give
  // the same answer as predicting on the full trace.
  const MachineTrace trace = make_trace();
  EstimatorConfig config;
  config.training_days = 5;
  const AvailabilityPredictor predictor(config);
  const TimeWindow window{.start_of_day = 9 * kSecondsPerHour,
                          .length = 2 * kSecondsPerHour};

  // Day 18 is a Friday (Monday epoch); its 5 most recent weekdays are
  // 11, 14, 15, 16, 17 — all inside the slice [7, 21).
  const double full =
      predictor.predict(trace, {.target_day = 18, .window = window})
          .temporal_reliability;
  const MachineTrace sliced = trace.slice(7, 21);
  const double partial =
      predictor.predict(sliced, {.target_day = 11, .window = window})
          .temporal_reliability;
  EXPECT_NEAR(full, partial, 1e-12);
}

TEST_P(PredictorPropertyTest, MoreHistoryNeverThrows) {
  const MachineTrace trace = make_trace();
  for (const std::size_t n : {1u, 3u, 30u, 0u}) {
    EstimatorConfig config;
    config.training_days = n;
    const AvailabilityPredictor predictor(config);
    EXPECT_NO_THROW(predictor.predict(
        trace, {.target_day = 20,
                .window = {.start_of_day = 0, .length = kSecondsPerHour}}));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PredictorPropertyTest, ::testing::Range(0, 6));

TEST(TraceSliceTest, PreservesDayTypesAndContent) {
  TraceGenerator generator(fast_params(), 41);
  const MachineTrace trace = generator.generate("s", 14);
  const MachineTrace weekend_start = trace.slice(5, 14);  // day 5 = Saturday
  ASSERT_EQ(weekend_start.day_count(), 9);
  EXPECT_EQ(weekend_start.day_type(0), DayType::kWeekend);
  EXPECT_EQ(weekend_start.day_type(2), DayType::kWeekday);
  for (std::size_t i = 0; i < trace.samples_per_day(); i += 97)
    ASSERT_EQ(weekend_start.at(0, i), trace.at(5, i));
}

TEST(TraceSliceTest, ValidatesBounds) {
  const MachineTrace trace = test::constant_trace(5, 10, 3600);
  EXPECT_THROW(trace.slice(-1, 3), PreconditionError);
  EXPECT_THROW(trace.slice(2, 2), PreconditionError);
  EXPECT_THROW(trace.slice(0, 6), PreconditionError);
}

}  // namespace
}  // namespace fgcs
