// Property sweeps over randomly generated traces: invariants the predictor
// must satisfy regardless of workload.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/prediction_service.hpp"
#include "core/predictor.hpp"
#include "test_support.hpp"
#include "workload/trace_generator.hpp"

namespace fgcs {
namespace {

WorkloadParams fast_params() {
  WorkloadParams params;
  params.sampling_period = 60;
  return params;
}

class PredictorPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  MachineTrace make_trace() {
    TraceGenerator generator(fast_params(),
                             3000 + static_cast<std::uint64_t>(GetParam()));
    return generator.generate("prop", 21);
  }
};

TEST_P(PredictorPropertyTest, TrAlwaysInUnitInterval) {
  const MachineTrace trace = make_trace();
  const AvailabilityPredictor predictor;
  for (const SimTime start_hr : {0, 7, 13, 22}) {
    for (const SimTime len_hr : {1, 5, 10}) {
      const Prediction p = predictor.predict(
          trace, {.target_day = 20,
                  .window = {.start_of_day = start_hr * kSecondsPerHour,
                             .length = len_hr * kSecondsPerHour}});
      EXPECT_GE(p.temporal_reliability, 0.0);
      EXPECT_LE(p.temporal_reliability, 1.0);
      double absorbed = 0.0;
      for (const double a : p.p_absorb) {
        EXPECT_GE(a, -1e-12);
        absorbed += a;
      }
      EXPECT_NEAR(p.temporal_reliability + absorbed, 1.0, 1e-9);
    }
  }
}

TEST_P(PredictorPropertyTest, TrFromSameModelDecreasesWithSteps) {
  // For a FIXED estimated model, absorption can only grow with the horizon.
  const MachineTrace trace = make_trace();
  const SmpEstimator estimator;
  const TimeWindow window{.start_of_day = 10 * kSecondsPerHour,
                          .length = 8 * kSecondsPerHour};
  const SmpModel model = estimator.estimate(trace, 20, window);
  const SparseTrSolver solver(model);
  double previous = 1.0;
  for (std::size_t steps = 10; steps <= 480; steps += 47) {
    const double tr = solver.solve(State::kS1, steps).temporal_reliability;
    EXPECT_LE(tr, previous + 1e-12) << steps;
    previous = tr;
  }
}

TEST_P(PredictorPropertyTest, SlicePreservesPredictions) {
  // Predicting on a slice that still contains all the training days must give
  // the same answer as predicting on the full trace.
  const MachineTrace trace = make_trace();
  EstimatorConfig config;
  config.training_days = 5;
  const AvailabilityPredictor predictor(config);
  const TimeWindow window{.start_of_day = 9 * kSecondsPerHour,
                          .length = 2 * kSecondsPerHour};

  // Day 18 is a Friday (Monday epoch); its 5 most recent weekdays are
  // 11, 14, 15, 16, 17 — all inside the slice [7, 21).
  const double full =
      predictor.predict(trace, {.target_day = 18, .window = window})
          .temporal_reliability;
  const MachineTrace sliced = trace.slice(7, 21);
  const double partial =
      predictor.predict(sliced, {.target_day = 11, .window = window})
          .temporal_reliability;
  EXPECT_NEAR(full, partial, 1e-12);
}

TEST_P(PredictorPropertyTest, MoreHistoryNeverThrows) {
  const MachineTrace trace = make_trace();
  for (const std::size_t n : {1u, 3u, 30u, 0u}) {
    EstimatorConfig config;
    config.training_days = n;
    const AvailabilityPredictor predictor(config);
    EXPECT_NO_THROW(predictor.predict(
        trace, {.target_day = 20,
                .window = {.start_of_day = 0, .length = kSecondsPerHour}}));
  }
}

TEST_P(PredictorPropertyTest, ServiceBatchStaysInUnitInterval) {
  // The batched fleet-serving path must satisfy the same range invariant as
  // the plain predictor, warm or cold (the batch repeats every request).
  const MachineTrace trace = make_trace();
  PredictionService service;
  std::vector<BatchRequest> batch;
  for (const SimTime start_hr : {0, 7, 13, 22}) {
    for (const SimTime len_hr : {1, 5, 10}) {
      const PredictionRequest request{
          .target_day = 20,
          .window = {.start_of_day = start_hr * kSecondsPerHour,
                     .length = len_hr * kSecondsPerHour}};
      batch.push_back({.trace = &trace, .request = request});
      batch.push_back({.trace = &trace, .request = request});
    }
  }
  for (const Prediction& p : service.predict_batch(batch)) {
    EXPECT_GE(p.temporal_reliability, 0.0);
    EXPECT_LE(p.temporal_reliability, 1.0);
    double absorbed = 0.0;
    for (const double a : p.p_absorb) {
      EXPECT_GE(a, -1e-12);
      absorbed += a;
    }
    EXPECT_NEAR(p.temporal_reliability + absorbed, 1.0, 1e-9);
  }
}

TEST_P(PredictorPropertyTest, ServiceTrNonIncreasingInWindowLength) {
  // Longer windows only add failure opportunities, so through the service
  // path TR(T) must be non-increasing in T for a fixed window start. Each T
  // estimates its own model from the clock-time window, so this only holds
  // when training days agree — here every day repeats the same load pattern
  // (overload block at 10:00–12:00, intensity varied by the sweep index).
  // On fully random workloads re-estimation noise can locally raise TR.
  const int overload_pct = 85 + 2 * GetParam();
  MachineTrace trace("flaky", Calendar(0), 60, 512);
  for (int d = 0; d < 8; ++d) {
    auto day = test::constant_day(60, 10);
    for (std::size_t i = 10 * 60; i < 12 * 60; ++i)
      day[i] = test::sample(overload_pct);
    trace.append_day(std::move(day));
  }
  PredictionService service;
  for (const SimTime start_hr : {8, 9}) {
    double previous = 1.0;
    for (SimTime len_hr = 1; len_hr <= 12; ++len_hr) {
      const double tr =
          service
              .predict(trace,
                       {.target_day = 7,
                        .window = {.start_of_day = start_hr * kSecondsPerHour,
                                   .length = len_hr * kSecondsPerHour}})
              .temporal_reliability;
      EXPECT_LE(tr, previous + 1e-9) << "start " << start_hr << "h, length "
                                     << len_hr << "h";
      previous = tr;
    }
  }
}

TEST_P(PredictorPropertyTest, ServiceBitIdenticalToUnbatchedPredictor) {
  // The service contract is bit-identity with AvailabilityPredictor, not
  // approximate agreement — for cold misses and warm cache hits alike.
  const MachineTrace trace = make_trace();
  PredictionService service;
  const AvailabilityPredictor reference;
  for (const SimTime start_hr : {3, 11, 18}) {
    const PredictionRequest request{
        .target_day = 20,
        .window = {.start_of_day = start_hr * kSecondsPerHour,
                   .length = 4 * kSecondsPerHour}};
    const Prediction want = reference.predict(trace, request);
    for (int round = 0; round < 2; ++round) {  // miss, then cache hit
      const Prediction got = service.predict(trace, request);
      EXPECT_EQ(std::memcmp(&got.temporal_reliability,
                            &want.temporal_reliability, sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(got.p_absorb.data(), want.p_absorb.data(),
                            sizeof(got.p_absorb)),
                0);
      EXPECT_EQ(got.initial_state, want.initial_state);
      EXPECT_EQ(got.training_days_used, want.training_days_used);
      EXPECT_EQ(got.steps, want.steps);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PredictorPropertyTest, ::testing::Range(0, 6));

TEST(TraceSliceTest, PreservesDayTypesAndContent) {
  TraceGenerator generator(fast_params(), 41);
  const MachineTrace trace = generator.generate("s", 14);
  const MachineTrace weekend_start = trace.slice(5, 14);  // day 5 = Saturday
  ASSERT_EQ(weekend_start.day_count(), 9);
  EXPECT_EQ(weekend_start.day_type(0), DayType::kWeekend);
  EXPECT_EQ(weekend_start.day_type(2), DayType::kWeekday);
  for (std::size_t i = 0; i < trace.samples_per_day(); i += 97)
    ASSERT_EQ(weekend_start.at(0, i), trace.at(5, i));
}

TEST(TraceSliceTest, ValidatesBounds) {
  const MachineTrace trace = test::constant_trace(5, 10, 3600);
  EXPECT_THROW(trace.slice(-1, 3), PreconditionError);
  EXPECT_THROW(trace.slice(2, 2), PreconditionError);
  EXPECT_THROW(trace.slice(0, 6), PreconditionError);
}

}  // namespace
}  // namespace fgcs
