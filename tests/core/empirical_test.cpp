#include "core/empirical.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

TEST(SurvivesWindowTest, BasicCases) {
  EXPECT_FALSE(survives_window({}));
  const std::vector<State> ok{State::kS1, State::kS2, State::kS1};
  EXPECT_TRUE(survives_window(ok));
  const std::vector<State> fails_mid{State::kS1, State::kS3, State::kS1};
  EXPECT_FALSE(survives_window(fails_mid));
  const std::vector<State> starts_failed{State::kS5, State::kS1};
  EXPECT_FALSE(survives_window(starts_failed));
  const std::vector<State> fails_last{State::kS1, State::kS4};
  EXPECT_FALSE(survives_window(fails_last));
}

TEST(EmpiricalTrTest, CountsEligibleAndSurvivors) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  // Day 0: survives. Day 1: fails mid-window. Day 2: starts down (ineligible).
  trace.append_day(constant_day(60, 10));
  {
    auto day = constant_day(60, 10);
    for (std::size_t i = 20; i < 60; ++i) day[i] = sample(95);
    trace.append_day(std::move(day));
  }
  {
    auto day = constant_day(60, 10);
    day[0] = sample(10, 400, false);
    trace.append_day(std::move(day));
  }
  const StateClassifier classifier(test::test_thresholds(), 60);
  const TimeWindow w{.start_of_day = 0, .length = 2 * kSecondsPerHour};
  const std::vector<std::int64_t> days{0, 1, 2};
  const EmpiricalTr result = empirical_tr(trace, days, w, classifier);
  EXPECT_EQ(result.eligible_days, 2u);
  EXPECT_EQ(result.surviving_days, 1u);
  ASSERT_TRUE(result.tr.has_value());
  EXPECT_DOUBLE_EQ(*result.tr, 0.5);
}

TEST(EmpiricalTrTest, NoEligibleDaysGivesEmptyTr) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  auto day = constant_day(60, 10);
  for (auto& s : day) s.set_up(false);
  trace.append_day(std::move(day));
  const StateClassifier classifier(test::test_thresholds(), 60);
  const TimeWindow w{.start_of_day = 0, .length = kSecondsPerHour};
  const std::vector<std::int64_t> days{0};
  EXPECT_FALSE(empirical_tr(trace, days, w, classifier).tr.has_value());
}

TEST(EmpiricalTrTest, EmptyHistoryHasNoEligibleDays) {
  // A trace with zero recorded days: every requested day is out of range, so
  // the result is "no data", not a crash or a 0/0.
  const MachineTrace trace("m", Calendar(0), 60, 512);
  const StateClassifier classifier(test::test_thresholds(), 60);
  const TimeWindow w{.start_of_day = 0, .length = kSecondsPerHour};
  const std::vector<std::int64_t> days{0, 1};
  const EmpiricalTr result = empirical_tr(trace, days, w, classifier);
  EXPECT_EQ(result.eligible_days, 0u);
  EXPECT_EQ(result.surviving_days, 0u);
  EXPECT_FALSE(result.tr.has_value());
}

TEST(EmpiricalTrTest, SingleDayTraceCoversWholeDayWindow) {
  const MachineTrace trace = test::constant_trace(1, 10, 60);
  const StateClassifier classifier(test::test_thresholds(), 60);
  const TimeWindow w{.start_of_day = 0, .length = kSecondsPerDay};
  const std::vector<std::int64_t> days{0};
  const EmpiricalTr result = empirical_tr(trace, days, w, classifier);
  EXPECT_EQ(result.eligible_days, 1u);
  EXPECT_EQ(result.surviving_days, 1u);
  ASSERT_TRUE(result.tr.has_value());
  EXPECT_DOUBLE_EQ(*result.tr, 1.0);
}

TEST(EmpiricalTrTest, WindowPastMidnightRequiresNextDay) {
  const StateClassifier classifier(test::test_thresholds(), 60);
  const TimeWindow w{.start_of_day = 23 * kSecondsPerHour,
                     .length = 2 * kSecondsPerHour};
  const std::vector<std::int64_t> day_zero{0};

  // Single-day history: the wrapped window runs off the recorded data, so
  // the day is skipped rather than classified against missing samples.
  const MachineTrace single = test::constant_trace(1, 10, 60);
  const EmpiricalTr truncated = empirical_tr(single, day_zero, w, classifier);
  EXPECT_EQ(truncated.eligible_days, 0u);
  EXPECT_FALSE(truncated.tr.has_value());

  // With day 1 recorded, day 0's window wraps into it — and a revocation in
  // day 1's first half hour kills the window even though day 0 is spotless.
  MachineTrace trace("m", Calendar(0), 60, 512);
  trace.append_day(constant_day(60, 10));
  {
    auto day = constant_day(60, 10);
    for (std::size_t i = 0; i < 30; ++i) day[i] = sample(0, 400, false);
    trace.append_day(std::move(day));
  }
  const EmpiricalTr wrapped = empirical_tr(trace, day_zero, w, classifier);
  EXPECT_EQ(wrapped.eligible_days, 1u);
  EXPECT_EQ(wrapped.surviving_days, 0u);
  ASSERT_TRUE(wrapped.tr.has_value());
  EXPECT_DOUBLE_EQ(*wrapped.tr, 0.0);
}

TEST(EmpiricalTrTest, OutOfRangeDaysAreSkipped) {
  const MachineTrace trace = test::constant_trace(2, 10, 60);
  const StateClassifier classifier(test::test_thresholds(), 60);
  const TimeWindow w{.start_of_day = 0, .length = kSecondsPerHour};
  const std::vector<std::int64_t> days{0, 1, 2, 7};
  const EmpiricalTr result = empirical_tr(trace, days, w, classifier);
  EXPECT_EQ(result.eligible_days, 2u);
}

TEST(RelativeErrorTest, Definition) {
  EXPECT_DOUBLE_EQ(relative_error(0.8, 1.0), 0.2);
  EXPECT_DOUBLE_EQ(relative_error(1.0, 0.8), 0.25);
  EXPECT_DOUBLE_EQ(relative_error(0.5, 0.5), 0.0);
  EXPECT_THROW(relative_error(0.5, 0.0), PreconditionError);
}

TEST(UnavailabilityStatsTest, CountsMaximalRunsPerFailureType) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  auto day = constant_day(60, 10);
  // Two separate S3 episodes, one S4, one S5.
  for (std::size_t i = 100; i < 105; ++i) day[i] = sample(95);
  for (std::size_t i = 200; i < 204; ++i) day[i] = sample(95);
  for (std::size_t i = 300; i < 310; ++i) day[i] = sample(10, 20, true);
  for (std::size_t i = 400; i < 420; ++i) day[i] = sample(0, 400, false);
  trace.append_day(std::move(day));

  Thresholds t = test::test_thresholds();
  t.transient_limit = 0;  // count every overload episode
  const StateClassifier classifier(t, 60);
  const UnavailabilityStats stats = count_unavailability(trace, classifier);
  EXPECT_EQ(stats.cpu_contention, 2u);
  EXPECT_EQ(stats.memory_thrash, 1u);
  EXPECT_EQ(stats.revocation, 1u);
  EXPECT_EQ(stats.total(), 4u);
}

TEST(UnavailabilityStatsTest, EmptyTraceCountsNothing) {
  const MachineTrace trace("m", Calendar(0), 60, 512);
  const StateClassifier classifier(test::test_thresholds(), 60);
  const UnavailabilityStats stats = count_unavailability(trace, classifier);
  EXPECT_EQ(stats.total(), 0u);
}

TEST(UnavailabilityStatsTest, RunsSpanningMidnightCountOnce) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  auto day0 = constant_day(60, 10);
  for (std::size_t i = 1380; i < 1440; ++i) day0[i] = sample(0, 400, false);
  auto day1 = constant_day(60, 10);
  for (std::size_t i = 0; i < 30; ++i) day1[i] = sample(0, 400, false);
  trace.append_day(std::move(day0));
  trace.append_day(std::move(day1));

  const StateClassifier classifier(test::test_thresholds(), 60);
  const UnavailabilityStats stats = count_unavailability(trace, classifier);
  EXPECT_EQ(stats.revocation, 1u);
  EXPECT_EQ(stats.total(), 1u);
}

}  // namespace
}  // namespace fgcs
