#include "core/semi_markov.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

/// Two-state chain: 0 → 1 with probability 1 and deterministic hold `hold`.
SmpModel deterministic_two_state(std::size_t hold, std::size_t horizon) {
  SmpModel model(2, horizon);
  model.set_q(0, 1, 1.0);
  std::vector<double> pmf(hold, 0.0);
  pmf[hold - 1] = 1.0;
  model.set_h_pmf(0, 1, pmf);
  return model;
}

TEST(SmpModelTest, SettersValidateRanges) {
  SmpModel model(3, 10);
  EXPECT_THROW(model.set_q(0, 0, 0.5), PreconditionError);  // self-transition
  EXPECT_THROW(model.set_q(0, 1, 1.5), PreconditionError);
  EXPECT_THROW(model.set_q(3, 0, 0.5), PreconditionError);
  model.set_q(0, 1, 0.5);
  EXPECT_DOUBLE_EQ(model.q(0, 1), 0.5);
  EXPECT_THROW(model.set_h_pmf(0, 1, std::vector<double>(11, 0.1)),
               PreconditionError);  // longer than horizon
  EXPECT_THROW(model.set_h_pmf(0, 1, {0.6, 0.6}), PreconditionError);
  EXPECT_THROW(model.set_h_pmf(0, 1, {-0.1}), PreconditionError);
}

TEST(SmpModelTest, ValidateRejectsQWithoutH) {
  SmpModel model(2, 5);
  model.set_q(0, 1, 1.0);
  EXPECT_THROW(model.validate(), PreconditionError);
  model.set_h_pmf(0, 1, {1.0});
  EXPECT_NO_THROW(model.validate());
}

TEST(SmpModelTest, ExitMassAndSurvival) {
  SmpModel model(2, 4);
  model.set_q(0, 1, 0.8);  // defective: 0.2 censored
  model.set_h_pmf(0, 1, {0.5, 0.25, 0.25});
  EXPECT_DOUBLE_EQ(model.exit_mass(0), 0.8);
  EXPECT_DOUBLE_EQ(model.survival(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.survival(0, 1), 1.0 - 0.8 * 0.5);
  EXPECT_NEAR(model.survival(0, 3), 0.2, 1e-12);
  EXPECT_NEAR(model.survival(0, 4), 0.2, 1e-12);  // censored mass persists
}

TEST(SmpModelTest, HoldingPmfLookup) {
  SmpModel model(2, 5);
  model.set_q(0, 1, 1.0);
  model.set_h_pmf(0, 1, {0.1, 0.9});
  EXPECT_DOUBLE_EQ(model.h(0, 1, 1), 0.1);
  EXPECT_DOUBLE_EQ(model.h(0, 1, 2), 0.9);
  EXPECT_DOUBLE_EQ(model.h(0, 1, 5), 0.0);  // beyond stored support
  EXPECT_THROW(model.h(0, 1, 0), PreconditionError);
  EXPECT_THROW(model.h(0, 1, 6), PreconditionError);
}

TEST(DenseSolverTest, DeterministicHoldFirstPassage) {
  const SmpModel model = deterministic_two_state(/*hold=*/3, /*horizon=*/10);
  const DenseSmpSolver solver(model);
  EXPECT_DOUBLE_EQ(solver.first_passage(0, 2)[1], 0.0);  // too early
  EXPECT_DOUBLE_EQ(solver.first_passage(0, 3)[1], 1.0);
  EXPECT_DOUBLE_EQ(solver.first_passage(0, 10)[1], 1.0);
}

TEST(DenseSolverTest, GeometricChainMatchesClosedForm) {
  // A chain that leaves state 0 with per-tick probability 0.3 has absorption
  // probability 1 − 0.7ⁿ by tick n; in SMP form that is a geometric holding
  // time with full exit mass.
  SmpModel geo(2, 64);
  geo.set_q(0, 1, 1.0);
  std::vector<double> pmf(64);
  double p = 0.3;
  for (std::size_t l = 0; l < pmf.size(); ++l) {
    pmf[l] = p;
    p *= 0.7;
  }
  // Normalize the tail truncation into the last entry so the pmf sums to 1.
  double total = 0.0;
  for (const double v : pmf) total += v;
  pmf.back() += 1.0 - total;
  geo.set_h_pmf(0, 1, pmf);

  const DenseSmpSolver solver(geo);
  for (const std::size_t n : {1u, 2u, 5u, 10u}) {
    const double expected = 1.0 - std::pow(0.7, static_cast<double>(n));
    EXPECT_NEAR(solver.first_passage(0, n)[1], expected, 1e-9) << n;
  }
}

TEST(DenseSolverTest, TwoHopChainConvolves) {
  // 0 → 1 (hold 2) → 2 (hold 3): first passage to 2 happens exactly at 5.
  SmpModel model(3, 10);
  model.set_q(0, 1, 1.0);
  model.set_h_pmf(0, 1, {0.0, 1.0});
  model.set_q(1, 2, 1.0);
  model.set_h_pmf(1, 2, {0.0, 0.0, 1.0});
  const DenseSmpSolver solver(model);
  EXPECT_DOUBLE_EQ(solver.first_passage(0, 4)[2], 0.0);
  EXPECT_DOUBLE_EQ(solver.first_passage(0, 5)[2], 1.0);
  // Intermediate state reached at 2.
  EXPECT_DOUBLE_EQ(solver.first_passage(0, 2)[1], 1.0);
}

TEST(DenseSolverTest, IntervalTransitionRowsSumToOne) {
  Rng rng(11);
  const SmpModel model = test::random_fgcs_model(8, rng);
  const DenseSmpSolver solver(model);
  for (const std::size_t n : {0u, 1u, 4u, 12u}) {
    const std::vector<double> p = solver.interval_transition(n);
    for (std::size_t i = 0; i < kStateCount; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < kStateCount; ++j) row += p[i * kStateCount + j];
      EXPECT_NEAR(row, 1.0, 1e-9) << "i=" << i << " n=" << n;
    }
  }
}

TEST(DenseSolverTest, IntervalTransitionAtZeroIsIdentity) {
  Rng rng(13);
  const SmpModel model = test::random_fgcs_model(6, rng);
  const DenseSmpSolver solver(model);
  const std::vector<double> p = solver.interval_transition(0);
  for (std::size_t i = 0; i < kStateCount; ++i)
    for (std::size_t j = 0; j < kStateCount; ++j)
      EXPECT_DOUBLE_EQ(p[i * kStateCount + j], i == j ? 1.0 : 0.0);
}

class FirstPassageMonteCarloTest : public ::testing::TestWithParam<int> {};

TEST_P(FirstPassageMonteCarloTest, SolverMatchesSimulation) {
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const SmpModel model =
      test::random_fgcs_model(6, rng, /*allow_defective=*/GetParam() % 2 == 1);
  const std::size_t n_steps = 4 + static_cast<std::size_t>(GetParam() % 12);
  const DenseSmpSolver solver(model);

  const std::vector<double> fp = solver.first_passage(0, n_steps);
  const double tr_solver = 1.0 - (fp[2] + fp[3] + fp[4]);

  const std::array<bool, 5> failure{false, false, true, true, true};
  Rng mc_rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const double tr_mc = monte_carlo_reliability(
      model, 0, n_steps, std::span<const bool>(failure), 40000, mc_rng);

  EXPECT_NEAR(tr_solver, tr_mc, 0.015) << "steps=" << n_steps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FirstPassageMonteCarloTest,
                         ::testing::Range(0, 16));

TEST(MonteCarloTest, FailureInitIsZero) {
  Rng rng(3);
  const SmpModel model = test::random_fgcs_model(4, rng);
  const std::array<bool, 5> failure{false, false, true, true, true};
  Rng mc(5);
  EXPECT_DOUBLE_EQ(monte_carlo_reliability(model, 2, 5,
                                           std::span<const bool>(failure), 10,
                                           mc),
                   0.0);
}

}  // namespace
}  // namespace fgcs
