// The PR's primary differential gate: an IncrementalEstimator fed one
// mutation at a time (day closed, day retired, partial-day append) must stay
// *bit-identical* — exact double bits, not a tolerance — to a from-scratch
// SmpEstimator over the surviving trace, after EVERY mutation of 1000+
// seeded sequences. The counts are integers, so any divergence means the
// add/subtract bookkeeping (not floating-point noise) is wrong.
//
// The fuzz drives a real TraceStore (sample-level appends, day-boundary
// rollup, retention-based retirement) with the estimator hooked to its
// DayClosedCallback — the exact wiring a streaming consumer uses — so the
// battery also pins the store's close/retire event contract.
#include "core/incremental_estimator.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/estimator.hpp"
#include "core/sparse_solver.hpp"
#include "test_support.hpp"
#include "trace/trace_store.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

using test::sample;

/// EXPECT the same bit pattern — catches ±0.0 and NaN-payload drift that
/// operator== would wave through.
void expect_bits(double got, double want, const char* what) {
  EXPECT_EQ(std::memcmp(&got, &want, sizeof(double)), 0)
      << what << ": " << got << " vs " << want;
}

void expect_counts_equal(const TransitionCounts& got,
                         const TransitionCounts& want) {
  ASSERT_EQ(got.horizon(), want.horizon());
  for (const State from : {State::kS1, State::kS2}) {
    EXPECT_EQ(got.censored(from), want.censored(from));
    EXPECT_EQ(got.entries(from), want.entries(from));
    for (std::size_t to = 0; to < kStateCount; ++to)
      for (std::size_t hold = 1; hold <= want.horizon(); ++hold)
        EXPECT_EQ(got.count(from, state_from_index(to), hold),
                  want.count(from, state_from_index(to), hold))
            << "count(" << index_of(from) << "," << to << "," << hold << ")";
  }
}

void expect_models_bit_identical(const SmpModel& got, const SmpModel& want) {
  ASSERT_EQ(got.horizon(), want.horizon());
  for (std::size_t from = 0; from < 2; ++from) {
    expect_bits(got.exit_mass(from), want.exit_mass(from), "exit_mass");
    for (std::size_t to = 0; to < kStateCount; ++to) {
      expect_bits(got.q(from, to), want.q(from, to), "q");
      for (std::size_t hold = 1; hold <= want.horizon(); ++hold)
        expect_bits(got.h(from, to, hold), want.h(from, to, hold), "h");
    }
  }
}

/// One synthetic day: a load random-walk with occasional multi-sample outages
/// and memory pressure, rich enough to visit all five states.
std::vector<ResourceSample> random_day(Rng& rng, std::size_t per_day) {
  std::vector<ResourceSample> day;
  day.reserve(per_day);
  int load = static_cast<int>(rng.uniform_int(0, 100));
  std::size_t down_run = 0;
  for (std::size_t i = 0; i < per_day; ++i) {
    if (down_run == 0 && rng.uniform_int(0, 19) == 0)
      down_run = static_cast<std::size_t>(rng.uniform_int(1, 4));
    load += static_cast<int>(rng.uniform_int(-25, 25));
    load = std::clamp(load, 0, 100);
    const int mem = rng.uniform_int(0, 6) == 0
                        ? static_cast<int>(rng.uniform_int(1, 40))
                        : static_cast<int>(rng.uniform_int(100, 500));
    const bool up = down_run == 0;
    if (down_run > 0) --down_run;
    day.push_back(sample(up ? load : 0, mem, up));
  }
  return day;
}

/// The scratch target: the first day at/after the end of the recorded trace
/// whose type matches the estimator's pinned type (always within a week).
std::int64_t matching_target(const MachineTrace& trace, DayType type) {
  for (std::int64_t t = trace.day_count(); t < trace.day_count() + 7; ++t)
    if (trace.day_type(t) == type) return t;
  ADD_FAILURE() << "no matching day type within a week";
  return trace.day_count();
}

/// Full incremental-vs-scratch comparison over the store's current snapshot:
/// selected days, raw counts, every model double, the majority initial
/// state, and the TR the solver derives — all exact.
void expect_differential(const TraceStore& store, const std::string& id,
                         const IncrementalEstimator& incremental,
                         const EstimatorConfig& config) {
  const std::shared_ptr<const MachineTrace> snap = store.snapshot(id);
  ASSERT_NE(snap, nullptr);
  const SmpEstimator scratch(config);
  const std::int64_t target =
      matching_target(*snap, incremental.day_type());
  const std::vector<std::int64_t> days =
      scratch.training_days_for(*snap, target, incremental.window());

  ASSERT_EQ(incremental.counted_days(), days.size());
  const std::vector<std::int64_t> ids = incremental.counted_day_ids();
  const std::int64_t first = store.first_day_id(id);
  for (std::size_t i = 0; i < days.size(); ++i)
    EXPECT_EQ(ids[i], first + days[i]) << "counted day id " << i;

  const TransitionCounts want =
      scratch.count_transitions(*snap, days, incremental.window());
  expect_counts_equal(incremental.counts(), want);

  const SmpModel want_model = scratch.build_model(want);
  const SmpModel got_model = incremental.model();
  expect_models_bit_identical(got_model, want_model);

  const State init = incremental.majority_initial_state();
  EXPECT_EQ(init,
            scratch.majority_initial_state(*snap, days, incremental.window()));

  const std::size_t steps =
      incremental.window().steps(snap->sampling_period());
  expect_bits(SparseTrSolver(got_model).solve(init, steps).temporal_reliability,
              SparseTrSolver(want_model).solve(init, steps).temporal_reliability,
              "temporal_reliability");
}

TEST(IncrementalEstimatorFuzz, IncrementalMatchesScratchAfterEveryMutation) {
  int mutations = 0;
  int partial_appends = 0;
  int closes = 0;
  int retires = 0;
  int wrap_scenarios = 0;

  for (std::uint64_t scenario = 0; scenario < 40; ++scenario) {
    Rng rng(0x1c9e'0000u + scenario);
    // Coarse periods keep a day at 12–48 samples so 40 scenarios × 30
    // mutations of full differential checks stay fast.
    const SimTime period =
        (std::array<SimTime, 3>{1800, 3600, 7200})[static_cast<std::size_t>(
            rng.uniform_int(0, 2))];
    const std::size_t per_day =
        static_cast<std::size_t>(kSecondsPerDay / period);

    EstimatorConfig config;
    config.training_days = static_cast<std::size_t>(rng.uniform_int(0, 5));
    if (rng.uniform_int(0, 3) == 0) config.laplace_alpha = 0.5;

    // ~1/4 of the windows wrap midnight (the eligibility-lag path).
    TimeWindow window;
    const std::int64_t max_steps =
        std::min<std::int64_t>(8, static_cast<std::int64_t>(per_day));
    const std::int64_t steps = rng.uniform_int(1, max_steps);
    if (rng.uniform_int(0, 3) == 0) {
      window.start_of_day =
          kSecondsPerDay - rng.uniform_int(1, steps) * period;
      ++wrap_scenarios;
    } else {
      window.start_of_day =
          rng.uniform_int(0, static_cast<std::int64_t>(per_day) - 1) * period;
    }
    window.length = steps * period;

    const MachineSpec spec{.machine_id = "fuzz",
                           .epoch_day_of_week =
                               static_cast<int>(rng.uniform_int(0, 6)),
                           .sampling_period = period,
                           .total_mem_mb = 512};
    const DayType day_type =
        rng.uniform_int(0, 1) == 0 ? DayType::kWeekday : DayType::kWeekend;

    IncrementalEstimator incremental(config, window, day_type, period);
    TraceStoreConfig store_config;
    // Retention 0 (keep everything) or a small sliding window, including
    // windows smaller than the training budget.
    store_config.retention_days =
        rng.uniform_int(0, 1) == 0 ? 0 : rng.uniform_int(2, 6);
    int scenario_retires = 0;
    TraceStore store(
        store_config,
        [&](const TraceStore::DayClosedEvent& event) {
          if (event.retired_day >= 0) {
            incremental.on_day_retired(event.retired_day);
            ++scenario_retires;
          }
          incremental.on_day_appended(*event.trace, event.first_day_id);
        });
    store.register_machine(spec);

    // Mutation stream: sample-level appends in random shapes. A chunk that
    // stays short of the day boundary is the "append-partial-day" op and
    // must close nothing; a chunk crossing one or more boundaries closes
    // (and, under retention, retires) days through the callback.
    std::vector<ResourceSample> pending;
    std::uint64_t next_index = 0;
    for (int mutation = 0; mutation < 30; ++mutation) {
      const std::size_t buffered = store.buffered_samples("fuzz");
      std::size_t count = 0;
      const std::int64_t op = rng.uniform_int(0, 3);
      if (op == 0) {
        // Partial append: stop strictly inside the current day.
        count = static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(per_day - buffered)));
        if (count == per_day - buffered) count = per_day - buffered - 1;
        if (count == 0) count = per_day - buffered > 1 ? 1 : 0;
      } else {
        // Close 1–2 days (plus whatever tops off the buffered partial day).
        count = (per_day - buffered) +
                (op == 3 ? per_day : 0) +
                static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(per_day) - 1));
      }
      if (count == 0) continue;
      while (pending.size() < count) {
        const std::vector<ResourceSample> day = random_day(rng, per_day);
        pending.insert(pending.end(), day.begin(), day.end());
      }
      const std::vector<ResourceSample> chunk(pending.begin(),
                                              pending.begin() +
                                                  static_cast<std::ptrdiff_t>(count));
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(count));

      const std::size_t counted_before = incremental.counted_days();
      const AppendResult result = store.append(spec, next_index, chunk);
      next_index = result.next_index;
      ++mutations;
      closes += static_cast<int>(result.days_closed);
      if (op == 0) {
        ++partial_appends;
        EXPECT_EQ(result.days_closed, 0u) << "partial append closed a day";
        EXPECT_EQ(incremental.counted_days(), counted_before)
            << "partial append moved the estimator";
      }
      expect_differential(store, "fuzz", incremental, config);
      if (HasFailure()) {
        ADD_FAILURE() << "scenario=" << scenario << " mutation=" << mutation
                      << " period=" << period
                      << " window=" << window.describe()
                      << " training=" << config.training_days
                      << " retention=" << store_config.retention_days;
        return;
      }
    }
    retires += scenario_retires;
  }

  EXPECT_GE(mutations, 1000) << "battery shrank below the 1000-sequence gate";
  EXPECT_GT(partial_appends, 100);
  EXPECT_GT(closes, 500);
  EXPECT_GT(retires, 100);
  EXPECT_GT(wrap_scenarios, 4);
}

// ---- targeted edges the fuzz could only hit by luck ----

TEST(TransitionCountsTest, RemoveIsExactInverseOfAccumulate) {
  Rng rng(0xadd5'b00du);
  for (int round = 0; round < 200; ++round) {
    TransitionCounts counts(12);
    std::vector<std::vector<State>> windows;
    for (int w = 0; w < 5; ++w) {
      std::vector<State> states;
      const std::int64_t n = rng.uniform_int(1, 13);
      for (std::int64_t i = 0; i < n; ++i)
        states.push_back(state_from_index(
            static_cast<std::size_t>(rng.uniform_int(0, kStateCount - 1))));
      counts.accumulate(states);
      windows.push_back(std::move(states));
    }
    // Remove in a different order than added: counts are order-free sums.
    for (std::size_t w = windows.size(); w > 0; --w)
      counts.remove(windows[w - 1]);
    for (const State from : {State::kS1, State::kS2}) {
      EXPECT_EQ(counts.entries(from), 0u);
      EXPECT_EQ(counts.censored(from), 0u);
    }
  }
}

TEST(TransitionCountsTest, RemovingUnseenWindowTripsPrecondition) {
  TransitionCounts counts(5);
  const std::vector<State> states{State::kS1, State::kS2};
  EXPECT_THROW(counts.remove(states), PreconditionError);
}

TEST(IncrementalEstimatorTest, WrapWindowLagsOneDayBehindAppends) {
  const TimeWindow window{.start_of_day = 23 * kSecondsPerHour,
                          .length = 2 * kSecondsPerHour};
  ASSERT_TRUE(window.wraps_midnight());
  const MachineTrace trace = test::constant_trace(/*days=*/3, /*load_pct=*/10,
                                                  /*period=*/3600);
  IncrementalEstimator incremental({}, window, DayType::kWeekday, 3600);
  // Appending day 0 completes nothing; day 1 completes day 0's window.
  incremental.on_day_appended(trace.slice(0, 1), 0);
  EXPECT_EQ(incremental.counted_days(), 0u);
  incremental.on_day_appended(trace.slice(0, 2), 0);
  EXPECT_EQ(incremental.counted_days(), 1u);
  EXPECT_EQ(incremental.counted_day_ids(), (std::vector<std::int64_t>{0}));
}

TEST(IncrementalEstimatorTest, RetireBelowTheFrontIsANoOp) {
  const MachineTrace trace = test::constant_trace(/*days=*/4, /*load_pct=*/10,
                                                  /*period=*/3600);
  const TimeWindow window{.start_of_day = 9 * kSecondsPerHour,
                          .length = 2 * kSecondsPerHour};
  EstimatorConfig config;
  config.training_days = 2;
  IncrementalEstimator incremental(config, window, DayType::kWeekday, 3600);
  for (std::int64_t d = 1; d <= trace.day_count(); ++d)
    incremental.on_day_appended(trace.slice(0, d), 0);
  // Budget 2 already trimmed days 0 and 1 out; retiring them changes nothing.
  const std::vector<std::int64_t> before = incremental.counted_day_ids();
  incremental.on_day_retired(0);
  incremental.on_day_retired(1);
  EXPECT_EQ(incremental.counted_day_ids(), before);
  // Retiring the real front does subtract.
  incremental.on_day_retired(before.front());
  EXPECT_EQ(incremental.counted_days(), before.size() - 1);
}

TEST(IncrementalEstimatorTest, RebuildMatchesIncrementalFeed) {
  Rng rng(0x9e3b'21u);
  const SimTime period = 3600;
  const std::size_t per_day = static_cast<std::size_t>(kSecondsPerDay / period);
  MachineTrace trace("m", Calendar(2), period, 512);
  for (int d = 0; d < 9; ++d) trace.append_day(random_day(rng, per_day));

  const TimeWindow window{.start_of_day = 7 * kSecondsPerHour,
                          .length = 3 * kSecondsPerHour};
  EstimatorConfig config;
  config.training_days = 3;
  IncrementalEstimator fed(config, window, DayType::kWeekday, period);
  for (std::int64_t d = 1; d <= trace.day_count(); ++d)
    fed.on_day_appended(trace.slice(0, d), 0);
  IncrementalEstimator rebuilt(config, window, DayType::kWeekday, period);
  rebuilt.rebuild(trace, 0);

  EXPECT_EQ(rebuilt.counted_day_ids(), fed.counted_day_ids());
  expect_counts_equal(rebuilt.counts(), fed.counts());
  expect_models_bit_identical(rebuilt.model(), fed.model());
}

TEST(IncrementalEstimatorTest, OutOfOrderAppendTripsPrecondition) {
  const MachineTrace trace = test::constant_trace(/*days=*/2, /*load_pct=*/10,
                                                  /*period=*/3600);
  const TimeWindow window{.start_of_day = 9 * kSecondsPerHour,
                          .length = 2 * kSecondsPerHour};
  IncrementalEstimator incremental({}, window, DayType::kWeekday, 3600);
  incremental.on_day_appended(trace, 0);
  // Re-announcing the same trace end re-offers day id 1 — not ascending.
  EXPECT_THROW(incremental.on_day_appended(trace, 0), PreconditionError);
}

}  // namespace
}  // namespace fgcs
