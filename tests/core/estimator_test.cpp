#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

TEST(TransitionCountsTest, CountsCompletedAndCensoredSojourns) {
  TransitionCounts counts(10);
  // S1 ×3, S2 ×2, then the first failure (S3): the trailing recovery is
  // invisible to first-passage estimation (failures are absorbing).
  const std::vector<State> seq{State::kS1, State::kS1, State::kS1, State::kS2,
                               State::kS2, State::kS3, State::kS3, State::kS1,
                               State::kS1};
  counts.accumulate(seq);
  EXPECT_EQ(counts.count(State::kS1, State::kS2, 3), 1u);
  EXPECT_EQ(counts.count(State::kS2, State::kS3, 2), 1u);
  EXPECT_EQ(counts.censored(State::kS1), 0u);  // post-failure data discarded
  EXPECT_EQ(counts.censored(State::kS2), 0u);
  EXPECT_EQ(counts.entries(State::kS1), 1u);
  EXPECT_EQ(counts.entries(State::kS2), 1u);
  EXPECT_EQ(counts.exits(State::kS1, State::kS2), 1u);
  EXPECT_EQ(counts.exits(State::kS1, State::kS3), 0u);
}

TEST(TransitionCountsTest, AccumulateAcrossMultipleWindows) {
  TransitionCounts counts(5);
  const std::vector<State> a{State::kS1, State::kS2};  // S1 hold 1 → S2; S2 censored
  const std::vector<State> b{State::kS1, State::kS2};
  counts.accumulate(a);
  counts.accumulate(b);
  EXPECT_EQ(counts.count(State::kS1, State::kS2, 1), 2u);
  EXPECT_EQ(counts.censored(State::kS2), 2u);
}

TEST(TransitionCountsTest, WindowsStartingInFailureContributeNothing) {
  TransitionCounts counts(5);
  const std::vector<State> seq{State::kS5, State::kS5, State::kS1};
  counts.accumulate(seq);
  // The window is already failed at its start: no sojourn evidence at all.
  EXPECT_EQ(counts.entries(State::kS1), 0u);
  EXPECT_EQ(counts.entries(State::kS2), 0u);
}

TEST(EstimatorTest, BuildModelNormalizesQandH) {
  TransitionCounts counts(6);
  // Two S1→S2 (holds 2 and 4), one S1→S3 (hold 1), one censored S1.
  const std::vector<State> w1{State::kS1, State::kS1, State::kS2};
  const std::vector<State> w2{State::kS1, State::kS1, State::kS1, State::kS1,
                              State::kS2};
  const std::vector<State> w3{State::kS1, State::kS3};
  const std::vector<State> w4{State::kS1, State::kS1};
  counts.accumulate(w1);  // hold 2 → S2
  counts.accumulate(w2);  // hold 4 → S2
  counts.accumulate(w3);  // hold 1 → S3
  counts.accumulate(w4);  // censored

  const SmpEstimator estimator;
  const SmpModel model = estimator.build_model(counts);
  // entries = 4: Q(S1→S2) = 2/4, Q(S1→S3) = 1/4, censored ¼ missing.
  EXPECT_NEAR(model.q(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(model.q(0, 2), 0.25, 1e-12);
  EXPECT_NEAR(model.exit_mass(0), 0.75, 1e-12);
  // H(S1→S2): holds 2 and 4, each ½.
  EXPECT_NEAR(model.h(0, 1, 2), 0.5, 1e-12);
  EXPECT_NEAR(model.h(0, 1, 4), 0.5, 1e-12);
  EXPECT_NEAR(model.h(0, 1, 1), 0.0, 1e-12);
  EXPECT_NEAR(model.h(0, 2, 1), 1.0, 1e-12);
}

TEST(EstimatorTest, NoDataLeavesDefectiveRows) {
  const SmpEstimator estimator;
  const SmpModel model = estimator.build_model(TransitionCounts(4));
  EXPECT_DOUBLE_EQ(model.exit_mass(0), 0.0);
  EXPECT_DOUBLE_EQ(model.exit_mass(1), 0.0);
}

TEST(EstimatorTest, LaplaceSmoothingAddsPseudoCounts) {
  TransitionCounts counts(4);
  const std::vector<State> w{State::kS1, State::kS2};
  counts.accumulate(w);  // one S1→S2, S2 censored
  EstimatorConfig config;
  config.laplace_alpha = 1.0;
  const SmpEstimator estimator(config);
  const SmpModel model = estimator.build_model(counts);
  // S1: entries 1, denom = 1 + 4α = 5. Q(S1→S2) = (1+1)/5, others 1/5.
  EXPECT_NEAR(model.q(0, 1), 0.4, 1e-12);
  EXPECT_NEAR(model.q(0, 2), 0.2, 1e-12);
  EXPECT_NEAR(model.q(0, 4), 0.2, 1e-12);
  // Pure pseudo-count transitions get a uniform holding pmf.
  EXPECT_NEAR(model.h(0, 2, 1), 0.25, 1e-12);
  EXPECT_NEAR(model.h(0, 2, 4), 0.25, 1e-12);
}

TEST(EstimatorTest, TrainingDaySelectionFollowsPaperRule) {
  // 14 days, Monday epoch. Target day 12 (weekend? day 12 = Saturday index…
  // epoch_dow=0: weekends are 5,6,12,13).
  const MachineTrace trace = test::constant_trace(14, 10, 60);
  EstimatorConfig config;
  config.training_days = 3;
  const SmpEstimator estimator(config);
  const TimeWindow w{.start_of_day = 0, .length = kSecondsPerHour};

  // Weekday target: most recent 3 weekdays before day 11.
  EXPECT_EQ(estimator.training_days_for(trace, 11, w),
            (std::vector<std::int64_t>{8, 9, 10}));
  // Weekend target: most recent weekends before day 12 are 5, 6.
  EXPECT_EQ(estimator.training_days_for(trace, 12, w),
            (std::vector<std::int64_t>{5, 6}));
}

TEST(EstimatorTest, TrainingDaysSkipIncompleteWrappingWindows) {
  const MachineTrace trace = test::constant_trace(8, 10, 60);
  EstimatorConfig config;
  config.training_days = 10;
  const SmpEstimator estimator(config);
  const TimeWindow wrapping{.start_of_day = 23 * kSecondsPerHour,
                            .length = 4 * kSecondsPerHour};
  // Day 7 would need day 8, which does not exist.
  const auto days = estimator.training_days_for(trace, 8, wrapping);
  EXPECT_EQ(days, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));  // weekdays 0-4
}

TEST(EstimatorTest, EstimateEndToEndOnCraftedTrace) {
  // Every training day: load 10% for the first half of the window, then 90%
  // (steady) — an S1 → S3 transition at a deterministic hold.
  MachineTrace trace("m", Calendar(0), 60, 512);
  for (int d = 0; d < 5; ++d) {
    auto day = constant_day(60, 10);
    for (std::size_t i = 30; i < 120; ++i) day[i] = sample(90);
    trace.append_day(std::move(day));
  }
  EstimatorConfig config;
  config.training_days = 4;
  const SmpEstimator estimator(config);
  const TimeWindow w{.start_of_day = 0, .length = kSecondsPerHour};
  const SmpModel model = estimator.estimate(trace, 4, w);

  EXPECT_NEAR(model.q(0, 2), 1.0, 1e-12);   // S1 → S3 always
  EXPECT_NEAR(model.h(0, 2, 30), 1.0, 1e-12);  // hold exactly 30 ticks
}

TEST(EstimatorTest, MajorityInitialState) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  trace.append_day(constant_day(60, 10));  // starts in S1
  trace.append_day(constant_day(60, 40));  // starts in S2
  trace.append_day(constant_day(60, 45));  // starts in S2
  trace.append_day(constant_day(60, 5));
  const SmpEstimator estimator;
  const TimeWindow w{.start_of_day = 0, .length = kSecondsPerHour};
  const std::vector<std::int64_t> s2_majority{1, 2, 3};
  EXPECT_EQ(estimator.majority_initial_state(trace, s2_majority, w), State::kS2);
  const std::vector<std::int64_t> tie{0, 1};
  EXPECT_EQ(estimator.majority_initial_state(trace, tie, w), State::kS1);
  EXPECT_EQ(estimator.majority_initial_state(trace, {}, w), State::kS1);
}

TEST(EstimatorTest, RejectsNegativeAlpha) {
  EstimatorConfig config;
  config.laplace_alpha = -0.1;
  EXPECT_THROW(SmpEstimator{config}, PreconditionError);
}

}  // namespace
}  // namespace fgcs
