#include "core/classifier.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::sample;

StateClassifier make_classifier(SimTime period = 6) {
  return StateClassifier(test::test_thresholds(), period);
}

TEST(ClassifierTest, RawBoundaries) {
  const StateClassifier c = make_classifier();
  EXPECT_EQ(c.classify_sample(sample(0)), State::kS1);
  EXPECT_EQ(c.classify_sample(sample(19)), State::kS1);
  EXPECT_EQ(c.classify_sample(sample(20)), State::kS2);  // Th1 inclusive → S2
  EXPECT_EQ(c.classify_sample(sample(60)), State::kS2);  // Th2 inclusive → S2
  EXPECT_EQ(c.classify_sample(sample(61)), State::kS3);
  EXPECT_EQ(c.classify_sample(sample(100)), State::kS3);
}

TEST(ClassifierTest, MemoryAndRevocationPrecedence) {
  const StateClassifier c = make_classifier();
  // Below the guest working set → S4 even at low CPU load.
  EXPECT_EQ(c.classify_sample(sample(5, 99, true)), State::kS4);
  EXPECT_EQ(c.classify_sample(sample(5, 100, true)), State::kS1);
  // Machine down dominates everything.
  EXPECT_EQ(c.classify_sample(sample(5, 50, false)), State::kS5);
  EXPECT_EQ(c.classify_sample(sample(90, 400, false)), State::kS5);
}

TEST(ClassifierTest, TransientSpikeRelabeledToPrecedingState) {
  const StateClassifier c = make_classifier(6);  // limit = 10 ticks
  // 5-tick spike (< 10 ticks) inside an S1 run.
  std::vector<ResourceSample> samples(20, sample(10));
  for (int i = 8; i < 13; ++i) samples[i] = sample(90);
  const std::vector<State> states = c.classify(samples);
  for (const State s : states) EXPECT_EQ(s, State::kS1);
}

TEST(ClassifierTest, TransientSpikeInsideS2KeepsS2) {
  const StateClassifier c = make_classifier(6);
  std::vector<ResourceSample> samples(20, sample(40));
  for (int i = 8; i < 13; ++i) samples[i] = sample(95);
  const std::vector<State> states = c.classify(samples);
  for (const State s : states) EXPECT_EQ(s, State::kS2);
}

TEST(ClassifierTest, SteadyHighLoadBecomesS3) {
  const StateClassifier c = make_classifier(6);
  std::vector<ResourceSample> samples(30, sample(10));
  for (int i = 10; i < 21; ++i) samples[i] = sample(90);  // 11 ticks ≥ limit
  const std::vector<State> states = c.classify(samples);
  EXPECT_EQ(states[9], State::kS1);
  for (int i = 10; i < 21; ++i) EXPECT_EQ(states[i], State::kS3) << i;
  EXPECT_EQ(states[21], State::kS1);
}

TEST(ClassifierTest, SpikeExactlyAtLimitIsNotTransient) {
  const StateClassifier c = make_classifier(6);  // limit = 10 ticks
  std::vector<ResourceSample> samples(30, sample(10));
  for (int i = 5; i < 15; ++i) samples[i] = sample(80);  // exactly 10 ticks
  const std::vector<State> states = c.classify(samples);
  EXPECT_EQ(states[5], State::kS3);
  EXPECT_EQ(states[14], State::kS3);
}

TEST(ClassifierTest, SpikeAtSequenceStartUsesFollowingState) {
  const StateClassifier c = make_classifier(6);
  std::vector<ResourceSample> samples(15, sample(30));  // S2 region
  for (int i = 0; i < 4; ++i) samples[i] = sample(90);
  const std::vector<State> states = c.classify(samples);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(states[i], State::kS2) << i;
}

TEST(ClassifierTest, SpikeSurroundedByFailuresFallsBackToS2) {
  const StateClassifier c = make_classifier(6);
  std::vector<ResourceSample> samples;
  samples.push_back(sample(10, 400, false));  // S5
  samples.push_back(sample(90));              // short S3 spike
  samples.push_back(sample(10, 400, false));  // S5
  const std::vector<State> states = c.classify(samples);
  EXPECT_EQ(states[0], State::kS5);
  EXPECT_EQ(states[1], State::kS2);
  EXPECT_EQ(states[2], State::kS5);
}

TEST(ClassifierTest, ZeroTransientLimitDisablesRelabeling) {
  Thresholds t = test::test_thresholds();
  t.transient_limit = 0;
  const StateClassifier c(t, 6);
  std::vector<ResourceSample> samples(5, sample(10));
  samples[2] = sample(90);
  const std::vector<State> states = c.classify(samples);
  EXPECT_EQ(states[2], State::kS3);
}

TEST(ClassifierTest, EmptyInputGivesEmptyOutput) {
  const StateClassifier c = make_classifier();
  EXPECT_TRUE(c.classify({}).empty());
}

TEST(ClassifierTest, ClassifyWindowChecksPeriodMatch) {
  const StateClassifier c = make_classifier(6);
  const MachineTrace trace = test::constant_trace(1, 10, /*period=*/60);
  const TimeWindow w{.start_of_day = 0, .length = kSecondsPerHour};
  EXPECT_THROW(c.classify_window(trace, 0, w), PreconditionError);
}

TEST(ClassifierTest, ClassifyWindowEndToEnd) {
  const StateClassifier c = make_classifier(60);
  const MachineTrace trace = test::constant_trace(1, 30, /*period=*/60);
  const TimeWindow w{.start_of_day = 0, .length = kSecondsPerHour};
  const std::vector<State> states = c.classify_window(trace, 0, w);
  ASSERT_EQ(states.size(), 60u);
  for (const State s : states) EXPECT_EQ(s, State::kS2);
}

TEST(StatesTest, FailurePredicates) {
  EXPECT_TRUE(is_available(State::kS1));
  EXPECT_TRUE(is_available(State::kS2));
  EXPECT_TRUE(is_failure(State::kS3));
  EXPECT_TRUE(is_failure(State::kS4));
  EXPECT_TRUE(is_failure(State::kS5));
  EXPECT_STREQ(to_string(State::kS4), "S4");
}

}  // namespace
}  // namespace fgcs
