#include "core/sparse_solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/fast_solver.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(SparseSolverTest, RejectsWrongStateCount) {
  SmpModel model(3, 4);
  EXPECT_THROW(SparseTrSolver{model}, PreconditionError);
}

TEST(SparseSolverTest, RejectsNonAbsorbingFailureStates) {
  SmpModel model(kStateCount, 4);
  model.set_q(2, 0, 1.0);  // S3 → S1: failures must be absorbing
  model.set_h_pmf(2, 0, {1.0});
  EXPECT_THROW(SparseTrSolver{model}, PreconditionError);
}

TEST(SparseSolverTest, RejectsFailureInitialState) {
  Rng rng(1);
  const SmpModel model = test::random_fgcs_model(4, rng);
  const SparseTrSolver solver(model);
  EXPECT_THROW(solver.solve(State::kS3, 4), PreconditionError);
}

TEST(SparseSolverTest, EmptyModelPredictsCertainSurvival) {
  // A machine with no observed transitions: defective rows everywhere.
  SmpModel model(kStateCount, 8);
  const SparseTrSolver solver(model);
  const auto result = solver.solve(State::kS1, 8);
  EXPECT_DOUBLE_EQ(result.temporal_reliability, 1.0);
}

TEST(SparseSolverTest, DirectAbsorptionMatchesHandComputation) {
  // S1 → S3 with Q = 0.4 and hold exactly 2 ticks; rest censored.
  SmpModel model(kStateCount, 8);
  model.set_q(0, 2, 0.4);
  model.set_h_pmf(0, 2, {0.0, 1.0});
  const SparseTrSolver solver(model);
  EXPECT_DOUBLE_EQ(solver.solve(State::kS1, 1).temporal_reliability, 1.0);
  const auto r2 = solver.solve(State::kS1, 2);
  EXPECT_NEAR(r2.temporal_reliability, 0.6, 1e-12);
  EXPECT_NEAR(r2.p_absorb[0], 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(r2.p_absorb[1], 0.0);
  EXPECT_DOUBLE_EQ(r2.p_absorb[2], 0.0);
}

TEST(SparseSolverTest, TwoHopThroughS2) {
  // S1 → S2 (hold 1, prob 1), S2 → S5 (hold 1, prob 1): absorbed at tick 2.
  SmpModel model(kStateCount, 8);
  model.set_q(0, 1, 1.0);
  model.set_h_pmf(0, 1, {1.0});
  model.set_q(1, 4, 1.0);
  model.set_h_pmf(1, 4, {1.0});
  const SparseTrSolver solver(model);
  EXPECT_DOUBLE_EQ(solver.solve(State::kS1, 1).temporal_reliability, 1.0);
  const auto r = solver.solve(State::kS1, 2);
  EXPECT_NEAR(r.p_absorb[2], 1.0, 1e-12);  // S5
  EXPECT_NEAR(r.temporal_reliability, 0.0, 1e-12);
  // Starting in S2 it only takes one tick.
  EXPECT_NEAR(solver.solve(State::kS2, 1).p_absorb[2], 1.0, 1e-12);
}

class SparseVsDenseTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDenseTest, SparseEqualsGenericSolver) {
  Rng rng(static_cast<std::uint64_t>(500 + GetParam()));
  const SmpModel model =
      test::random_fgcs_model(10, rng, /*allow_defective=*/GetParam() % 3 == 0);
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam());

  const SparseTrSolver sparse(model);
  const DenseSmpSolver dense(model);

  for (const State init : {State::kS1, State::kS2}) {
    const auto result = sparse.solve(init, n);
    const std::vector<double> fp = dense.first_passage(index_of(init), n);
    EXPECT_NEAR(result.p_absorb[0], fp[2], 1e-10);
    EXPECT_NEAR(result.p_absorb[1], fp[3], 1e-10);
    EXPECT_NEAR(result.p_absorb[2], fp[4], 1e-10);
    EXPECT_NEAR(result.temporal_reliability, 1.0 - (fp[2] + fp[3] + fp[4]),
                1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparseVsDenseTest, ::testing::Range(0, 20));

class TrMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(TrMonotonicityTest, TrDecreasesWithWindowLength) {
  Rng rng(static_cast<std::uint64_t>(900 + GetParam()));
  const SmpModel model = test::random_fgcs_model(6, rng);
  const SparseTrSolver solver(model);
  double previous = 1.0;
  for (std::size_t n = 1; n <= 30; ++n) {
    const double tr = solver.solve(State::kS1, n).temporal_reliability;
    EXPECT_LE(tr, previous + 1e-12) << "n=" << n;
    EXPECT_GE(tr, 0.0);
    EXPECT_LE(tr, 1.0);
    previous = tr;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrMonotonicityTest, ::testing::Range(0, 10));

// Pins the ONE shared weighted-pmf convention (semi_markov.hpp): the kernel
// is lag-indexed — lag l at a[l], a[0] == 0, n+1 entries — with the model's
// holding pmf entry for l ticks living at pmf[l-1]. Both Eq. 3 solvers and
// the curve cache consume this helper; this test is the convention's anchor.
TEST(SparseSolverTest, SharedWeightedPmfConvention) {
  SmpModel model(kStateCount, 8);
  model.set_q(0, 2, 0.4);
  model.set_h_pmf(0, 2, {0.5, 0.25, 0.0, 0.25});

  const std::vector<double> a = weighted_holding_pmf(model, 0, 2, 6);
  ASSERT_EQ(a.size(), 7u);  // n+1 entries
  EXPECT_EQ(a[0], 0.0);     // no zero-lag transitions
  EXPECT_DOUBLE_EQ(a[1], 0.4 * 0.5);
  EXPECT_DOUBLE_EQ(a[2], 0.4 * 0.25);
  EXPECT_EQ(a[3], 0.0);
  EXPECT_DOUBLE_EQ(a[4], 0.4 * 0.25);
  EXPECT_EQ(a[5], 0.0);  // zero-padded past the pmf support
  EXPECT_EQ(a[6], 0.0);

  // Truncation: n below the support simply cuts the tail.
  const std::vector<double> trunc = weighted_holding_pmf(model, 0, 2, 2);
  ASSERT_EQ(trunc.size(), 3u);
  EXPECT_DOUBLE_EQ(trunc[1], 0.4 * 0.5);
  EXPECT_DOUBLE_EQ(trunc[2], 0.4 * 0.25);

  // A missing transition yields an all-zero kernel of the right shape.
  const std::vector<double> zero = weighted_holding_pmf(model, 1, 3, 4);
  ASSERT_EQ(zero.size(), 5u);
  for (const double v : zero) EXPECT_EQ(v, 0.0);
}

// Cross-solver equivalence for the unified helper: the sparse recursion and
// the FFT renewal solver now read the same kernels, so their series must
// agree (FFT to float tolerance) on random models — including ones whose
// pmf support is shorter than the horizon (the old per-solver helpers
// disagreed exactly there, one indexing lag l at a[l-1], the other at a[l]).
TEST(SparseSolverTest, UnifiedKernelKeepsSolversEquivalent) {
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(static_cast<std::uint64_t>(8800 + trial));
    const SmpModel model =
        test::random_fgcs_model(3 + trial % 5, rng,
                                /*allow_defective=*/trial % 2 == 0);
    const std::size_t n = 48;
    const auto sparse = SparseTrSolver(model).solve_series(n);
    const auto fast = FastTrSolver(model).solve_series(n);
    for (std::size_t row = 0; row < 2; ++row)
      for (std::size_t jj = 0; jj < 3; ++jj)
        for (std::size_t m = 0; m <= n; ++m)
          EXPECT_NEAR(sparse[row][jj][m], fast[row][jj][m], 1e-10)
              << "trial=" << trial << " row=" << row << " m=" << m;
  }
}

TEST(SparseSolverTest, ScratchReuseIsBitIdentical) {
  SolverScratch scratch;
  for (int trial = 0; trial < 25; ++trial) {
    Rng rng(static_cast<std::uint64_t>(1300 + trial));
    const SmpModel model =
        test::random_fgcs_model(4 + trial % 6, rng,
                                /*allow_defective=*/trial % 4 == 0);
    const SparseTrSolver solver(model);
    // Shrinking sizes across trials: stale capacity from a bigger solve must
    // never leak into a smaller one.
    const std::size_t n = static_cast<std::size_t>(2 + (25 - trial) * 3);
    for (const State init : {State::kS1, State::kS2}) {
      const auto fresh = solver.solve(init, n);
      const auto reused = solver.solve(init, n, &scratch);
      EXPECT_EQ(fresh.temporal_reliability, reused.temporal_reliability);
      EXPECT_EQ(fresh.p_absorb, reused.p_absorb);
    }
  }
}

// Satellite 1 (the dead-row bug): when the read row never crosses into the
// other transient state, the other row's recursion is pure dead work — its
// values only ever multiply zeros. The solve must skip it and still return
// exactly what the full two-row series produces.
TEST(SparseSolverTest, DecoupledRowSkipsDeadRecursion) {
  // S1 → S3 only; S2 → S4 only. Neither row feeds the other.
  SmpModel model(kStateCount, 8);
  model.set_q(0, 2, 0.5);
  model.set_h_pmf(0, 2, {0.25, 0.25, 0.25, 0.25});
  model.set_q(1, 3, 0.8);
  model.set_h_pmf(1, 3, {0.5, 0.5});

  const SparseTrSolver solver(model);
  const auto series = solver.solve_series(8);
  for (const State init : {State::kS1, State::kS2}) {
    const std::size_t row = index_of(init);
    for (const std::size_t n : {1u, 4u, 8u}) {
      const auto result = solver.solve(init, n);
      double absorbed = 0.0;
      for (std::size_t jj = 0; jj < 3; ++jj) {
        EXPECT_EQ(result.p_absorb[jj], series[row][jj][n]) << "n=" << n;
        absorbed += series[row][jj][n];
      }
      EXPECT_EQ(result.temporal_reliability,
                std::clamp(1.0 - absorbed, 0.0, 1.0));
    }
  }
}

TEST(SparseSolverTest, OneWayCouplingStillExact) {
  // S1 feeds S2 but S2 never returns: solving from S1 needs S2's row, while
  // the back-kernel is dead; solving from S2 needs no second row at all.
  SmpModel model(kStateCount, 8);
  model.set_q(0, 1, 0.6);
  model.set_h_pmf(0, 1, {1.0});
  model.set_q(0, 4, 0.2);
  model.set_h_pmf(0, 4, {0.0, 1.0});
  model.set_q(1, 2, 0.7);
  model.set_h_pmf(1, 2, {0.5, 0.5});

  const SparseTrSolver solver(model);
  const auto series = solver.solve_series(8);
  for (const State init : {State::kS1, State::kS2}) {
    const std::size_t row = index_of(init);
    const auto result = solver.solve(init, 8);
    for (std::size_t jj = 0; jj < 3; ++jj)
      EXPECT_EQ(result.p_absorb[jj], series[row][jj][8]);
  }
}

TEST(SparseSolverTest, SolveMatchesSeriesOnRandomModelsExactly) {
  for (int trial = 0; trial < 30; ++trial) {
    Rng rng(static_cast<std::uint64_t>(4400 + trial));
    const SmpModel model =
        test::random_fgcs_model(3 + trial % 7, rng,
                                /*allow_defective=*/trial % 3 == 0);
    const SparseTrSolver solver(model);
    const std::size_t n = 1 + static_cast<std::size_t>(trial);
    const auto series = solver.solve_series(n);
    for (const State init : {State::kS1, State::kS2}) {
      const auto result = solver.solve(init, n);
      for (std::size_t jj = 0; jj < 3; ++jj)
        EXPECT_EQ(result.p_absorb[jj], series[index_of(init)][jj][n])
            << "trial=" << trial;
    }
  }
}

TEST(SparseSolverTest, SeriesStartsAtZero) {
  Rng rng(77);
  const SmpModel model = test::random_fgcs_model(5, rng);
  const SparseTrSolver solver(model);
  const auto series = solver.solve_series(6);
  for (const auto& by_target : series)
    for (const auto& p : by_target) {
      ASSERT_EQ(p.size(), 7u);
      EXPECT_DOUBLE_EQ(p[0], 0.0);
      // Absorption probabilities are nondecreasing in m.
      for (std::size_t m = 1; m < p.size(); ++m)
        EXPECT_GE(p[m] + 1e-12, p[m - 1]);
    }
}

}  // namespace
}  // namespace fgcs
