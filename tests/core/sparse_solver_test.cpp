#include "core/sparse_solver.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(SparseSolverTest, RejectsWrongStateCount) {
  SmpModel model(3, 4);
  EXPECT_THROW(SparseTrSolver{model}, PreconditionError);
}

TEST(SparseSolverTest, RejectsNonAbsorbingFailureStates) {
  SmpModel model(kStateCount, 4);
  model.set_q(2, 0, 1.0);  // S3 → S1: failures must be absorbing
  model.set_h_pmf(2, 0, {1.0});
  EXPECT_THROW(SparseTrSolver{model}, PreconditionError);
}

TEST(SparseSolverTest, RejectsFailureInitialState) {
  Rng rng(1);
  const SmpModel model = test::random_fgcs_model(4, rng);
  const SparseTrSolver solver(model);
  EXPECT_THROW(solver.solve(State::kS3, 4), PreconditionError);
}

TEST(SparseSolverTest, EmptyModelPredictsCertainSurvival) {
  // A machine with no observed transitions: defective rows everywhere.
  SmpModel model(kStateCount, 8);
  const SparseTrSolver solver(model);
  const auto result = solver.solve(State::kS1, 8);
  EXPECT_DOUBLE_EQ(result.temporal_reliability, 1.0);
}

TEST(SparseSolverTest, DirectAbsorptionMatchesHandComputation) {
  // S1 → S3 with Q = 0.4 and hold exactly 2 ticks; rest censored.
  SmpModel model(kStateCount, 8);
  model.set_q(0, 2, 0.4);
  model.set_h_pmf(0, 2, {0.0, 1.0});
  const SparseTrSolver solver(model);
  EXPECT_DOUBLE_EQ(solver.solve(State::kS1, 1).temporal_reliability, 1.0);
  const auto r2 = solver.solve(State::kS1, 2);
  EXPECT_NEAR(r2.temporal_reliability, 0.6, 1e-12);
  EXPECT_NEAR(r2.p_absorb[0], 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(r2.p_absorb[1], 0.0);
  EXPECT_DOUBLE_EQ(r2.p_absorb[2], 0.0);
}

TEST(SparseSolverTest, TwoHopThroughS2) {
  // S1 → S2 (hold 1, prob 1), S2 → S5 (hold 1, prob 1): absorbed at tick 2.
  SmpModel model(kStateCount, 8);
  model.set_q(0, 1, 1.0);
  model.set_h_pmf(0, 1, {1.0});
  model.set_q(1, 4, 1.0);
  model.set_h_pmf(1, 4, {1.0});
  const SparseTrSolver solver(model);
  EXPECT_DOUBLE_EQ(solver.solve(State::kS1, 1).temporal_reliability, 1.0);
  const auto r = solver.solve(State::kS1, 2);
  EXPECT_NEAR(r.p_absorb[2], 1.0, 1e-12);  // S5
  EXPECT_NEAR(r.temporal_reliability, 0.0, 1e-12);
  // Starting in S2 it only takes one tick.
  EXPECT_NEAR(solver.solve(State::kS2, 1).p_absorb[2], 1.0, 1e-12);
}

class SparseVsDenseTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDenseTest, SparseEqualsGenericSolver) {
  Rng rng(static_cast<std::uint64_t>(500 + GetParam()));
  const SmpModel model =
      test::random_fgcs_model(10, rng, /*allow_defective=*/GetParam() % 3 == 0);
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam());

  const SparseTrSolver sparse(model);
  const DenseSmpSolver dense(model);

  for (const State init : {State::kS1, State::kS2}) {
    const auto result = sparse.solve(init, n);
    const std::vector<double> fp = dense.first_passage(index_of(init), n);
    EXPECT_NEAR(result.p_absorb[0], fp[2], 1e-10);
    EXPECT_NEAR(result.p_absorb[1], fp[3], 1e-10);
    EXPECT_NEAR(result.p_absorb[2], fp[4], 1e-10);
    EXPECT_NEAR(result.temporal_reliability, 1.0 - (fp[2] + fp[3] + fp[4]),
                1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparseVsDenseTest, ::testing::Range(0, 20));

class TrMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(TrMonotonicityTest, TrDecreasesWithWindowLength) {
  Rng rng(static_cast<std::uint64_t>(900 + GetParam()));
  const SmpModel model = test::random_fgcs_model(6, rng);
  const SparseTrSolver solver(model);
  double previous = 1.0;
  for (std::size_t n = 1; n <= 30; ++n) {
    const double tr = solver.solve(State::kS1, n).temporal_reliability;
    EXPECT_LE(tr, previous + 1e-12) << "n=" << n;
    EXPECT_GE(tr, 0.0);
    EXPECT_LE(tr, 1.0);
    previous = tr;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrMonotonicityTest, ::testing::Range(0, 10));

TEST(SparseSolverTest, SeriesStartsAtZero) {
  Rng rng(77);
  const SmpModel model = test::random_fgcs_model(5, rng);
  const SparseTrSolver solver(model);
  const auto series = solver.solve_series(6);
  for (const auto& by_target : series)
    for (const auto& p : by_target) {
      ASSERT_EQ(p.size(), 7u);
      EXPECT_DOUBLE_EQ(p[0], 0.0);
      // Absorption probabilities are nondecreasing in m.
      for (std::size_t m = 1; m < p.size(); ++m)
        EXPECT_GE(p[m] + 1e-12, p[m - 1]);
    }
}

}  // namespace
}  // namespace fgcs
