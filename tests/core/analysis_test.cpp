#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(AnalyzeFailureTest, DeterministicFailureTime) {
  // S1 → S3 with certainty after exactly 4 ticks.
  SmpModel model(kStateCount, 10);
  model.set_q(0, 2, 1.0);
  model.set_h_pmf(0, 2, {0.0, 0.0, 0.0, 1.0});
  const FailureAnalysis a = analyze_failure(model, State::kS1, 10);
  EXPECT_DOUBLE_EQ(a.mean_ticks_to_failure, 4.0);
  EXPECT_DOUBLE_EQ(a.survival_at_horizon, 0.0);
  EXPECT_DOUBLE_EQ(a.failure_mode[0], 1.0);  // S3
  EXPECT_EQ(a.dominant_outcome, State::kS3);
}

TEST(AnalyzeFailureTest, CertainSurvivalHasFullHorizonMttf) {
  SmpModel model(kStateCount, 8);  // no transitions at all
  const FailureAnalysis a = analyze_failure(model, State::kS1, 8);
  EXPECT_DOUBLE_EQ(a.mean_ticks_to_failure, 8.0);  // capped at the horizon
  EXPECT_DOUBLE_EQ(a.survival_at_horizon, 1.0);
  EXPECT_EQ(a.dominant_outcome, State::kS1);
}

TEST(AnalyzeFailureTest, SplitsFailureModes) {
  // 60% S3 at tick 1, 40% S5 at tick 2.
  SmpModel model(kStateCount, 6);
  model.set_q(0, 2, 0.6);
  model.set_h_pmf(0, 2, {1.0});
  model.set_q(0, 4, 0.4);
  model.set_h_pmf(0, 4, {0.0, 1.0});
  const FailureAnalysis a = analyze_failure(model, State::kS1, 6);
  EXPECT_NEAR(a.failure_mode[0], 0.6, 1e-12);
  EXPECT_NEAR(a.failure_mode[2], 0.4, 1e-12);
  EXPECT_EQ(a.dominant_outcome, State::kS3);
  // E[T] = 0.6·1 + 0.4·2 = 1.4.
  EXPECT_NEAR(a.mean_ticks_to_failure, 1.4, 1e-12);
}

TEST(AnalyzeFailureTest, MttfConsistentWithSurvivalCurve) {
  Rng rng(7);
  const SmpModel model = test::random_fgcs_model(6, rng);
  const std::size_t horizon = 20;
  const FailureAnalysis a = analyze_failure(model, State::kS2, horizon);
  EXPECT_GE(a.mean_ticks_to_failure, a.survival_at_horizon * horizon - 1e-9);
  EXPECT_LE(a.mean_ticks_to_failure, static_cast<double>(horizon) + 1e-9);
}

TEST(AnalyzeFailureTest, RejectsFailureInit) {
  SmpModel model(kStateCount, 4);
  EXPECT_THROW(analyze_failure(model, State::kS3, 4), PreconditionError);
}

TEST(WilsonIntervalTest, ContainsPointEstimate) {
  for (const auto [s, n] : {std::pair<std::size_t, std::size_t>{0, 10},
                            {5, 10},
                            {10, 10},
                            {1, 30},
                            {29, 30}}) {
    const ConfidenceInterval ci = wilson_interval(s, n);
    const double p = static_cast<double>(s) / static_cast<double>(n);
    EXPECT_TRUE(ci.contains(p)) << s << "/" << n;
    EXPECT_GE(ci.lower, 0.0);
    EXPECT_LE(ci.upper, 1.0);
    EXPECT_LT(ci.lower, ci.upper);
  }
}

TEST(WilsonIntervalTest, ShrinksWithSampleSize) {
  const ConfidenceInterval small = wilson_interval(5, 10);
  const ConfidenceInterval large = wilson_interval(500, 1000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(WilsonIntervalTest, ExtremesDoNotDegenerate) {
  // Unlike the naive normal interval, Wilson at p̂ = 0 or 1 is non-trivial.
  const ConfidenceInterval zero = wilson_interval(0, 20);
  EXPECT_DOUBLE_EQ(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.0);
  const ConfidenceInterval one = wilson_interval(20, 20);
  EXPECT_LT(one.lower, 1.0);
  EXPECT_DOUBLE_EQ(one.upper, 1.0);
}

TEST(WilsonIntervalTest, ValidatesArguments) {
  EXPECT_THROW(wilson_interval(1, 0), PreconditionError);
  EXPECT_THROW(wilson_interval(5, 4), PreconditionError);
  EXPECT_THROW(wilson_interval(1, 2, 0.0), PreconditionError);
}

}  // namespace
}  // namespace fgcs
