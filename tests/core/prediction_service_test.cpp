#include "core/prediction_service.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/predictor.hpp"
#include "test_support.hpp"
#include "workload/trace_generator.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

// Light load, with a steady overload on alternating mornings so the TR is a
// non-trivial value that would expose any cache-path divergence.
MachineTrace flaky_trace(const std::string& id, int days = 10) {
  MachineTrace trace(id, Calendar(0), 60, 512);
  for (int d = 0; d < days; ++d) {
    auto day = constant_day(60, 10);
    if (d % 2 == 0)
      for (std::size_t i = 9 * 60; i < 10 * 60; ++i) day[i] = sample(95);
    trace.append_day(std::move(day));
  }
  return trace;
}

TimeWindow morning_window() {
  return {.start_of_day = 8 * kSecondsPerHour, .length = 3 * kSecondsPerHour};
}

void expect_identical(const Prediction& a, const Prediction& b) {
  EXPECT_EQ(a.temporal_reliability, b.temporal_reliability);
  EXPECT_EQ(a.initial_state, b.initial_state);
  EXPECT_EQ(a.p_absorb, b.p_absorb);
  EXPECT_EQ(a.training_days_used, b.training_days_used);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(PredictionServiceTest, WarmHitIsBitIdenticalToColdCall) {
  const MachineTrace trace = flaky_trace("m1");
  PredictionService service;
  const PredictionRequest request{.target_day = trace.day_count(),
                                  .window = morning_window()};
  const Prediction cold = service.predict(trace, request);
  const Prediction warm = service.predict(trace, request);
  expect_identical(cold, warm);
  // A hit returns the stored Prediction verbatim, timings included.
  EXPECT_EQ(cold.estimate_seconds, warm.estimate_seconds);
  EXPECT_EQ(cold.solve_seconds, warm.solve_seconds);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(PredictionServiceTest, MatchesPerCallPredictorExactly) {
  const MachineTrace trace = flaky_trace("m1");
  PredictionService service;
  const AvailabilityPredictor predictor(service.config().estimator);
  for (const SimTime start_hr : {7, 8, 9, 12}) {
    const PredictionRequest request{
        .target_day = trace.day_count(),
        .window = {.start_of_day = start_hr * kSecondsPerHour,
                   .length = 2 * kSecondsPerHour}};
    const Prediction direct = predictor.predict(trace, request);
    expect_identical(direct, service.predict(trace, request));   // cold
    expect_identical(direct, service.predict(trace, request));   // warm
  }
  EXPECT_LT(service.predict(trace, {.target_day = trace.day_count(),
                                    .window = morning_window()})
                .temporal_reliability,
            1.0);
}

// Satellite 2: the model is validated exactly once, when it enters the cache
// (inside the curve build). Warm lookups — full hits AND partial hits for
// the other initial state — must not construct a solver or re-run
// SmpModel::validate.
TEST(PredictionServiceTest, WarmLookupsNeverRevalidateTheModel) {
  const MachineTrace trace = flaky_trace("m1");
  PredictionService service;
  const PredictionRequest request{.target_day = trace.day_count(),
                                  .window = morning_window()};
  service.predict(trace, request);  // cold: estimate + validate + curve build

  const std::uint64_t warm_start = smp_validate_calls();
  service.predict(trace, request);  // full hit
  PredictionRequest other = request;
  other.initial_state = State::kS2;
  service.predict(trace, other);  // partial hit: new initial state
  service.predict(trace, other);  // full hit on the now-cached S2 slot
  EXPECT_EQ(smp_validate_calls(), warm_start);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.partial_hits, 1u);
  EXPECT_EQ(stats.hits, 2u);
}

// The partial-hit path reads the cached absorption curves instead of
// re-running Eq. 3; both initial states must come out bit-identical to the
// per-call predictor.
TEST(PredictionServiceTest, PartialHitMatchesPredictorForBothInitialStates) {
  const MachineTrace trace = flaky_trace("m1");
  PredictionService service;
  const AvailabilityPredictor predictor(service.config().estimator);
  for (const State init : {State::kS1, State::kS2}) {
    PredictionRequest request{.target_day = trace.day_count(),
                              .window = morning_window()};
    request.initial_state = init;
    const Prediction direct = predictor.predict(trace, request);
    const Prediction served = service.predict(trace, request);
    expect_identical(direct, served);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.partial_hits, 1u);
}

TEST(PredictionServiceTest, InvalidateDropsExactlyThatMachine) {
  MachineTrace a = flaky_trace("a");
  const MachineTrace b = flaky_trace("b");
  PredictionService service;
  const PredictionRequest request{.target_day = 10,
                                  .window = morning_window()};
  service.predict(a, request);
  service.predict(b, request);
  EXPECT_EQ(service.size(), 2u);

  a.append_day(constant_day(60, 10));
  service.invalidate("a");
  EXPECT_EQ(service.history_generation("a"), 1u);
  EXPECT_EQ(service.history_generation("b"), 0u);
  EXPECT_EQ(service.size(), 1u);  // b's entry survives

  service.predict(b, request);  // still warm
  service.predict(a, request);  // recomputed under the new generation
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST(PredictionServiceTest, RevalidationCatchesChangedTrainingDays) {
  // Target days 10 and 8 share a day type but select different training-day
  // sets; the second lookup must drop the cached model, not reuse it.
  const MachineTrace trace = flaky_trace("m1");
  PredictionService service;
  const AvailabilityPredictor predictor(service.config().estimator);
  const PredictionRequest day10{.target_day = 10, .window = morning_window()};
  const PredictionRequest day8{.target_day = 8, .window = morning_window()};
  ASSERT_EQ(trace.day_type(10), trace.day_type(8));

  expect_identical(predictor.predict(trace, day10),
                   service.predict(trace, day10));
  expect_identical(predictor.predict(trace, day8),
                   service.predict(trace, day8));
  EXPECT_EQ(service.stats().stale_drops, 1u);
  EXPECT_EQ(service.stats().misses, 2u);
}

TEST(PredictionServiceTest, TimingCountersRegisterFastColdCalls) {
  const MachineTrace trace = flaky_trace("m1");
  PredictionService service;
  service.predict(trace, {.target_day = trace.day_count(),
                          .window = morning_window()});
  const ServiceStats stats = service.stats();
  // Nanosecond accumulation: a single sub-millisecond cold call must leave a
  // nonzero trace (the old microsecond truncation rounded sub-µs phases to
  // zero, systematically under-reporting the aggregate).
  EXPECT_GT(stats.estimate_seconds, 0.0);
  EXPECT_GT(stats.solve_seconds, 0.0);
  // The stats snapshot also carries the process-wide pool's counters.
  EXPECT_GE(stats.pool.workers, 1u);
}

TEST(PredictionServiceTest, SecondInitialStateIsPartialHit) {
  const MachineTrace trace = flaky_trace("m1");
  PredictionService service;
  const AvailabilityPredictor predictor(service.config().estimator);
  PredictionRequest request{.target_day = 10, .window = morning_window()};
  request.initial_state = State::kS1;
  expect_identical(predictor.predict(trace, request),
                   service.predict(trace, request));
  request.initial_state = State::kS2;
  expect_identical(predictor.predict(trace, request),
                   service.predict(trace, request));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.partial_hits, 1u);  // model reused, solver re-run
  EXPECT_EQ(service.size(), 1u);
}

TEST(PredictionServiceTest, BatchUnderEightThreadsMatchesSerial) {
  WorkloadParams params;
  params.sampling_period = 60;
  const std::vector<MachineTrace> fleet =
      generate_fleet(params, 42, 4, 12, "svc");

  std::vector<BatchRequest> requests;
  for (const MachineTrace& trace : fleet) {
    for (const SimTime start_hr : {7, 9, 11, 13, 15, 17}) {
      requests.push_back(BatchRequest{
          .trace = &trace,
          .request = {.target_day = trace.day_count(),
                      .window = {.start_of_day = start_hr * kSecondsPerHour,
                                 .length = 2 * kSecondsPerHour}}});
    }
  }

  PredictionService service(ServiceConfig{.max_threads = 8});
  const std::vector<Prediction> cold = service.predict_batch(requests);
  const std::vector<Prediction> warm = service.predict_batch(requests);

  const AvailabilityPredictor predictor(service.config().estimator);
  ASSERT_EQ(cold.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Prediction serial =
        predictor.predict(*requests[i].trace, requests[i].request);
    expect_identical(serial, cold[i]);
    expect_identical(serial, warm[i]);
  }
}

TEST(PredictionServiceTest, StatsCountersAddUp) {
  const MachineTrace trace = flaky_trace("m1");
  PredictionService service(ServiceConfig{.max_threads = 8});
  std::vector<BatchRequest> requests;
  for (const SimTime start_hr : {6, 8, 10, 12}) {
    requests.push_back(BatchRequest{
        .trace = &trace,
        .request = {.target_day = trace.day_count(),
                    .window = {.start_of_day = start_hr * kSecondsPerHour,
                               .length = kSecondsPerHour}}});
  }
  service.predict_batch(requests);
  service.predict_batch(requests);
  service.predict(trace, requests.front().request);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.lookups, 9u);
  EXPECT_EQ(stats.lookups, stats.hits + stats.partial_hits + stats.misses);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.batch_requests, 8u);
  EXPECT_EQ(stats.max_batch, 4u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PredictionServiceTest, LruEvictsBeyondCapacity) {
  const MachineTrace trace = flaky_trace("m1");
  PredictionService service(
      ServiceConfig{.shards = 1, .capacity_per_shard = 2});
  for (const SimTime start_hr : {6, 8, 10}) {
    service.predict(trace,
                    {.target_day = trace.day_count(),
                     .window = {.start_of_day = start_hr * kSecondsPerHour,
                                .length = kSecondsPerHour}});
  }
  EXPECT_EQ(service.size(), 2u);
  EXPECT_EQ(service.stats().evictions, 1u);
  // The least recently used window (06:00) was the one evicted.
  service.predict(trace, {.target_day = trace.day_count(),
                          .window = {.start_of_day = 6 * kSecondsPerHour,
                                     .length = kSecondsPerHour}});
  EXPECT_EQ(service.stats().misses, 4u);
}

TEST(PredictionServiceTest, RejectsNullTraceInBatch) {
  PredictionService service;
  const std::vector<BatchRequest> requests(1);
  EXPECT_THROW(service.predict_batch(requests), PreconditionError);
}

}  // namespace
}  // namespace fgcs
