#include "core/curve_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/predictor.hpp"
#include "core/sparse_solver.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

void expect_identical(const SparseTrSolver::Result& a,
                      const SparseTrSolver::Result& b) {
  EXPECT_EQ(a.temporal_reliability, b.temporal_reliability);
  EXPECT_EQ(a.p_absorb, b.p_absorb);
}

TEST(CurveCacheTest, RejectsWrongStateCount) {
  const SmpModel model(3, 4);
  EXPECT_THROW(AbsorptionCurves(model, 4), PreconditionError);
}

TEST(CurveCacheTest, RejectsNonAbsorbingFailureStates) {
  SmpModel model(kStateCount, 4);
  model.set_q(2, 0, 1.0);  // S3 → S1: failures must be absorbing
  model.set_h_pmf(2, 0, {1.0});
  EXPECT_THROW(AbsorptionCurves(model, 4), PreconditionError);
}

TEST(CurveCacheTest, ResultAtPreconditions) {
  Rng rng(11);
  const SmpModel model = test::random_fgcs_model(4, rng);
  const AbsorptionCurves curves(model, 8);
  EXPECT_THROW(curves.result_at(State::kS3, 4), PreconditionError);
  EXPECT_THROW(curves.result_at(State::kS1, 9), PreconditionError);
  EXPECT_NO_THROW(curves.result_at(State::kS1, 8));
  EXPECT_NO_THROW(curves.result_at(State::kS2, 0));
}

TEST(CurveCacheTest, ZeroStepsIsCertainSurvival) {
  Rng rng(12);
  const SmpModel model = test::random_fgcs_model(4, rng);
  const AbsorptionCurves curves(model, 0);
  const auto result = curves.result_at(State::kS1, 0);
  EXPECT_DOUBLE_EQ(result.temporal_reliability, 1.0);
  EXPECT_EQ(result.p_absorb, (std::array<double, 3>{0.0, 0.0, 0.0}));
}

// The tentpole's correctness anchor: a table read answers exactly what a
// fresh per-call recursion would, bit for bit, across randomized models
// (defective rows included), horizons, and both initial states. 150 models
// × 4 horizons × 2 inits = 1200 compared solves.
TEST(CurveCacheTest, BitIdenticalToSparseSolverFuzz) {
  std::size_t cases = 0;
  for (int trial = 0; trial < 150; ++trial) {
    Rng rng(static_cast<std::uint64_t>(7000 + trial));
    const std::size_t horizon = 2 + static_cast<std::size_t>(trial % 9);
    const SmpModel model =
        test::random_fgcs_model(horizon, rng, /*allow_defective=*/trial % 3 == 0);
    const std::size_t t_max =
        1 + static_cast<std::size_t>(rng.uniform_int(1, 40));
    const AbsorptionCurves curves(model, t_max);
    const SparseTrSolver solver(model);
    for (std::size_t k = 0; k < 4; ++k) {
      const std::size_t n =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(t_max)));
      for (const State init : {State::kS1, State::kS2}) {
        const auto from_curves = curves.result_at(init, n);
        const auto fresh = solver.solve(init, n);
        EXPECT_EQ(from_curves.temporal_reliability, fresh.temporal_reliability)
            << "trial=" << trial << " n=" << n << " init=" << to_string(init);
        EXPECT_EQ(from_curves.p_absorb, fresh.p_absorb)
            << "trial=" << trial << " n=" << n << " init=" << to_string(init);
        ++cases;
      }
    }
  }
  EXPECT_GE(cases, 500u);
}

TEST(CurveCacheTest, CurvesAreMonotoneNonDecreasingInT) {
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(static_cast<std::uint64_t>(300 + trial));
    const SmpModel model = test::random_fgcs_model(6, rng);
    const AbsorptionCurves curves(model, 40);
    for (const State init : {State::kS1, State::kS2})
      for (std::size_t jj = 0; jj < 3; ++jj)
        for (std::size_t m = 1; m <= 40; ++m)
          EXPECT_GE(curves.probability(init, jj, m) + 1e-15,
                    curves.probability(init, jj, m - 1))
              << "trial=" << trial << " m=" << m;
  }
}

TEST(CurveCacheTest, ExtensionPreservesPrefixBitForBit) {
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng(static_cast<std::uint64_t>(4200 + trial));
    const SmpModel model = test::random_fgcs_model(5, rng);
    AbsorptionCurves curves(model, 12);
    std::vector<double> before;
    for (const State init : {State::kS1, State::kS2})
      for (std::size_t jj = 0; jj < 3; ++jj)
        for (std::size_t m = 0; m <= 12; ++m)
          before.push_back(curves.probability(init, jj, m));

    curves.extend_to(60);
    ASSERT_GE(curves.t_max(), 60u);
    std::size_t i = 0;
    for (const State init : {State::kS1, State::kS2})
      for (std::size_t jj = 0; jj < 3; ++jj)
        for (std::size_t m = 0; m <= 12; ++m)
          EXPECT_EQ(curves.probability(init, jj, m), before[i++])
              << "trial=" << trial << " m=" << m;

    // And the grown table matches a table built fresh at the final horizon —
    // extension is not merely self-consistent, it is the same recursion.
    const AbsorptionCurves fresh(model, curves.t_max());
    for (const State init : {State::kS1, State::kS2})
      for (std::size_t jj = 0; jj < 3; ++jj)
        for (std::size_t m = 0; m <= curves.t_max(); ++m)
          EXPECT_EQ(curves.probability(init, jj, m),
                    fresh.probability(init, jj, m))
              << "trial=" << trial << " m=" << m;
  }
}

TEST(CurveCacheTest, ExtensionGrowsGeometrically) {
  Rng rng(9);
  const SmpModel model = test::random_fgcs_model(4, rng);
  AbsorptionCurves curves(model, 10);
  EXPECT_EQ(curves.t_max(), 10u);
  curves.extend_to(11);  // a nudge past the horizon doubles, not creeps
  EXPECT_EQ(curves.t_max(), 20u);
  curves.extend_to(20);  // covered: no-op
  EXPECT_EQ(curves.t_max(), 20u);
  curves.extend_to(100);  // beyond 2× jumps straight to the request
  EXPECT_EQ(curves.t_max(), 100u);
}

// Satellite 1's work claim, made exact: one table build costs n recursion
// ticks and serves BOTH initial states, where the per-initial-state solver
// spends n ticks per row requested — the miss path that used to pay 2n for
// a warm entry's two initial states now pays n.
TEST(CurveCacheTest, OneBuildServesBothInitialStates) {
  Rng rng(21);
  const SmpModel model = test::random_fgcs_model(6, rng);
  const std::size_t n = 64;
  AbsorptionCurves curves(model, n);
  EXPECT_EQ(curves.recursion_ticks(), n);
  const auto s1 = curves.result_at(State::kS1, n);
  const auto s2 = curves.result_at(State::kS2, n);
  EXPECT_EQ(curves.recursion_ticks(), n);  // reads cost zero ticks

  const SparseTrSolver solver(model);
  expect_identical(s1, solver.solve(State::kS1, n));
  expect_identical(s2, solver.solve(State::kS2, n));
}

TEST(CurveCacheTest, ConstructionValidatesModelExactlyOnce) {
  Rng rng(33);
  const SmpModel model = test::random_fgcs_model(5, rng);
  const std::uint64_t before = smp_validate_calls();
  AbsorptionCurves curves(model, 32);
  EXPECT_EQ(smp_validate_calls(), before + 1);
  curves.result_at(State::kS1, 32);
  curves.result_at(State::kS2, 7);
  curves.extend_to(64);
  EXPECT_EQ(smp_validate_calls(), before + 1);  // reads and growth: none
}

TEST(CurveCacheTest, FftCrossoverAgreesWithDirectRecursion) {
  for (int trial = 0; trial < 5; ++trial) {
    Rng rng(static_cast<std::uint64_t>(600 + trial));
    const SmpModel model = test::random_fgcs_model(8, rng);
    const std::size_t n = 256;
    const AbsorptionCurves fft(model, n, CurveConfig{.fft_crossover = 64});
    const AbsorptionCurves direct(model, n);
    for (const State init : {State::kS1, State::kS2})
      for (std::size_t jj = 0; jj < 3; ++jj)
        for (std::size_t m = 0; m <= n; m += 17)
          EXPECT_NEAR(fft.probability(init, jj, m),
                      direct.probability(init, jj, m), 1e-9)
              << "trial=" << trial << " m=" << m;
  }
}

TEST(CurveCacheTest, FftBuiltTableExtendsViaDirectRecursion) {
  Rng rng(77);
  const SmpModel model = test::random_fgcs_model(6, rng);
  AbsorptionCurves curves(model, 128, CurveConfig{.fft_crossover = 64});
  curves.extend_to(200);
  const AbsorptionCurves direct(model, curves.t_max());
  for (const State init : {State::kS1, State::kS2})
    for (std::size_t jj = 0; jj < 3; ++jj)
      for (std::size_t m = 129; m <= curves.t_max(); m += 13)
        EXPECT_NEAR(curves.probability(init, jj, m),
                    direct.probability(init, jj, m), 1e-9)
            << "m=" << m;
}

TEST(CurveCacheTest, SolveFromCurvesExtendsOnDemand) {
  Rng rng(55);
  const SmpModel model = test::random_fgcs_model(5, rng);
  AbsorptionCurves curves(model, 8);
  const SparseTrSolver solver(model);
  const auto grown = solve_from_curves(curves, State::kS1, 50);
  EXPECT_GE(curves.t_max(), 50u);
  expect_identical(grown, solver.solve(State::kS1, 50));
  // Within the horizon it is a pure read: t_max does not move.
  const std::size_t t_max = curves.t_max();
  expect_identical(solve_from_curves(curves, State::kS2, 17),
                   solver.solve(State::kS2, 17));
  EXPECT_EQ(curves.t_max(), t_max);
}

}  // namespace
}  // namespace fgcs
