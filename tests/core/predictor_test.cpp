#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

TEST(PredictorTest, AlwaysAvailableHistoryPredictsCertainSurvival) {
  const MachineTrace trace = test::constant_trace(10, 10, 60);
  const AvailabilityPredictor predictor;
  const Prediction p = predictor.predict(
      trace, {.target_day = 9,
              .window = {.start_of_day = 8 * kSecondsPerHour,
                         .length = 2 * kSecondsPerHour}});
  EXPECT_DOUBLE_EQ(p.temporal_reliability, 1.0);
  EXPECT_EQ(p.initial_state, State::kS1);
  EXPECT_EQ(p.steps, 120u);
  EXPECT_GT(p.training_days_used, 0u);
}

TEST(PredictorTest, DeterministicFailurePredictsZeroSurvival) {
  // Every weekday: steady overload from tick 30 of the window on.
  MachineTrace trace("m", Calendar(0), 60, 512);
  for (int d = 0; d < 5; ++d) {
    auto day = constant_day(60, 10);
    for (std::size_t i = 30; i < 180; ++i) day[i] = sample(95);
    trace.append_day(std::move(day));
  }
  const AvailabilityPredictor predictor;
  const Prediction p = predictor.predict(
      trace,
      {.target_day = 4,
       .window = {.start_of_day = 0, .length = 2 * kSecondsPerHour}});
  EXPECT_NEAR(p.temporal_reliability, 0.0, 1e-9);
  EXPECT_NEAR(p.p_absorb[0], 1.0, 1e-9);  // S3
}

TEST(PredictorTest, MixedHistoryGivesFractionalTr) {
  // 2 of 4 weekday training days fail (steady overload), 2 stay idle:
  // TR should be ~0.5 for a window covering the overload.
  MachineTrace trace("m", Calendar(0), 60, 512);
  for (int d = 0; d < 5; ++d) {
    auto day = constant_day(60, 10);
    if (d % 2 == 0) {
      for (std::size_t i = 60; i < 200; ++i) day[i] = sample(95);
    }
    trace.append_day(std::move(day));
  }
  EstimatorConfig config;
  config.training_days = 4;
  const AvailabilityPredictor predictor(config);
  const Prediction p = predictor.predict(
      trace, {.target_day = 4,
              .window = {.start_of_day = 0, .length = 3 * kSecondsPerHour}});
  EXPECT_NEAR(p.temporal_reliability, 0.5, 1e-9);
}

TEST(PredictorTest, ExplicitInitialStateIsRespected) {
  // From S2 the machine always fails; from S1 it never transitions to S2.
  MachineTrace trace("m", Calendar(0), 60, 512);
  for (int d = 0; d < 4; ++d) {
    auto day = constant_day(60, 40);  // starts in S2
    for (std::size_t i = 10; i < 100; ++i) day[i] = sample(90);
    trace.append_day(std::move(day));
  }
  const AvailabilityPredictor predictor;
  // 100 ticks: the window ends while the overload is still in force, so the
  // only S2 sojourn in the data is the one that ends in S3.
  const TimeWindow w{.start_of_day = 0, .length = 100 * 60};
  const Prediction from_s2 = predictor.predict(
      trace, {.target_day = 3, .window = w, .initial_state = State::kS2});
  const Prediction from_s1 = predictor.predict(
      trace, {.target_day = 3, .window = w, .initial_state = State::kS1});
  EXPECT_LT(from_s2.temporal_reliability, 0.01);
  // No S1 data at all: defective row → predicted survival.
  EXPECT_DOUBLE_EQ(from_s1.temporal_reliability, 1.0);
}

TEST(PredictorTest, TargetDayJustPastHistoryIsAllowed) {
  const MachineTrace trace = test::constant_trace(5, 10, 60);
  const AvailabilityPredictor predictor;
  EXPECT_NO_THROW(predictor.predict(
      trace,
      {.target_day = 5, .window = {.start_of_day = 0, .length = 3600}}));
  EXPECT_THROW(
      predictor.predict(
          trace,
          {.target_day = 6, .window = {.start_of_day = 0, .length = 3600}}),
      PreconditionError);
  EXPECT_THROW(
      predictor.predict(
          trace,
          {.target_day = -1, .window = {.start_of_day = 0, .length = 3600}}),
      PreconditionError);
}

TEST(PredictorTest, TimingFieldsArePopulated) {
  const MachineTrace trace = test::constant_trace(8, 30, 60);
  const AvailabilityPredictor predictor;
  const Prediction p = predictor.predict(
      trace, {.target_day = 7,
              .window = {.start_of_day = 0, .length = 4 * kSecondsPerHour}});
  EXPECT_GE(p.estimate_seconds, 0.0);
  EXPECT_GE(p.solve_seconds, 0.0);
  EXPECT_LT(p.estimate_seconds + p.solve_seconds, 5.0);
}

TEST(PredictorTest, RejectsFailureInitialState) {
  const MachineTrace trace = test::constant_trace(3, 10, 60);
  const AvailabilityPredictor predictor;
  EXPECT_THROW(
      predictor.predict(trace, {.target_day = 2,
                                .window = {.start_of_day = 0, .length = 3600},
                                .initial_state = State::kS5}),
      PreconditionError);
}

}  // namespace
}  // namespace fgcs
