#include "sim/contention.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(ContentionStudyTest, NoGuestMeansNoReduction) {
  ContentionStudy study({}, 1);
  const ContentionResult r = study.run(0.4, 2, std::nullopt, 120.0);
  EXPECT_DOUBLE_EQ(r.reduction_rate, 0.0);
  EXPECT_NEAR(r.isolated_host_load, 0.4, 0.05);
}

TEST(ContentionStudyTest, IsolatedLoadTracksTarget) {
  // At low target loads the measured group usage matches the demand; near
  // saturation, intra-group queueing stretches the duty cycles and the
  // achieved usage sags below the target — real time-sharing behaviour.
  ContentionStudy study({}, 2);
  for (const double load : {0.2, 0.4}) {
    const ContentionResult r = study.run(load, 3, std::nullopt, 200.0);
    EXPECT_NEAR(r.isolated_host_load, load, 0.06) << load;
  }
  const ContentionResult high = study.run(0.8, 3, std::nullopt, 200.0);
  EXPECT_GT(high.isolated_host_load, 0.60);
  EXPECT_LT(high.isolated_host_load, 0.85);
}

TEST(ContentionStudyTest, DefaultPriorityGuestWorseThanReniced) {
  ContentionStudy study({}, 3);
  const ContentionResult nice0 = study.run(0.5, 1, 0, 300.0);
  ContentionStudy study2({}, 3);
  const ContentionResult nice19 = study2.run(0.5, 1, 19, 300.0);
  EXPECT_GT(nice0.reduction_rate, nice19.reduction_rate);
}

TEST(ContentionStudyTest, GuestSoaksIdleCycles) {
  ContentionStudy study({}, 4);
  const ContentionResult r = study.run(0.3, 1, 19, 300.0);
  // Hosts leave ~70% idle; a CPU-bound guest should claim most of it.
  EXPECT_GT(r.guest_usage, 0.5);
}

TEST(ContentionStudyTest, ThresholdsExistAndAreOrdered) {
  // Th1: lowest load where a nice-0 guest causes >5% slowdown.
  // Th2: same for a reniced guest. The paper's testbed gave 20% / 60%.
  const std::vector<double> loads{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  ContentionStudy study({}, 5);
  const auto th1 = study.find_threshold(loads, 1, 0, 0.05, 200.0);
  ContentionStudy study2({}, 5);
  const auto th2 = study2.find_threshold(loads, 1, 19, 0.05, 200.0);
  ASSERT_TRUE(th1.has_value());
  ASSERT_TRUE(th2.has_value());
  EXPECT_LT(*th1, *th2);
  EXPECT_LE(*th1, 0.35);   // Th1 is a low-load threshold
  EXPECT_GE(*th2, 0.40);   // Th2 only trips under heavy host load
}

TEST(ContentionStudyTest, FindThresholdRequiresSortedLoads) {
  ContentionStudy study({}, 6);
  const std::vector<double> unsorted{0.5, 0.2};
  EXPECT_THROW(study.find_threshold(unsorted, 1, 0, 0.05), PreconditionError);
}

TEST(ContentionStudyTest, RunValidatesArguments) {
  ContentionStudy study({}, 7);
  EXPECT_THROW(study.run(0.0, 1, 0), PreconditionError);
  EXPECT_THROW(study.run(1.5, 1, 0), PreconditionError);
  EXPECT_THROW(study.run(0.5, 0, 0), PreconditionError);
}

TEST(MemoryContentionTest, ThrashingIffOvercommitted) {
  MemoryContentionSetup fits;
  fits.host_mem_mb = 100;
  fits.guest_mem_mb = 100;  // 200 < 336 available
  const MemoryContentionResult ok = run_memory_contention(fits, {}, 11);
  EXPECT_FALSE(ok.thrashing);

  MemoryContentionSetup over = fits;
  over.guest_mem_mb = 300;  // 400 > 336 available
  const MemoryContentionResult bad = run_memory_contention(over, {}, 11);
  EXPECT_TRUE(bad.thrashing);
  EXPECT_GT(bad.overcommit_ratio, 1.0);
}

TEST(MemoryContentionTest, ThrashReductionIsPriorityIndependent) {
  MemoryContentionSetup setup;
  setup.host_cpu_duty = 0.3;
  setup.host_mem_mb = 213;
  setup.guest_mem_mb = 193;  // 406 > 336: thrash
  const MemoryContentionResult r = run_memory_contention(setup, {}, 13);
  ASSERT_TRUE(r.thrashing);
  // Renicing does not rescue a thrashing machine (paper §3.2.2 obs. 1).
  EXPECT_NEAR(r.reduction_nice0, r.reduction_nice19, 0.08);
  EXPECT_GT(r.reduction_nice19, 0.30);
}

TEST(MemoryContentionTest, SufficientMemoryReducesToCpuContention) {
  MemoryContentionSetup setup;
  setup.host_cpu_duty = 0.1;  // interactive host: nice-0 guest is harmless
  setup.host_mem_mb = 53;
  setup.guest_mem_mb = 29;
  const MemoryContentionResult r = run_memory_contention(setup, {}, 17);
  EXPECT_FALSE(r.thrashing);
  EXPECT_LT(r.reduction_nice19, 0.05);
}

TEST(MemoryContentionTest, ValidatesMachineMemory) {
  MemoryContentionSetup bad;
  bad.machine_mem_mb = 32;
  bad.kernel_mem_mb = 48;
  EXPECT_THROW(run_memory_contention(bad), PreconditionError);
}

}  // namespace
}  // namespace fgcs
