#include "sim/cpu_scheduler.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fgcs {
namespace {

SchedProcessSpec host(double duty, const std::string& name = "host",
                      int nice = 0) {
  SchedProcessSpec spec;
  spec.name = name;
  spec.duty = duty;
  spec.burst_ms = 50.0;
  spec.nice = nice;
  return spec;
}

SchedProcessSpec cpu_bound_guest(int nice) {
  SchedProcessSpec spec;
  spec.name = "guest";
  spec.duty = 1.0;
  spec.nice = nice;
  return spec;
}

TEST(CpuSchedulerTest, SingleHostAchievesItsDuty) {
  for (const double duty : {0.1, 0.3, 0.6, 0.9}) {
    CpuSchedulerSim sim({}, 7);
    const std::size_t idx = sim.add_process(host(duty));
    sim.run(300.0);
    EXPECT_NEAR(sim.usages()[idx].usage, duty, 0.03) << "duty=" << duty;
  }
}

TEST(CpuSchedulerTest, CpuBoundAloneUsesWholeCpu) {
  CpuSchedulerSim sim({}, 3);
  const std::size_t idx = sim.add_process(cpu_bound_guest(0));
  sim.run(60.0);
  EXPECT_NEAR(sim.usages()[idx].usage, 1.0, 1e-9);
}

TEST(CpuSchedulerTest, TwoCpuBoundEqualPrioritySplitEvenly) {
  CpuSchedulerSim sim({}, 5);
  const std::size_t a = sim.add_process(cpu_bound_guest(0));
  SchedProcessSpec second = cpu_bound_guest(0);
  second.name = "guest2";
  const std::size_t b = sim.add_process(second);
  sim.run(120.0);
  EXPECT_NEAR(sim.usages()[a].usage, 0.5, 0.02);
  EXPECT_NEAR(sim.usages()[b].usage, 0.5, 0.02);
}

TEST(CpuSchedulerTest, TotalUsageNeverExceedsOneCpu) {
  CpuSchedulerSim sim({}, 11);
  std::vector<std::size_t> all;
  all.push_back(sim.add_process(host(0.4, "h0")));
  all.push_back(sim.add_process(host(0.5, "h1")));
  all.push_back(sim.add_process(cpu_bound_guest(19)));
  sim.run(200.0);
  EXPECT_LE(sim.total_usage(all), 1.0 + 1e-9);
}

TEST(CpuSchedulerTest, Nice19GuestYieldsToHosts) {
  // Hosts totalling 50% demand: a nice-19 guest should only get the slack.
  CpuSchedulerSim sim({}, 13);
  sim.add_process(host(0.25, "h0"));
  sim.add_process(host(0.25, "h1"));
  const std::size_t g = sim.add_process(cpu_bound_guest(19));
  sim.run(300.0);
  const double guest_usage = sim.usages()[g].usage;
  EXPECT_GT(guest_usage, 0.30);
  EXPECT_LT(guest_usage, 0.60);
}

TEST(CpuSchedulerTest, InteractiveHostUnaffectedByDefaultPriorityGuest) {
  // duty 0.1 → sleep fraction 0.9 ≥ 0.8: the host preempts a nice-0 guest
  // immediately, so its achieved usage barely moves.
  CpuSchedulerSim alone({}, 17);
  const std::size_t a = alone.add_process(host(0.10));
  alone.run(300.0);

  CpuSchedulerSim contended({}, 17);
  const std::size_t b = contended.add_process(host(0.10));
  contended.add_process(cpu_bound_guest(0));
  contended.run(300.0);

  const double reduction =
      (alone.usages()[a].usage - contended.usages()[b].usage) /
      alone.usages()[a].usage;
  EXPECT_LT(reduction, 0.05);
}

TEST(CpuSchedulerTest, BusyHostSlowedByDefaultPriorityGuest) {
  // duty 0.4 → not interactive: it must round-robin with a nice-0 guest and
  // loses noticeably more than 5% of its CPU usage.
  CpuSchedulerSim alone({}, 19);
  const std::size_t a = alone.add_process(host(0.40));
  alone.run(300.0);

  CpuSchedulerSim contended({}, 19);
  const std::size_t b = contended.add_process(host(0.40));
  contended.add_process(cpu_bound_guest(0));
  contended.run(300.0);

  const double reduction =
      (alone.usages()[a].usage - contended.usages()[b].usage) /
      alone.usages()[a].usage;
  EXPECT_GT(reduction, 0.05);
}

TEST(CpuSchedulerTest, RenicedGuestHurtsLessThanDefaultPriority) {
  const double duty = 0.5;
  CpuSchedulerSim alone({}, 23);
  const std::size_t a = alone.add_process(host(duty));
  alone.run(300.0);
  const double isolated = alone.usages()[a].usage;

  double with_guest[2];
  int slot = 0;
  for (const int nice : {0, 19}) {
    CpuSchedulerSim sim({}, 23);
    const std::size_t h = sim.add_process(host(duty));
    sim.add_process(cpu_bound_guest(nice));
    sim.run(300.0);
    with_guest[slot++] = sim.usages()[h].usage;
  }
  const double reduction_nice0 = (isolated - with_guest[0]) / isolated;
  const double reduction_nice19 = (isolated - with_guest[1]) / isolated;
  EXPECT_GT(reduction_nice0, reduction_nice19);
}

TEST(CpuSchedulerTest, TimesliceScalesWithNice) {
  const SchedParams params;
  EXPECT_DOUBLE_EQ(params.timeslice_ms(0), 100.0);
  EXPECT_DOUBLE_EQ(params.timeslice_ms(19), 10.0);
  EXPECT_GT(params.timeslice_ms(10), params.timeslice_ms(19));
}

TEST(CpuSchedulerTest, ValidatesInputs) {
  CpuSchedulerSim sim({}, 1);
  SchedProcessSpec bad = host(0.0);
  EXPECT_THROW(sim.add_process(bad), PreconditionError);
  bad = host(0.5);
  bad.nice = -1;
  EXPECT_THROW(sim.add_process(bad), PreconditionError);
  bad = host(0.5);
  bad.nice = 20;
  EXPECT_THROW(sim.add_process(bad), PreconditionError);
  EXPECT_THROW(sim.run(10.0), PreconditionError);  // no processes
  EXPECT_THROW(sim.usages(), PreconditionError);   // never ran
}

TEST(CpuSchedulerTest, DeterministicForSameSeed) {
  auto measure = [](std::uint64_t seed) {
    CpuSchedulerSim sim({}, seed);
    const std::size_t h = sim.add_process(host(0.3));
    sim.add_process(cpu_bound_guest(0));
    sim.run(120.0);
    return sim.usages()[h].usage;
  };
  EXPECT_DOUBLE_EQ(measure(99), measure(99));
}

}  // namespace
}  // namespace fgcs
