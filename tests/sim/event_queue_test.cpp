#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(EventQueueTest, ProcessesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(30, [&] { order.push_back(3); });
  queue.schedule_at(10, [&] { order.push_back(1); });
  queue.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(queue.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 30);
}

TEST(EventQueueTest, EqualTimesRunInSchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    queue.schedule_at(42, [&order, i] { order.push_back(i); });
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbacksCanScheduleMoreEvents) {
  EventQueue queue;
  std::vector<SimTime> fired;
  std::function<void()> reschedule = [&] {
    fired.push_back(queue.now());
    if (queue.now() < 50) queue.schedule_in(10, reschedule);
  };
  queue.schedule_at(10, reschedule);
  queue.run_all();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30, 40, 50}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue queue;
  std::vector<SimTime> fired;
  for (SimTime t : {5, 10, 15, 20})
    queue.schedule_at(t, [&fired, &queue] { fired.push_back(queue.now()); });
  queue.run_until(10);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 10}));
  EXPECT_EQ(queue.now(), 10);
  EXPECT_EQ(queue.pending(), 2u);
  queue.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(queue.now(), 100);
}

TEST(EventQueueTest, RejectsPastEventsAndNullCallbacks) {
  EventQueue queue;
  queue.schedule_at(10, [] {});
  queue.run_all();
  EXPECT_THROW(queue.schedule_at(5, [] {}), PreconditionError);
  EXPECT_THROW(queue.schedule_in(-1, [] {}), PreconditionError);
  EXPECT_THROW(queue.schedule_at(20, nullptr), PreconditionError);
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.step());
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace fgcs
