#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

/// Scripted host signal: plays back a fixed tick list, repeating the last.
class ScriptedSignal final : public HostSignal {
 public:
  explicit ScriptedSignal(std::vector<Tick> ticks) : ticks_(std::move(ticks)) {}

  Tick tick(SimTime) override {
    const Tick t = ticks_[std::min(index_, ticks_.size() - 1)];
    ++index_;
    return t;
  }

 private:
  std::vector<Tick> ticks_;
  std::size_t index_ = 0;
};

constexpr HostSignal::Tick idle{.host_load = 0.05, .free_mem_mb = 400, .up = true};
constexpr HostSignal::Tick busy{.host_load = 0.45, .free_mem_mb = 400, .up = true};
constexpr HostSignal::Tick overload{.host_load = 0.95, .free_mem_mb = 400, .up = true};
constexpr HostSignal::Tick low_mem{.host_load = 0.05, .free_mem_mb = 50, .up = true};
constexpr HostSignal::Tick down{.host_load = 0.0, .free_mem_mb = 400, .up = false};

SimulatedMachine make_machine(std::vector<HostSignal::Tick> script,
                              SimTime period = 6) {
  return SimulatedMachine("m", 512, test::test_thresholds(), period,
                          std::make_unique<ScriptedSignal>(std::move(script)));
}

GuestJobSpec small_job(double cpu_seconds = 60.0) {
  return GuestJobSpec{.job_id = "job", .cpu_seconds = cpu_seconds, .mem_mb = 100};
}

TEST(MachineTest, GuestRunsAtDefaultPriorityWhenIdle) {
  SimulatedMachine m = make_machine({idle});
  m.submit_guest(small_job(1e9));
  m.step(6);
  EXPECT_EQ(m.guest_status(), GuestStatus::kRunningDefault);
  EXPECT_NEAR(m.guest_progress_seconds(), 0.95 * 6, 1e-9);
}

TEST(MachineTest, GuestRenicedUnderHeavyLoad) {
  SimulatedMachine m = make_machine({busy});
  m.submit_guest(small_job(1e9));
  m.step(6);
  EXPECT_EQ(m.guest_status(), GuestStatus::kRunningReniced);
}

TEST(MachineTest, TransientOverloadSuspendsThenResumes) {
  // 5 ticks of overload (30 s < 60 s limit), then idle again.
  std::vector<HostSignal::Tick> script(5, overload);
  script.push_back(idle);
  SimulatedMachine m = make_machine(std::move(script));
  m.submit_guest(small_job(1e9));
  for (SimTime t = 6; t <= 30; t += 6) {
    m.step(t);
    EXPECT_EQ(m.guest_status(), GuestStatus::kSuspended) << t;
  }
  m.step(36);
  EXPECT_EQ(m.guest_status(), GuestStatus::kRunningDefault);
}

TEST(MachineTest, SteadyOverloadKillsGuestAfterTransientLimit) {
  SimulatedMachine m = make_machine({overload});
  m.submit_guest(small_job(1e9));
  SimTime killed_at = 0;
  for (SimTime t = 6; t <= 300; t += 6) {
    m.step(t);
    if (m.guest_status() == GuestStatus::kKilled) {
      killed_at = t;
      break;
    }
  }
  ASSERT_NE(killed_at, 0);
  EXPECT_EQ(killed_at, 66);  // first excursion tick at 6, limit 60 s later
  ASSERT_TRUE(m.guest_failure().has_value());
  EXPECT_EQ(*m.guest_failure(), State::kS3);
}

TEST(MachineTest, LowMemoryKillsGuestImmediately) {
  SimulatedMachine m = make_machine({low_mem});
  m.submit_guest(small_job());
  m.step(6);
  EXPECT_EQ(m.guest_status(), GuestStatus::kKilled);
  EXPECT_EQ(*m.guest_failure(), State::kS4);
}

TEST(MachineTest, RevocationKillsGuest) {
  SimulatedMachine m = make_machine({idle, down});
  m.submit_guest(small_job());
  m.step(6);
  EXPECT_TRUE(m.guest_active());
  const ResourceSample s = m.step(12);
  EXPECT_FALSE(s.up());
  EXPECT_EQ(m.guest_status(), GuestStatus::kKilled);
  EXPECT_EQ(*m.guest_failure(), State::kS5);
}

TEST(MachineTest, GuestCompletesWhenWorkIsDone) {
  SimulatedMachine m = make_machine({idle});
  m.submit_guest(small_job(10.0));  // < 2 ticks of idle progress
  m.step(6);
  m.step(12);
  EXPECT_EQ(m.guest_status(), GuestStatus::kCompleted);
  EXPECT_FALSE(m.guest_active());
}

TEST(MachineTest, SampleReflectsHostSignalOnly) {
  SimulatedMachine m = make_machine({busy});
  m.submit_guest(small_job(1e9));
  const ResourceSample s = m.step(6);
  EXPECT_EQ(s.host_load_pct, 45);
  EXPECT_EQ(s.free_mem_mb, 400);
  EXPECT_TRUE(s.up());
}

TEST(MachineTest, OnlyOneGuestAtATime) {
  SimulatedMachine m = make_machine({idle});
  m.submit_guest(small_job(1e9));
  EXPECT_THROW(m.submit_guest(small_job()), PreconditionError);
}

TEST(MachineTest, ClearGuestResetsState) {
  SimulatedMachine m = make_machine({low_mem, idle});
  m.submit_guest(small_job());
  m.step(6);  // killed (S4)
  EXPECT_EQ(m.guest_status(), GuestStatus::kKilled);
  m.clear_guest();
  EXPECT_EQ(m.guest_status(), GuestStatus::kNone);
  EXPECT_FALSE(m.guest_failure().has_value());
  EXPECT_NO_THROW(m.submit_guest(small_job()));
}

TEST(MachineTest, CannotClearLiveGuest) {
  SimulatedMachine m = make_machine({idle});
  m.submit_guest(small_job(1e9));
  m.step(6);
  EXPECT_THROW(m.clear_guest(), PreconditionError);
}

TEST(MachineTest, StatusToString) {
  EXPECT_STREQ(to_string(GuestStatus::kNone), "none");
  EXPECT_STREQ(to_string(GuestStatus::kRunningReniced), "running(reniced)");
  EXPECT_STREQ(to_string(GuestStatus::kKilled), "killed");
}

}  // namespace
}  // namespace fgcs
