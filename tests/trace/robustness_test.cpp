// Robustness of the trace (de)serializer: corrupted input must be rejected
// with DataError (or, if the corruption hits only payload bytes, load as
// plausible data) — never crash, hang, or allocate absurdly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "test_support.hpp"
#include "trace/machine_trace.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

std::string serialized_fixture() {
  MachineTrace trace = test::constant_trace(2, 25, 3600);
  std::ostringstream os;
  trace.save(os);
  return os.str();
}

TEST(TraceRobustnessTest, TruncationAtEveryPrefixLengthIsSafe) {
  const std::string bytes = serialized_fixture();
  // Every strict prefix must fail cleanly (stride keeps the test fast).
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    std::istringstream is(bytes.substr(0, len));
    EXPECT_THROW(MachineTrace::load(is), DataError) << "prefix " << len;
  }
}

class TraceFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(TraceFuzzTest, RandomByteCorruptionNeverCrashes) {
  const std::string original = serialized_fixture();
  Rng rng(static_cast<std::uint64_t>(9000 + GetParam()));
  for (int round = 0; round < 200; ++round) {
    std::string bytes = original;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    std::istringstream is(bytes);
    try {
      const MachineTrace trace = MachineTrace::load(is);
      // Loaded despite corruption: the invariants must still hold.
      EXPECT_GT(trace.sampling_period(), 0);
      EXPECT_EQ(kSecondsPerDay % trace.sampling_period(), 0);
      EXPECT_GT(trace.total_mem_mb(), 0);
      EXPECT_GE(trace.day_count(), 0);
    } catch (const DataError&) {
      // Expected for most corruptions.
    } catch (const PreconditionError&) {
      // Acceptable: corrupt header fields caught by constructor guards.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TraceFuzzTest, ::testing::Range(0, 5));

TEST(TraceRobustnessTest, GarbageHeaderIsRejected) {
  // No prefix of random noise is a valid stream: the magic check fires first.
  std::string garbage(256, '\0');
  Rng rng(77);
  for (char& byte : garbage)
    byte = static_cast<char>(rng.uniform_int(0, 255));
  garbage[0] = 'X';  // guarantee the magic cannot match by accident
  std::istringstream is(garbage);
  EXPECT_THROW(MachineTrace::load(is), DataError);
}

TEST(TraceRobustnessTest, WrongVersionIsRejected) {
  std::string bytes = serialized_fixture();
  bytes[4] = 2;  // version field follows the 4-byte magic
  std::istringstream is(bytes);
  EXPECT_THROW(MachineTrace::load(is), DataError);
}

TEST(TraceRobustnessTest, ZeroDayTraceRoundTrips) {
  // An empty (just-provisioned) machine log is valid: header only, no days.
  const MachineTrace empty("fresh", Calendar(0), 60, 512);
  std::ostringstream os;
  empty.save(os);
  std::istringstream is(os.str());
  const MachineTrace loaded = MachineTrace::load(is);
  EXPECT_EQ(loaded.day_count(), 0);
  EXPECT_EQ(loaded.machine_id(), "fresh");
  EXPECT_EQ(loaded.sampling_period(), 60);
}

TEST(TraceRobustnessTest, InjectedCorruptionThrowsTypedErrorThenRecovers) {
  // The trace.load.corrupt failpoint models a corrupt stream the header
  // checks would miss; callers must see DataError, and a clean retry (the
  // `once` trigger spent) must load the very same bytes.
  Failpoints::instance().reset();
  Failpoints::instance().arm_from_spec("trace.load.corrupt=once");
  const std::string bytes = serialized_fixture();
  std::istringstream first(bytes);
  EXPECT_THROW(MachineTrace::load(first), DataError);
  std::istringstream second(bytes);
  EXPECT_EQ(MachineTrace::load(second).day_count(), 2);
  Failpoints::instance().reset();
}

TEST(TraceRobustnessTest, FileRoundTripThroughTempDir) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "fgcs_roundtrip_test.fgcs";
  const MachineTrace trace = test::constant_trace(3, 35, 60);
  trace.save_file(path.string());
  const MachineTrace loaded = MachineTrace::load_file(path.string());
  EXPECT_EQ(loaded.day_count(), 3);
  EXPECT_EQ(loaded.at(1, 100).host_load_pct, 35);
  std::filesystem::remove(path);
}

TEST(TraceRobustnessTest, MissingFileThrowsDataError) {
  EXPECT_THROW(MachineTrace::load_file("/nonexistent/dir/trace.fgcs"),
               DataError);
}

TEST(TraceRobustnessTest, UnwritablePathThrowsDataError) {
  const MachineTrace trace = test::constant_trace(1, 5, 3600);
  EXPECT_THROW(trace.save_file("/nonexistent/dir/trace.fgcs"), DataError);
}

}  // namespace
}  // namespace fgcs
