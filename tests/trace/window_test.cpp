#include "trace/window.hpp"

#include <gtest/gtest.h>

namespace fgcs {
namespace {

TEST(WindowTest, StepsDividesExactly) {
  const TimeWindow w{.start_of_day = 0, .length = 2 * kSecondsPerHour};
  EXPECT_EQ(w.steps(6), 1200u);
  EXPECT_EQ(w.steps(60), 120u);
}

TEST(WindowTest, StepsRejectsNonDivisiblePeriod) {
  const TimeWindow w{.start_of_day = 0, .length = 100};
  EXPECT_THROW(w.steps(7), PreconditionError);
  EXPECT_THROW(w.steps(0), PreconditionError);
}

TEST(WindowTest, MidnightWrapDetection) {
  const TimeWindow inside{.start_of_day = 10 * kSecondsPerHour,
                          .length = 10 * kSecondsPerHour};
  EXPECT_FALSE(inside.wraps_midnight());
  const TimeWindow wraps{.start_of_day = 23 * kSecondsPerHour,
                         .length = 2 * kSecondsPerHour};
  EXPECT_TRUE(wraps.wraps_midnight());
  const TimeWindow exact{.start_of_day = 14 * kSecondsPerHour,
                         .length = 10 * kSecondsPerHour};
  EXPECT_FALSE(exact.wraps_midnight());  // ends exactly at midnight
}

TEST(WindowTest, ValidateAcceptsPaperSweep) {
  for (int start_hour = 0; start_hour < 24; ++start_hour)
    for (int len_hours = 1; len_hours <= 10; ++len_hours) {
      const TimeWindow w{.start_of_day = start_hour * kSecondsPerHour,
                         .length = len_hours * kSecondsPerHour};
      EXPECT_NO_THROW(validate(w));
    }
}

TEST(WindowTest, ValidateRejectsBadWindows) {
  EXPECT_THROW(validate(TimeWindow{.start_of_day = -1, .length = 100}),
               PreconditionError);
  EXPECT_THROW(validate(TimeWindow{.start_of_day = kSecondsPerDay, .length = 100}),
               PreconditionError);
  EXPECT_THROW(validate(TimeWindow{.start_of_day = 0, .length = 0}),
               PreconditionError);
  EXPECT_THROW(
      validate(TimeWindow{.start_of_day = 0, .length = kSecondsPerDay + 1}),
      PreconditionError);
}

TEST(WindowTest, DescribeIsHumanReadable) {
  const TimeWindow w{.start_of_day = 8 * kSecondsPerHour,
                     .length = 2 * kSecondsPerHour};
  EXPECT_EQ(w.describe(), "08:00:00 +2h");
}

}  // namespace
}  // namespace fgcs
