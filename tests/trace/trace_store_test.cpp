// TraceStore: the ingest path's day-boundary rollup. Pins the append
// contract (idempotent duplicates, gap rejection, spec pinning), the
// copy-on-rollup snapshot semantics, retention-based retirement, trace
// adoption, the DayClosedEvent ordering, and crash-consistency under the
// ingest.rollup.fail failpoint (a failed close must leave the machine
// retryable, not wedged).
#include "trace/trace_store.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_support.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

constexpr SimTime kPeriod = 3600;  // 24 samples/day keeps the tests tiny

MachineSpec spec(const std::string& id = "m0") {
  return MachineSpec{.machine_id = id,
                     .epoch_day_of_week = 2,
                     .sampling_period = kPeriod,
                     .total_mem_mb = 512};
}

std::vector<ResourceSample> day_of(int load_pct) {
  return constant_day(kPeriod, load_pct);
}

TEST(TraceStoreTest, AppendsBufferUntilTheDayBoundary) {
  TraceStore store;
  const std::vector<ResourceSample> day = day_of(10);
  const AppendResult partial =
      store.append(spec(), 0, std::span(day).subspan(0, 10));
  EXPECT_EQ(partial.accepted, 10u);
  EXPECT_EQ(partial.days_closed, 0u);
  EXPECT_EQ(partial.next_index, 10u);
  EXPECT_EQ(store.buffered_samples("m0"), 10u);
  EXPECT_EQ(store.snapshot("m0")->day_count(), 0);

  const AppendResult rest = store.append(spec(), 10, std::span(day).subspan(10));
  EXPECT_EQ(rest.accepted, day.size() - 10);
  EXPECT_EQ(rest.days_closed, 1u);
  EXPECT_EQ(rest.days_retired, 0u);
  EXPECT_EQ(store.buffered_samples("m0"), 0u);
  const std::shared_ptr<const MachineTrace> snap = store.snapshot("m0");
  ASSERT_EQ(snap->day_count(), 1);
  EXPECT_EQ(snap->machine_id(), "m0");
  EXPECT_EQ(snap->calendar().epoch_day_of_week(), 2);
  EXPECT_EQ(snap->sampling_period(), kPeriod);
  for (std::size_t i = 0; i < day.size(); ++i)
    EXPECT_TRUE(snap->at(0, i) == day[i]);
}

TEST(TraceStoreTest, OneAppendCanCloseSeveralDays) {
  TraceStore store;
  std::vector<ResourceSample> batch;
  for (const int load : {5, 50, 95})
    for (const ResourceSample& s : day_of(load)) batch.push_back(s);
  batch.push_back(sample(10));  // and start day 3
  const AppendResult result = store.append(spec(), 0, batch);
  EXPECT_EQ(result.days_closed, 3u);
  EXPECT_EQ(result.next_index, batch.size());
  EXPECT_EQ(store.snapshot("m0")->day_count(), 3);
  EXPECT_EQ(store.buffered_samples("m0"), 1u);
}

TEST(TraceStoreTest, OverlappingRetransmissionIsDeduplicated) {
  TraceStore store;
  const std::vector<ResourceSample> day = day_of(10);
  store.append(spec(), 0, day);
  // Full retransmission plus 4 new samples: the old 24 dedup exactly.
  std::vector<ResourceSample> retry = day;
  for (int i = 0; i < 4; ++i) retry.push_back(sample(60));
  const AppendResult result = store.append(spec(), 0, retry);
  EXPECT_EQ(result.duplicates, day.size());
  EXPECT_EQ(result.accepted, 4u);
  EXPECT_EQ(result.days_closed, 0u);
  EXPECT_EQ(result.next_index, day.size() + 4);
  // The duplicate region is *not* compared byte-for-byte — the index alone
  // names the sample — but the stored day must still be the original.
  EXPECT_TRUE(store.snapshot("m0")->at(0, 0) == day[0]);
}

TEST(TraceStoreTest, GapsAreUnrepresentableAndRejected) {
  TraceStore store;
  const std::vector<ResourceSample> day = day_of(10);
  store.append(spec(), 0, std::span(day).subspan(0, 5));
  EXPECT_THROW(store.append(spec(), 6, std::span(day).subspan(6)), DataError);
  // State unchanged: index 5 is still the frontier.
  EXPECT_EQ(store.next_index("m0"), 5u);
}

TEST(TraceStoreTest, SpecIsPinnedAtFirstSight) {
  TraceStore store;
  store.append(spec(), 0, std::vector<ResourceSample>{sample(10)});
  MachineSpec changed = spec();
  changed.sampling_period = 60;
  EXPECT_THROW(store.append(changed, 1, std::vector<ResourceSample>{sample(10)}),
               DataError);
  MachineSpec moved = spec();
  moved.epoch_day_of_week = 5;
  EXPECT_THROW(store.register_machine(moved), DataError);
}

TEST(TraceStoreTest, InvalidSpecsAreRejected) {
  TraceStore store;
  MachineSpec bad = spec("");
  EXPECT_THROW(store.register_machine(bad), DataError);
  bad = spec();
  bad.sampling_period = 7;  // does not divide 86400
  EXPECT_THROW(store.register_machine(bad), DataError);
  bad = spec();
  bad.epoch_day_of_week = 9;
  EXPECT_THROW(store.register_machine(bad), DataError);
}

TEST(TraceStoreTest, RetentionRetiresTheOldestDay) {
  TraceStore store(TraceStoreConfig{.retention_days = 2}, nullptr);
  std::vector<ResourceSample> batch;
  for (const int load : {5, 50, 95, 20})
    for (const ResourceSample& s : day_of(load)) batch.push_back(s);
  const AppendResult result = store.append(spec(), 0, batch);
  EXPECT_EQ(result.days_closed, 4u);
  EXPECT_EQ(result.days_retired, 2u);  // days 0 and 1 slid out
  const std::shared_ptr<const MachineTrace> snap = store.snapshot("m0");
  ASSERT_EQ(snap->day_count(), 2);
  EXPECT_EQ(store.first_day_id("m0"), 2);
  // Absolute indexing survives retirement: next_index counts ALL samples.
  EXPECT_EQ(store.next_index("m0"), batch.size());
  // The slice kept calendar alignment: day 0 of the snapshot is absolute
  // day 2 (epoch dow 2 + 2 = Friday, still a weekday).
  EXPECT_EQ(snap->calendar().epoch_day_of_week(), 4);
  EXPECT_EQ(snap->at(0, 0).host_load_pct, 95);
}

TEST(TraceStoreTest, SnapshotsAreImmutableUnderLaterAppends) {
  TraceStore store;
  store.append(spec(), 0, day_of(10));
  const std::shared_ptr<const MachineTrace> before = store.snapshot("m0");
  store.append(spec(), 24, day_of(90));
  EXPECT_EQ(before->day_count(), 1);  // old snapshot untouched
  EXPECT_EQ(store.snapshot("m0")->day_count(), 2);
  EXPECT_NE(before.get(), store.snapshot("m0").get());
}

TEST(TraceStoreTest, DayClosedEventsCarryOrderedBookkeeping) {
  struct Seen {
    std::int64_t closed, retired, first, day_count;
  };
  std::vector<Seen> events;
  TraceStore store(TraceStoreConfig{.retention_days = 2},
                   [&](const TraceStore::DayClosedEvent& event) {
                     events.push_back({event.closed_day, event.retired_day,
                                       event.first_day_id,
                                       event.trace->day_count()});
                   });
  std::vector<ResourceSample> batch;
  for (const int load : {5, 50, 95})
    for (const ResourceSample& s : day_of(load)) batch.push_back(s);
  store.append(spec(), 0, batch);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].closed, 0);
  EXPECT_EQ(events[0].retired, -1);
  EXPECT_EQ(events[0].first, 0);
  EXPECT_EQ(events[0].day_count, 1);
  EXPECT_EQ(events[1].closed, 1);
  EXPECT_EQ(events[1].retired, -1);
  EXPECT_EQ(events[1].day_count, 2);
  // Third close hits retention: day 0 retires in the same event.
  EXPECT_EQ(events[2].closed, 2);
  EXPECT_EQ(events[2].retired, 0);
  EXPECT_EQ(events[2].first, 1);
  EXPECT_EQ(events[2].day_count, 2);
}

TEST(TraceStoreTest, AdoptedTraceContinuesSeamlessly) {
  TraceStore store;
  MachineTrace trace("adopted", Calendar(2), kPeriod, 512);
  trace.append_day(day_of(10));
  trace.append_day(day_of(20));
  store.adopt_trace(trace);
  EXPECT_THROW(store.adopt_trace(trace), DataError);  // already present
  EXPECT_EQ(store.next_index("adopted"), 48u);
  // Appends resume at the adopted end, with the spec derived from the trace.
  const AppendResult result = store.append(
      MachineSpec{.machine_id = "adopted",
                  .epoch_day_of_week = 2,
                  .sampling_period = kPeriod,
                  .total_mem_mb = 512},
      48, day_of(30));
  EXPECT_EQ(result.days_closed, 1u);
  EXPECT_EQ(store.snapshot("adopted")->day_count(), 3);
}

TEST(TraceStoreTest, UnknownMachinesReadAsAbsent) {
  TraceStore store;
  EXPECT_EQ(store.snapshot("ghost"), nullptr);
  EXPECT_THROW(store.next_index("ghost"), DataError);
  EXPECT_THROW(store.first_day_id("ghost"), DataError);
  EXPECT_THROW(store.buffered_samples("ghost"), DataError);
  EXPECT_EQ(store.machine_count(), 0u);
}

// ---- crash consistency: the rollup failpoint ----

class RollupFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::instance().reset(); }
};

TEST_F(RollupFailpointTest, FailedCloseLeavesTheMachineRetryable) {
  TraceStore store;
  const std::vector<ResourceSample> day = day_of(10);
  Failpoints::instance().arm_from_spec("ingest.rollup.fail=every:1");
  EXPECT_THROW(store.append(spec(), 0, day), RollupError);
  // The day is fully buffered but unclosed; the frontier already covers it.
  EXPECT_EQ(store.snapshot("m0")->day_count(), 0);
  EXPECT_EQ(store.buffered_samples("m0"), 24u);
  EXPECT_EQ(store.next_index("m0"), 24u);

  // An idempotent client retry (same frame) must dedup every sample AND
  // re-attempt the pending close — the wedge this path once had.
  Failpoints::instance().reset();
  const AppendResult retry = store.append(spec(), 0, day);
  EXPECT_EQ(retry.duplicates, day.size());
  EXPECT_EQ(retry.accepted, 0u);
  EXPECT_EQ(retry.days_closed, 1u);
  EXPECT_EQ(store.snapshot("m0")->day_count(), 1);
  EXPECT_EQ(store.buffered_samples("m0"), 0u);
}

TEST_F(RollupFailpointTest, MidBatchFailureKeepsEarlierDaysAndProgress) {
  TraceStore store;
  std::vector<ResourceSample> batch;
  for (const int load : {5, 50})
    for (const ResourceSample& s : day_of(load)) batch.push_back(s);
  // First close succeeds, second one fails mid-frame.
  Failpoints::instance().arm_from_spec("ingest.rollup.fail=every:2");
  EXPECT_THROW(store.append(spec(), 0, batch), RollupError);
  EXPECT_EQ(store.snapshot("m0")->day_count(), 1);
  EXPECT_EQ(store.next_index("m0"), batch.size());

  Failpoints::instance().reset();
  const AppendResult retry = store.append(spec(), 0, batch);
  EXPECT_EQ(retry.duplicates, batch.size());
  EXPECT_EQ(retry.days_closed, 1u);  // only the pending day closes
  const std::shared_ptr<const MachineTrace> snap = store.snapshot("m0");
  ASSERT_EQ(snap->day_count(), 2);
  EXPECT_EQ(snap->at(0, 0).host_load_pct, 5);
  EXPECT_EQ(snap->at(1, 0).host_load_pct, 50);
}

}  // namespace
}  // namespace fgcs
