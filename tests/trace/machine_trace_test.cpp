#include "trace/machine_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::constant_trace;
using test::sample;

TEST(MachineTraceTest, ConstructionValidatesArguments) {
  EXPECT_NO_THROW(MachineTrace("m", Calendar(0), 6, 512));
  EXPECT_THROW(MachineTrace("m", Calendar(0), 7, 512), PreconditionError);
  EXPECT_THROW(MachineTrace("m", Calendar(0), 0, 512), PreconditionError);
  EXPECT_THROW(MachineTrace("m", Calendar(0), 6, 0), PreconditionError);
}

TEST(MachineTraceTest, AppendDayEnforcesSize) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  EXPECT_EQ(trace.samples_per_day(), 1440u);
  EXPECT_THROW(trace.append_day(std::vector<ResourceSample>(10)),
               PreconditionError);
  trace.append_day(constant_day(60, 5));
  EXPECT_EQ(trace.day_count(), 1);
}

TEST(MachineTraceTest, AtTimeFindsSample) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  auto day0 = constant_day(60, 5);
  day0[100].host_load_pct = 77;
  trace.append_day(std::move(day0));
  trace.append_day(constant_day(60, 9));
  EXPECT_EQ(trace.at_time(100 * 60).host_load_pct, 77);
  EXPECT_EQ(trace.at_time(100 * 60 + 59).host_load_pct, 77);
  EXPECT_EQ(trace.at_time(kSecondsPerDay).host_load_pct, 9);
  EXPECT_THROW(trace.at_time(2 * kSecondsPerDay), PreconditionError);
}

TEST(MachineTraceTest, WindowSamplesWithinDay) {
  MachineTrace trace = constant_trace(2, 30, 60);
  const TimeWindow w{.start_of_day = 8 * kSecondsPerHour,
                     .length = kSecondsPerHour};
  const auto samples = trace.window_samples(0, w);
  ASSERT_EQ(samples.size(), 60u);
  for (const auto& s : samples) EXPECT_EQ(s.host_load_pct, 30);
}

TEST(MachineTraceTest, WindowSamplesWrapMidnight) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  trace.append_day(constant_day(60, 10));
  trace.append_day(constant_day(60, 20));
  const TimeWindow w{.start_of_day = 23 * kSecondsPerHour,
                     .length = 2 * kSecondsPerHour};
  const auto samples = trace.window_samples(0, w);
  ASSERT_EQ(samples.size(), 120u);
  EXPECT_EQ(samples.front().host_load_pct, 10);
  EXPECT_EQ(samples[59].host_load_pct, 10);
  EXPECT_EQ(samples[60].host_load_pct, 20);  // crossed midnight
  EXPECT_EQ(samples.back().host_load_pct, 20);
}

TEST(MachineTraceTest, WindowInRangeChecksWrap) {
  MachineTrace trace = constant_trace(2, 5, 60);
  const TimeWindow wrapping{.start_of_day = 23 * kSecondsPerHour,
                            .length = 2 * kSecondsPerHour};
  EXPECT_TRUE(trace.window_in_range(0, wrapping));
  EXPECT_FALSE(trace.window_in_range(1, wrapping));  // needs day 2
  EXPECT_FALSE(trace.window_in_range(2, wrapping));
  EXPECT_FALSE(trace.window_in_range(-1, wrapping));
}

TEST(MachineTraceTest, DaysOfTypeRespectsCalendar) {
  const MachineTrace trace = constant_trace(14, 5, 60, 512, /*epoch_dow=*/0);
  const auto weekdays = trace.days_of_type(DayType::kWeekday, 0, 14);
  const auto weekends = trace.days_of_type(DayType::kWeekend, 0, 14);
  EXPECT_EQ(weekdays.size(), 10u);
  EXPECT_EQ(weekends.size(), 4u);
  EXPECT_EQ(weekends, (std::vector<std::int64_t>{5, 6, 12, 13}));
}

TEST(MachineTraceTest, RecentDaysOfTypeTakesMostRecentN) {
  const MachineTrace trace = constant_trace(14, 5, 60);
  // Weekdays before day 12 (Monday epoch): …, 8, 9, 10, 11.
  const auto days = trace.recent_days_of_type(DayType::kWeekday, 12, 3);
  EXPECT_EQ(days, (std::vector<std::int64_t>{9, 10, 11}));
  // Fewer available than requested: return what exists.
  const auto early = trace.recent_days_of_type(DayType::kWeekday, 2, 5);
  EXPECT_EQ(early, (std::vector<std::int64_t>{0, 1}));
}

TEST(MachineTraceTest, UptimeAndMeanLoad) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  std::vector<ResourceSample> day = constant_day(60, 40);
  for (std::size_t i = 0; i < 144; ++i) day[i].set_up(false);  // 10% down
  trace.append_day(std::move(day));
  EXPECT_NEAR(trace.uptime_fraction(), 0.9, 1e-9);
  EXPECT_NEAR(trace.mean_load(), 0.40, 1e-9);
}

TEST(MachineTraceTest, SerializationRoundTrip) {
  MachineTrace trace("machine-x", Calendar(3), 60, 384);
  auto day = constant_day(60, 15);
  day[7] = sample(99, 50, false);
  trace.append_day(std::move(day));
  trace.append_day(constant_day(60, 25));

  std::stringstream buffer;
  trace.save(buffer);
  const MachineTrace loaded = MachineTrace::load(buffer);

  EXPECT_EQ(loaded.machine_id(), "machine-x");
  EXPECT_EQ(loaded.calendar().epoch_day_of_week(), 3);
  EXPECT_EQ(loaded.sampling_period(), 60);
  EXPECT_EQ(loaded.total_mem_mb(), 384);
  ASSERT_EQ(loaded.day_count(), 2);
  EXPECT_EQ(loaded.at(0, 7), sample(99, 50, false));
  EXPECT_EQ(loaded.at(1, 100).host_load_pct, 25);
}

TEST(MachineTraceTest, LoadRejectsGarbage) {
  std::stringstream buffer("this is not a trace");
  EXPECT_THROW(MachineTrace::load(buffer), DataError);
}

TEST(MachineTraceTest, LoadRejectsTruncatedStream) {
  MachineTrace trace = constant_trace(2, 5, 60);
  std::stringstream buffer;
  trace.save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(MachineTrace::load(truncated), DataError);
}

TEST(MachineTraceTest, DayCsvHasHeaderAndRows) {
  const MachineTrace trace = constant_trace(1, 12, 3600);
  std::ostringstream os;
  trace.write_day_csv(os, 0);
  const std::string out = os.str();
  EXPECT_NE(out.find("second_of_day,host_load_pct,free_mem_mb,up\n"),
            std::string::npos);
  EXPECT_NE(out.find("0,12,"), std::string::npos);
  // 24 rows + header.
  EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')), 25);
}

}  // namespace
}  // namespace fgcs
