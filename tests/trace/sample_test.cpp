#include "trace/sample.hpp"

#include <gtest/gtest.h>

namespace fgcs {
namespace {

TEST(SampleTest, DefaultSampleIsUp) {
  const ResourceSample s;
  EXPECT_TRUE(s.up());
  EXPECT_EQ(s.host_load_pct, 0);
}

TEST(SampleTest, UpFlagRoundTrips) {
  ResourceSample s;
  s.set_up(false);
  EXPECT_FALSE(s.up());
  s.set_up(true);
  EXPECT_TRUE(s.up());
}

TEST(SampleTest, LoadFractionConversion) {
  ResourceSample s;
  s.host_load_pct = 45;
  EXPECT_DOUBLE_EQ(s.load(), 0.45);
}

TEST(SampleTest, PackLoadRoundsAndClamps) {
  EXPECT_EQ(pack_load_pct(0.0), 0);
  EXPECT_EQ(pack_load_pct(0.454), 45);
  EXPECT_EQ(pack_load_pct(0.456), 46);
  EXPECT_EQ(pack_load_pct(1.0), 100);
  EXPECT_EQ(pack_load_pct(1.7), 100);   // clamp high
  EXPECT_EQ(pack_load_pct(-0.2), 0);    // clamp low
}

TEST(SampleTest, PackMemClamps) {
  EXPECT_EQ(pack_mem_mb(0.0), 0);
  EXPECT_EQ(pack_mem_mb(383.6), 384);
  EXPECT_EQ(pack_mem_mb(1e9), 65535);
  EXPECT_EQ(pack_mem_mb(-5.0), 0);
}

TEST(SampleTest, EqualityComparesAllFields) {
  ResourceSample a, b;
  a.host_load_pct = b.host_load_pct = 10;
  a.free_mem_mb = b.free_mem_mb = 100;
  EXPECT_EQ(a, b);
  b.free_mem_mb = 101;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace fgcs
