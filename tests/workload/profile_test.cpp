#include "workload/profile.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(ProfileTest, PresetsStayInUnitRange) {
  for (const DiurnalProfile& p :
       {DiurnalProfile::student_lab(), DiurnalProfile::enterprise_desktop()}) {
    for (double hour = 0.0; hour < 24.0; hour += 0.25) {
      for (const DayType type : {DayType::kWeekday, DayType::kWeekend}) {
        const double a = p.activity(type, hour);
        EXPECT_GE(a, 0.0);
        EXPECT_LE(a, 1.0);
      }
    }
  }
}

TEST(ProfileTest, HourMidpointsMatchTable) {
  const DiurnalProfile p = DiurnalProfile::student_lab();
  EXPECT_DOUBLE_EQ(p.activity(DayType::kWeekday, 14.5), p.weekday[14]);
  EXPECT_DOUBLE_EQ(p.activity(DayType::kWeekend, 3.5), p.weekend[3]);
}

TEST(ProfileTest, InterpolatesBetweenMidpoints) {
  const DiurnalProfile p = DiurnalProfile::student_lab();
  const double at_15 = p.activity(DayType::kWeekday, 15.0);
  EXPECT_DOUBLE_EQ(at_15, (p.weekday[14] + p.weekday[15]) / 2.0);
}

TEST(ProfileTest, WrapsAroundMidnight) {
  const DiurnalProfile p = DiurnalProfile::student_lab();
  const double at_midnight = p.activity(DayType::kWeekday, 0.0);
  EXPECT_DOUBLE_EQ(at_midnight, (p.weekday[23] + p.weekday[0]) / 2.0);
}

TEST(ProfileTest, StudentLabBusyAfternoonQuietNight) {
  const DiurnalProfile p = DiurnalProfile::student_lab();
  EXPECT_GT(p.activity(DayType::kWeekday, 15.0),
            p.activity(DayType::kWeekday, 4.0) * 5.0);
}

TEST(ProfileTest, WeekendsLighterThanWeekdays) {
  const DiurnalProfile p = DiurnalProfile::student_lab();
  double weekday_total = 0.0, weekend_total = 0.0;
  for (int h = 0; h < kHoursPerDay; ++h) {
    weekday_total += p.weekday[h];
    weekend_total += p.weekend[h];
  }
  EXPECT_GT(weekday_total, weekend_total);
}

TEST(ProfileTest, ActivityAtSecondOfDay) {
  const DiurnalProfile p = DiurnalProfile::student_lab();
  EXPECT_DOUBLE_EQ(p.activity_at(DayType::kWeekday, 14 * kSecondsPerHour + 1800),
                   p.activity(DayType::kWeekday, 14.5));
}

TEST(ProfileTest, RejectsOutOfRangeHour) {
  const DiurnalProfile p = DiurnalProfile::student_lab();
  EXPECT_THROW(p.activity(DayType::kWeekday, 25.0), PreconditionError);
  EXPECT_THROW(p.activity(DayType::kWeekday, -0.5), PreconditionError);
}

TEST(ProfileTest, EnterpriseHasSharpNineToFive) {
  const DiurnalProfile p = DiurnalProfile::enterprise_desktop();
  EXPECT_GT(p.activity(DayType::kWeekday, 10.5),
            p.activity(DayType::kWeekday, 20.5) * 3.0);
  // Enterprise weekends are near-dead.
  EXPECT_LT(p.activity(DayType::kWeekend, 14.5), 0.2);
}

}  // namespace
}  // namespace fgcs
