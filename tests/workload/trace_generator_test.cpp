#include "workload/trace_generator.hpp"

#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "core/empirical.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

WorkloadParams fast_params() {
  WorkloadParams params;
  params.sampling_period = 60;  // coarser sampling keeps tests fast
  return params;
}

TEST(TraceGeneratorTest, GeneratesRequestedShape) {
  TraceGenerator generator(fast_params(), 1);
  const MachineTrace trace = generator.generate("m0", 7);
  EXPECT_EQ(trace.day_count(), 7);
  EXPECT_EQ(trace.samples_per_day(), 1440u);
  EXPECT_EQ(trace.machine_id(), "m0");
}

TEST(TraceGeneratorTest, DeterministicForSameSeed) {
  TraceGenerator a(fast_params(), 42);
  TraceGenerator b(fast_params(), 42);
  const MachineTrace ta = a.generate("m0", 3);
  const MachineTrace tb = b.generate("m0", 3);
  for (std::int64_t d = 0; d < 3; ++d)
    for (std::size_t i = 0; i < ta.samples_per_day(); ++i)
      ASSERT_EQ(ta.at(d, i), tb.at(d, i)) << "d=" << d << " i=" << i;
}

TEST(TraceGeneratorTest, DifferentMachinesDiffer) {
  TraceGenerator generator(fast_params(), 42);
  const MachineTrace a = generator.generate("m0", 1);
  TraceGenerator generator2(fast_params(), 42);
  const MachineTrace b = generator2.generate("m1", 1);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.samples_per_day(); ++i)
    if (!(a.at(0, i) == b.at(0, i))) ++differing;
  EXPECT_GT(differing, a.samples_per_day() / 10);
}

TEST(TraceGeneratorTest, DaytimeBusierThanNight) {
  TraceGenerator generator(fast_params(), 7);
  const MachineTrace trace = generator.generate("m0", 10);
  double day_load = 0.0, night_load = 0.0;
  std::size_t day_n = 0, night_n = 0;
  for (std::int64_t d = 0; d < trace.day_count(); ++d) {
    if (trace.day_type(d) != DayType::kWeekday) continue;
    for (std::size_t i = 0; i < trace.samples_per_day(); ++i) {
      const SimTime sec = static_cast<SimTime>(i) * 60;
      const double load = trace.at(d, i).load();
      if (sec >= 13 * kSecondsPerHour && sec < 17 * kSecondsPerHour) {
        day_load += load;
        ++day_n;
      } else if (sec >= 2 * kSecondsPerHour && sec < 5 * kSecondsPerHour) {
        night_load += load;
        ++night_n;
      }
    }
  }
  EXPECT_GT(day_load / day_n, 2.0 * night_load / night_n);
}

TEST(TraceGeneratorTest, WeekendsLighterThanWeekdays) {
  TraceGenerator generator(fast_params(), 11);
  const MachineTrace trace = generator.generate("m0", 28);
  double weekday_load = 0.0, weekend_load = 0.0;
  std::size_t weekday_n = 0, weekend_n = 0;
  for (std::int64_t d = 0; d < trace.day_count(); ++d) {
    for (std::size_t i = 0; i < trace.samples_per_day(); ++i) {
      if (trace.day_type(d) == DayType::kWeekday) {
        weekday_load += trace.at(d, i).load();
        ++weekday_n;
      } else {
        weekend_load += trace.at(d, i).load();
        ++weekend_n;
      }
    }
  }
  EXPECT_GT(weekday_load / weekday_n, weekend_load / weekend_n);
}

TEST(TraceGeneratorTest, ProducesAllThreeFailureTypes) {
  TraceGenerator generator(fast_params(), 13);
  const MachineTrace trace = generator.generate("m0", 30);
  const StateClassifier classifier(test::test_thresholds(), 60);
  const UnavailabilityStats stats = count_unavailability(trace, classifier);
  EXPECT_GT(stats.cpu_contention, 0u);
  EXPECT_GT(stats.memory_thrash, 0u);
  EXPECT_GT(stats.revocation, 0u);
}

TEST(TraceGeneratorTest, UnavailabilityFrequencyIsSubstantial) {
  // The paper saw 405–453 occurrences per machine over ~90 days (≈4.5/day).
  // At the test's coarser sampling we accept a broad plausibility band.
  TraceGenerator generator(fast_params(), 17);
  const MachineTrace trace = generator.generate("m0", 30);
  const StateClassifier classifier(test::test_thresholds(), 60);
  const UnavailabilityStats stats = count_unavailability(trace, classifier);
  const double per_day =
      static_cast<double>(stats.total()) / static_cast<double>(trace.day_count());
  EXPECT_GT(per_day, 1.0);
  EXPECT_LT(per_day, 20.0);
}

TEST(TraceGeneratorTest, DriftRaisesLateLoad) {
  WorkloadParams params = fast_params();
  params.drift_per_day = 0.01;
  TraceGenerator generator(params, 19);
  const MachineTrace trace = generator.generate("m0", 90);
  double early = 0.0, late = 0.0;
  for (std::size_t i = 0; i < trace.samples_per_day(); ++i) {
    for (int d = 0; d < 5; ++d) early += trace.at(d, i).load();
    for (int d = 85; d < 90; ++d) late += trace.at(d, i).load();
  }
  EXPECT_GT(late, early * 1.2);
}

TEST(TraceGeneratorTest, FleetHasDistinctIds) {
  const std::vector<MachineTrace> fleet =
      generate_fleet(fast_params(), 1, 3, 2);
  ASSERT_EQ(fleet.size(), 3u);
  EXPECT_EQ(fleet[0].machine_id(), "host00");
  EXPECT_EQ(fleet[1].machine_id(), "host01");
  EXPECT_EQ(fleet[2].machine_id(), "host02");
}

TEST(TraceGeneratorTest, ValidatesParams) {
  WorkloadParams bad = fast_params();
  bad.sampling_period = 7;
  EXPECT_THROW(TraceGenerator(bad, 1), PreconditionError);
  WorkloadParams bad_mem = fast_params();
  bad_mem.mem_base_used_mb = bad_mem.mem_total_mb + 1;
  EXPECT_THROW(TraceGenerator(bad_mem, 1), PreconditionError);
  TraceGenerator ok(fast_params(), 1);
  EXPECT_THROW(ok.generate("m", 0), PreconditionError);
}

}  // namespace
}  // namespace fgcs
