#include "workload/catalog.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace fgcs {
namespace {

TEST(CatalogTest, GuestWorkingSetsSpanPaperRange) {
  const auto& guests = spec_guest_catalog();
  ASSERT_GE(guests.size(), 10u);
  int lo = guests.front().working_set_mb, hi = lo;
  for (const auto& g : guests) {
    lo = std::min(lo, g.working_set_mb);
    hi = std::max(hi, g.working_set_mb);
  }
  EXPECT_EQ(lo, 29);   // paper: 29 MB …
  EXPECT_EQ(hi, 193);  // … to 193 MB
}

TEST(CatalogTest, HostWorkloadsSpanPaperEnvelopes) {
  const auto& hosts = musbus_host_catalog();
  ASSERT_GE(hosts.size(), 5u);
  double cpu_lo = 1.0, cpu_hi = 0.0;
  int mem_lo = 10000, mem_hi = 0;
  for (const auto& h : hosts) {
    cpu_lo = std::min(cpu_lo, h.cpu_duty);
    cpu_hi = std::max(cpu_hi, h.cpu_duty);
    mem_lo = std::min(mem_lo, h.mem_mb);
    mem_hi = std::max(mem_hi, h.mem_mb);
  }
  EXPECT_NEAR(cpu_lo, 0.08, 1e-9);  // paper: 8 % …
  EXPECT_NEAR(cpu_hi, 0.67, 1e-9);  // … to 67 %
  EXPECT_EQ(mem_lo, 53);            // paper: 53 MB …
  EXPECT_EQ(mem_hi, 213);           // … to 213 MB
}

TEST(CatalogTest, HostCatalogOrderedByCpu) {
  const auto& hosts = musbus_host_catalog();
  for (std::size_t i = 1; i < hosts.size(); ++i)
    EXPECT_GT(hosts[i].cpu_duty, hosts[i - 1].cpu_duty);
}

TEST(CatalogTest, EntriesHaveNames) {
  for (const auto& g : spec_guest_catalog()) EXPECT_FALSE(g.name.empty());
  for (const auto& h : musbus_host_catalog()) EXPECT_FALSE(h.name.empty());
}

}  // namespace
}  // namespace fgcs
